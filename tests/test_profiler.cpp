// Tests for the per-operation profiler (src/obs/profiler.h): phase timing,
// byte/cache accounting, the queue-depth sample ring, ring-buffer eviction
// in the profiler, JSON shape, and the HiDeStore integration (every
// backup/restore commits one profile with the right phases and counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "core/hidestore.h"
#include "obs/profiler.h"
#include "restore/faa.h"
#include "workload/generator.h"

namespace hds {
namespace {

const obs::PhaseTiming* find_phase(const obs::OpProfile& op,
                                   std::string_view name) {
  for (const auto& p : op.phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

TEST(Profiler, RecorderCommitsOnDestruction) {
  obs::OpProfiler profiler;
  {
    auto rec = profiler.begin("backup");
    rec->set_version(3);
    rec->add_bytes(100, 40);
    rec->set_chunks(7);
    rec->set_cache(5, 2, 1);
  }
  const auto ops = profiler.recent();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].kind, "backup");
  EXPECT_EQ(ops[0].version, 3u);
  EXPECT_EQ(ops[0].bytes_logical, 100u);
  EXPECT_EQ(ops[0].bytes_physical, 40u);
  EXPECT_EQ(ops[0].chunks, 7u);
  EXPECT_EQ(ops[0].cache_hits, 5u);
  EXPECT_EQ(ops[0].cache_misses, 2u);
  EXPECT_EQ(ops[0].cache_wasted, 1u);
  EXPECT_GE(ops[0].wall_ms, 0.0);
  EXPECT_EQ(profiler.completed(), 1u);
}

TEST(Profiler, FinishIsIdempotent) {
  obs::OpProfiler profiler;
  auto rec = profiler.begin("restore");
  rec->finish();
  rec->finish();
  rec.reset();  // destructor must not double-commit
  EXPECT_EQ(profiler.recent().size(), 1u);
}

TEST(Profiler, PhasesMeasureWallTime) {
  obs::OpProfiler profiler;
  {
    auto rec = profiler.begin("restore");
    {
      auto phase = rec->phase("sleepy");
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
    { auto phase = rec->phase("instant"); }
  }
  const auto ops = profiler.recent();
  ASSERT_EQ(ops.size(), 1u);
  ASSERT_EQ(ops[0].phases.size(), 2u);
  const auto* sleepy = find_phase(ops[0], "sleepy");
  ASSERT_NE(sleepy, nullptr);
  EXPECT_GE(sleepy->wall_ms, 10.0);
  // A sleeping phase burns (almost) no CPU — the I/O-wait signal.
  EXPECT_LT(sleepy->cpu_ms, sleepy->wall_ms);
  const auto* instant = find_phase(ops[0], "instant");
  ASSERT_NE(instant, nullptr);
  EXPECT_LT(instant->wall_ms, sleepy->wall_ms);
}

TEST(Profiler, RingEvictsOldestBeyondCapacity) {
  obs::OpProfiler profiler(4);
  for (int i = 0; i < 10; ++i) {
    auto rec = profiler.begin("op");
    rec->set_version(static_cast<std::uint32_t>(i));
  }
  const auto ops = profiler.recent();
  ASSERT_EQ(ops.size(), 4u);
  // Oldest first, only the last four retained.
  EXPECT_EQ(ops.front().version, 6u);
  EXPECT_EQ(ops.back().version, 9u);
  EXPECT_EQ(profiler.completed(), 10u);
  // Ids stay monotonic across evictions.
  EXPECT_EQ(ops.back().id, 10u);
}

TEST(Profiler, QueueDepthRingKeepsLastSamplesAndPeak) {
  obs::OpProfiler profiler;
  {
    auto rec = profiler.begin("restore");
    const auto n = obs::OpRecorder::kDepthSamples + 10;
    for (std::size_t i = 0; i < n; ++i) {
      rec->sample_queue_depth(static_cast<double>(i));
    }
  }
  const auto ops = profiler.recent();
  ASSERT_EQ(ops.size(), 1u);
  // Ring keeps the most recent kDepthSamples values, oldest first.
  ASSERT_EQ(ops[0].queue_depth.size(), obs::OpRecorder::kDepthSamples);
  EXPECT_DOUBLE_EQ(ops[0].queue_depth.front(), 10.0);
  EXPECT_DOUBLE_EQ(ops[0].queue_depth.back(),
                   static_cast<double>(obs::OpRecorder::kDepthSamples + 9));
  EXPECT_DOUBLE_EQ(ops[0].queue_depth_peak,
                   static_cast<double>(obs::OpRecorder::kDepthSamples + 9));
}

TEST(Profiler, ToJsonIsWellFormedish) {
  obs::OpProfiler profiler;
  {
    auto rec = profiler.begin("backup");
    auto phase = rec->phase("dedup");
    rec->add_bytes(1, 2);
    rec->sample_queue_depth(3.0);
  }
  const auto json = profiler.to_json();
  EXPECT_NE(json.find("\"ops\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"backup\""), std::string::npos);
  EXPECT_NE(json.find("\"dedup\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --- HiDeStore integration ---

TEST(Profiler, BackupAndRestoreCommitProfiles) {
  auto wl = WorkloadProfile::kernel();
  wl.versions = 3;
  wl.chunks_per_version = 200;
  VersionChainGenerator gen(wl);

  HiDeStore sys;
  for (std::uint32_t v = 0; v < wl.versions; ++v) {
    (void)sys.backup(gen.next_version());
  }
  FaaRestore policy{{}};
  std::uint64_t restored = 0;
  (void)sys.restore_with(1, policy,
                         [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
                           restored += b.size();
                         });
  ASSERT_GT(restored, 0u);

  const auto ops = sys.profiler().recent();
  ASSERT_EQ(ops.size(), 4u);  // 3 backups + 1 restore
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ops[static_cast<std::size_t>(i)].kind, "backup");
    EXPECT_EQ(ops[static_cast<std::size_t>(i)].version,
              static_cast<std::uint32_t>(i + 1));
    EXPECT_NE(find_phase(ops[static_cast<std::size_t>(i)], "dedup"), nullptr);
    EXPECT_NE(find_phase(ops[static_cast<std::size_t>(i)], "move_and_merge"),
              nullptr);
    EXPECT_NE(find_phase(ops[static_cast<std::size_t>(i)], "recipe_update"),
              nullptr);
    EXPECT_GT(ops[static_cast<std::size_t>(i)].bytes_logical, 0u);
    EXPECT_GT(ops[static_cast<std::size_t>(i)].chunks, 0u);
  }
  const auto& restore = ops[3];
  EXPECT_EQ(restore.kind, "restore");
  EXPECT_EQ(restore.version, 1u);
  EXPECT_NE(find_phase(restore, "resolve_recipe"), nullptr);
  EXPECT_NE(find_phase(restore, "policy_restore"), nullptr);
  EXPECT_EQ(restore.bytes_logical, restored);
  EXPECT_GT(restore.container_reads, 0u);
  EXPECT_EQ(restore.cache_misses, restore.container_reads);
}

}  // namespace
}  // namespace hds
