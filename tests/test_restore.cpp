// Tests for the restore policies: byte-exact reconstruction under every
// cache, correct read accounting, and the expected efficiency ordering on
// fragmented streams (recipe-aware caches beat LRU beats nothing).
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "common/rng.h"
#include "restore/basic_caches.h"
#include "restore/faa.h"
#include "restore/fbw_cache.h"
#include "restore/restorer.h"
#include "storage/container_store.h"

namespace hds {
namespace {

// Builds a store with `chunks` spread over containers of `per_container`
// chunks each, and a restore stream that visits them in a configurable
// pattern. Content bytes are seed-derived so verification is exact.
struct Fixture {
  MemoryContainerStore store;
  std::vector<ChunkLoc> stream;
  std::map<std::string, std::vector<std::uint8_t>> expected;

  class Fetcher final : public ContainerFetcher {
   public:
    explicit Fetcher(ContainerStore& store) : store_(store) {}
    std::shared_ptr<const Container> fetch(const ChunkLoc& loc) override {
      return store_.read(loc.cid);
    }

   private:
    ContainerStore& store_;
  } fetcher{store};

  // `order(i)` maps stream position to chunk index.
  Fixture(std::size_t chunks, std::size_t per_container,
          const std::function<std::size_t(std::size_t)>& order) {
    std::vector<ContainerId> homes(chunks);
    Container open(0, 1 << 20);
    std::vector<std::size_t> pending;
    auto flush = [&] {
      if (pending.empty()) return;
      const auto id = store.write(std::move(open));
      for (auto idx : pending) homes[idx] = id;
      pending.clear();
      open = Container(0, 1 << 20);
    };
    std::vector<std::uint32_t> sizes(chunks);
    for (std::size_t i = 0; i < chunks; ++i) {
      sizes[i] = 2048 + static_cast<std::uint32_t>((i * 37) % 2048);
      std::vector<std::uint8_t> bytes(sizes[i]);
      generate_chunk_content(i, sizes[i], bytes.data());
      expected[Fingerprint::from_seed(i).hex()] = bytes;
      open.add(Fingerprint::from_seed(i), bytes);
      pending.push_back(i);
      if (pending.size() == per_container) flush();
    }
    flush();
    for (std::size_t pos = 0;; ++pos) {
      const std::size_t idx = order(pos);
      if (idx >= chunks) break;
      stream.push_back(ChunkLoc{Fingerprint::from_seed(idx), sizes[idx],
                                homes[idx], false});
    }
  }

  // Runs a policy and verifies every emitted chunk byte-for-byte.
  RestoreStats run(RestorePolicy& policy) {
    std::size_t at = 0;
    RestoreStats stats = policy.restore(
        stream, fetcher,
        [&](const ChunkLoc& loc, std::span<const std::uint8_t> bytes) {
          ASSERT_LT(at, stream.size());
          EXPECT_EQ(loc.fp, stream[at].fp) << "position " << at;
          const auto& want = expected.at(loc.fp.hex());
          ASSERT_EQ(bytes.size(), want.size());
          EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), want.begin()));
          ++at;
        });
    EXPECT_EQ(at, stream.size());
    EXPECT_EQ(stats.restored_chunks, stream.size());
    return stats;
  }
};

class RestorePolicyTest : public ::testing::TestWithParam<RestorePolicyKind> {
 protected:
  std::unique_ptr<RestorePolicy> make(std::size_t budget = 1 << 20) {
    RestoreConfig config;
    config.memory_budget = budget;
    config.container_size = 1 << 20;
    config.lookahead_chunks = 512;
    return make_restore_policy(GetParam(), config);
  }
};

TEST_P(RestorePolicyTest, SequentialStreamRestoresExactly) {
  Fixture fx(200, 50, [](std::size_t i) { return i; });
  auto policy = make();
  const auto stats = fx.run(*policy);
  EXPECT_GT(stats.restored_bytes, 0u);
  EXPECT_GE(stats.container_reads, 4u);  // 4 containers minimum
}

TEST_P(RestorePolicyTest, FragmentedStreamRestoresExactly) {
  // Stride pattern: consecutive stream positions hit different containers.
  Fixture fx(200, 10, [](std::size_t i) {
    return i < 200 ? (i * 13) % 200 : SIZE_MAX;
  });
  auto policy = make();
  (void)fx.run(*policy);
}

TEST_P(RestorePolicyTest, RepeatedChunksRestoreExactly) {
  // Every chunk requested twice, far apart.
  Fixture fx(100, 25, [](std::size_t i) {
    return i < 200 ? i % 100 : SIZE_MAX;
  });
  auto policy = make();
  const auto stats = fx.run(*policy);
  EXPECT_EQ(stats.restored_chunks, 200u);
}

TEST_P(RestorePolicyTest, EmptyStreamIsNoop) {
  Fixture fx(10, 5, [](std::size_t) { return SIZE_MAX; });
  auto policy = make();
  const auto stats = fx.run(*policy);
  EXPECT_EQ(stats.container_reads, 0u);
  EXPECT_EQ(stats.restored_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, RestorePolicyTest,
    ::testing::Values(RestorePolicyKind::kNoCache,
                      RestorePolicyKind::kContainerLru,
                      RestorePolicyKind::kChunkLru, RestorePolicyKind::kFaa,
                      RestorePolicyKind::kAlacc, RestorePolicyKind::kFbw),
    [](const auto& suite_info) {
      switch (suite_info.param) {
        case RestorePolicyKind::kNoCache: return "nocache";
        case RestorePolicyKind::kContainerLru: return "container_lru";
        case RestorePolicyKind::kChunkLru: return "chunk_lru";
        case RestorePolicyKind::kFaa: return "faa";
        case RestorePolicyKind::kAlacc: return "alacc";
        case RestorePolicyKind::kFbw: return "fbw";
      }
      return "unknown";
    });

// --- Relative efficiency: the orderings the literature predicts ---

TEST(RestoreOrdering, CachesBeatNoCacheOnInterleavedStream) {
  // Two containers' chunks interleaved: A B A B ... NoCache re-reads per
  // chunk; any real cache reads each container once (or close to it).
  Fixture fx(100, 50, [](std::size_t i) {
    return i < 100 ? (i % 2) * 50 + i / 2 : SIZE_MAX;
  });
  RestoreConfig config;
  config.memory_budget = 4 << 20;
  config.container_size = 1 << 20;

  NoCacheRestore nocache;
  const auto base = fx.run(nocache);
  for (auto kind : {RestorePolicyKind::kContainerLru, RestorePolicyKind::kFaa,
                    RestorePolicyKind::kAlacc, RestorePolicyKind::kFbw}) {
    auto policy = make_restore_policy(kind, config);
    const auto stats = fx.run(*policy);
    EXPECT_LT(stats.container_reads, base.container_reads)
        << policy->name();
    EXPECT_GT(stats.speed_factor(), base.speed_factor()) << policy->name();
  }
}

TEST(RestoreOrdering, FaaReadsEachContainerOncePerArea) {
  // A whole restore that fits in one assembly area: every container is
  // read exactly once regardless of interleaving.
  Fixture fx(120, 12, [](std::size_t i) {
    return i < 120 ? (i * 7) % 120 : SIZE_MAX;
  });
  RestoreConfig config;
  config.memory_budget = 64 << 20;  // area covers everything
  config.container_size = 1 << 20;
  FaaRestore faa(config);
  const auto stats = fx.run(faa);
  EXPECT_EQ(stats.container_reads, 10u);  // 120 chunks / 12 per container
}

TEST(RestoreOrdering, TinyFaaAreaDegrades) {
  Fixture fx(120, 12, [](std::size_t i) {
    return i < 120 ? (i * 7) % 120 : SIZE_MAX;
  });
  RestoreConfig small;
  small.memory_budget = 16 * 1024;  // a handful of chunks per area
  RestoreConfig large;
  large.memory_budget = 64 << 20;
  FaaRestore faa_small(small);
  FaaRestore faa_large(large);
  EXPECT_GT(fx.run(faa_small).container_reads,
            fx.run(faa_large).container_reads);
}

TEST(RestoreOrdering, FbwBeatsLruOnLoopingPattern) {
  // Loop over a working set slightly larger than the LRU can hold: classic
  // LRU pathology; future-knowledge eviction survives it.
  const std::size_t n = 64;
  Fixture fx(n, 4, [n](std::size_t i) {
    return i < 3 * n ? i % n : SIZE_MAX;
  });
  RestoreConfig config;
  config.memory_budget = 48 * 4096;  // holds ~75% of the working set
  config.container_size = 1 << 20;
  config.lookahead_chunks = 4 * n;

  ChunkLruRestore lru(config);
  FbwRestore fbw(config);
  const auto lru_stats = fx.run(lru);
  const auto fbw_stats = fx.run(fbw);
  EXPECT_LE(fbw_stats.container_reads, lru_stats.container_reads);
}

TEST(RestoreStatsTest, SpeedFactorMath) {
  RestoreStats stats;
  stats.restored_bytes = 8 * 1024 * 1024;
  stats.container_reads = 4;
  EXPECT_DOUBLE_EQ(stats.speed_factor(), 2.0);
  stats.container_reads = 0;
  EXPECT_DOUBLE_EQ(stats.speed_factor(), 0.0);
}

}  // namespace
}  // namespace hds
