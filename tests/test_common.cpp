// Unit tests for src/common: SHA-1, CRC-32, fingerprints, RNG, chunk
// content generation, measurement helpers.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/chunk.h"
#include "common/crc32.h"
#include "common/fingerprint.h"
#include "common/parse.h"
#include "common/rng.h"
#include "common/sha1.h"
#include "common/stats.h"

namespace hds {
namespace {

// --- SHA-1 against FIPS 180-4 / RFC 3174 vectors ---

TEST(Sha1, EmptyMessage) {
  EXPECT_EQ(Sha1::digest(nullptr, 0).hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::digest("abc", 3).hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  const std::string msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(Sha1::digest(msg.data(), msg.size()).hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1 h;
  const std::string block(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(block.data(), block.size());
  EXPECT_EQ(h.finish().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(10000);
  Xoshiro256ss rng(7);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());

  const auto oneshot = Sha1::digest(data.data(), data.size());
  Sha1 h;
  std::size_t pos = 0;
  std::size_t step = 1;
  while (pos < data.size()) {
    const std::size_t n = std::min(step, data.size() - pos);
    h.update(data.data() + pos, n);
    pos += n;
    step = step * 2 + 1;  // irregular boundaries exercise buffering
  }
  EXPECT_EQ(h.finish(), oneshot);
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update("abc", 3);
  (void)h.finish();
  h.reset();
  h.update("abc", 3);
  EXPECT_EQ(h.finish().hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, ExactBlockBoundary) {
  const std::string msg(64, 'x');
  const auto a = Sha1::digest(msg.data(), 64);
  Sha1 h;
  h.update(msg.data(), 32);
  h.update(msg.data() + 32, 32);
  EXPECT_EQ(h.finish(), a);
}

// --- CRC-32 ---

TEST(Crc32, KnownVector) {
  // The canonical "123456789" check value for CRC-32/IEEE.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(256);
  Xoshiro256ss rng(9);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const auto before = crc32(data.data(), data.size());
  data[100] ^= 0x10;
  EXPECT_NE(before, crc32(data.data(), data.size()));
}

TEST(Crc32, SeedChaining) {
  const std::string msg = "hello world";
  const auto whole = crc32(msg.data(), msg.size());
  // Chaining with a seed is not plain concatenation, but it must be
  // deterministic and differ from the unseeded value.
  const auto seeded = crc32(msg.data(), msg.size(), 12345);
  EXPECT_NE(whole, seeded);
  EXPECT_EQ(seeded, crc32(msg.data(), msg.size(), 12345));
}

// --- Fingerprint ---

TEST(Fingerprint, HexRoundTrip) {
  const auto fp = Fingerprint::from_seed(42);
  Fingerprint back;
  ASSERT_TRUE(Fingerprint::from_hex(fp.hex(), back));
  EXPECT_EQ(fp, back);
}

TEST(Fingerprint, FromHexRejectsMalformed) {
  Fingerprint out;
  EXPECT_FALSE(Fingerprint::from_hex("zz", out));
  EXPECT_FALSE(Fingerprint::from_hex(std::string(39, 'a'), out));
  EXPECT_FALSE(Fingerprint::from_hex(std::string(41, 'a'), out));
  EXPECT_FALSE(
      Fingerprint::from_hex(std::string(38, 'a') + "g0", out));
  EXPECT_TRUE(Fingerprint::from_hex(std::string(40, 'A'), out));
}

TEST(Fingerprint, FromSeedDeterministicAndDistinct) {
  EXPECT_EQ(Fingerprint::from_seed(1), Fingerprint::from_seed(1));
  std::set<std::string> seen;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    seen.insert(Fingerprint::from_seed(s).hex());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Fingerprint, OrderingIsTotal) {
  const auto a = Fingerprint::from_seed(1);
  const auto b = Fingerprint::from_seed(2);
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_TRUE(a == a);
}

TEST(Fingerprint, Prefix64MatchesBytes) {
  Fingerprint fp;
  for (std::size_t i = 0; i < kFingerprintSize; ++i) {
    fp.bytes[i] = static_cast<std::uint8_t>(i + 1);
  }
  EXPECT_EQ(fp.prefix64(), 0x0807060504030201ULL);
}

// --- RNG ---

TEST(Rng, SplitMix64Deterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroChanceBounds) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceFrequencyApproximatesP) {
  Xoshiro256ss rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256ss rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

// --- Chunk content ---

TEST(ChunkContent, DeterministicPerSeed) {
  std::vector<std::uint8_t> a(4096), b(4096);
  generate_chunk_content(99, 4096, a.data());
  generate_chunk_content(99, 4096, b.data());
  EXPECT_EQ(a, b);
  generate_chunk_content(100, 4096, b.data());
  EXPECT_NE(a, b);
}

TEST(ChunkContent, NonMultipleOfEightSize) {
  std::vector<std::uint8_t> a(4093);
  generate_chunk_content(7, 4093, a.data());  // must not overflow
  std::vector<std::uint8_t> b(4093);
  generate_chunk_content(7, 4093, b.data());
  EXPECT_EQ(a, b);
}

TEST(ChunkRecord, MaterializePrefersRealData) {
  ChunkRecord rec;
  rec.size = 4;
  rec.content_seed = 1;
  rec.data = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1, 2, 3, 4});
  EXPECT_EQ(rec.materialize(), (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(ChunkRecord, MaterializeFromSeed) {
  ChunkRecord rec;
  rec.size = 64;
  rec.content_seed = 5;
  const auto a = rec.materialize();
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(a, rec.materialize());
}

TEST(VersionStream, LogicalBytesSumsSizes) {
  VersionStream vs;
  for (std::uint32_t s : {100u, 200u, 300u}) {
    ChunkRecord rec;
    rec.size = s;
    vs.chunks.push_back(rec);
  }
  EXPECT_EQ(vs.logical_bytes(), 600u);
}

// --- Stats helpers ---

TEST(MeanAccumulator, TracksMeanMinMax) {
  MeanAccumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  acc.add(2.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
  EXPECT_EQ(acc.count(), 3u);
}

TEST(MeanAccumulator, EmptyIsZero) {
  MeanAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 0.0);
}

TEST(MeanAccumulator, SumAndMerge) {
  MeanAccumulator a;
  a.add(1.0);
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);

  MeanAccumulator b;
  b.add(-2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);

  // Merging an empty accumulator changes nothing.
  a.merge(MeanAccumulator{});
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);

  const auto parts = MeanAccumulator::from_parts(10.0, 4, 1.0, 4.0);
  EXPECT_DOUBLE_EQ(parts.mean(), 2.5);
  EXPECT_DOUBLE_EQ(parts.min(), 1.0);
  EXPECT_DOUBLE_EQ(parts.max(), 4.0);
}

TEST(TablePrinter, FormatsWithoutCrashing) {
  TablePrinter t({"a", "b"});
  t.add_row({"1"});
  t.add_row({"22", "333"});
  t.print();  // smoke: padding with missing cells
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
}

// --- parse_uint: the checked CLI number parser ---

TEST(ParseUint, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_uint("0"), 0u);
  EXPECT_EQ(parse_uint("7"), 7u);
  EXPECT_EQ(parse_uint("65535"), 65535u);
  EXPECT_EQ(parse_uint("18446744073709551615"), UINT64_MAX);
  // Leading zeros are just digits.
  EXPECT_EQ(parse_uint("007"), 7u);
}

TEST(ParseUint, RejectsGarbageThatStrtoulSwallows) {
  // strtoul("abc") silently yields 0; parse_uint refuses.
  EXPECT_FALSE(parse_uint("abc").has_value());
  EXPECT_FALSE(parse_uint("").has_value());
  // Trailing junk after digits.
  EXPECT_FALSE(parse_uint("12abc").has_value());
  EXPECT_FALSE(parse_uint("12 ").has_value());
  EXPECT_FALSE(parse_uint(" 12").has_value());
  // Signs, hex, floats: not plain decimal.
  EXPECT_FALSE(parse_uint("-1").has_value());
  EXPECT_FALSE(parse_uint("+1").has_value());
  EXPECT_FALSE(parse_uint("0x10").has_value());
  EXPECT_FALSE(parse_uint("1.5").has_value());
}

TEST(ParseUint, RejectsOverflowAndOutOfRange) {
  // One past UINT64_MAX.
  EXPECT_FALSE(parse_uint("18446744073709551616").has_value());
  EXPECT_FALSE(parse_uint("99999999999999999999999").has_value());
  // Caller-imposed ceiling: the --port=99999 wraparound bug.
  EXPECT_FALSE(parse_uint("99999", 65535).has_value());
  EXPECT_EQ(parse_uint("65535", 65535), 65535u);
  EXPECT_FALSE(parse_uint("65536", 65535).has_value());
}

}  // namespace
}  // namespace hds
