// Tests for the active container pool: placement, extraction (cold-chunk
// eviction), the compaction/merge pass and its remap, and read accounting.
#include <gtest/gtest.h>

#include "core/active_pool.h"

namespace hds {
namespace {

ChunkRecord chunk(std::uint64_t id, std::uint32_t size = 4096) {
  ChunkRecord rec;
  rec.fp = Fingerprint::from_seed(id);
  rec.size = size;
  rec.content_seed = id;
  return rec;
}

TEST(ActivePool, AddAndFind) {
  ActiveContainerPool pool(64 * 1024, true);
  const auto cid = pool.add(chunk(1));
  EXPECT_GT(cid, 0);
  ASSERT_NE(pool.find(Fingerprint::from_seed(1)), nullptr);
  EXPECT_EQ(*pool.find(Fingerprint::from_seed(1)), cid);
  EXPECT_EQ(pool.find(Fingerprint::from_seed(99)), nullptr);
  EXPECT_EQ(pool.chunk_count(), 1u);
}

TEST(ActivePool, RollsToNewContainerWhenFull) {
  ActiveContainerPool pool(10 * 1024, true);
  ContainerId first = 0;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const auto cid = pool.add(chunk(i, 4096));
    if (i == 0) first = cid;
  }
  EXPECT_GT(pool.container_count(), 1u);
  EXPECT_EQ(*pool.find(Fingerprint::from_seed(0)), first);
}

TEST(ActivePool, FetchCountsReads) {
  ActiveContainerPool pool(64 * 1024, true);
  const auto cid = pool.add(chunk(1));
  EXPECT_EQ(pool.stats().container_reads, 0u);
  const auto container = pool.fetch(cid);
  ASSERT_NE(container, nullptr);
  EXPECT_EQ(pool.stats().container_reads, 1u);
  EXPECT_EQ(pool.fetch(9999), nullptr);
  EXPECT_EQ(pool.stats().container_reads, 1u);  // misses are not reads
}

TEST(ActivePool, ExtractRemovesAndReturnsBytes) {
  ActiveContainerPool pool(64 * 1024, true);
  (void)pool.add(chunk(1, 1000));
  const auto bytes = pool.extract(Fingerprint::from_seed(1));
  EXPECT_EQ(bytes.size(), 1000u);
  // Content must match the deterministic generator.
  std::vector<std::uint8_t> expect(1000);
  generate_chunk_content(1, 1000, expect.data());
  EXPECT_EQ(bytes, expect);
  EXPECT_EQ(pool.find(Fingerprint::from_seed(1)), nullptr);
  EXPECT_THROW((void)pool.extract(Fingerprint::from_seed(1)),
               std::logic_error);
}

TEST(ActivePool, DuplicateAddThrows) {
  ActiveContainerPool pool(64 * 1024, true);
  (void)pool.add(chunk(1));
  EXPECT_THROW((void)pool.add(chunk(1)), std::logic_error);
}

TEST(ActivePool, CompactMergesSparseContainers) {
  ActiveContainerPool pool(16 * 1024, true);
  // Fill 4 containers, then evict most chunks to make them sparse.
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 16; ++i) {
    (void)pool.add(chunk(i, 4096));
    fps.push_back(Fingerprint::from_seed(i));
  }
  const auto before = pool.container_count();
  ASSERT_GE(before, 4u);
  // Keep one chunk per container.
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (i % 4 != 0) (void)pool.extract(fps[i]);
  }

  const auto remap = pool.compact(0.5);
  EXPECT_LT(pool.container_count(), before);
  EXPECT_FALSE(remap.empty());
  // Every surviving chunk must be findable and consistent with the remap.
  for (std::uint64_t i = 0; i < 16; i += 4) {
    const auto* cid = pool.find(fps[i]);
    ASSERT_NE(cid, nullptr);
    if (const auto it = remap.find(fps[i]); it != remap.end()) {
      EXPECT_EQ(it->second, *cid);
    }
    const auto container = pool.fetch(*cid);
    ASSERT_NE(container, nullptr);
    EXPECT_TRUE(container->read(fps[i]).has_value());
  }
  EXPECT_EQ(pool.chunk_count(), 4u);
}

TEST(ActivePool, CompactPreservesContent) {
  ActiveContainerPool pool(16 * 1024, true);
  for (std::uint64_t i = 0; i < 12; ++i) (void)pool.add(chunk(i, 4096));
  for (std::uint64_t i = 0; i < 12; i += 2) {
    (void)pool.extract(Fingerprint::from_seed(i));
  }
  (void)pool.compact(0.9);

  for (std::uint64_t i = 1; i < 12; i += 2) {
    const auto* cid = pool.find(Fingerprint::from_seed(i));
    ASSERT_NE(cid, nullptr);
    const auto container = pool.fetch(*cid);
    const auto read = container->read(Fingerprint::from_seed(i));
    ASSERT_TRUE(read.has_value());
    std::vector<std::uint8_t> expect(4096);
    generate_chunk_content(i, 4096, expect.data());
    EXPECT_TRUE(std::equal(read->begin(), read->end(), expect.begin()));
  }
}

TEST(ActivePool, CompactNoopWhenDense) {
  ActiveContainerPool pool(16 * 1024, true);
  for (std::uint64_t i = 0; i < 8; ++i) (void)pool.add(chunk(i, 4096));
  // Threshold 0: nothing is sparse.
  const auto remap = pool.compact(0.0);
  EXPECT_TRUE(remap.empty());
}

TEST(ActivePool, UsedAndPhysicalBytes) {
  ActiveContainerPool pool(16 * 1024, true);
  (void)pool.add(chunk(1, 4000));
  (void)pool.add(chunk(2, 4000));
  EXPECT_EQ(pool.used_bytes(), 8000u);
  EXPECT_EQ(pool.physical_bytes(), pool.container_count() * 16 * 1024);
}

TEST(ActivePool, MetaModeWorks) {
  ActiveContainerPool pool(16 * 1024, false);
  (void)pool.add(chunk(1, 4000));
  const auto bytes = pool.extract(Fingerprint::from_seed(1));
  EXPECT_EQ(bytes.size(), 4000u);  // zero-filled placeholder
}

}  // namespace
}  // namespace hds
