// Tests for FullIndex (DDFS): exact dedup decisions, Bloom-filter
// suppression of unique-chunk lookups, locality-prefetch behavior, and the
// disk-lookup/memory accounting that drives Figures 9 and 10.
#include <gtest/gtest.h>

#include "index/full_index.h"

namespace hds {
namespace {

ChunkRecord chunk(std::uint64_t id) {
  ChunkRecord rec;
  rec.fp = Fingerprint::from_seed(id);
  rec.size = 4096;
  rec.content_seed = id;
  return rec;
}

RecipeEntry entry(std::uint64_t id, ContainerId cid) {
  return RecipeEntry{Fingerprint::from_seed(id), cid, 4096};
}

TEST(FullIndex, FreshChunksAreUnique) {
  FullIndex index;
  std::vector<ChunkRecord> segment{chunk(1), chunk(2), chunk(3)};
  const auto decisions = index.dedup_segment(segment);
  for (const auto& d : decisions) EXPECT_FALSE(d.has_value());
  EXPECT_EQ(index.stats().unique_chunks, 3u);
  // Bloom filter answers "new" for free: zero disk lookups.
  EXPECT_EQ(index.stats().disk_lookups, 0u);
}

TEST(FullIndex, FindsStoredChunksExactly) {
  FullIndex index;
  std::vector<ChunkRecord> first{chunk(1), chunk(2)};
  (void)index.dedup_segment(first);
  index.finish_segment(std::vector<RecipeEntry>{entry(1, 10), entry(2, 11)});

  std::vector<ChunkRecord> second{chunk(1), chunk(3), chunk(2)};
  const auto decisions = index.dedup_segment(second);
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_EQ(decisions[0], std::optional<ContainerId>(10));
  EXPECT_FALSE(decisions[1].has_value());
  EXPECT_EQ(decisions[2], std::optional<ContainerId>(11));
}

TEST(FullIndex, LocalityPrefetchTurnsOneLookupIntoManyHits) {
  FullIndex index;
  // 64 chunks, all stored in container 5.
  std::vector<ChunkRecord> segment;
  std::vector<RecipeEntry> entries;
  for (std::uint64_t i = 0; i < 64; ++i) {
    segment.push_back(chunk(i));
    entries.push_back(entry(i, 5));
  }
  (void)index.dedup_segment(segment);
  index.finish_segment(entries);

  // Re-deduplicating the same stream: the first hit probes the table and
  // prefetches container 5's members; the rest hit the locality cache.
  const auto before = index.stats().disk_lookups;
  const auto cache_hits_before = index.stats().cache_hits;
  (void)index.dedup_segment(segment);
  EXPECT_EQ(index.stats().disk_lookups - before, 1u);
  EXPECT_EQ(index.stats().cache_hits - cache_hits_before, 63u);
}

TEST(FullIndex, CacheEvictionFallsBackToDiskLookup) {
  FullIndexConfig config;
  config.cache_containers = 2;
  FullIndex index(config);

  // Chunks spread over 8 containers.
  std::vector<ChunkRecord> segment;
  std::vector<RecipeEntry> entries;
  for (std::uint64_t i = 0; i < 8; ++i) {
    segment.push_back(chunk(i));
    entries.push_back(entry(i, static_cast<ContainerId>(i + 1)));
  }
  (void)index.dedup_segment(segment);
  index.finish_segment(entries);

  const auto before = index.stats().disk_lookups;
  (void)index.dedup_segment(segment);
  // With room for only 2 containers, most duplicates need a table probe.
  EXPECT_GE(index.stats().disk_lookups - before, 6u);
}

TEST(FullIndex, MemoryGrowsWithUniqueChunks) {
  FullIndex index;
  const auto empty = index.memory_bytes();
  std::vector<ChunkRecord> segment;
  std::vector<RecipeEntry> entries;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    segment.push_back(chunk(i));
    entries.push_back(entry(i, 1));
  }
  (void)index.dedup_segment(segment);
  index.finish_segment(entries);
  // 24 bytes per entry on top of the Bloom filter.
  EXPECT_EQ(index.memory_bytes() - empty, 1000u * 24u);
  EXPECT_EQ(index.table_entries(), 1000u);
}

TEST(FullIndex, DuplicateFinishEntriesInsertOnce) {
  FullIndex index;
  index.finish_segment(std::vector<RecipeEntry>{entry(1, 3), entry(1, 4)});
  EXPECT_EQ(index.table_entries(), 1u);
  std::vector<ChunkRecord> segment{chunk(1)};
  const auto decisions = index.dedup_segment(segment);
  EXPECT_EQ(decisions[0], std::optional<ContainerId>(3));  // first wins
}

TEST(FullIndex, NegativeAndZeroCidsIgnoredInFinish) {
  FullIndex index;
  index.finish_segment(
      std::vector<RecipeEntry>{entry(1, 0), entry(2, -3), entry(3, 9)});
  EXPECT_EQ(index.table_entries(), 1u);
}

}  // namespace
}  // namespace hds
