// Concurrency tests for the metrics primitives and the profiler's
// cross-thread depth sampling. Run under TSan in CI (LABELS concurrency):
// the exactness assertions catch lost updates (a broken CAS loop in
// detail::atomic_add), TSan catches ordering bugs the totals can't see.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace hds::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 20'000;

TEST(ObsConcurrency, CounterIncrementsAreExact) {
  MetricsRegistry registry;
  auto& counter = registry.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) counter.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// Gauge::add is the float fetch_add path (__cpp_lib_atomic_float or the
// CAS fallback) — every update must land, none may be lost to a race.
TEST(ObsConcurrency, GaugeAddsAreExact) {
  MetricsRegistry registry;
  auto& gauge = registry.gauge("depth");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) gauge.add(1.0);
    });
  }
  for (auto& th : threads) th.join();
  // Each addend is 1.0 and the total stays far below 2^53, so the float
  // sum is exact — any shortfall is a lost update, not rounding.
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kThreads) * kIters);
}

TEST(ObsConcurrency, HistogramObservesAreExact) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("lat", {1.0, 10.0, 100.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &histogram] {
      for (int i = 0; i < kIters; ++i) {
        // Spread observations across all buckets including overflow.
        histogram.observe(static_cast<double>((t + i) % 4) * 50.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  // Per thread the observed values cycle 0,50,100,150 — kIters/4 each.
  const double per_thread = (0.0 + 50.0 + 100.0 + 150.0) * (kIters / 4);
  EXPECT_DOUBLE_EQ(histogram.sum(), per_thread * kThreads);
}

// Concurrent registration: create-if-missing must hand every thread the
// same counter, and all increments must survive.
TEST(ObsConcurrency, RegistrationRacesResolveToOneFamily) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.counter("shared").inc();
        registry.gauge("g").add(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * 1000);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(),
                   static_cast<double>(kThreads) * 1000);
}

// The restore read-ahead thread samples queue depth through the recorder
// while the op thread keeps recording phases — the one sanctioned
// cross-thread use of OpRecorder (see profiler.h threading note).
TEST(ObsConcurrency, DepthSamplingRacesPhaseRecording) {
  OpProfiler profiler;
  auto rec = profiler.begin("restore");
  std::thread sampler([&rec] {
    for (int i = 0; i < kIters; ++i) {
      rec->sample_queue_depth(static_cast<double>(i % 32));
    }
  });
  for (int i = 0; i < 200; ++i) {
    auto phase = rec->phase("tick");
    rec->add_bytes(1, 1);
  }
  sampler.join();  // sampling thread must be done before finish()
  rec.reset();
  const auto ops = profiler.recent();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].queue_depth.size(), OpRecorder::kDepthSamples);
  EXPECT_DOUBLE_EQ(ops[0].queue_depth_peak, 31.0);
  EXPECT_EQ(ops[0].bytes_logical, 200u);
}

// Scrape-while-writing: to_prometheus() renders while other threads keep
// mutating every metric kind. Values are racy by design; TSan verifies the
// reads are at least well-ordered.
TEST(ObsConcurrency, PrometheusRenderDuringWrites) {
  MetricsRegistry registry;
  // Register up front so the very first render already sees all three
  // families — otherwise it can race the writers' create-if-missing and
  // legitimately print an empty page.
  auto& counter = registry.counter("c");
  auto& gauge = registry.gauge("g");
  auto& histogram = registry.histogram("h");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter.inc();
        gauge.add(0.5);
        histogram.observe(3.0);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const auto text = registry.to_prometheus();
    EXPECT_NE(text.find("# TYPE"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();
}

}  // namespace
}  // namespace hds::obs
