// Restore read-ahead (restore/read_ahead.h): enabling the prefetch thread
// must change NOTHING observable — restored bytes, policy accounting, and
// the store-counter cross-check all match the serial run. Tagged
// `concurrency` for the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "backup/pipeline.h"
#include "chunking/chunk_stream.h"
#include "chunking/fastcdc.h"
#include "chunking/parallel_chunk.h"
#include "common/rng.h"
#include "core/hidestore.h"
#include "restore/faa.h"
#include "restore/read_ahead.h"

namespace {

using namespace hds;

std::vector<std::uint8_t> random_buffer(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  Xoshiro256ss rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

// Evolves a version: overwrite a region and append a little, the shape of
// an incremental backup.
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> data,
                                 std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const std::size_t region = data.size() / 8;
  const std::size_t at = static_cast<std::size_t>(rng.next()) %
                         (data.size() - region);
  for (std::size_t i = 0; i < region; ++i) {
    data[at + i] = static_cast<std::uint8_t>(rng.next());
  }
  for (std::size_t i = 0; i < 16 * 1024; ++i) {
    data.push_back(static_cast<std::uint8_t>(rng.next()));
  }
  return data;
}

std::vector<std::uint8_t> restore_bytes(BackupSystem& sys, VersionId version,
                                        RestoreStats* stats = nullptr) {
  std::vector<std::uint8_t> out;
  const auto report = sys.restore(
      version, [&](const ChunkLoc&, std::span<const std::uint8_t> bytes) {
        out.insert(out.end(), bytes.begin(), bytes.end());
      });
  if (stats != nullptr) *stats = report.stats;
  return out;
}

void expect_stats_equal(const RestoreStats& serial,
                        const RestoreStats& ahead) {
  EXPECT_EQ(serial.restored_bytes, ahead.restored_bytes);
  EXPECT_EQ(serial.restored_chunks, ahead.restored_chunks);
  EXPECT_EQ(serial.container_reads, ahead.container_reads);
  EXPECT_EQ(serial.cache_hits, ahead.cache_hits);
  EXPECT_EQ(serial.cache_evictions, ahead.cache_evictions);
  EXPECT_EQ(serial.failed_chunks, ahead.failed_chunks);
}

// Counts fetches so the exactly-once read guarantee is directly observable.
class CountingFetcher final : public ContainerFetcher {
 public:
  explicit CountingFetcher(ContainerStore& store) : store_(store) {}
  std::shared_ptr<const Container> fetch(const ChunkLoc& loc) override {
    ++fetches_;
    return store_.read(loc.cid);
  }
  [[nodiscard]] std::uint64_t fetches() const noexcept { return fetches_; }

 private:
  ContainerStore& store_;
  std::atomic<std::uint64_t> fetches_{0};
};

TEST(ReadAheadFetcher, EachContainerReadExactlyOnce) {
  // 6 containers of 4 chunks each, stream walking them sequentially: every
  // fetch after the first per container is absorbed by FAA's area, so the
  // wrapped fetcher must see each container once and waste nothing.
  MemoryContainerStore store;
  std::vector<ChunkLoc> stream;
  const auto payload = random_buffer(4 * 1024, 99);
  for (int c = 0; c < 6; ++c) {
    Container container(store.reserve_id(), kDefaultContainerSize);
    for (int k = 0; k < 4; ++k) {
      Fingerprint fp;
      fp.bytes[0] = static_cast<std::uint8_t>(c);
      fp.bytes[1] = static_cast<std::uint8_t>(k);
      ASSERT_TRUE(container.add(fp, payload));
      stream.push_back(ChunkLoc{fp, static_cast<std::uint32_t>(payload.size()),
                                container.id(), /*active=*/false});
    }
    store.put(std::move(container));
  }

  CountingFetcher counting(store);
  ReadAheadConfig config;
  config.depth = 3;
  ReadAheadFetcher fetcher(counting, stream, config);
  RestoreConfig restore_config;
  FaaRestore policy(restore_config);
  std::uint64_t restored = 0;
  const auto stats = policy.restore(
      stream, fetcher, [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
        restored += b.size();
      });
  fetcher.stop();

  EXPECT_EQ(restored, stream.size() * payload.size());
  EXPECT_EQ(stats.container_reads, 6u);   // policy accounting: one per fetch
  EXPECT_EQ(counting.fetches(), 6u);      // physical reads: exactly once each
  EXPECT_EQ(fetcher.wasted_reads(), 0u);  // every prefetch was consumed
  EXPECT_EQ(fetcher.prefetch_hits() + fetcher.prefetch_misses(), 6u);
}

TEST(ReadAheadFetcher, StopIsIdempotentAndEarly) {
  MemoryContainerStore store;
  Container container(store.reserve_id(), kDefaultContainerSize);
  Fingerprint fp;
  const auto payload = random_buffer(1024, 5);
  ASSERT_TRUE(container.add(fp, payload));
  const ContainerId cid = container.id();
  store.put(std::move(container));
  std::vector<ChunkLoc> stream(
      64, ChunkLoc{fp, static_cast<std::uint32_t>(payload.size()), cid,
                   /*active=*/false});

  CountingFetcher counting(store);
  ReadAheadFetcher fetcher(counting, stream);
  fetcher.stop();  // before any consumption
  fetcher.stop();  // idempotent
  // A stopped fetcher still serves fetches (direct reads).
  EXPECT_NE(fetcher.fetch(stream.front()), nullptr);
}

TEST(Pipeline, ReadAheadMatchesSerialRestore) {
  auto make = [] { return make_baseline(BaselineKind::kDdfs); };
  auto serial_sys = make();
  auto ahead_sys = make();
  ahead_sys->set_read_ahead(8);
  EXPECT_EQ(ahead_sys->read_ahead(), 8u);

  const FastCdcChunker chunker;
  auto data = random_buffer(2 * 1024 * 1024, 1);
  std::vector<std::vector<std::uint8_t>> versions;
  for (int v = 0; v < 3; ++v) {
    versions.push_back(data);
    const auto stream = chunk_bytes(chunker, data);
    serial_sys->backup(stream);
    ahead_sys->backup(stream);
    data = mutate(std::move(data), 100 + v);
  }

  for (VersionId v = 1; v <= 3; ++v) {
    RestoreStats serial_stats, ahead_stats;
    const auto serial = restore_bytes(*serial_sys, v, &serial_stats);
    const auto ahead = restore_bytes(*ahead_sys, v, &ahead_stats);
    EXPECT_EQ(serial, versions[v - 1]);
    EXPECT_EQ(ahead, versions[v - 1]);
    expect_stats_equal(serial_stats, ahead_stats);
  }
}

TEST(HiDeStore, ReadAheadMatchesSerialRestore) {
  HiDeStoreConfig config;
  HiDeStore serial_sys(config);
  HiDeStore ahead_sys(config);
  ahead_sys.set_read_ahead(6);

  const FastCdcChunker chunker;
  auto data = random_buffer(2 * 1024 * 1024, 2);
  std::vector<std::vector<std::uint8_t>> versions;
  for (int v = 0; v < 4; ++v) {
    versions.push_back(data);
    const auto stream = chunk_bytes(chunker, data);
    serial_sys.backup(stream);
    ahead_sys.backup(stream);
    data = mutate(std::move(data), 200 + v);
  }

  // Older versions walk archival containers (the prefetchable namespace);
  // the latest mostly hits the active pool (never prefetched). Both must
  // report the same cross-checked container-read count as the serial run.
  for (VersionId v = 1; v <= 4; ++v) {
    RestoreStats serial_stats, ahead_stats;
    const auto serial = restore_bytes(serial_sys, v, &serial_stats);
    const auto ahead = restore_bytes(ahead_sys, v, &ahead_stats);
    EXPECT_EQ(serial, versions[v - 1]);
    EXPECT_EQ(ahead, versions[v - 1]);
    expect_stats_equal(serial_stats, ahead_stats);
  }
  // Waste is measured and exported, not hidden in the read counts.
  ASSERT_NE(ahead_sys.metrics().find_counter("restore_prefetch_wasted"),
            nullptr);
}

TEST(HiDeStore, PartialRestoreIgnoresReadAhead) {
  HiDeStore sys;
  sys.set_read_ahead(8);
  const FastCdcChunker chunker;
  const auto data = random_buffer(1024 * 1024, 3);
  sys.backup(chunk_bytes(chunker, data));
  sys.backup(chunk_bytes(chunker, mutate(data, 300)));

  const std::uint64_t offset = 200 * 1024, length = 150 * 1024;
  RestoreConfig config;
  FaaRestore policy(config);
  std::vector<std::uint8_t> out;
  sys.restore_range(1, offset, length, policy,
                    [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
                      out.insert(out.end(), b.begin(), b.end());
                    });
  const std::vector<std::uint8_t> expected(data.begin() + offset,
                                           data.begin() + offset + length);
  EXPECT_EQ(out, expected);
}

TEST(HiDeStore, ParallelBackupReadAheadRestoreRoundTrip) {
  // The whole concurrent path end to end: multi-threaded chunking feeds
  // backups, restores run with the prefetch thread, and every version comes
  // back bit-identical.
  HiDeStore sys;
  sys.set_read_ahead(4);
  const FastCdcChunker chunker;
  auto data = random_buffer(3 * 1024 * 1024, 4);
  std::vector<std::vector<std::uint8_t>> versions;
  for (int v = 0; v < 3; ++v) {
    versions.push_back(data);
    sys.backup(chunk_bytes_parallel(chunker, data, 4));
    data = mutate(std::move(data), 400 + v);
  }
  for (VersionId v = 1; v <= 3; ++v) {
    EXPECT_EQ(restore_bytes(sys, v), versions[v - 1]);
  }
}

}  // namespace
