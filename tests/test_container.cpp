// Tests for the Container: add/read/remove semantics, the hole model
// (removed space is unusable until compaction — paper Figure 6),
// utilization accounting, and serialization with corruption detection.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/container.h"

namespace hds {
namespace {

std::vector<std::uint8_t> bytes_of(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  Xoshiro256ss rng(seed);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

TEST(Container, AddAndReadBack) {
  Container c(1, 64 * 1024);
  const auto data = bytes_of(1, 4096);
  const auto fp = Fingerprint::from_seed(1);
  ASSERT_TRUE(c.add(fp, data));
  const auto read = c.read(fp);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(std::equal(read->begin(), read->end(), data.begin()));
  EXPECT_EQ(c.chunk_count(), 1u);
  EXPECT_EQ(c.used_bytes(), 4096u);
}

TEST(Container, RejectsDuplicateFingerprint) {
  Container c(1, 64 * 1024);
  const auto data = bytes_of(2, 100);
  const auto fp = Fingerprint::from_seed(2);
  ASSERT_TRUE(c.add(fp, data));
  EXPECT_FALSE(c.add(fp, data));
  EXPECT_EQ(c.chunk_count(), 1u);
}

TEST(Container, RejectsWhenFull) {
  Container c(1, 1024);
  ASSERT_TRUE(c.add(Fingerprint::from_seed(3), bytes_of(3, 1000)));
  EXPECT_FALSE(c.fits(100));
  EXPECT_FALSE(c.add(Fingerprint::from_seed(4), bytes_of(4, 100)));
}

TEST(Container, ReadMissingReturnsNullopt) {
  Container c;
  EXPECT_FALSE(c.read(Fingerprint::from_seed(5)).has_value());
  EXPECT_FALSE(c.find(Fingerprint::from_seed(5)).has_value());
}

TEST(Container, RemoveLeavesHole) {
  // Paper Figure 6: freed space is not reusable until compaction.
  Container c(1, 8192);
  ASSERT_TRUE(c.add(Fingerprint::from_seed(6), bytes_of(6, 4000)));
  ASSERT_TRUE(c.add(Fingerprint::from_seed(7), bytes_of(7, 4000)));
  ASSERT_TRUE(c.remove(Fingerprint::from_seed(6)));

  EXPECT_EQ(c.used_bytes(), 4000u);
  EXPECT_EQ(c.data_size(), 8000u);  // the hole persists
  EXPECT_FALSE(c.fits(3000));       // tail space is what counts
  EXPECT_FALSE(c.remove(Fingerprint::from_seed(6)));  // already gone
}

TEST(Container, CompactReclaimsHoles) {
  Container c(1, 8192);
  const auto keep = bytes_of(8, 3000);
  ASSERT_TRUE(c.add(Fingerprint::from_seed(9), bytes_of(9, 4000)));
  ASSERT_TRUE(c.add(Fingerprint::from_seed(8), keep));
  ASSERT_TRUE(c.remove(Fingerprint::from_seed(9)));

  c.compact();
  EXPECT_EQ(c.data_size(), 3000u);
  EXPECT_TRUE(c.fits(5000));
  const auto read = c.read(Fingerprint::from_seed(8));
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(std::equal(read->begin(), read->end(), keep.begin()));
}

TEST(Container, UtilizationTracksLiveBytes) {
  Container c(1, 10000);
  ASSERT_TRUE(c.add(Fingerprint::from_seed(10), bytes_of(10, 2500)));
  EXPECT_DOUBLE_EQ(c.utilization(), 0.25);
  ASSERT_TRUE(c.add(Fingerprint::from_seed(11), bytes_of(11, 2500)));
  EXPECT_DOUBLE_EQ(c.utilization(), 0.5);
  c.remove(Fingerprint::from_seed(10));
  EXPECT_DOUBLE_EQ(c.utilization(), 0.25);
}

TEST(Container, MetaModeAccountsWithoutPayload) {
  Container c(1, 8192);
  ASSERT_TRUE(c.add_meta(Fingerprint::from_seed(12), 3000));
  EXPECT_EQ(c.used_bytes(), 3000u);
  const auto read = c.read(Fingerprint::from_seed(12));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->size(), 3000u);  // zero-filled placeholder
  EXPECT_FALSE(c.add_meta(Fingerprint::from_seed(12), 10));
}

TEST(Container, SerializeRoundTrip) {
  Container c(42, 64 * 1024);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        c.add(Fingerprint::from_seed(i), bytes_of(i, 1000 + i * 37)));
  }
  c.remove(Fingerprint::from_seed(3));

  const auto blob = c.serialize();
  const auto back = Container::deserialize(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id(), 42);
  EXPECT_EQ(back->chunk_count(), 9u);
  EXPECT_EQ(back->used_bytes(), c.used_bytes());
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (i == 3) {
      EXPECT_FALSE(back->read(Fingerprint::from_seed(i)).has_value());
      continue;
    }
    const auto read = back->read(Fingerprint::from_seed(i));
    ASSERT_TRUE(read.has_value());
    const auto expect = bytes_of(i, 1000 + i * 37);
    EXPECT_TRUE(std::equal(read->begin(), read->end(), expect.begin()));
  }
}

TEST(Container, DeserializeDetectsCorruption) {
  Container c(1, 8192);
  ASSERT_TRUE(c.add(Fingerprint::from_seed(13), bytes_of(13, 500)));
  auto blob = c.serialize();

  auto corrupted = blob;
  corrupted[corrupted.size() / 2] ^= 0x01;
  EXPECT_FALSE(Container::deserialize(corrupted).has_value());

  auto truncated = blob;
  truncated.pop_back();
  EXPECT_FALSE(Container::deserialize(truncated).has_value());

  EXPECT_FALSE(Container::deserialize({}).has_value());
  EXPECT_TRUE(Container::deserialize(blob).has_value());
}

TEST(Container, MetaModeEnforcesCapacity) {
  // Regression: virtual (metadata-only) payloads must count against the
  // container capacity exactly like real bytes.
  Container c(1, 64 * 1024);
  std::size_t added = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    added += c.add_meta(Fingerprint::from_seed(i), 4096);
  }
  EXPECT_EQ(added, 16u);  // 64 KiB / 4 KiB
  EXPECT_LE(c.data_size(), 64u * 1024u);
  EXPECT_FALSE(c.fits(4096));
}

TEST(Container, MixedRealAndMetaChunksShareCapacity) {
  Container c(1, 16 * 1024);
  ASSERT_TRUE(c.add(Fingerprint::from_seed(1), bytes_of(1, 8 * 1024)));
  ASSERT_TRUE(c.add_meta(Fingerprint::from_seed(2), 4 * 1024));
  EXPECT_FALSE(c.fits(8 * 1024));
  ASSERT_TRUE(c.add_meta(Fingerprint::from_seed(3), 4 * 1024));
  EXPECT_FALSE(c.add_meta(Fingerprint::from_seed(4), 1));
  EXPECT_EQ(c.used_bytes(), 16u * 1024u);
}

TEST(Container, MetaSerializeRoundTrip) {
  Container c(9, 64 * 1024);
  ASSERT_TRUE(c.add_meta(Fingerprint::from_seed(1), 3000));
  ASSERT_TRUE(c.add(Fingerprint::from_seed(2), bytes_of(2, 500)));
  const auto back = Container::deserialize(c.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->used_bytes(), c.used_bytes());
  EXPECT_EQ(back->data_size(), c.data_size());
  const auto meta_read = back->read(Fingerprint::from_seed(1));
  ASSERT_TRUE(meta_read.has_value());
  EXPECT_EQ(meta_read->size(), 3000u);
}

TEST(Container, SerializeEmptyContainer) {
  Container c(7, 4096);
  const auto back = Container::deserialize(c.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id(), 7);
  EXPECT_EQ(back->chunk_count(), 0u);
}

TEST(Container, Format3HeaderAndFooterParse) {
  Container c(42, 64 * 1024);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(c.add(Fingerprint::from_seed(i), bytes_of(i, 700 + i * 13)));
  }
  ASSERT_TRUE(c.add_meta(Fingerprint::from_seed(99), 1234));
  const auto blob = c.serialize();

  const auto header = std::span(blob).first(Container::kHeaderSize);
  const auto info = Container::parse_header(header);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->footer_indexed);
  EXPECT_EQ(info->id, 42);
  EXPECT_EQ(info->count, 7u);
  // Header data size counts materialized bytes only; the virtual chunk's
  // 1234 bytes live in the entry table, not the data region.
  EXPECT_EQ(info->data_size, c.data_size() - 1234);
  EXPECT_EQ(info->expected_file_size(), blob.size());

  const auto footer = std::span(blob).subspan(
      static_cast<std::size_t>(info->footer_offset()),
      static_cast<std::size_t>(info->footer_size()));
  const auto entries = Container::parse_footer(header, footer);
  ASSERT_TRUE(entries.has_value());
  EXPECT_EQ(entries->size(), 7u);
  for (const auto& [fp, entry] : *entries) {
    const auto expect = c.find(fp);
    ASSERT_TRUE(expect.has_value());
    EXPECT_EQ(entry.offset, expect->offset);
    EXPECT_EQ(entry.size, expect->size);
    EXPECT_EQ(entry.crc, expect->crc);
  }
}

TEST(Container, FooterCrcCoversHeaderAndTable) {
  Container c(5, 8192);
  ASSERT_TRUE(c.add(Fingerprint::from_seed(1), bytes_of(1, 600)));
  const auto blob = c.serialize();
  const auto info = *Container::parse_header(std::span(blob).first(20));
  const auto footer_at = static_cast<std::size_t>(info.footer_offset());
  const auto footer_len = static_cast<std::size_t>(info.footer_size());

  // Flip a header byte (capacity field): the footer CRC must catch it even
  // though the table bytes are intact.
  auto bad_header = blob;
  bad_header[6] ^= 0x01;
  EXPECT_FALSE(Container::parse_footer(
                   std::span(bad_header).first(20),
                   std::span(bad_header).subspan(footer_at, footer_len))
                   .has_value());

  // Flip a table byte: same detection.
  auto bad_table = blob;
  bad_table[footer_at + footer_len / 2] ^= 0x01;
  EXPECT_FALSE(Container::parse_footer(
                   std::span(bad_table).first(20),
                   std::span(bad_table).subspan(footer_at, footer_len))
                   .has_value());

  EXPECT_TRUE(Container::parse_footer(
                  std::span(blob).first(20),
                  std::span(blob).subspan(footer_at, footer_len))
                  .has_value());
}

TEST(Container, LegacyFormat2StillDeserializes) {
  Container c(11, 64 * 1024);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(c.add(Fingerprint::from_seed(i), bytes_of(i, 900 + i * 7)));
  }
  ASSERT_TRUE(c.add_meta(Fingerprint::from_seed(50), 2000));
  const auto legacy = c.serialize_legacy();

  const auto info = Container::parse_header(std::span(legacy).first(20));
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->footer_indexed);

  const auto back = Container::deserialize(legacy);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id(), 11);
  EXPECT_EQ(back->chunk_count(), 6u);
  EXPECT_EQ(back->data_size(), c.data_size());
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto read = back->read(Fingerprint::from_seed(i));
    ASSERT_TRUE(read.has_value());
    const auto expect = bytes_of(i, 900 + i * 7);
    EXPECT_TRUE(std::equal(read->begin(), read->end(), expect.begin()));
  }
  EXPECT_EQ(back->read(Fingerprint::from_seed(50))->size(), 2000u);
}

}  // namespace
}  // namespace hds
