// Tests for Recipe and RecipeStore: entry accounting, the 28-byte on-disk
// footprint (paper §2.1), serialization round trips, corruption detection.
#include <gtest/gtest.h>

#include "storage/recipe.h"

namespace hds {
namespace {

Recipe make_recipe(VersionId version, std::size_t entries) {
  Recipe r(version);
  for (std::size_t i = 0; i < entries; ++i) {
    r.add(Fingerprint::from_seed(version * 1000 + i),
          static_cast<ContainerId>(i % 7) - 2,  // mixes the 3 CID kinds
          1024 + static_cast<std::uint32_t>(i));
  }
  return r;
}

TEST(Recipe, AccountingMatchesEntries) {
  const auto r = make_recipe(1, 10);
  EXPECT_EQ(r.version(), 1u);
  EXPECT_EQ(r.chunk_count(), 10u);
  EXPECT_EQ(r.byte_size(), 10 * kRecipeEntrySize);
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < 10; ++i) expect += 1024 + i;
  EXPECT_EQ(r.logical_bytes(), expect);
}

TEST(Recipe, SerializeRoundTripPreservesAllCidKinds) {
  const auto r = make_recipe(7, 100);
  const auto blob = r.serialize();
  const auto back = Recipe::deserialize(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version(), 7u);
  ASSERT_EQ(back->chunk_count(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(back->entries()[i].fp, r.entries()[i].fp);
    EXPECT_EQ(back->entries()[i].cid, r.entries()[i].cid);  // incl. negative
    EXPECT_EQ(back->entries()[i].size, r.entries()[i].size);
  }
}

TEST(Recipe, SerializeEmpty) {
  const Recipe r(3);
  const auto back = Recipe::deserialize(r.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version(), 3u);
  EXPECT_EQ(back->chunk_count(), 0u);
}

TEST(Recipe, DeserializeDetectsCorruption) {
  const auto blob = make_recipe(2, 10).serialize();
  auto corrupted = blob;
  corrupted[20] ^= 0x80;
  EXPECT_FALSE(Recipe::deserialize(corrupted).has_value());
  auto truncated = blob;
  truncated.resize(truncated.size() - 5);
  EXPECT_FALSE(Recipe::deserialize(truncated).has_value());
  EXPECT_FALSE(Recipe::deserialize({}).has_value());
}

TEST(RecipeStore, PutGetErase) {
  RecipeStore store;
  store.put(make_recipe(1, 5));
  store.put(make_recipe(2, 5));
  ASSERT_NE(store.get(1), nullptr);
  EXPECT_EQ(store.get(1)->version(), 1u);
  EXPECT_EQ(store.get(3), nullptr);
  EXPECT_TRUE(store.erase(1));
  EXPECT_FALSE(store.erase(1));
  EXPECT_EQ(store.get(1), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(RecipeStore, PutOverwritesSameVersion) {
  RecipeStore store;
  store.put(make_recipe(1, 5));
  store.put(make_recipe(1, 9));
  EXPECT_EQ(store.get(1)->chunk_count(), 9u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(RecipeStore, VersionsAreSorted) {
  RecipeStore store;
  store.put(make_recipe(5, 1));
  store.put(make_recipe(1, 1));
  store.put(make_recipe(3, 1));
  EXPECT_EQ(store.versions(), (std::vector<VersionId>{1, 3, 5}));
}

TEST(RecipeStore, MutableAccessUpdatesInPlace) {
  RecipeStore store;
  store.put(make_recipe(1, 3));
  store.get(1)->entries()[0].cid = 42;
  EXPECT_EQ(store.get(1)->entries()[0].cid, 42);
}

}  // namespace
}  // namespace hds
