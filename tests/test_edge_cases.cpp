// Edge cases across the stack: empty versions, identical versions,
// oversized chunks, single-chunk streams, repeated deletion, and other
// boundary inputs that production systems meet on day one.
#include <gtest/gtest.h>

#include "backup/pipeline.h"
#include "index/full_index.h"
#include "core/active_pool.h"
#include "core/hidestore.h"
#include "restore/faa.h"
#include "workload/generator.h"

namespace hds {
namespace {

ChunkRecord chunk(std::uint64_t id, std::uint32_t size = 4096) {
  ChunkRecord rec;
  rec.fp = Fingerprint::from_seed(id);
  rec.size = size;
  rec.content_seed = id;
  return rec;
}

VersionStream stream_of(std::initializer_list<std::uint64_t> ids) {
  VersionStream vs;
  for (auto id : ids) vs.chunks.push_back(chunk(id));
  return vs;
}

// --- Empty versions ---

TEST(EdgeCases, EmptyVersionBackupAndRestore) {
  HiDeStore sys;
  const auto report = sys.backup(VersionStream{});
  EXPECT_EQ(report.logical_chunks, 0u);
  EXPECT_EQ(report.stored_bytes, 0u);
  std::size_t emitted = 0;
  (void)sys.restore(1, [&](const ChunkLoc&, std::span<const std::uint8_t>) {
    ++emitted;
  });
  EXPECT_EQ(emitted, 0u);
}

TEST(EdgeCases, EmptyVersionBetweenRealVersionsEvictsEverything) {
  HiDeStore sys;
  (void)sys.backup(stream_of({1, 2, 3}));
  (void)sys.backup(VersionStream{});  // nothing survives: all chunks cold
  EXPECT_EQ(sys.active_pool().chunk_count(), 0u);
  EXPECT_GT(sys.archival_store().container_count(), 0u);

  // v1 must still restore from archival containers.
  std::size_t emitted = 0;
  (void)sys.restore(1, [&](const ChunkLoc&, std::span<const std::uint8_t>) {
    ++emitted;
  });
  EXPECT_EQ(emitted, 3u);

  // Chunks returning after the empty version are re-stored (window 1
  // semantics), and everything stays restorable.
  (void)sys.backup(stream_of({1, 2, 3}));
  emitted = 0;
  (void)sys.restore(3, [&](const ChunkLoc&, std::span<const std::uint8_t>) {
    ++emitted;
  });
  EXPECT_EQ(emitted, 3u);
}

TEST(EdgeCases, PipelineHandlesEmptyVersion) {
  auto sys = make_baseline(BaselineKind::kDdfs);
  (void)sys->backup(VersionStream{});
  (void)sys->backup(stream_of({1}));
  std::size_t emitted = 0;
  (void)sys->restore(2, [&](const ChunkLoc&, std::span<const std::uint8_t>) {
    ++emitted;
  });
  EXPECT_EQ(emitted, 1u);
}

// --- Identical consecutive versions ---

TEST(EdgeCases, IdenticalVersionsStoreNothingAndEvictNothing) {
  HiDeStore sys;
  const auto vs = stream_of({1, 2, 3, 4});
  (void)sys.backup(vs);
  for (int i = 0; i < 5; ++i) {
    const auto report = sys.backup(vs);
    EXPECT_EQ(report.stored_bytes, 0u);
  }
  EXPECT_EQ(sys.archival_store().container_count(), 0u);  // nothing cold
  EXPECT_EQ(sys.overheads().cold_chunks_moved, 0u);
  std::size_t emitted = 0;
  (void)sys.restore(6, [&](const ChunkLoc&, std::span<const std::uint8_t>) {
    ++emitted;
  });
  EXPECT_EQ(emitted, 4u);
}

// --- Oversized chunks ---

TEST(EdgeCases, ChunkLargerThanContainerThrowsInsteadOfDroppingData) {
  PipelineConfig config;
  config.container_size = 4096;
  auto sys = std::make_unique<DedupPipeline>(
      "tiny", std::make_unique<FullIndex>(), std::make_unique<NoRewrite>(),
      std::make_unique<MemoryContainerStore>(), config);
  VersionStream vs;
  vs.chunks.push_back(chunk(1, 8192));
  EXPECT_THROW((void)sys->backup(vs), std::invalid_argument);
}

TEST(EdgeCases, ActivePoolRejectsOversizedChunk) {
  ActiveContainerPool pool(4096, true);
  EXPECT_THROW((void)pool.add(chunk(1, 8192)), std::logic_error);
}

// --- Single-chunk and tiny streams ---

TEST(EdgeCases, SingleChunkVersionRoundTrips) {
  HiDeStore sys;
  (void)sys.backup(stream_of({42}));
  std::size_t bytes_seen = 0;
  (void)sys.restore(1,
                    [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
                      bytes_seen += b.size();
                    });
  EXPECT_EQ(bytes_seen, chunk(42).size);
}

TEST(EdgeCases, FaaAreaSmallerThanOneChunkStillProgresses) {
  // An assembly area smaller than a single chunk must not deadlock: the
  // area always admits at least one chunk.
  auto sys = make_baseline(BaselineKind::kDdfs);
  (void)sys->backup(stream_of({1, 2, 3, 4, 5}));
  RestoreConfig config;
  config.memory_budget = 16;  // absurdly small
  FaaRestore faa(config);
  std::size_t emitted = 0;
  (void)sys->restore_with(1, faa,
                          [&](const ChunkLoc&, std::span<const std::uint8_t>) {
                            ++emitted;
                          });
  EXPECT_EQ(emitted, 5u);
}

// --- Deletion boundaries ---

TEST(EdgeCases, DeleteOnEmptySystemIsSafe) {
  HiDeStore sys;
  const auto report = sys.delete_versions_up_to(10);
  EXPECT_EQ(report.versions_deleted, 0u);
  EXPECT_EQ(report.containers_erased, 0u);
}

TEST(EdgeCases, DeleteThenBackupThenDeleteAgain) {
  auto p = WorkloadProfile::kernel();
  p.versions = 20;
  p.chunks_per_version = 200;
  VersionChainGenerator gen(p);
  HiDeStore sys;
  std::vector<VersionStream> versions;
  for (int v = 0; v < 8; ++v) {
    versions.push_back(gen.next_version());
    (void)sys.backup(versions.back());
  }
  (void)sys.delete_versions_up_to(4);
  for (int v = 0; v < 4; ++v) {
    versions.push_back(gen.next_version());
    (void)sys.backup(versions.back());
  }
  (void)sys.delete_versions_up_to(8);
  // Versions 9..12 survive and restore.
  for (VersionId v = 9; v <= 12; ++v) {
    std::size_t emitted = 0;
    (void)sys.restore(v, [&](const ChunkLoc&, std::span<const std::uint8_t>) {
      ++emitted;
    });
    EXPECT_EQ(emitted, versions[v - 1].chunks.size()) << "v" << v;
  }
  // Expired versions are gone.
  std::size_t emitted = 0;
  (void)sys.restore(3, [&](const ChunkLoc&, std::span<const std::uint8_t>) {
    ++emitted;
  });
  EXPECT_EQ(emitted, 0u);
}

// --- Flatten boundaries ---

TEST(EdgeCases, FlattenOnEmptyAndSingleVersionSystems) {
  HiDeStore sys;
  EXPECT_EQ(sys.flatten_recipes(), 0u);
  (void)sys.backup(stream_of({1, 2}));
  EXPECT_EQ(sys.flatten_recipes(), 0u);  // single recipe: nothing to chain
}

TEST(EdgeCases, RepeatedFlattenIsStable) {
  auto p = WorkloadProfile::kernel();
  p.versions = 6;
  p.chunks_per_version = 150;
  VersionChainGenerator gen(p);
  HiDeStore sys;
  std::vector<VersionStream> versions;
  for (std::uint32_t v = 0; v < p.versions; ++v) {
    versions.push_back(gen.next_version());
    (void)sys.backup(versions.back());
  }
  (void)sys.flatten_recipes();
  const auto second = sys.flatten_recipes();
  (void)second;  // may revisit entries, but must not change results:
  for (std::size_t v = 0; v < versions.size(); ++v) {
    std::size_t emitted = 0;
    (void)sys.restore(static_cast<VersionId>(v + 1),
                      [&](const ChunkLoc&, std::span<const std::uint8_t>) {
                        ++emitted;
                      });
    EXPECT_EQ(emitted, versions[v].chunks.size());
  }
}

// --- Chunk-size extremes in one stream ---

TEST(EdgeCases, MixedTinyAndHugeChunksRoundTrip) {
  HiDeStore sys;
  VersionStream vs;
  vs.chunks.push_back(chunk(1, 1));               // 1-byte chunk
  vs.chunks.push_back(chunk(2, 64 * 1024));       // large CDC outlier
  vs.chunks.push_back(chunk(3, 1));
  vs.chunks.push_back(chunk(4, 128 * 1024));
  (void)sys.backup(vs);
  std::size_t at = 0;
  bool ok = true;
  (void)sys.restore(1, [&](const ChunkLoc& loc,
                           std::span<const std::uint8_t> bytes) {
    ok &= loc.fp == vs.chunks[at].fp && bytes.size() == vs.chunks[at].size;
    ++at;
  });
  EXPECT_EQ(at, 4u);
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace hds
