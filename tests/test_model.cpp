// Model-based fuzz test: random interleavings of every public operation —
// backup, restore, flatten, expiry, save/load — are checked against a
// trivially correct reference model (the retained version streams held in
// memory). Parameterized over RNG seeds and cache windows; any divergence
// in chunk sequence or content is a real bug.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "core/hidestore.h"
#include "workload/generator.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

namespace fs = std::filesystem;

struct FuzzCase {
  std::uint64_t seed;
  int window;
};

class ModelFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ModelFuzzTest, RandomOperationSequencesMatchTheModel) {
  const auto [seed, window] = GetParam();
  Xoshiro256ss rng(seed);

  WorkloadProfile profile =
      window == 2 ? WorkloadProfile::macos() : WorkloadProfile::kernel();
  profile.versions = 1000;  // generator keeps mutating for as long as asked
  profile.chunks_per_version = 120 + rng.next_below(120);
  profile.seed = seed * 7919;
  VersionChainGenerator gen(profile);

  HiDeStoreConfig config;
  config.cache_window = window;
  config.compaction_threshold = 0.25 + rng.next_double() * 0.5;
  auto sys = std::make_unique<HiDeStore>(config);

  // The reference model: every retained version's exact chunk stream.
  std::map<VersionId, VersionStream> model;
  VersionId next_version = 1;
  VersionId oldest_alive = 1;

  const auto dir =
      hds::testutil::unique_path("hds_model_fuzz_" + std::to_string(seed) +
                                 "_" + std::to_string(window));
  fs::remove_all(dir);

  const int steps = 60;
  for (int step = 0; step < steps; ++step) {
    const auto op = rng.next_below(10);
    if (op < 5 || model.empty()) {
      // --- backup ---
      auto stream = gen.next_version();
      (void)sys->backup(stream);
      model.emplace(next_version++, std::move(stream));
    } else if (op < 8) {
      // --- restore a random retained version, verify exactly ---
      auto it = model.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.next_below(model.size())));
      const auto& [version, expect] = *it;
      std::size_t at = 0;
      bool ok = true;
      const auto report = sys->restore(
          version,
          [&](const ChunkLoc& loc, std::span<const std::uint8_t> bytes) {
            if (at < expect.chunks.size()) {
              const auto& want = expect.chunks[at];
              if (loc.fp != want.fp || bytes.size() != want.size) {
                ok = false;
              } else {
                const auto content = want.materialize();
                ok &= std::equal(bytes.begin(), bytes.end(),
                                 content.begin());
              }
            }
            ++at;
          });
      ASSERT_EQ(at, expect.chunks.size())
          << "seed " << seed << " step " << step << " v" << version;
      ASSERT_TRUE(ok) << "seed " << seed << " step " << step;
      ASSERT_EQ(report.stats.failed_chunks, 0u);
    } else if (op == 8) {
      // --- flatten or expire, coin flip ---
      if (rng.chance(0.5)) {
        (void)sys->flatten_recipes();
      } else if (model.size() > 2) {
        const VersionId upto =
            oldest_alive +
            static_cast<VersionId>(rng.next_below(model.size() - 2));
        (void)sys->delete_versions_up_to(upto);
        while (!model.empty() && model.begin()->first <= upto) {
          model.erase(model.begin());
        }
        oldest_alive = std::max(oldest_alive, upto + 1);
      }
    } else {
      // --- save + load round trip ---
      sys->save(dir);
      auto reloaded = HiDeStore::load(dir);
      ASSERT_NE(reloaded, nullptr) << "seed " << seed << " step " << step;
      sys = std::move(reloaded);
    }
  }

  // Final sweep: every retained version must still restore exactly.
  for (const auto& [version, expect] : model) {
    std::size_t at = 0;
    (void)sys->restore(version,
                       [&](const ChunkLoc&, std::span<const std::uint8_t>) {
                         ++at;
                       });
    EXPECT_EQ(at, expect.chunks.size()) << "final check v" << version;
  }
  fs::remove_all(dir);
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cases.push_back({seed, 1});
    cases.push_back({seed, 2});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFuzzTest,
                         ::testing::ValuesIn(fuzz_cases()),
                         [](const auto& suite_info) {
                           return "seed" + std::to_string(suite_info.param.seed) +
                                  "_w" + std::to_string(suite_info.param.window);
                         });

}  // namespace
}  // namespace hds
