// ParallelChunkPipeline determinism: the parallel ingest front end must
// produce a VersionStream BIT-IDENTICAL to the serial chunk_bytes() path for
// every chunker, every input shape, and every thread count. Tagged
// `concurrency` for the TSan CI job.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chunking/chunk_stream.h"
#include "chunking/parallel_chunk.h"
#include "common/rng.h"

namespace {

using namespace hds;

std::vector<std::uint8_t> random_buffer(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  Xoshiro256ss rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

std::vector<std::uint8_t> repetitive_buffer(std::size_t n) {
  // A 64-byte motif repeated: low-entropy input that stresses the chunkers'
  // max-size forcing paths (long runs without a natural cut).
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>((i % 64) * 7);
  }
  return data;
}

// Full structural equality: boundaries, fingerprints, and content bytes.
void expect_streams_equal(const VersionStream& serial,
                          const VersionStream& parallel) {
  ASSERT_EQ(serial.chunks.size(), parallel.chunks.size());
  EXPECT_EQ(serial.logical_bytes(), parallel.logical_bytes());
  for (std::size_t i = 0; i < serial.chunks.size(); ++i) {
    const auto& s = serial.chunks[i];
    const auto& p = parallel.chunks[i];
    ASSERT_EQ(s.size, p.size) << "chunk " << i;
    ASSERT_EQ(s.fp, p.fp) << "chunk " << i;
    const auto sb = s.bytes();
    const auto pb = p.bytes();
    ASSERT_EQ(sb.size(), pb.size()) << "chunk " << i;
    ASSERT_EQ(std::memcmp(sb.data(), pb.data(), sb.size()), 0)
        << "chunk " << i;
  }
}

// Small segments force many speculative scans (and therefore resyncs and
// fixups) even on modest inputs.
ParallelChunkConfig tight_config(std::size_t threads) {
  ParallelChunkConfig config;
  config.threads = threads;
  config.segment_bytes = 64 * 1024;
  config.batch_bytes = 32 * 1024;
  return config;
}

class ParallelChunkAllKinds : public ::testing::TestWithParam<ChunkerKind> {};

TEST_P(ParallelChunkAllKinds, MatchesSerialOnRandomData) {
  const auto chunker = make_chunker(GetParam());
  const auto data = random_buffer(3 * 1024 * 1024 + 137, 42);
  const auto serial = chunk_bytes(*chunker, data);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    const ParallelChunkPipeline pipeline(*chunker, tight_config(threads));
    expect_streams_equal(serial, pipeline.run(data));
  }
}

TEST_P(ParallelChunkAllKinds, MatchesSerialOnRepetitiveData) {
  const auto chunker = make_chunker(GetParam());
  const auto data = repetitive_buffer(2 * 1024 * 1024);
  const auto serial = chunk_bytes(*chunker, data);
  const ParallelChunkPipeline pipeline(*chunker, tight_config(4));
  expect_streams_equal(serial, pipeline.run(data));
}

TEST_P(ParallelChunkAllKinds, MatchesSerialOnZeros) {
  const auto chunker = make_chunker(GetParam());
  const std::vector<std::uint8_t> data(1536 * 1024, 0);
  const auto serial = chunk_bytes(*chunker, data);
  const ParallelChunkPipeline pipeline(*chunker, tight_config(3));
  expect_streams_equal(serial, pipeline.run(data));
}

TEST_P(ParallelChunkAllKinds, MatchesSerialOnEdgeSizes) {
  const auto chunker = make_chunker(GetParam());
  // Empty, one byte, sub-segment, and exactly-one-segment inputs all take
  // the serial fallback or the smallest parallel split.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{4096}, std::size_t{64 * 1024},
                              std::size_t{64 * 1024 + 1}}) {
    const auto data = random_buffer(n, n + 1);
    const auto serial = chunk_bytes(*chunker, data);
    const ParallelChunkPipeline pipeline(*chunker, tight_config(2));
    expect_streams_equal(serial, pipeline.run(data));
  }
}

INSTANTIATE_TEST_SUITE_P(AllChunkers, ParallelChunkAllKinds,
                         ::testing::Values(ChunkerKind::kFixed,
                                           ChunkerKind::kRabin,
                                           ChunkerKind::kTttd,
                                           ChunkerKind::kFastCdc,
                                           ChunkerKind::kAe),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case ChunkerKind::kFixed: return "fixed";
                             case ChunkerKind::kRabin: return "rabin";
                             case ChunkerKind::kTttd: return "tttd";
                             case ChunkerKind::kFastCdc: return "fastcdc";
                             case ChunkerKind::kAe: return "ae";
                           }
                           return "unknown";
                         });

TEST(ParallelChunk, ConvenienceWrapperMatchesSerial) {
  const auto chunker = make_chunker(ChunkerKind::kFastCdc);
  const auto data = random_buffer(5 * 1024 * 1024, 7);
  expect_streams_equal(chunk_bytes(*chunker, data),
                       chunk_bytes_parallel(*chunker, data, 4));
}

TEST(ParallelChunk, OneThreadTakesSerialPath) {
  const auto chunker = make_chunker(ChunkerKind::kTttd);
  const auto data = random_buffer(512 * 1024, 9);
  expect_streams_equal(chunk_bytes(*chunker, data),
                       chunk_bytes_parallel(*chunker, data, 1));
}

TEST(ParallelChunk, RecordsShareBatchBuffers) {
  const auto chunker = make_chunker(ChunkerKind::kFastCdc);
  const auto data = random_buffer(1024 * 1024, 11);
  const auto stream = chunk_bytes_parallel(*chunker, data, 2);
  ASSERT_GT(stream.chunks.size(), 1u);
  std::size_t shared_pairs = 0;
  for (std::size_t i = 1; i < stream.chunks.size(); ++i) {
    const auto& prev = stream.chunks[i - 1];
    const auto& cur = stream.chunks[i];
    ASSERT_TRUE(cur.data);
    if (cur.data == prev.data) {
      // Within a batch, records are consecutive views of one buffer.
      EXPECT_EQ(cur.data_offset, prev.data_offset + prev.size);
      ++shared_pairs;
    } else {
      EXPECT_EQ(cur.data_offset, 0u);
    }
  }
  // Batches hold many ~4 KiB chunks, so sharing must dominate.
  EXPECT_GT(shared_pairs, stream.chunks.size() / 2);
  // The views reassemble the exact input.
  std::vector<std::uint8_t> rebuilt;
  for (const auto& c : stream.chunks) {
    const auto b = c.bytes();
    rebuilt.insert(rebuilt.end(), b.begin(), b.end());
  }
  EXPECT_EQ(rebuilt, data);
}

TEST(ParallelChunk, ExportsIngestMetrics) {
  obs::MetricsRegistry metrics;
  ParallelChunkConfig config = tight_config(2);
  config.metrics = &metrics;
  const auto chunker = make_chunker(ChunkerKind::kTttd);
  const auto data = random_buffer(1024 * 1024, 13);
  const ParallelChunkPipeline pipeline(*chunker, config);
  const auto stream = pipeline.run(data);
  EXPECT_GT(stream.chunks.size(), 0u);
  EXPECT_GT(metrics.counter("ingest_segments").value(), 0u);
  EXPECT_EQ(metrics.counter("ingest_bytes").value(), data.size());
  EXPECT_GT(metrics.counter("ingest_batches").value(), 0u);
}

}  // namespace
