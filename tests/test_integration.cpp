// Integration and property tests across the whole stack:
//   * real bytes → TTTD chunking → SHA-1 → backup → restore → byte equality,
//     for both HiDeStore and the DDFS baseline;
//   * the file-backed container store under a full pipeline;
//   * a property sweep over (profile × system): every retained version of
//     every system restores bit-exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "backup/pipeline.h"
#include "index/full_index.h"
#include "chunking/chunk_stream.h"
#include "chunking/tttd.h"
#include "core/hidestore.h"
#include "workload/generator.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

// --- Real-bytes end-to-end ---

class ByteLevelTest : public ::testing::Test {
 protected:
  // Builds byte-level versions and their chunked streams.
  void build(std::size_t versions, std::size_t bytes, double edit_rate) {
    ByteStreamWorkload workload(21, bytes);
    TttdChunker chunker;
    for (std::size_t v = 0; v < versions; ++v) {
      raw_.push_back(workload.next_version(edit_rate));
      streams_.push_back(chunk_bytes(chunker, raw_.back()));
    }
  }

  // Restores a version and reassembles the byte stream.
  template <typename System>
  std::vector<std::uint8_t> reassemble(System& sys, VersionId version) {
    std::vector<std::uint8_t> out;
    (void)sys.restore(version, [&](const ChunkLoc&,
                                   std::span<const std::uint8_t> bytes) {
      out.insert(out.end(), bytes.begin(), bytes.end());
    });
    return out;
  }

  std::vector<std::vector<std::uint8_t>> raw_;
  std::vector<VersionStream> streams_;
};

TEST_F(ByteLevelTest, HiDeStoreRestoresOriginalBytes) {
  build(6, 512 * 1024, 0.08);
  HiDeStore sys;
  for (const auto& s : streams_) (void)sys.backup(s);
  for (std::size_t v = 0; v < raw_.size(); ++v) {
    EXPECT_EQ(reassemble(sys, static_cast<VersionId>(v + 1)), raw_[v])
        << "version " << v + 1;
  }
}

TEST_F(ByteLevelTest, BaselineRestoresOriginalBytes) {
  build(5, 512 * 1024, 0.08);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& s : streams_) (void)sys->backup(s);
  for (std::size_t v = 0; v < raw_.size(); ++v) {
    EXPECT_EQ(reassemble(*sys, static_cast<VersionId>(v + 1)), raw_[v]);
  }
}

TEST_F(ByteLevelTest, CdcYieldsHighDedupAcrossByteVersions) {
  build(8, 512 * 1024, 0.05);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& s : streams_) (void)sys->backup(s);
  // ~5% byte edits per version: dedup must eliminate the bulk.
  EXPECT_GT(sys->dedup_ratio(), 0.6);
}

// --- File-backed store under a full pipeline ---

TEST(FileBackedPipeline, RoundTripsThroughRealFiles) {
  const auto dir =
      hds::testutil::unique_path("hds_integration_store");
  std::filesystem::remove_all(dir);

  auto profile = WorkloadProfile::kernel();
  profile.versions = 5;
  profile.chunks_per_version = 300;
  VersionChainGenerator gen(profile);
  std::vector<VersionStream> versions;
  for (std::uint32_t v = 0; v < profile.versions; ++v) {
    versions.push_back(gen.next_version());
  }

  DedupPipeline sys("ddfs-file", std::make_unique<FullIndex>(),
                    std::make_unique<NoRewrite>(),
                    std::make_unique<FileContainerStore>(dir));
  for (const auto& vs : versions) (void)sys.backup(vs);

  for (std::size_t v = 0; v < versions.size(); ++v) {
    std::size_t at = 0;
    bool ok = true;
    (void)sys.restore(
        static_cast<VersionId>(v + 1),
        [&](const ChunkLoc& loc, std::span<const std::uint8_t> bytes) {
          const auto& want = versions[v].chunks[at++];
          if (loc.fp != want.fp) {
            ok = false;
            return;
          }
          const auto expect = want.materialize();
          ok &= bytes.size() == expect.size() &&
                std::equal(bytes.begin(), bytes.end(), expect.begin());
        });
    EXPECT_EQ(at, versions[v].chunks.size());
    EXPECT_TRUE(ok);
  }
  std::filesystem::remove_all(dir);
}

// --- Property sweep: profile × system → exact restores ---

struct SweepCase {
  const char* profile;
  const char* system;
};

class SweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static WorkloadProfile profile_by_name(const std::string& name) {
    WorkloadProfile p;
    if (name == "kernel") p = WorkloadProfile::kernel();
    if (name == "gcc") p = WorkloadProfile::gcc();
    if (name == "fslhomes") p = WorkloadProfile::fslhomes();
    if (name == "macos") p = WorkloadProfile::macos();
    p.versions = 8;
    p.chunks_per_version = 250;
    return p;
  }
};

TEST_P(SweepTest, EveryVersionRestoresExactly) {
  const auto param = GetParam();
  const auto profile = profile_by_name(param.profile);
  VersionChainGenerator gen(profile);
  std::vector<VersionStream> versions;
  for (std::uint32_t v = 0; v < profile.versions; ++v) {
    versions.push_back(gen.next_version());
  }

  std::unique_ptr<BackupSystem> sys;
  const std::string name = param.system;
  if (name == "hidestore") {
    HiDeStoreConfig config;
    config.cache_window = profile.skip_rate > 0 ? 2 : 1;
    sys = std::make_unique<HiDeStore>(config);
  } else if (name == "ddfs") {
    sys = make_baseline(BaselineKind::kDdfs);
  } else if (name == "sparse") {
    sys = make_baseline(BaselineKind::kSparse);
  } else if (name == "silo") {
    sys = make_baseline(BaselineKind::kSilo);
  } else if (name == "silo+capping") {
    sys = make_baseline(BaselineKind::kSiloCapping);
  } else {
    sys = make_baseline(BaselineKind::kSiloFbw);
  }

  for (const auto& vs : versions) {
    const auto report = sys->backup(vs);
    EXPECT_EQ(report.logical_chunks, vs.chunks.size());
  }
  for (std::size_t v = 0; v < versions.size(); ++v) {
    std::size_t at = 0;
    std::uint64_t bytes_seen = 0;
    bool fps_ok = true;
    (void)sys->restore(
        static_cast<VersionId>(v + 1),
        [&](const ChunkLoc& loc, std::span<const std::uint8_t> bytes) {
          if (at < versions[v].chunks.size()) {
            fps_ok &= loc.fp == versions[v].chunks[at].fp;
          }
          bytes_seen += bytes.size();
          ++at;
        });
    EXPECT_EQ(at, versions[v].chunks.size())
        << param.system << "/" << param.profile << " v" << v + 1;
    EXPECT_TRUE(fps_ok);
    EXPECT_EQ(bytes_seen, versions[v].logical_bytes());
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const char* profile : {"kernel", "gcc", "fslhomes", "macos"}) {
    for (const char* system : {"hidestore", "ddfs", "sparse", "silo",
                               "silo+capping", "silo+fbw"}) {
      cases.push_back({profile, system});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ProfilesBySystems, SweepTest,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& suite_info) {
                           std::string name = std::string(suite_info.param.profile) +
                                              "_" + suite_info.param.system;
                           for (auto& c : name) {
                             if (c == '+') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hds
