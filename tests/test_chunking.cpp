// Tests for src/chunking: every chunker is a valid partition within size
// bounds, deterministic, and — for the CDC family — resistant to boundary
// shift. Parameterized across all algorithms.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "chunking/chunk_stream.h"
#include "chunking/chunker.h"
#include "chunking/rabin.h"
#include "common/rng.h"
#include "common/sha1.h"

namespace hds {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  Xoshiro256ss rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

class ChunkerTest : public ::testing::TestWithParam<ChunkerKind> {
 protected:
  std::unique_ptr<Chunker> chunker_ = make_chunker(GetParam());
};

TEST_P(ChunkerTest, PartitionCoversInput) {
  const auto data = random_bytes(1 << 20, 1);
  std::vector<std::size_t> lengths;
  chunker_->chunk(data, lengths);
  const auto total =
      std::accumulate(lengths.begin(), lengths.end(), std::size_t{0});
  EXPECT_EQ(total, data.size());
  EXPECT_GT(lengths.size(), 1u);
}

TEST_P(ChunkerTest, RespectsSizeBounds) {
  const ChunkerParams params;
  const auto data = random_bytes(1 << 20, 2);
  std::vector<std::size_t> lengths;
  chunker_->chunk(data, lengths);
  for (std::size_t i = 0; i + 1 < lengths.size(); ++i) {
    EXPECT_GE(lengths[i], params.min_size) << "chunk " << i;
    EXPECT_LE(lengths[i], params.max_size) << "chunk " << i;
  }
  // Only the final chunk may undershoot the minimum.
  EXPECT_LE(lengths.back(), params.max_size);
}

TEST_P(ChunkerTest, AverageNearTarget) {
  const ChunkerParams params;
  const auto data = random_bytes(4 << 20, 3);
  std::vector<std::size_t> lengths;
  chunker_->chunk(data, lengths);
  const double avg = static_cast<double>(data.size()) /
                     static_cast<double>(lengths.size());
  // Generous band: algorithms differ in their size distributions, but all
  // must land in the right ballpark of the configured 4 KiB average.
  EXPECT_GT(avg, static_cast<double>(params.avg_size) * 0.5);
  EXPECT_LT(avg, static_cast<double>(params.avg_size) * 2.0);
}

TEST_P(ChunkerTest, Deterministic) {
  const auto data = random_bytes(256 * 1024, 4);
  std::vector<std::size_t> a, b;
  chunker_->chunk(data, a);
  chunker_->chunk(data, b);
  EXPECT_EQ(a, b);
}

TEST_P(ChunkerTest, EmptyInputYieldsNoChunks) {
  std::vector<std::size_t> lengths;
  chunker_->chunk({}, lengths);
  EXPECT_TRUE(lengths.empty());
}

TEST_P(ChunkerTest, TinyInputIsOneChunk) {
  const auto data = random_bytes(100, 5);
  std::vector<std::size_t> lengths;
  chunker_->chunk(data, lengths);
  ASSERT_EQ(lengths.size(), 1u);
  EXPECT_EQ(lengths[0], 100u);
}

TEST_P(ChunkerTest, SplitViewsMatchLengths) {
  const auto data = random_bytes(128 * 1024, 6);
  const auto views = chunker_->split(data);
  std::vector<std::size_t> lengths;
  chunker_->chunk(data, lengths);
  ASSERT_EQ(views.size(), lengths.size());
  const std::uint8_t* expect = data.data();
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i].data(), expect);
    EXPECT_EQ(views[i].size(), lengths[i]);
    expect += lengths[i];
  }
}

// The defining CDC property: a small insertion near the front only disturbs
// chunk boundaries locally; most chunks (by fingerprint) are preserved.
TEST_P(ChunkerTest, BoundaryShiftResistance) {
  if (GetParam() == ChunkerKind::kFixed) {
    GTEST_SKIP() << "fixed-size chunking is the negative control";
  }
  auto data = random_bytes(1 << 20, 7);
  const auto before = chunk_bytes(*chunker_, data);

  // Insert 100 bytes at ~5% into the stream.
  const auto insert = random_bytes(100, 8);
  data.insert(data.begin() + (1 << 20) / 20, insert.begin(), insert.end());
  const auto after = chunk_bytes(*chunker_, data);

  std::set<Fingerprint> old_fps;
  for (const auto& c : before.chunks) old_fps.insert(c.fp);
  std::size_t preserved = 0;
  for (const auto& c : after.chunks) preserved += old_fps.contains(c.fp);

  EXPECT_GT(static_cast<double>(preserved) /
                static_cast<double>(after.chunks.size()),
            0.8)
      << "CDC must preserve most chunks across a small insertion";
}

// Negative control: fixed-size chunking loses almost everything after an
// unaligned insertion — the failure CDC exists to prevent.
TEST(FixedChunker, InsertionDestroysAlignment) {
  auto chunker = make_chunker(ChunkerKind::kFixed);
  auto data = random_bytes(1 << 20, 9);
  const auto before = chunk_bytes(*chunker, data);
  data.insert(data.begin() + 333, std::uint8_t{0xAB});
  const auto after = chunk_bytes(*chunker, data);

  std::set<Fingerprint> old_fps;
  for (const auto& c : before.chunks) old_fps.insert(c.fp);
  std::size_t preserved = 0;
  for (const auto& c : after.chunks) preserved += old_fps.contains(c.fp);
  EXPECT_LT(preserved, after.chunks.size() / 10);
}

INSTANTIATE_TEST_SUITE_P(AllChunkers, ChunkerTest,
                         ::testing::Values(ChunkerKind::kFixed,
                                           ChunkerKind::kRabin,
                                           ChunkerKind::kTttd,
                                           ChunkerKind::kFastCdc,
                                           ChunkerKind::kAe),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case ChunkerKind::kFixed: return "fixed";
                             case ChunkerKind::kRabin: return "rabin";
                             case ChunkerKind::kTttd: return "tttd";
                             case ChunkerKind::kFastCdc: return "fastcdc";
                             case ChunkerKind::kAe: return "ae";
                           }
                           return "unknown";
                         });

// Adversarial inputs: content-defined chunkers historically misbehave on
// low-entropy data (zero runs never hit a divisor boundary, periodic data
// hits it periodically). All algorithms must terminate, partition the
// input, and respect the max bound regardless.
TEST_P(ChunkerTest, AllZerosInput) {
  const std::vector<std::uint8_t> data(1 << 20, 0);
  std::vector<std::size_t> lengths;
  chunker_->chunk(data, lengths);
  std::size_t total = 0;
  for (auto len : lengths) {
    EXPECT_LE(len, ChunkerParams{}.max_size);
    total += len;
  }
  EXPECT_EQ(total, data.size());
}

TEST_P(ChunkerTest, SingleByteRepeated) {
  const std::vector<std::uint8_t> data(256 * 1024, 0xAB);
  std::vector<std::size_t> lengths;
  chunker_->chunk(data, lengths);
  std::size_t total = 0;
  for (auto len : lengths) total += len;
  EXPECT_EQ(total, data.size());
}

TEST_P(ChunkerTest, PeriodicPattern) {
  std::vector<std::uint8_t> data(512 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 7);
  }
  std::vector<std::size_t> lengths;
  chunker_->chunk(data, lengths);
  std::size_t total = 0;
  for (auto len : lengths) {
    EXPECT_LE(len, ChunkerParams{}.max_size);
    total += len;
  }
  EXPECT_EQ(total, data.size());
}

TEST_P(ChunkerTest, InputExactlyMinAndMaxSize) {
  const ChunkerParams params;
  for (const std::size_t n : {params.min_size, params.max_size}) {
    const auto data = random_bytes(n, 77);
    std::vector<std::size_t> lengths;
    chunker_->chunk(data, lengths);
    std::size_t total = 0;
    for (auto len : lengths) total += len;
    EXPECT_EQ(total, n);
  }
}

// --- Rabin rolling hash internals ---

TEST(RabinHash, WindowedHashMatchesRecomputation) {
  // After sliding past kWindowSize bytes, the fingerprint must depend only
  // on the window contents: feeding the same window after different
  // prefixes yields the same value.
  const auto window = random_bytes(RabinHash::kWindowSize, 10);
  const auto prefix_a = random_bytes(100, 11);
  const auto prefix_b = random_bytes(333, 12);

  RabinHash a, b;
  for (auto byte : prefix_a) a.roll(byte);
  for (auto byte : prefix_b) b.roll(byte);
  std::uint64_t va = 0, vb = 0;
  for (auto byte : window) va = a.roll(byte);
  for (auto byte : window) vb = b.roll(byte);
  EXPECT_EQ(va, vb);
}

TEST(RabinHash, DifferentWindowsDiffer) {
  RabinHash a, b;
  std::uint64_t va = 0, vb = 0;
  for (int i = 0; i < 64; ++i) va = a.roll(static_cast<std::uint8_t>(i));
  for (int i = 0; i < 64; ++i) vb = b.roll(static_cast<std::uint8_t>(i + 1));
  EXPECT_NE(va, vb);
}

TEST(RabinHash, StaysInField) {
  RabinHash h;
  Xoshiro256ss rng(13);
  for (int i = 0; i < 10000; ++i) {
    const auto v = h.roll(static_cast<std::uint8_t>(rng.next()));
    EXPECT_LT(v, 1ULL << RabinHash::kDegree);
  }
}

// --- chunk_bytes bridge ---

TEST(ChunkBytes, FingerprintsAreSha1OfContent) {
  auto chunker = make_chunker(ChunkerKind::kTttd);
  const auto data = random_bytes(64 * 1024, 14);
  const auto stream = chunk_bytes(*chunker, data);
  ASSERT_FALSE(stream.chunks.empty());
  EXPECT_EQ(stream.logical_bytes(), data.size());
  for (const auto& c : stream.chunks) {
    ASSERT_TRUE(c.data);  // records view a buffer shared by their batch
    const auto view = c.bytes();
    EXPECT_EQ(view.size(), c.size);
    EXPECT_EQ(c.fp, Sha1::digest(view.data(), view.size()));
  }
}

}  // namespace
}  // namespace hds
