// Failure-injection tests: corrupt or missing on-disk data must degrade a
// restore into counted, bounded damage — never a crash, never silent
// corruption of unrelated chunks.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "backup/pipeline.h"
#include "index/full_index.h"
#include "restore/basic_caches.h"
#include "restore/restorer.h"
#include "workload/generator.h"

namespace hds {
namespace {

namespace fs = std::filesystem;

std::vector<VersionStream> generate(std::uint32_t versions,
                                    std::size_t chunks) {
  auto p = WorkloadProfile::kernel();
  p.versions = versions;
  p.chunks_per_version = chunks;
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

// A fetcher that simulates a bad disk region: containers in `dead` return
// nullptr.
class FaultyFetcher final : public ContainerFetcher {
 public:
  FaultyFetcher(ContainerStore& store, std::set<ContainerId> dead)
      : store_(store), dead_(std::move(dead)) {}
  std::shared_ptr<const Container> fetch(const ChunkLoc& loc) override {
    if (dead_.contains(loc.cid)) return nullptr;
    return store_.read(loc.cid);
  }

 private:
  ContainerStore& store_;
  std::set<ContainerId> dead_;
};

class FaultyRestoreTest
    : public ::testing::TestWithParam<RestorePolicyKind> {};

TEST_P(FaultyRestoreTest, DeadContainerProducesBoundedCountedDamage) {
  const auto versions = generate(6, 400);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) (void)sys->backup(vs);

  // Build the newest version's location stream by hand.
  const Recipe* recipe = sys->recipes().get(6);
  ASSERT_NE(recipe, nullptr);
  std::vector<ChunkLoc> stream;
  for (const auto& e : recipe->entries()) {
    stream.push_back({e.fp, e.size, e.cid, false});
  }

  // Kill the container serving the first chunk.
  const ContainerId victim = stream.front().cid;
  std::size_t victim_chunks = 0;
  for (const auto& loc : stream) victim_chunks += loc.cid == victim;
  FaultyFetcher fetcher(sys->store(), {victim});

  RestoreConfig config;
  auto policy = make_restore_policy(GetParam(), config);
  std::size_t emitted = 0;
  std::size_t empty = 0;
  const auto stats =
      policy->restore(stream, fetcher,
                      [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
                        ++emitted;
                        empty += b.empty();
                      });

  // Every chunk is still delivered (failed ones as empty/zero), the damage
  // is counted, and it is bounded by the dead container's chunk count.
  EXPECT_EQ(emitted, stream.size());
  EXPECT_EQ(stats.restored_chunks, stream.size());
  EXPECT_GE(stats.failed_chunks, 1u);
  EXPECT_LE(stats.failed_chunks, victim_chunks);
  EXPECT_LE(empty, victim_chunks);
}

TEST_P(FaultyRestoreTest, AllContainersDeadStillTerminates) {
  const auto versions = generate(2, 200);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) (void)sys->backup(vs);

  const Recipe* recipe = sys->recipes().get(2);
  std::vector<ChunkLoc> stream;
  std::set<ContainerId> all;
  for (const auto& e : recipe->entries()) {
    stream.push_back({e.fp, e.size, e.cid, false});
    all.insert(e.cid);
  }
  FaultyFetcher fetcher(sys->store(), all);

  RestoreConfig config;
  auto policy = make_restore_policy(GetParam(), config);
  std::size_t emitted = 0;
  const auto stats = policy->restore(
      stream, fetcher,
      [&](const ChunkLoc&, std::span<const std::uint8_t>) { ++emitted; });
  EXPECT_EQ(emitted, stream.size());
  EXPECT_EQ(stats.failed_chunks, stream.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, FaultyRestoreTest,
    ::testing::Values(RestorePolicyKind::kNoCache,
                      RestorePolicyKind::kContainerLru,
                      RestorePolicyKind::kChunkLru, RestorePolicyKind::kFaa,
                      RestorePolicyKind::kAlacc, RestorePolicyKind::kFbw),
    [](const auto& suite_info) {
      switch (suite_info.param) {
        case RestorePolicyKind::kNoCache: return "nocache";
        case RestorePolicyKind::kContainerLru: return "container_lru";
        case RestorePolicyKind::kChunkLru: return "chunk_lru";
        case RestorePolicyKind::kFaa: return "faa";
        case RestorePolicyKind::kAlacc: return "alacc";
        case RestorePolicyKind::kFbw: return "fbw";
      }
      return "unknown";
    });

TEST(FileCorruption, CorruptContainerFileFailsClosed) {
  const auto dir = fs::temp_directory_path() / "hds_corruption_test";
  fs::remove_all(dir);

  const auto versions = generate(3, 200);
  DedupPipeline sys("ddfs-file", std::make_unique<FullIndex>(),
                    std::make_unique<NoRewrite>(),
                    std::make_unique<FileContainerStore>(dir));
  for (const auto& vs : versions) (void)sys.backup(vs);

  // Flip a byte in the middle of every container file: the CRC check must
  // reject them all, turning the restore into counted failures.
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::fstream file(entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(entry.file_size() / 2));
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(static_cast<std::streamoff>(entry.file_size() / 2));
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }

  const auto report = sys.restore(
      3, [](const ChunkLoc&, std::span<const std::uint8_t>) {});
  EXPECT_EQ(report.stats.failed_chunks, report.stats.restored_chunks);
  EXPECT_GT(report.stats.failed_chunks, 0u);
  fs::remove_all(dir);
}

TEST(FileCorruption, IntactFilesStillRestoreAlongsideCorruptOnes) {
  const auto dir = fs::temp_directory_path() / "hds_partial_corruption";
  fs::remove_all(dir);

  const auto versions = generate(3, 300);
  DedupPipeline sys("ddfs-file", std::make_unique<FullIndex>(),
                    std::make_unique<NoRewrite>(),
                    std::make_unique<FileContainerStore>(dir));
  for (const auto& vs : versions) (void)sys.backup(vs);

  // Corrupt exactly one container file.
  auto it = fs::directory_iterator(dir);
  {
    std::fstream file(it->path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(10);
    file.write("\xFF", 1);
  }

  const auto report = sys.restore(
      3, [](const ChunkLoc&, std::span<const std::uint8_t>) {});
  EXPECT_GT(report.stats.failed_chunks, 0u);
  EXPECT_LT(report.stats.failed_chunks, report.stats.restored_chunks);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hds
