// Failure-injection tests: corrupt or missing on-disk data must degrade a
// restore into counted, bounded damage — never a crash, never silent
// corruption of unrelated chunks. The TornFiles suite covers the reopen
// path: truncated repository files must turn into a counted RecoveryReport
// (rollback, quarantine, journal rebuild), never an exception.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "backup/pipeline.h"
#include "core/hidestore.h"
#include "index/full_index.h"
#include "restore/basic_caches.h"
#include "restore/restorer.h"
#include "storage/manifest.h"
#include "verify/fsck.h"
#include "workload/generator.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

namespace fs = std::filesystem;

std::vector<VersionStream> generate(std::uint32_t versions,
                                    std::size_t chunks) {
  auto p = WorkloadProfile::kernel();
  p.versions = versions;
  p.chunks_per_version = chunks;
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

// A fetcher that simulates a bad disk region: containers in `dead` return
// nullptr.
class FaultyFetcher final : public ContainerFetcher {
 public:
  FaultyFetcher(ContainerStore& store, std::set<ContainerId> dead)
      : store_(store), dead_(std::move(dead)) {}
  std::shared_ptr<const Container> fetch(const ChunkLoc& loc) override {
    if (dead_.contains(loc.cid)) return nullptr;
    return store_.read(loc.cid);
  }

 private:
  ContainerStore& store_;
  std::set<ContainerId> dead_;
};

class FaultyRestoreTest
    : public ::testing::TestWithParam<RestorePolicyKind> {};

TEST_P(FaultyRestoreTest, DeadContainerProducesBoundedCountedDamage) {
  const auto versions = generate(6, 400);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) (void)sys->backup(vs);

  // Build the newest version's location stream by hand.
  const Recipe* recipe = sys->recipes().get(6);
  ASSERT_NE(recipe, nullptr);
  std::vector<ChunkLoc> stream;
  for (const auto& e : recipe->entries()) {
    stream.push_back({e.fp, e.size, e.cid, false});
  }

  // Kill the container serving the first chunk.
  const ContainerId victim = stream.front().cid;
  std::size_t victim_chunks = 0;
  for (const auto& loc : stream) victim_chunks += loc.cid == victim;
  FaultyFetcher fetcher(sys->store(), {victim});

  RestoreConfig config;
  auto policy = make_restore_policy(GetParam(), config);
  std::size_t emitted = 0;
  std::size_t empty = 0;
  const auto stats =
      policy->restore(stream, fetcher,
                      [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
                        ++emitted;
                        empty += b.empty();
                      });

  // Every chunk is still delivered (failed ones as empty/zero), the damage
  // is counted, and it is bounded by the dead container's chunk count.
  EXPECT_EQ(emitted, stream.size());
  EXPECT_EQ(stats.restored_chunks, stream.size());
  EXPECT_GE(stats.failed_chunks, 1u);
  EXPECT_LE(stats.failed_chunks, victim_chunks);
  EXPECT_LE(empty, victim_chunks);
}

TEST_P(FaultyRestoreTest, AllContainersDeadStillTerminates) {
  const auto versions = generate(2, 200);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) (void)sys->backup(vs);

  const Recipe* recipe = sys->recipes().get(2);
  std::vector<ChunkLoc> stream;
  std::set<ContainerId> all;
  for (const auto& e : recipe->entries()) {
    stream.push_back({e.fp, e.size, e.cid, false});
    all.insert(e.cid);
  }
  FaultyFetcher fetcher(sys->store(), all);

  RestoreConfig config;
  auto policy = make_restore_policy(GetParam(), config);
  std::size_t emitted = 0;
  const auto stats = policy->restore(
      stream, fetcher,
      [&](const ChunkLoc&, std::span<const std::uint8_t>) { ++emitted; });
  EXPECT_EQ(emitted, stream.size());
  EXPECT_EQ(stats.failed_chunks, stream.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, FaultyRestoreTest,
    ::testing::Values(RestorePolicyKind::kNoCache,
                      RestorePolicyKind::kContainerLru,
                      RestorePolicyKind::kChunkLru, RestorePolicyKind::kFaa,
                      RestorePolicyKind::kAlacc, RestorePolicyKind::kFbw),
    [](const auto& suite_info) {
      switch (suite_info.param) {
        case RestorePolicyKind::kNoCache: return "nocache";
        case RestorePolicyKind::kContainerLru: return "container_lru";
        case RestorePolicyKind::kChunkLru: return "chunk_lru";
        case RestorePolicyKind::kFaa: return "faa";
        case RestorePolicyKind::kAlacc: return "alacc";
        case RestorePolicyKind::kFbw: return "fbw";
      }
      return "unknown";
    });

TEST(FileCorruption, CorruptContainerFileFailsClosed) {
  const auto dir = hds::testutil::unique_path("hds_corruption_test");
  fs::remove_all(dir);

  const auto versions = generate(3, 200);
  DedupPipeline sys("ddfs-file", std::make_unique<FullIndex>(),
                    std::make_unique<NoRewrite>(),
                    std::make_unique<FileContainerStore>(dir));
  for (const auto& vs : versions) (void)sys.backup(vs);

  // Flip a byte in the middle of every container file: corruption must
  // never restore silently.
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::fstream file(entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(entry.file_size() / 2));
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(static_cast<std::streamoff>(entry.file_size() / 2));
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }

  // Partial-read path: damage is bounded per chunk — the chunks whose
  // extents (or whose container's footer) the flip touched fail, nothing
  // restores from a payload that fails its CRC.
  const auto report = sys.restore(
      3, [](const ChunkLoc&, std::span<const std::uint8_t>) {});
  EXPECT_GT(report.stats.failed_chunks, 0u);
  EXPECT_LE(report.stats.failed_chunks, report.stats.restored_chunks);

  // Slurp path (partial reads and caches off): the whole-file CRC rejects
  // every container outright — the historical fail-closed contract.
  auto* fstore = dynamic_cast<FileContainerStore*>(&sys.store());
  ASSERT_NE(fstore, nullptr);
  FileStoreTuning strict;
  strict.partial_reads = false;
  strict.block_cache_bytes = 0;
  fstore->set_tuning(strict);
  const auto slurped = sys.restore(
      3, [](const ChunkLoc&, std::span<const std::uint8_t>) {});
  EXPECT_EQ(slurped.stats.failed_chunks, slurped.stats.restored_chunks);
  EXPECT_GT(slurped.stats.failed_chunks, 0u);
  fs::remove_all(dir);
}

TEST(FileCorruption, IntactFilesStillRestoreAlongsideCorruptOnes) {
  const auto dir = hds::testutil::unique_path("hds_partial_corruption");
  fs::remove_all(dir);

  const auto versions = generate(3, 300);
  DedupPipeline sys("ddfs-file", std::make_unique<FullIndex>(),
                    std::make_unique<NoRewrite>(),
                    std::make_unique<FileContainerStore>(dir));
  for (const auto& vs : versions) (void)sys.backup(vs);

  // Corrupt exactly one container file.
  auto it = fs::directory_iterator(dir);
  {
    std::fstream file(it->path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(10);
    file.write("\xFF", 1);
  }

  const auto report = sys.restore(
      3, [](const ChunkLoc&, std::span<const std::uint8_t>) {});
  EXPECT_GT(report.stats.failed_chunks, 0u);
  EXPECT_LT(report.stats.failed_chunks, report.stats.restored_chunks);
  fs::remove_all(dir);
}

// --- Torn repository files on reopen ---

// Builds a committed 3-version file-backed repository under `dir`.
void build_repo(const fs::path& dir) {
  HiDeStoreConfig config;
  config.container_size = 128 * 1024;
  config.storage_dir = dir;
  HiDeStore sys(config);
  for (const auto& vs : generate(3, 150)) {
    (void)sys.backup(vs);
    sys.save(dir);
  }
}

TEST(TornFiles, TruncatedStateAtAnyOffsetIsCountedNeverFatal) {
  const auto pristine = hds::testutil::unique_path("hds_torn_pristine");
  fs::remove_all(pristine);
  build_repo(pristine);
  const auto full_size = fs::file_size(pristine / "state.hds");

  for (const double frac : {0.0, 0.1, 0.5, 0.95}) {
    const auto dir = hds::testutil::unique_path("hds_torn_state");
    fs::remove_all(dir);
    fs::copy(pristine, dir, fs::copy_options::recursive);
    fs::resize_file(dir / "state.hds",
                    static_cast<std::uintmax_t>(
                        frac * static_cast<double>(full_size)));

    RecoveryReport report;
    const auto sys = HiDeStore::open(dir, &report);
    // The only committed snapshot is torn and there is no aside copy:
    // recovery must report (quarantine) rather than crash or fabricate.
    EXPECT_EQ(sys, nullptr) << "frac " << frac;
    EXPECT_FALSE(report.opened) << "frac " << frac;
    EXPECT_TRUE(report.performed) << "frac " << frac;
    EXPECT_FALSE(report.quarantined.empty()) << "frac " << frac;
    fs::remove_all(dir);
  }
  fs::remove_all(pristine);
}

TEST(TornFiles, TornStateWithAsideCopyRollsBack) {
  const auto dir = hds::testutil::unique_path("hds_torn_aside");
  fs::remove_all(dir);
  build_repo(dir);

  // Simulate a crash between the state publish and the journal commit:
  // the committed snapshot sits in state.prev.hds while state.hds is not
  // what the MANIFEST vouches for.
  fs::rename(dir / "state.hds", dir / "state.prev.hds");
  std::ofstream(dir / "state.hds", std::ios::binary | std::ios::trunc)
      << "uncommitted garbage";

  RecoveryReport report;
  auto sys = HiDeStore::open(dir, &report);
  ASSERT_NE(sys, nullptr);
  EXPECT_TRUE(report.performed);
  EXPECT_FALSE(report.quarantined.empty());
  EXPECT_EQ(sys->latest_version(), 3u);
  const auto fsck = verify::run_fsck(*sys);
  EXPECT_TRUE(fsck.clean()) << fsck.to_text() << report.to_text();

  RecoveryReport second;
  auto again = HiDeStore::open(dir, &second);
  ASSERT_NE(again, nullptr);
  EXPECT_FALSE(second.performed) << second.to_text();
  fs::remove_all(dir);
}

TEST(TornFiles, TruncatedContainerFileIsCountedRestoreDamage) {
  const auto dir = hds::testutil::unique_path("hds_torn_container");
  fs::remove_all(dir);
  build_repo(dir);

  // Tear the largest archival container in half.
  fs::path victim;
  std::uintmax_t victim_size = 0;
  for (const auto& entry : fs::directory_iterator(dir / "archival")) {
    if (entry.is_regular_file() && entry.file_size() > victim_size) {
      victim = entry.path();
      victim_size = entry.file_size();
    }
  }
  ASSERT_FALSE(victim.empty());
  fs::resize_file(victim, victim_size / 2);

  RecoveryReport report;
  auto sys = HiDeStore::open(dir, &report);
  ASSERT_NE(sys, nullptr);  // torn payloads are a restore concern, not fatal
  std::size_t failed = 0;
  std::size_t emitted = 0;
  for (VersionId v = 1; v <= 3; ++v) {
    const auto restore = sys->restore(
        v, [&](const ChunkLoc&, std::span<const std::uint8_t>) {
          ++emitted;
        });
    failed += restore.stats.failed_chunks;
  }
  EXPECT_GT(emitted, 0u);
  EXPECT_GT(failed, 0u);  // counted damage, no crash
  // fsck names the torn container.
  const auto fsck = verify::run_fsck(*sys);
  EXPECT_FALSE(fsck.clean());
  EXPECT_GT(fsck.check(verify::Invariant::kContainerFraming).violations, 0u);
  fs::remove_all(dir);
}

TEST(TornFiles, TruncatedManifestIsQuarantinedAndRebuilt) {
  const auto dir = hds::testutil::unique_path("hds_torn_manifest");
  fs::remove_all(dir);
  build_repo(dir);
  fs::resize_file(dir / Manifest::kFileName, 8);

  RecoveryReport report;
  auto sys = HiDeStore::open(dir, &report);
  ASSERT_NE(sys, nullptr);
  EXPECT_TRUE(report.performed);
  EXPECT_EQ(sys->latest_version(), 3u);
  const auto fsck = verify::run_fsck(*sys);
  EXPECT_TRUE(fsck.clean()) << fsck.to_text() << report.to_text();

  // The rebuilt journal is committed: a second open is a no-op.
  RecoveryReport second;
  auto again = HiDeStore::open(dir, &second);
  ASSERT_NE(again, nullptr);
  EXPECT_FALSE(second.performed) << second.to_text();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hds
