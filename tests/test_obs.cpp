// Tests for the observability layer (src/obs): counter/gauge/histogram
// semantics and exporter formats, span nesting in the Chrome trace JSON,
// HDS_LOG level handling, and the end-to-end instrumentation invariants on
// HiDeStore (t1_hits + t2_hits + unique == chunks seen; restore container
// reads match RestoreReport; overheads() equals the registry's view).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/hidestore.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "restore/basic_caches.h"
#include "workload/generator.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

// --- Minimal JSON validity checker (no external deps): parses one value
// and reports whether the whole input was consumed. Enough to prove the
// exporters and the trace dump emit well-formed JSON.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      pos_ += text_[pos_] == '\\' ? 2 : 1;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::vector<VersionStream> generate(WorkloadProfile p) {
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < p.versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

// --- Metrics ---

TEST(Metrics, CounterAndGaugeSemantics) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("requests");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("requests"), &c);
  EXPECT_EQ(registry.find_counter("requests"), &c);
  EXPECT_EQ(registry.find_counter("absent"), nullptr);

  auto& g = registry.gauge("temperature");
  g.set(20.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 20.0);

  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramAggregatesAndQuantiles) {
  obs::Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Uniform 1..100 over decade buckets: interpolated quantiles land within
  // one bucket width of the exact order statistics.
  EXPECT_NEAR(h.quantile(0.50), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 10.0);
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));

  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 11u);  // 10 bounds + overflow
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(counts[i], 10u);
  EXPECT_EQ(counts[10], 0u);  // nothing beyond 100

  h.observe(1e9);  // overflow bucket
  EXPECT_EQ(h.bucket_counts()[10], 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(Metrics, EmptyHistogramIsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Metrics, PrometheusExporterFormat) {
  obs::MetricsRegistry registry;
  registry.counter("hits").inc(3);
  registry.gauge("depth").set(2.5);
  registry.histogram("lat_ms", {1.0, 10.0}).observe(0.5);
  registry.histogram("lat_ms").observe(100.0);

  const auto text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE hits counter\nhits 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\ndepth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  // Prometheus buckets are cumulative; +Inf equals the total count.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 2\n"), std::string::npos);
}

TEST(Metrics, JsonExporterRoundTrips) {
  obs::MetricsRegistry registry;
  registry.counter("hits").inc(7);
  registry.gauge("depth").set(1.25);
  registry.histogram("lat_ms").observe(3.0);

  const auto json = registry.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"hits\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"lat_ms\": {\"count\": 1"), std::string::npos);

  // An empty registry still exports valid JSON.
  obs::MetricsRegistry empty;
  EXPECT_TRUE(JsonChecker(empty.to_json()).valid());
}

// --- Tracer ---

TEST(Tracer, NestedSpansProduceWellFormedTrace) {
  obs::Tracer tracer;
  {
    obs::Span outer = tracer.span("outer");
    {
      obs::Span inner = tracer.span("inner");
    }
    obs::Span sibling = tracer.span("sibling");
  }
  ASSERT_EQ(tracer.event_count(), 3u);

  const auto events = tracer.events();
  const auto find = [&](std::string_view name) {
    for (const auto& e : events) {
      if (e.name == name) return e;
    }
    ADD_FAILURE() << "missing event " << name;
    return obs::TraceEvent{};
  };
  const auto outer = find("outer");
  const auto inner = find("inner");
  const auto sibling = find("sibling");
  // Proper nesting: children lie entirely within the parent interval, and
  // siblings do not overlap.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  EXPECT_GE(sibling.ts_us, inner.ts_us + inner.dur_us);

  const auto json = tracer.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Tracer, NullTracerSpansAreNoOps) {
  obs::Span span(nullptr, "ignored");
  span.end();  // must not crash
  obs::Tracer tracer;
  obs::Span moved = tracer.span("moved");
  obs::Span target = std::move(moved);
  target.end();
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, DumpWritesLoadableFile) {
  obs::Tracer tracer;
  { obs::Span s = tracer.span("phase \"quoted\"\n"); }
  const auto path = hds::testutil::unique_path("hds_trace.json");
  ASSERT_TRUE(tracer.dump(path));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  std::filesystem::remove(path);
}

// --- Logger ---

TEST(Logger, ParsesLevels) {
  EXPECT_EQ(obs::parse_log_level("trace"), obs::LogLevel::kTrace);
  EXPECT_EQ(obs::parse_log_level("DEBUG"), obs::LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("Info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::kError);
  EXPECT_EQ(obs::parse_log_level(""), obs::LogLevel::kOff);
  EXPECT_EQ(obs::parse_log_level("bogus"), obs::LogLevel::kOff);
}

TEST(Logger, RespectsLevelThreshold) {
  obs::Logger logger(obs::LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(obs::LogLevel::kError));

  obs::Logger off(obs::LogLevel::kOff);
  EXPECT_FALSE(off.enabled(obs::LogLevel::kError));
}

TEST(Logger, ReadsHdsLogFromEnvironment) {
  ::setenv("HDS_LOG", "debug", 1);
  obs::Logger from_env;
  EXPECT_EQ(from_env.level(), obs::LogLevel::kDebug);
  ::unsetenv("HDS_LOG");
  obs::Logger unset;
  EXPECT_EQ(unset.level(), obs::LogLevel::kOff);
}

TEST(Logger, FormatsKeyValueLine) {
  const auto path =
      hds::testutil::unique_path("hds_log_capture.txt");
  std::FILE* sink = std::fopen(path.string().c_str(), "w+");
  ASSERT_NE(sink, nullptr);
  obs::Logger logger(obs::LogLevel::kInfo);
  logger.set_sink(sink);
  logger.log(obs::LogLevel::kInfo, "backup",
             {{"version", 3}, {"ratio", 0.5}, {"note", "two words"}});
  logger.log(obs::LogLevel::kDebug, "dropped", {});  // below threshold

  std::fseek(sink, 0, SEEK_SET);
  char buf[512] = {};
  const auto n = std::fread(buf, 1, sizeof buf - 1, sink);
  std::fclose(sink);
  std::filesystem::remove(path);
  const std::string line(buf, n);
  EXPECT_EQ(line,
            "[hds] level=info event=backup version=3 ratio=0.5 "
            "note=\"two words\"\n");
}

// --- End-to-end instrumentation ---

TEST(ObsIntegration, BackupAndRestoreMetricsAreConsistent) {
  auto profile = WorkloadProfile::kernel();
  profile.versions = 8;
  profile.chunks_per_version = 300;
  const auto versions = generate(profile);

  HiDeStore sys;
  obs::Tracer tracer;
  sys.set_tracer(&tracer);
  std::uint64_t chunks_seen = 0;
  for (const auto& vs : versions) {
    const auto report = sys.backup(vs);
    chunks_seen += report.logical_chunks;
  }

  const auto& m = sys.metrics();
  const auto counter = [&](const char* name) {
    const auto* c = m.find_counter(name);
    return c == nullptr ? 0ull : c->value();
  };
  // The §4.1 identity: every chunk is a T1 hit, a T2 hit, or unique (T0
  // never fires with the default window of 1).
  EXPECT_EQ(counter("chunks_processed"), chunks_seen);
  EXPECT_EQ(counter("t1_hits") + counter("t2_hits") + counter("t0_hits") +
                counter("unique_chunks"),
            counter("chunks_processed"));
  EXPECT_EQ(counter("t0_hits"), 0u);
  // The paper's headline: zero on-disk index lookups, ever.
  EXPECT_EQ(counter("index_disk_lookups"), 0u);
  EXPECT_GT(counter("cold_chunks_moved"), 0u);

  // Restore counters mirror the RestoreReport exactly.
  RestoreConfig config;
  ContainerLruRestore policy(config);
  const auto report = sys.restore_with(
      static_cast<VersionId>(versions.size()), policy,
      [](const ChunkLoc&, std::span<const std::uint8_t>) {});
  EXPECT_EQ(counter("restore_container_reads"),
            report.stats.container_reads);
  EXPECT_EQ(counter("restored_chunks"), report.stats.restored_chunks);
  EXPECT_EQ(counter("restore_cache_hits"), report.stats.cache_hits);

  // Phase histograms observed one sample per version.
  const auto* recipe_ms = m.find_histogram("recipe_update_ms");
  ASSERT_NE(recipe_ms, nullptr);
  EXPECT_EQ(recipe_ms->count(), versions.size());

  // The tracer saw properly bracketed backup and restore phases.
  EXPECT_GT(tracer.event_count(), versions.size());
  EXPECT_TRUE(JsonChecker(tracer.to_json()).valid());
}

TEST(ObsIntegration, OverheadsViewMatchesRegistry) {
  auto profile = WorkloadProfile::kernel();
  profile.versions = 6;
  profile.chunks_per_version = 200;
  const auto versions = generate(profile);

  HiDeStore sys;
  for (const auto& vs : versions) (void)sys.backup(vs);

  const auto overheads = sys.overheads();
  const auto& m = sys.metrics();
  const auto* recipe_ms = m.find_histogram("recipe_update_ms");
  const auto* move_ms = m.find_histogram("move_and_merge_ms");
  ASSERT_NE(recipe_ms, nullptr);
  ASSERT_NE(move_ms, nullptr);
  // Single source of truth: the legacy struct is exactly the registry view.
  EXPECT_EQ(overheads.recipe_update_ms.count(), recipe_ms->count());
  EXPECT_DOUBLE_EQ(overheads.recipe_update_ms.sum(), recipe_ms->sum());
  EXPECT_DOUBLE_EQ(overheads.recipe_update_ms.mean(), recipe_ms->mean());
  EXPECT_DOUBLE_EQ(overheads.recipe_update_ms.min(), recipe_ms->min());
  EXPECT_DOUBLE_EQ(overheads.recipe_update_ms.max(), recipe_ms->max());
  EXPECT_EQ(overheads.move_and_merge_ms.count(), move_ms->count());
  EXPECT_DOUBLE_EQ(overheads.move_and_merge_ms.mean(), move_ms->mean());
  EXPECT_EQ(overheads.cold_chunks_moved,
            m.find_counter("cold_chunks_moved")->value());
  EXPECT_EQ(overheads.cold_bytes_moved,
            m.find_counter("cold_bytes_moved")->value());

  // Deletion telemetry: whole containers vanish, zero chunks scanned.
  const auto report = sys.delete_versions_up_to(3);
  EXPECT_EQ(m.find_counter("versions_deleted")->value(),
            report.versions_deleted);
  EXPECT_EQ(m.find_counter("containers_erased")->value(),
            report.containers_erased);
  EXPECT_EQ(m.find_counter("delete_chunks_scanned")->value(), 0u);
}

// --- Histogram::quantile edge cases ---

TEST(Metrics, QuantileOfEmptyHistogramIsZeroForAllQ) {
  obs::Histogram h({1.0, 10.0, 100.0});
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.0) << "q=" << q;
  }
}

TEST(Metrics, QuantileOfSingleSampleIsThatSample) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(7.0);
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 7.0) << "q=" << q;
  }
}

TEST(Metrics, QuantileWithEverythingInOverflowBucket) {
  // All samples past the last bound land in the +Inf bucket; quantiles must
  // stay inside [min, max] instead of reporting the (infinite) bucket edge.
  obs::Histogram h({1.0, 2.0});
  h.observe(50.0);
  h.observe(100.0);
  h.observe(150.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 150.0);
  const double mid = h.quantile(0.5);
  EXPECT_GE(mid, 50.0);
  EXPECT_LE(mid, 150.0);
}

TEST(Metrics, QuantileExactAtExtremes) {
  obs::Histogram h({10.0, 20.0, 30.0});
  for (int v = 11; v <= 29; ++v) h.observe(static_cast<double>(v));
  // q=0 reports the recorded minimum, q=1 the recorded maximum, exactly —
  // not the enclosing bucket edges (10 / 30).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 11.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 29.0);
  // Out-of-range q is clamped.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Metrics, QuantileIsMonotoneInQ) {
  obs::Histogram h;
  for (int v = 0; v < 1000; ++v) h.observe(0.01 * v);
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

// --- Prometheus exposition-format compliance ---

TEST(Metrics, PrometheusSanitizesIllegalNames) {
  obs::MetricsRegistry registry;
  registry.counter("io.read-errors").inc(2);
  registry.gauge("2fast").set(1.0);
  // Integral sample: every VALUE on the page renders dot-free, so the
  // no-dots assertion below checks exactly the names.
  registry.histogram("lat.ms", {1.0}).observe(1.0);

  const auto text = registry.to_prometheus();
  // Dots and dashes map to underscores; digit-leading names get a prefix.
  EXPECT_NE(text.find("# TYPE io_read_errors counter\nio_read_errors 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE _2fast gauge\n_2fast 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  // No illegal characters survive anywhere on the page.
  EXPECT_EQ(text.find('.'), std::string::npos);
  EXPECT_EQ(text.find('-'), std::string::npos);
}

TEST(Metrics, PrometheusHistogramFamilyIsComplete) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("lat", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);

  const auto text = registry.to_prometheus();
  // Cumulative buckets, mandatory +Inf row equal to _count, then _sum and
  // _count — the full exposition-format histogram family.
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 105.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
}

}  // namespace
}  // namespace hds
