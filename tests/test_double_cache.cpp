// Tests for the double-hash fingerprint cache: the three dedup cases of
// Figure 5, rotation semantics, the window-2 (macos) extension, and the
// memory bound of §4.1.
#include <gtest/gtest.h>

#include "core/double_cache.h"

namespace hds {
namespace {

Fingerprint fp(std::uint64_t id) { return Fingerprint::from_seed(id); }

TEST(DoubleCache, CaseOneUniqueChunk) {
  DoubleHashFingerprintCache cache;
  EXPECT_EQ(cache.lookup_and_promote(fp(1)), nullptr);
  cache.insert_unique(fp(1), 5, 4096);
  EXPECT_EQ(cache.current().size(), 1u);
}

TEST(DoubleCache, CaseTwoT1HitMigratesToT2) {
  DoubleHashFingerprintCache cache;
  cache.insert_unique(fp(1), 5, 4096);
  auto cold = cache.rotate();  // fp(1) now in T1
  EXPECT_TRUE(cold.empty());
  ASSERT_EQ(cache.previous().size(), 1u);

  const auto* entry = cache.lookup_and_promote(fp(1));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->active_cid, 5);
  EXPECT_EQ(entry->size, 4096u);
  EXPECT_TRUE(cache.previous().empty());   // removed from T1
  EXPECT_EQ(cache.current().size(), 1u);   // inserted into T2
}

TEST(DoubleCache, CaseThreeT2HitIsNoop) {
  DoubleHashFingerprintCache cache;
  cache.insert_unique(fp(1), 5, 4096);
  const auto* first = cache.lookup_and_promote(fp(1));
  const auto* second = cache.lookup_and_promote(fp(1));
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.current().size(), 1u);
}

TEST(DoubleCache, RotateReturnsUnreferencedChunksAsCold) {
  DoubleHashFingerprintCache cache;
  cache.insert_unique(fp(1), 1, 100);
  cache.insert_unique(fp(2), 1, 200);
  (void)cache.rotate();  // version 1 done; both in T1

  // Version 2 references only fp(1).
  (void)cache.lookup_and_promote(fp(1));
  const auto cold = cache.rotate();
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_TRUE(cold.contains(fp(2)));
  EXPECT_EQ(cold.at(fp(2)).size, 200u);
  // fp(1) is the new T1.
  ASSERT_EQ(cache.previous().size(), 1u);
  EXPECT_TRUE(cache.previous().contains(fp(1)));
}

TEST(DoubleCache, WindowOneEvictsSkippedChunks) {
  DoubleHashFingerprintCache cache(1);
  cache.insert_unique(fp(1), 1, 100);
  (void)cache.rotate();
  // Version 2 does not reference fp(1).
  const auto cold = cache.rotate();
  EXPECT_TRUE(cold.contains(fp(1)));
  // Version 3 references it again: too late, it is gone.
  EXPECT_EQ(cache.lookup_and_promote(fp(1)), nullptr);
}

TEST(DoubleCache, WindowTwoSurvivesOneSkippedVersion) {
  DoubleHashFingerprintCache cache(2);
  cache.insert_unique(fp(1), 3, 100);
  {
    const auto cold = cache.rotate();  // end v1
    EXPECT_TRUE(cold.empty());
  }
  {
    const auto cold = cache.rotate();  // end v2, fp(1) unreferenced → T0
    EXPECT_TRUE(cold.empty()) << "window 2 gives one version of grace";
  }
  // Version 3 references it: promoted from T0, still hot.
  const auto* entry = cache.lookup_and_promote(fp(1));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->active_cid, 3);
}

TEST(DoubleCache, WindowTwoEvictsAfterTwoSkippedVersions) {
  DoubleHashFingerprintCache cache(2);
  cache.insert_unique(fp(1), 3, 100);
  (void)cache.rotate();  // end v1
  (void)cache.rotate();  // end v2 (skip 1)
  const auto cold = cache.rotate();  // end v3 (skip 2)
  EXPECT_TRUE(cold.contains(fp(1)));
  EXPECT_EQ(cache.lookup_and_promote(fp(1)), nullptr);
}

TEST(DoubleCache, InvalidWindowThrows) {
  EXPECT_THROW(DoubleHashFingerprintCache(0), std::invalid_argument);
  EXPECT_THROW(DoubleHashFingerprintCache(3), std::invalid_argument);
}

TEST(DoubleCache, MemoryIs28BytesPerEntry) {
  DoubleHashFingerprintCache cache;
  for (std::uint64_t i = 0; i < 10; ++i) cache.insert_unique(fp(i), 1, 100);
  EXPECT_EQ(cache.memory_bytes(), 10u * 28u);
  (void)cache.rotate();
  for (std::uint64_t i = 0; i < 5; ++i) (void)cache.lookup_and_promote(fp(i));
  EXPECT_EQ(cache.memory_bytes(), 10u * 28u);  // 5 in T1, 5 migrated to T2
}

TEST(DoubleCache, RemapUpdatesAllTables) {
  DoubleHashFingerprintCache cache;
  cache.insert_unique(fp(1), 1, 100);
  (void)cache.rotate();
  cache.insert_unique(fp(2), 2, 100);

  cache.remap_active({{fp(1), 7}, {fp(2), 9}});
  EXPECT_EQ(cache.previous().at(fp(1)).active_cid, 7);
  EXPECT_EQ(cache.current().at(fp(2)).active_cid, 9);
}

}  // namespace
}  // namespace hds
