// Tests for ContainerStore backends: I/O accounting, ID reservation, erase
// semantics, and the file backend's on-disk round trip.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "storage/container_store.h"

namespace hds {
namespace {

Container make_container(std::uint64_t seed, std::size_t chunks = 4) {
  Container c(0, 64 * 1024);
  Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < chunks; ++i) {
    std::vector<std::uint8_t> data(512 + rng.next_below(1024));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    c.add(Fingerprint::from_seed(seed * 100 + i), data);
  }
  return c;
}

template <typename T>
std::unique_ptr<ContainerStore> make_store();

template <>
std::unique_ptr<ContainerStore> make_store<MemoryContainerStore>() {
  return std::make_unique<MemoryContainerStore>();
}

template <>
std::unique_ptr<ContainerStore> make_store<FileContainerStore>() {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("hds_store_test_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return std::make_unique<FileContainerStore>(dir);
}

template <typename T>
class ContainerStoreTest : public ::testing::Test {
 protected:
  std::unique_ptr<ContainerStore> store_ = make_store<T>();
};

using Backends = ::testing::Types<MemoryContainerStore, FileContainerStore>;
TYPED_TEST_SUITE(ContainerStoreTest, Backends);

TYPED_TEST(ContainerStoreTest, WriteAssignsSequentialPositiveIds) {
  const auto a = this->store_->write(make_container(1));
  const auto b = this->store_->write(make_container(2));
  EXPECT_GT(a, 0);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(this->store_->container_count(), 2u);
}

TYPED_TEST(ContainerStoreTest, ReadBackMatchesWritten) {
  const auto original = make_container(3);
  const auto fp = Fingerprint::from_seed(300);
  const auto expected = *original.read(fp);
  std::vector<std::uint8_t> expect_copy(expected.begin(), expected.end());

  const auto id = this->store_->write(make_container(3));
  const auto back = this->store_->read(id);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->id(), id);
  const auto read = back->read(fp);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(std::equal(read->begin(), read->end(), expect_copy.begin()));
}

TYPED_TEST(ContainerStoreTest, ReadsAndWritesAreCounted) {
  const auto id = this->store_->write(make_container(4));
  EXPECT_EQ(this->store_->stats().container_writes, 1u);
  EXPECT_EQ(this->store_->stats().container_reads, 0u);
  (void)this->store_->read(id);
  (void)this->store_->read(id);
  EXPECT_EQ(this->store_->stats().container_reads, 2u);
  EXPECT_GT(this->store_->stats().bytes_written, 0u);
  EXPECT_GT(this->store_->stats().bytes_read, 0u);
}

TYPED_TEST(ContainerStoreTest, MissingReadReturnsNullAndIsNotCounted) {
  EXPECT_EQ(this->store_->read(999), nullptr);
  EXPECT_EQ(this->store_->stats().container_reads, 0u);
}

TYPED_TEST(ContainerStoreTest, EraseRemovesContainer) {
  const auto id = this->store_->write(make_container(5));
  EXPECT_TRUE(this->store_->erase(id));
  EXPECT_EQ(this->store_->read(id), nullptr);
  EXPECT_FALSE(this->store_->erase(id));
  EXPECT_EQ(this->store_->container_count(), 0u);
}

TYPED_TEST(ContainerStoreTest, ReserveThenPut) {
  const auto id = this->store_->reserve_id();
  auto c = make_container(6);
  c.set_id(id);
  this->store_->put(std::move(c));
  // The next write must not reuse the reserved ID.
  const auto next = this->store_->write(make_container(7));
  EXPECT_GT(next, id);
  EXPECT_NE(this->store_->read(id), nullptr);
}

TYPED_TEST(ContainerStoreTest, IdsListsAllLiveContainers) {
  const auto a = this->store_->write(make_container(8));
  const auto b = this->store_->write(make_container(9));
  this->store_->erase(a);
  const auto ids = this->store_->ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], b);
}

TYPED_TEST(ContainerStoreTest, ResetStatsClearsCounters) {
  const auto id = this->store_->write(make_container(10));
  (void)this->store_->read(id);
  this->store_->reset_stats();
  EXPECT_EQ(this->store_->stats().container_reads, 0u);
  EXPECT_EQ(this->store_->stats().container_writes, 0u);
}

TEST(FileContainerStore, PersistsSerializedFormOnDisk) {
  const auto dir =
      std::filesystem::temp_directory_path() / "hds_store_disk_check";
  std::filesystem::remove_all(dir);
  FileContainerStore store(dir);
  const auto id = store.write(make_container(11));
  // Exactly one container file, parseable by Container::deserialize.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_GT(entry.file_size(), 0u);
  }
  EXPECT_EQ(files, 1u);
  EXPECT_NE(store.read(id), nullptr);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hds
