// Tests for ContainerStore backends: I/O accounting, ID reservation, erase
// semantics, and the file backend's on-disk round trip.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "storage/container_store.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

Container make_container(std::uint64_t seed, std::size_t chunks = 4) {
  Container c(0, 64 * 1024);
  Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < chunks; ++i) {
    std::vector<std::uint8_t> data(512 + rng.next_below(1024));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    c.add(Fingerprint::from_seed(seed * 100 + i), data);
  }
  return c;
}

template <typename T>
std::unique_ptr<ContainerStore> make_store();

template <>
std::unique_ptr<ContainerStore> make_store<MemoryContainerStore>() {
  return std::make_unique<MemoryContainerStore>();
}

template <>
std::unique_ptr<ContainerStore> make_store<FileContainerStore>() {
  // The pid keeps concurrent ctest workers (each a fresh process whose
  // counter restarts at 0) out of each other's directories.
  static int counter = 0;
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("hds_store_test_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return std::make_unique<FileContainerStore>(dir);
}

template <typename T>
class ContainerStoreTest : public ::testing::Test {
 protected:
  std::unique_ptr<ContainerStore> store_ = make_store<T>();
};

using Backends = ::testing::Types<MemoryContainerStore, FileContainerStore>;
TYPED_TEST_SUITE(ContainerStoreTest, Backends);

TYPED_TEST(ContainerStoreTest, WriteAssignsSequentialPositiveIds) {
  const auto a = this->store_->write(make_container(1));
  const auto b = this->store_->write(make_container(2));
  EXPECT_GT(a, 0);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(this->store_->container_count(), 2u);
}

TYPED_TEST(ContainerStoreTest, ReadBackMatchesWritten) {
  const auto original = make_container(3);
  const auto fp = Fingerprint::from_seed(300);
  const auto expected = *original.read(fp);
  std::vector<std::uint8_t> expect_copy(expected.begin(), expected.end());

  const auto id = this->store_->write(make_container(3));
  const auto back = this->store_->read(id);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->id(), id);
  const auto read = back->read(fp);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(std::equal(read->begin(), read->end(), expect_copy.begin()));
}

TYPED_TEST(ContainerStoreTest, ReadsAndWritesAreCounted) {
  const auto id = this->store_->write(make_container(4));
  EXPECT_EQ(this->store_->stats().container_writes, 1u);
  EXPECT_EQ(this->store_->stats().container_reads, 0u);
  (void)this->store_->read(id);
  (void)this->store_->read(id);
  EXPECT_EQ(this->store_->stats().container_reads, 2u);
  EXPECT_GT(this->store_->stats().bytes_written, 0u);
  EXPECT_GT(this->store_->stats().bytes_read, 0u);
}

TYPED_TEST(ContainerStoreTest, MissingReadReturnsNullAndIsNotCounted) {
  EXPECT_EQ(this->store_->read(999), nullptr);
  EXPECT_EQ(this->store_->stats().container_reads, 0u);
}

TYPED_TEST(ContainerStoreTest, EraseRemovesContainer) {
  const auto id = this->store_->write(make_container(5));
  EXPECT_TRUE(this->store_->erase(id));
  EXPECT_EQ(this->store_->read(id), nullptr);
  EXPECT_FALSE(this->store_->erase(id));
  EXPECT_EQ(this->store_->container_count(), 0u);
}

TYPED_TEST(ContainerStoreTest, ReserveThenPut) {
  const auto id = this->store_->reserve_id();
  auto c = make_container(6);
  c.set_id(id);
  this->store_->put(std::move(c));
  // The next write must not reuse the reserved ID.
  const auto next = this->store_->write(make_container(7));
  EXPECT_GT(next, id);
  EXPECT_NE(this->store_->read(id), nullptr);
}

TYPED_TEST(ContainerStoreTest, IdsListsAllLiveContainers) {
  const auto a = this->store_->write(make_container(8));
  const auto b = this->store_->write(make_container(9));
  this->store_->erase(a);
  const auto ids = this->store_->ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], b);
}

TYPED_TEST(ContainerStoreTest, ResetStatsClearsCounters) {
  const auto id = this->store_->write(make_container(10));
  (void)this->store_->read(id);
  this->store_->reset_stats();
  EXPECT_EQ(this->store_->stats().container_reads, 0u);
  EXPECT_EQ(this->store_->stats().container_writes, 0u);
}

TYPED_TEST(ContainerStoreTest, ReadChunksReturnsRequestedChunks) {
  const auto original = make_container(12, 6);
  const auto id = this->store_->write(make_container(12, 6));
  const Fingerprint wanted[] = {Fingerprint::from_seed(1201),
                                Fingerprint::from_seed(1204)};
  const auto got = this->store_->read_chunks(id, wanted);
  ASSERT_NE(got, nullptr);
  for (const auto& fp : wanted) {
    const auto read = got->read(fp);
    ASSERT_TRUE(read.has_value());
    const auto expect = *original.read(fp);
    ASSERT_EQ(read->size(), expect.size());
    EXPECT_TRUE(std::equal(read->begin(), read->end(), expect.begin()));
  }
  // §5.3 accounting: one container read, charged at the FULL logical size
  // regardless of how many bytes actually moved.
  EXPECT_EQ(this->store_->stats().container_reads, 1u);
  EXPECT_EQ(this->store_->stats().bytes_read, original.data_size());
}

TYPED_TEST(ContainerStoreTest, ReadChunksOfMissingContainerIsNull) {
  const Fingerprint fp[] = {Fingerprint::from_seed(1)};
  EXPECT_EQ(this->store_->read_chunks(404, fp), nullptr);
  EXPECT_EQ(this->store_->stats().container_reads, 0u);
}

TEST(MemoryContainerStore, PhysicalBytesEqualLogicalBytes) {
  MemoryContainerStore store;
  const auto id = store.write(make_container(13));
  (void)store.read(id);
  const Fingerprint fp[] = {Fingerprint::from_seed(1301)};
  (void)store.read_chunks(id, fp);
  EXPECT_GT(store.stats().bytes_read, 0u);
  EXPECT_EQ(store.stats().bytes_read_physical.load(),
            store.stats().bytes_read.load());
}

namespace {
std::filesystem::path fresh_dir(const char* name) {
  const auto dir = hds::testutil::unique_path(name);
  std::filesystem::remove_all(dir);
  return dir;
}
}  // namespace

TEST(FileContainerStore, PartialReadTransfersFewerPhysicalBytes) {
  FileStoreTuning tuning;
  tuning.block_cache_bytes = 0;  // every read must hit the device
  FileContainerStore store(fresh_dir("hds_store_partial"), false, tuning);
  const auto original = make_container(14, 16);
  const auto id = store.write(make_container(14, 16));

  const Fingerprint wanted[] = {Fingerprint::from_seed(1403)};
  const auto got = store.read_chunks(id, wanted);
  ASSERT_NE(got, nullptr);
  const auto read = got->read(wanted[0]);
  ASSERT_TRUE(read.has_value());
  const auto expect = *original.read(wanted[0]);
  EXPECT_TRUE(std::equal(read->begin(), read->end(), expect.begin()));

  EXPECT_EQ(store.io_stats().partial_reads, 1u);
  EXPECT_EQ(store.stats().bytes_read, original.data_size());
  EXPECT_GT(store.stats().bytes_read_physical, 0u);
  EXPECT_LT(store.stats().bytes_read_physical.load(),
            store.stats().bytes_read.load());
}

TEST(FileContainerStore, DisablingPartialReadsFallsBackToSlurp) {
  FileStoreTuning tuning;
  tuning.partial_reads = false;
  tuning.block_cache_bytes = 0;
  FileContainerStore store(fresh_dir("hds_store_noslice"), false, tuning);
  const auto id = store.write(make_container(15, 8));
  const Fingerprint wanted[] = {Fingerprint::from_seed(1502)};
  const auto got = store.read_chunks(id, wanted);
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(got->read(wanted[0]).has_value());
  EXPECT_EQ(store.io_stats().partial_reads, 0u);
  // The slurp moves the whole file — header/table/CRC overhead included —
  // so the device sees MORE than the logical data size.
  EXPECT_GT(store.stats().bytes_read_physical.load(),
            store.stats().bytes_read.load());
}

TEST(FileContainerStore, BlockCacheHitCostsNoPhysicalBytes) {
  FileContainerStore store(fresh_dir("hds_store_cachehit"));
  const auto id = store.write(make_container(16, 8));

  ASSERT_NE(store.read(id), nullptr);
  const auto after_first = store.stats().bytes_read_physical.load();
  EXPECT_GT(after_first, 0u);

  ASSERT_NE(store.read(id), nullptr);
  // Second read is served from the block cache: still a counted container
  // read at full logical size, but zero new device bytes.
  EXPECT_EQ(store.stats().container_reads, 2u);
  EXPECT_EQ(store.stats().bytes_read_physical, after_first);
  EXPECT_EQ(store.io_stats().block_cache_hits, 1u);
}

TEST(FileContainerStore, WriteInvalidatesCachesBeforeNextRead) {
  FileContainerStore store(fresh_dir("hds_store_inval"));
  auto first = make_container(17, 4);
  const auto id = store.write(std::move(first));
  ASSERT_NE(store.read(id), nullptr);  // populates fd + block caches

  // Rewrite the container under the same ID with different content.
  auto second = make_container(18, 4);
  second.set_id(id);
  store.put(std::move(second));

  const auto back = store.read(id);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->read(Fingerprint::from_seed(1800)).has_value());
  EXPECT_FALSE(back->read(Fingerprint::from_seed(1700)).has_value());
}

TEST(FileContainerStore, LegacyFormat2FileReadsViaSlurp) {
  const auto dir = fresh_dir("hds_store_legacy");
  std::filesystem::create_directories(dir);
  Container legacy(3, 64 * 1024);
  Xoshiro256ss rng(19);
  std::vector<std::uint8_t> data(2048);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(legacy.add(Fingerprint::from_seed(1900), data));
  {
    const auto blob = legacy.serialize_legacy();
    std::ofstream out(dir / "container_3.hdsc", std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  }
  FileContainerStore store(dir, /*index_existing=*/true);
  const Fingerprint wanted[] = {Fingerprint::from_seed(1900)};
  const auto got = store.read_chunks(store.ids().at(0), wanted);
  ASSERT_NE(got, nullptr);
  const auto read = got->read(wanted[0]);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(std::equal(read->begin(), read->end(), data.begin()));
  EXPECT_EQ(store.io_stats().partial_reads, 0u);  // no footer index to use
}

TEST(FileContainerStore, PersistsSerializedFormOnDisk) {
  const auto dir =
      hds::testutil::unique_path("hds_store_disk_check");
  std::filesystem::remove_all(dir);
  FileContainerStore store(dir);
  const auto id = store.write(make_container(11));
  // Exactly one container file, parseable by Container::deserialize.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_GT(entry.file_size(), 0u);
  }
  EXPECT_EQ(files, 1u);
  EXPECT_NE(store.read(id), nullptr);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hds
