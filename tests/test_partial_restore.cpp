// Tests for partial (byte-range) restore and the FileCatalog: exact range
// extraction with first/last-chunk trimming, clipping, catalog round trips,
// and single-file restores through both systems.
#include <gtest/gtest.h>

#include "backup/catalog.h"
#include "backup/pipeline.h"
#include "core/hidestore.h"
#include "chunking/chunk_stream.h"
#include "chunking/tttd.h"
#include "restore/faa.h"
#include "workload/generator.h"

namespace hds {
namespace {

// Builds a HiDeStore with one byte-level version and returns the raw bytes.
struct ByteFixture {
  HiDeStore sys;
  std::vector<std::uint8_t> bytes;

  explicit ByteFixture(std::size_t n = 512 * 1024) {
    ByteStreamWorkload workload(3, n);
    bytes = workload.next_version(0.0);
    TttdChunker chunker;
    (void)sys.backup(chunk_bytes(chunker, bytes));
  }

  std::vector<std::uint8_t> range(std::uint64_t offset,
                                  std::uint64_t length) {
    RestoreConfig config;
    FaaRestore policy(config);
    std::vector<std::uint8_t> out;
    (void)sys.restore_range(
        1, offset, length, policy,
        [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
          out.insert(out.end(), b.begin(), b.end());
        });
    return out;
  }
};

TEST(PartialRestore, ExtractsExactRanges) {
  ByteFixture fx;
  for (const auto& [offset, length] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, 100},          // head
           {1000, 1},         // single byte mid-chunk
           {5000, 20000},     // spans several chunks
           {fx.bytes.size() - 77, 77},  // tail
           {0, fx.bytes.size()}}) {     // whole stream
    const auto got = fx.range(offset, length);
    ASSERT_EQ(got.size(), length) << offset << "+" << length;
    EXPECT_TRUE(std::equal(got.begin(), got.end(),
                           fx.bytes.begin() +
                               static_cast<std::ptrdiff_t>(offset)))
        << offset << "+" << length;
  }
}

TEST(PartialRestore, ClipsRangesPastTheEnd) {
  ByteFixture fx;
  const auto got = fx.range(fx.bytes.size() - 10, 1000);
  EXPECT_EQ(got.size(), 10u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(),
                         fx.bytes.end() - 10));
}

TEST(PartialRestore, EmptyAndOutOfBoundsRanges) {
  ByteFixture fx;
  EXPECT_TRUE(fx.range(100, 0).empty());
  EXPECT_TRUE(fx.range(fx.bytes.size() + 5, 10).empty());
}

TEST(PartialRestore, ReadsOnlyCoveringContainers) {
  // A small range must touch far fewer containers than a full restore.
  auto p = WorkloadProfile::kernel();
  p.versions = 1;
  p.chunks_per_version = 4000;  // ~16 MB: several containers
  VersionChainGenerator gen(p);
  HiDeStore sys;
  (void)sys.backup(gen.next_version());

  RestoreConfig config;
  FaaRestore full_policy(config), small_policy(config);
  const auto sink = [](const ChunkLoc&, std::span<const std::uint8_t>) {};
  const auto full = sys.restore_with(1, full_policy, sink);
  const auto small = sys.restore_range(1, 0, 8192, small_policy, sink);
  EXPECT_LT(small.stats.container_reads, full.stats.container_reads);
  EXPECT_GE(small.stats.container_reads, 1u);
}

TEST(PartialRestore, WorksOnThePipelineToo) {
  auto sys = make_baseline(BaselineKind::kDdfs);
  ByteStreamWorkload workload(5, 128 * 1024);
  const auto bytes = workload.next_version(0.0);
  TttdChunker chunker;
  (void)sys->backup(chunk_bytes(chunker, bytes));

  RestoreConfig config;
  FaaRestore policy(config);
  std::vector<std::uint8_t> out;
  (void)sys->restore_range(
      1, 300, 5000, policy,
      [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
        out.insert(out.end(), b.begin(), b.end());
      });
  ASSERT_EQ(out.size(), 5000u);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), bytes.begin() + 300));
}

// --- FileCatalog ---

TEST(FileCatalog, AddFindErase) {
  FileCatalog catalog;
  catalog.add_version(1, {{"a.txt", 0, 100}, {"b.txt", 100, 50}});
  ASSERT_NE(catalog.files(1), nullptr);
  EXPECT_EQ(catalog.files(1)->size(), 2u);
  const auto entry = catalog.find(1, "b.txt");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->offset, 100u);
  EXPECT_EQ(entry->length, 50u);
  EXPECT_FALSE(catalog.find(1, "c.txt").has_value());
  EXPECT_FALSE(catalog.find(2, "a.txt").has_value());
  EXPECT_TRUE(catalog.erase_version(1));
  EXPECT_EQ(catalog.files(1), nullptr);
}

TEST(FileCatalog, SerializeRoundTrip) {
  FileCatalog catalog;
  catalog.add_version(1, {{"dir/file one.bin", 0, 12345}});
  catalog.add_version(7, {{"x", 5, 9}, {"y", 14, 0}});
  const auto bytes = catalog.serialize();
  const auto back = FileCatalog::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version_count(), 2u);
  EXPECT_EQ(back->find(1, "dir/file one.bin")->length, 12345u);
  EXPECT_EQ(back->find(7, "y")->offset, 14u);
}

TEST(FileCatalog, DeserializeRejectsCorruption) {
  FileCatalog catalog;
  catalog.add_version(1, {{"a", 0, 1}});
  auto bytes = catalog.serialize();
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_FALSE(FileCatalog::deserialize(bytes).has_value());
  EXPECT_FALSE(FileCatalog::deserialize({}).has_value());
}

TEST(FileCatalog, SingleFileRestoreEndToEnd) {
  // Serialize two "files" into one stream, back it up, restore one file by
  // its catalog range.
  std::vector<std::uint8_t> file_a(30000), file_b(45000);
  Xoshiro256ss rng(11);
  for (auto& b : file_a) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : file_b) b = static_cast<std::uint8_t>(rng.next());

  std::vector<std::uint8_t> stream = file_a;
  stream.insert(stream.end(), file_b.begin(), file_b.end());

  FileCatalog catalog;
  catalog.add_version(1, {{"a.bin", 0, file_a.size()},
                          {"b.bin", file_a.size(), file_b.size()}});

  HiDeStore sys;
  TttdChunker chunker;
  (void)sys.backup(chunk_bytes(chunker, stream));

  const auto entry = catalog.find(1, "b.bin");
  ASSERT_TRUE(entry.has_value());
  RestoreConfig config;
  FaaRestore policy(config);
  std::vector<std::uint8_t> restored;
  (void)sys.restore_range(
      1, entry->offset, entry->length, policy,
      [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
        restored.insert(restored.end(), b.begin(), b.end());
      });
  EXPECT_EQ(restored, file_b);
}

}  // namespace
}  // namespace hds
