// Tests for the container I/O fast path (DESIGN.md §10): the fd cache, the
// sharded block cache, and the FileContainerStore under concurrent readers,
// a writer and an eraser (runs under TSan via the `concurrency` label).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/block_cache.h"
#include "storage/container_store.h"
#include "storage/fd_cache.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

std::filesystem::path fresh_dir(const char* name) {
  const auto dir = hds::testutil::unique_path(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::filesystem::path write_file(const std::filesystem::path& dir, int n,
                                 std::size_t size) {
  const auto path = dir / ("f" + std::to_string(n));
  std::ofstream out(path, std::ios::binary);
  const std::vector<char> bytes(size, static_cast<char>('a' + n % 26));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(FdCache, HitsAndOpensAreCounted) {
  const auto dir = fresh_dir("hds_fdcache_basic");
  const auto path = write_file(dir, 1, 100);
  FdCache cache(4);
  const auto a = cache.acquire(1, path);
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(a.size(), 100u);
  const auto b = cache.acquire(1, path);
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(cache.opens(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.open_fds(), 1u);
}

TEST(FdCache, EvictsDownToCapacityInLruOrder) {
  const auto dir = fresh_dir("hds_fdcache_lru");
  FdCache cache(2);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(cache.acquire(i, write_file(dir, i, 50)).valid());
  }
  EXPECT_EQ(cache.open_fds(), 2u);
  // 1 was least recently used and got evicted; re-acquiring reopens.
  (void)cache.acquire(1, dir / "f1");
  EXPECT_EQ(cache.opens(), 4u);
  // 2 and 3 were retained... but 2 just fell off when 1 came back; 3 hits.
  (void)cache.acquire(3, dir / "f3");
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(FdCache, InvalidatedEntryStaysReadableThroughPinnedHandle) {
  const auto dir = fresh_dir("hds_fdcache_pin");
  const auto path = write_file(dir, 1, 64);
  FdCache cache(4);
  const auto handle = cache.acquire(1, path);
  ASSERT_TRUE(handle.valid());
  cache.invalidate(1);
  EXPECT_EQ(cache.open_fds(), 0u);
  // The handle pins the descriptor: the old inode is still readable.
  char byte = 0;
  EXPECT_EQ(::pread(handle.fd(), &byte, 1, 0), 1);
  EXPECT_EQ(byte, 'b');
}

TEST(FdCache, ZeroCapacityDisablesRetention) {
  const auto dir = fresh_dir("hds_fdcache_off");
  const auto path = write_file(dir, 1, 32);
  FdCache cache(0);
  EXPECT_TRUE(cache.acquire(1, path).valid());
  EXPECT_TRUE(cache.acquire(1, path).valid());
  EXPECT_EQ(cache.opens(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.open_fds(), 0u);
}

TEST(FdCache, SetCapacityEvictsExcess) {
  const auto dir = fresh_dir("hds_fdcache_resize");
  FdCache cache(8);
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(cache.acquire(i, write_file(dir, i, 16)).valid());
  }
  EXPECT_EQ(cache.open_fds(), 6u);
  cache.set_capacity(2);
  EXPECT_EQ(cache.open_fds(), 2u);
}

TEST(FdCache, AcquireOfMissingFileIsInvalid) {
  FdCache cache(4);
  EXPECT_FALSE(cache.acquire(9, "/nonexistent/f9").valid());
  EXPECT_EQ(cache.open_fds(), 0u);
}

std::shared_ptr<Container> make_cached_container(std::uint64_t seed,
                                                 std::size_t chunks,
                                                 std::size_t chunk_bytes) {
  auto c = std::make_shared<Container>(static_cast<ContainerId>(seed),
                                       4 * 1024 * 1024);
  Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < chunks; ++i) {
    std::vector<std::uint8_t> data(chunk_bytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    c->add(Fingerprint::from_seed(seed * 100 + i), data);
  }
  return c;
}

TEST(BlockCache, FullEntrySatisfiesAnyLookup) {
  BlockCache cache(1 << 20, 2);
  const auto c = make_cached_container(1, 4, 512);
  cache.insert(1, c, c->data_size(), /*complete=*/true);
  EXPECT_TRUE(cache.find_full(1).has_value());
  const Fingerprint fps[] = {Fingerprint::from_seed(103)};
  const auto hit = cache.find_chunks(1, fps);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->full_data_size, c->data_size());
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(BlockCache, PartialEntrySatisfiesOnlyCoveredLookups) {
  BlockCache cache(1 << 20, 2);
  const auto partial = make_cached_container(2, 2, 256);  // fps 200, 201
  cache.insert(2, partial, 10000, /*complete=*/false);
  EXPECT_FALSE(cache.find_full(2).has_value());
  const Fingerprint covered[] = {Fingerprint::from_seed(200)};
  const Fingerprint uncovered[] = {Fingerprint::from_seed(200),
                                   Fingerprint::from_seed(299)};
  ASSERT_TRUE(cache.find_chunks(2, covered).has_value());
  EXPECT_EQ(cache.find_chunks(2, covered)->full_data_size, 10000u);
  EXPECT_FALSE(cache.find_chunks(2, uncovered).has_value());
}

TEST(BlockCache, PartialNeverReplacesComplete) {
  BlockCache cache(1 << 20, 1);
  const auto full = make_cached_container(3, 4, 256);
  const auto partial = make_cached_container(3, 1, 256);
  cache.insert(3, full, full->data_size(), true);
  cache.insert(3, partial, full->data_size(), false);
  const auto hit = cache.find_full(3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->container->chunk_count(), 4u);
}

TEST(BlockCache, EvictsLruWhenOverBudget) {
  BlockCache cache(8 * 1024, 1);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto c = make_cached_container(seed, 2, 1500);  // ~3 KiB each
    cache.insert(static_cast<ContainerId>(seed), c, c->data_size(), true);
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.bytes(), 8u * 1024u);
  EXPECT_FALSE(cache.find_full(1).has_value());  // oldest went first
  EXPECT_TRUE(cache.find_full(3).has_value());
}

TEST(BlockCache, ZeroBudgetDisablesCaching) {
  BlockCache cache(0, 4);
  const auto c = make_cached_container(4, 2, 128);
  cache.insert(4, c, c->data_size(), true);
  EXPECT_FALSE(cache.find_full(4).has_value());
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(BlockCache, InvalidateDropsEntry) {
  BlockCache cache(1 << 20, 2);
  const auto c = make_cached_container(5, 2, 128);
  cache.insert(5, c, c->data_size(), true);
  cache.invalidate(5);
  EXPECT_FALSE(cache.find_full(5).has_value());
}

Container make_store_container(std::uint64_t seed) {
  Container c(0, 64 * 1024);
  Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < 8; ++i) {
    std::vector<std::uint8_t> data(512 + rng.next_below(512));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    c.add(Fingerprint::from_seed(seed * 100 + i), data);
  }
  return c;
}

// Readers + a writer + an eraser hammering one FileContainerStore. Small
// caches so eviction, invalidation and the partial-read path all run under
// contention; TSan (ctest -L concurrency) checks the locking.
TEST(FileStoreConcurrency, ReadersWriterAndEraserStayConsistent) {
  FileStoreTuning tuning;
  tuning.fd_cache_slots = 4;
  tuning.block_cache_bytes = 64 * 1024;
  tuning.block_cache_shards = 2;
  FileContainerStore store(fresh_dir("hds_store_hammer"), false, tuning);

  constexpr ContainerId kStable = 16;   // ids 1..16 are never erased
  constexpr ContainerId kVictims = 8;   // ids 17..24 get erased mid-run
  for (ContainerId id = 1; id <= kStable + kVictims; ++id) {
    ASSERT_EQ(store.write(make_store_container(
                  static_cast<std::uint64_t>(id))),
              id);
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, &failed, t] {
      Xoshiro256ss rng(static_cast<std::uint64_t>(t) + 77);
      for (int i = 0; i < 300 && !failed.load(); ++i) {
        const auto id = static_cast<ContainerId>(
            1 + rng.next_below(kStable + kVictims));
        const auto seed = static_cast<std::uint64_t>(id);
        const auto fp = Fingerprint::from_seed(seed * 100 + i % 8);
        std::shared_ptr<const Container> got;
        if (i % 2 == 0) {
          const Fingerprint fps[] = {fp};
          got = store.read_chunks(id, fps);
        } else {
          got = store.read(id);
        }
        if (got == nullptr) {
          // Only erased victims may vanish.
          if (id <= kStable) failed.store(true);
          continue;
        }
        if (!got->read(fp).has_value()) failed.store(true);
      }
    });
  }

  threads.emplace_back([&store, &failed] {  // writer
    for (std::uint64_t seed = 100; seed < 140 && !failed.load(); ++seed) {
      const auto id = store.write(make_store_container(seed));
      const auto back = store.read(id);
      if (back == nullptr ||
          !back->read(Fingerprint::from_seed(seed * 100)).has_value()) {
        failed.store(true);
      }
    }
  });

  threads.emplace_back([&store] {  // eraser
    for (ContainerId id = kStable + 1; id <= kStable + kVictims; ++id) {
      store.erase(id);
    }
  });

  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  // Post-conditions: every stable container still reads back intact.
  for (ContainerId id = 1; id <= kStable; ++id) {
    const auto back = store.read(id);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->chunk_count(), 8u);
  }
  for (ContainerId id = kStable + 1; id <= kStable + kVictims; ++id) {
    EXPECT_EQ(store.read(id), nullptr);
  }
}

}  // namespace
}  // namespace hds
