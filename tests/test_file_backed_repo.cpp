// Tests for file-backed HiDeStore repositories (config.storage_dir):
// archival containers live as individual on-disk files, reopen resumes IDs,
// deletion erases files, and save() protects the storage-dir invariant.
#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <span>

#include "core/hidestore.h"
#include "restore/faa.h"
#include "verify/fsck.h"
#include "workload/generator.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

namespace fs = std::filesystem;

using hds::testutil::TempDir;

std::vector<VersionStream> generate(std::uint32_t versions) {
  auto p = WorkloadProfile::kernel();
  p.versions = versions;
  p.chunks_per_version = 300;
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

std::size_t container_files(const fs::path& dir) {
  if (!fs::is_directory(dir / "archival")) return 0;
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir / "archival")) {
    n += entry.path().extension() == ".hdsc";
  }
  return n;
}

TEST(FileBackedRepo, ArchivalContainersAppearAsFiles) {
  TempDir dir("hds_filerepo_files");
  HiDeStoreConfig config;
  config.storage_dir = dir.path;
  HiDeStore sys(config);
  const auto versions = generate(8);
  for (const auto& vs : versions) (void)sys.backup(vs);
  EXPECT_EQ(container_files(dir.path),
            sys.archival_store().container_count());
  EXPECT_GT(container_files(dir.path), 0u);
}

TEST(FileBackedRepo, SaveLoadReopensWithoutInliningContainers) {
  TempDir dir("hds_filerepo_reopen");
  const auto versions = generate(10);
  std::uintmax_t manifest_size = 0;
  {
    HiDeStoreConfig config;
    config.storage_dir = dir.path;
    HiDeStore sys(config);
    for (const auto& vs : versions) (void)sys.backup(vs);
    sys.save(dir.path);
    manifest_size = fs::file_size(dir.path / "state.hds");
  }
  // The manifest must NOT contain the archival payload (they are files):
  // an equivalent in-memory repository serializes them inline, so its
  // manifest is larger by roughly the archival bytes.
  std::uintmax_t archival_bytes = 0;
  for (const auto& entry : fs::directory_iterator(dir.path / "archival")) {
    archival_bytes += entry.file_size();
  }
  TempDir inline_dir("hds_filerepo_reopen_inline");
  {
    HiDeStore memory_sys;  // default config: in-memory archival
    for (const auto& vs : versions) (void)memory_sys.backup(vs);
    memory_sys.save(inline_dir.path);
  }
  const auto inline_manifest = fs::file_size(inline_dir.path / "state.hds");
  EXPECT_GT(inline_manifest, manifest_size + archival_bytes / 2);

  auto sys = HiDeStore::load(dir.path);
  ASSERT_NE(sys, nullptr);
  for (std::size_t v = 0; v < versions.size(); ++v) {
    std::size_t at = 0;
    bool ok = true;
    (void)sys->restore(static_cast<VersionId>(v + 1),
                       [&](const ChunkLoc& loc,
                           std::span<const std::uint8_t> bytes) {
                         const auto& want = versions[v].chunks[at];
                         ok &= loc.fp == want.fp &&
                               bytes.size() == want.size;
                         ++at;
                       });
    EXPECT_EQ(at, versions[v].chunks.size()) << "v" << v + 1;
    EXPECT_TRUE(ok) << "v" << v + 1;
  }
}

TEST(FileBackedRepo, BackupsContinueAfterReopenWithFreshContainerIds) {
  TempDir dir("hds_filerepo_continue");
  auto p = WorkloadProfile::kernel();
  p.versions = 12;
  p.chunks_per_version = 300;
  VersionChainGenerator gen(p);
  std::vector<VersionStream> versions;
  {
    HiDeStoreConfig config;
    config.storage_dir = dir.path;
    HiDeStore sys(config);
    for (int v = 0; v < 6; ++v) {
      versions.push_back(gen.next_version());
      (void)sys.backup(versions.back());
    }
    sys.save(dir.path);
  }
  auto sys = HiDeStore::load(dir.path);
  ASSERT_NE(sys, nullptr);
  for (int v = 6; v < 12; ++v) {
    versions.push_back(gen.next_version());
    (void)sys->backup(versions.back());
  }
  // No ID collisions: every version restores, old and new.
  for (std::size_t v = 0; v < versions.size(); ++v) {
    std::size_t at = 0;
    (void)sys->restore(static_cast<VersionId>(v + 1),
                       [&](const ChunkLoc&, std::span<const std::uint8_t>) {
                         ++at;
                       });
    EXPECT_EQ(at, versions[v].chunks.size()) << "v" << v + 1;
  }
}

TEST(FileBackedRepo, ExpiryDeletesContainerFiles) {
  TempDir dir("hds_filerepo_expire");
  HiDeStoreConfig config;
  config.storage_dir = dir.path;
  HiDeStore sys(config);
  const auto versions = generate(12);
  for (const auto& vs : versions) (void)sys.backup(vs);

  const auto before = container_files(dir.path);
  const auto report = sys.delete_versions_up_to(6);
  EXPECT_GT(report.containers_erased, 0u);
  EXPECT_EQ(container_files(dir.path), before - report.containers_erased);
}

// PR acceptance: a 20-version repository restores old versions through the
// footer-index fast path with strictly fewer device bytes than the logical
// (§5.3) charge, produces byte-identical output with the fast path disabled,
// and stays fsck-clean.
TEST(FileBackedRepo, TwentyVersionRepoRestoresWithPartialReads) {
  TempDir dir("hds_filerepo_io20");
  HiDeStoreConfig config;
  config.storage_dir = dir.path;
  HiDeStore sys(config);
  for (const auto& vs : generate(20)) (void)sys.backup(vs);

  const auto restore_all = [&](VersionId v) {
    RestoreConfig rc;
    FaaRestore policy(rc);
    std::vector<std::uint8_t> out;
    (void)sys.restore_range(
        v, 0, std::numeric_limits<std::uint64_t>::max(), policy,
        [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
          out.insert(out.end(), b.begin(), b.end());
        });
    return out;
  };

  // Fresh caches + counters, then restore the oldest version: its chunks
  // live in archival containers, where the fast path applies.
  sys.set_io_tuning(FileStoreTuning{});
  sys.archival_store().reset_stats();
  const auto v1_fast = restore_all(1);
  ASSERT_FALSE(v1_fast.empty());
  const auto& stats = sys.archival_store().stats();
  EXPECT_GT(stats.container_reads, 0u);
  EXPECT_GT(stats.bytes_read_physical, 0u);
  EXPECT_LT(stats.bytes_read_physical.load(), stats.bytes_read.load());

  const auto latest = sys.latest_version();
  const auto latest_fast = restore_all(latest);
  ASSERT_FALSE(latest_fast.empty());

  // Fast path fully disabled (slurp every read): identical bytes.
  FileStoreTuning strict;
  strict.partial_reads = false;
  strict.block_cache_bytes = 0;
  strict.fd_cache_slots = 0;
  sys.set_io_tuning(strict);
  EXPECT_EQ(restore_all(1), v1_fast);
  EXPECT_EQ(restore_all(latest), latest_fast);

  EXPECT_TRUE(verify::run_fsck(sys).clean());
}

TEST(FileBackedRepo, SaveIntoForeignDirectoryIsRejected) {
  TempDir dir("hds_filerepo_guard");
  TempDir other("hds_filerepo_guard_other");
  HiDeStoreConfig config;
  config.storage_dir = dir.path;
  HiDeStore sys(config);
  (void)sys.backup(generate(1)[0]);
  EXPECT_THROW(sys.save(other.path), std::invalid_argument);
  sys.save(dir.path);  // the right directory still works
}

}  // namespace
}  // namespace hds
