// Test-only temp-dir helper: unique, self-cleaning directories.
//
// ctest runs the suite with -j, so two binaries (or two runs racing a
// leftover) must never share a scratch path. Every name gets a pid +
// process-local-counter suffix, the fix test_container_store.cpp pioneered,
// now the one way every test names scratch space.
#pragma once

#include <atomic>
#include <filesystem>
#include <string>

#include <unistd.h>

namespace hds::testutil {

// <system tmp>/<name>_<pid>_<n> — unique per call within a process and
// across concurrently running test binaries.
inline std::filesystem::path unique_path(const std::string& name) {
  static std::atomic<unsigned> counter{0};
  return std::filesystem::temp_directory_path() /
         (name + "_" + std::to_string(::getpid()) + "_" +
          std::to_string(counter.fetch_add(1, std::memory_order_relaxed)));
}

// A unique_path() scratch location, cleared on construction and removed
// (recursively) on destruction. Deliberately does NOT create the directory
// — the stores under test own creation, and some tests assert on the
// not-yet-existing state. Drop-in for the per-file TempDir structs this
// replaces: same `.path` member, same construct-from-name shape.
struct TempDir {
  std::filesystem::path path;

  explicit TempDir(const std::string& name) : path(unique_path(name)) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;  // best effort: never throw from a dtor
    std::filesystem::remove_all(path, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

}  // namespace hds::testutil
