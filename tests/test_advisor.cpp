// Tests for the WorkloadAdvisor: gap classification and the window
// recommendations of paper §4 across the calibrated profiles and synthetic
// corner cases.
#include <gtest/gtest.h>

#include "core/advisor.h"
#include "workload/generator.h"

namespace hds {
namespace {

VersionStream stream_of(std::initializer_list<std::uint64_t> ids) {
  VersionStream vs;
  for (const auto id : ids) {
    vs.chunks.push_back(VersionChainGenerator::make_chunk(id));
  }
  return vs;
}

TEST(Advisor, EmptyObservationRecommendsWindowOne) {
  WorkloadAdvisor advisor;
  EXPECT_EQ(advisor.recommend(), Recommendation::kWindowOne);
}

TEST(Advisor, Gap1DuplicatesClassified) {
  WorkloadAdvisor advisor;
  advisor.observe(stream_of({1, 2, 3}));
  advisor.observe(stream_of({1, 2, 4}));
  EXPECT_EQ(advisor.report().dup_gap1, 2u);
  EXPECT_EQ(advisor.report().dup_gap2, 0u);
  EXPECT_EQ(advisor.recommend(), Recommendation::kWindowOne);
}

TEST(Advisor, Gap2DuplicatesTriggerWindowTwo) {
  WorkloadAdvisor advisor;
  advisor.observe(stream_of({1, 2, 3, 4}));
  advisor.observe(stream_of({5, 6, 7, 8}));   // 1..4 skip this version
  advisor.observe(stream_of({1, 2, 3, 4}));   // and return: gap 2
  EXPECT_EQ(advisor.report().dup_gap2, 4u);
  EXPECT_EQ(advisor.recommend(), Recommendation::kWindowTwo);
}

TEST(Advisor, DeepHistoryRedundancyNotRecommended) {
  WorkloadAdvisor advisor;
  advisor.observe(stream_of({1, 2, 3, 4}));
  advisor.observe(stream_of({10, 11, 12, 13}));
  advisor.observe(stream_of({20, 21, 22, 23}));
  advisor.observe(stream_of({1, 2, 3, 4}));  // gap 3: outside both windows
  EXPECT_EQ(advisor.report().dup_gap_deeper, 4u);
  EXPECT_EQ(advisor.recommend(), Recommendation::kNotRecommended);
}

TEST(Advisor, IntraVersionDuplicatesDoNotCount) {
  WorkloadAdvisor advisor;
  advisor.observe(stream_of({1, 1, 1, 2}));
  EXPECT_EQ(advisor.report().duplicate_chunks, 0u);
}

TEST(Advisor, ToleranceGovernsTheVerdict) {
  // 1 gap-2 duplicate out of 100: below a 2% tolerance, above a 0.5% one.
  auto feed = [](WorkloadAdvisor& advisor) {
    VersionStream v1, v2, v3;
    for (std::uint64_t i = 0; i < 100; ++i) {
      v1.chunks.push_back(VersionChainGenerator::make_chunk(i));
      // Chunk 0 skips v2; the rest flow through.
      v2.chunks.push_back(VersionChainGenerator::make_chunk(i == 0 ? 1000 : i));
      v3.chunks.push_back(VersionChainGenerator::make_chunk(i));
    }
    advisor.observe(v1);
    advisor.observe(v2);
    advisor.observe(v3);
  };
  WorkloadAdvisor tolerant(0.02);
  feed(tolerant);
  EXPECT_EQ(tolerant.recommend(), Recommendation::kWindowOne);
  WorkloadAdvisor strict(0.005);
  feed(strict);
  EXPECT_EQ(strict.recommend(), Recommendation::kWindowTwo);
}

// The calibrated profiles must be diagnosed the way the paper diagnoses
// their real counterparts (Figure 3): kernel/gcc/fslhomes → window 1,
// macos → window 2.
class AdvisorProfileTest
    : public ::testing::TestWithParam<std::pair<const char*, Recommendation>> {
};

TEST_P(AdvisorProfileTest, ProfileDiagnosis) {
  const auto [name, expected] = GetParam();
  WorkloadProfile profile;
  if (std::string(name) == "kernel") profile = WorkloadProfile::kernel();
  if (std::string(name) == "gcc") profile = WorkloadProfile::gcc();
  if (std::string(name) == "fslhomes") profile = WorkloadProfile::fslhomes();
  if (std::string(name) == "macos") profile = WorkloadProfile::macos();
  profile.versions = 15;
  profile.chunks_per_version = 1000;

  WorkloadAdvisor advisor;
  VersionChainGenerator gen(profile);
  for (std::uint32_t v = 0; v < profile.versions; ++v) {
    advisor.observe(gen.next_version());
  }
  EXPECT_EQ(advisor.recommend(), expected);
  EXPECT_EQ(advisor.report().dup_gap_deeper, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperProfiles, AdvisorProfileTest,
    ::testing::Values(std::pair{"kernel", Recommendation::kWindowOne},
                      std::pair{"gcc", Recommendation::kWindowOne},
                      std::pair{"fslhomes", Recommendation::kWindowOne},
                      std::pair{"macos", Recommendation::kWindowTwo}),
    [](const auto& suite_info) { return std::string(suite_info.param.first); });

}  // namespace
}  // namespace hds
