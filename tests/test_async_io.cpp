// Tests for the async restore data plane (DESIGN.md §13): backend parity
// (sync / threads / io_uring produce byte-identical reads with identical
// logical accounting), forced fallback via HDS_IO_BACKEND, short-read and
// EINTR injection through the resubmission paths, CrashInjector-driven
// device failure, O_DIRECT round trips, per-stream ReadMeter attribution
// under concurrent restore streams, and the RestoreTuner control loop.
// Runs under TSan via the `concurrency` label.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "restore/read_ahead.h"
#include "restore/tuner.h"
#include "storage/async_io.h"
#include "storage/container_store.h"
#include "storage/durable.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

std::filesystem::path fresh_dir(const char* name) {
  const auto dir = hds::testutil::unique_path(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::filesystem::path write_patterned_file(const std::filesystem::path& dir,
                                           std::size_t size) {
  const auto path = dir / "data.bin";
  std::ofstream out(path, std::ios::binary);
  for (std::size_t i = 0; i < size; ++i) {
    out.put(static_cast<char>(i * 31 + 7));
  }
  return path;
}

std::vector<std::uint8_t> expected_bytes(std::uint64_t offset,
                                         std::size_t len) {
  std::vector<std::uint8_t> bytes(len);
  for (std::size_t i = 0; i < len; ++i) {
    bytes[i] = static_cast<std::uint8_t>((offset + i) * 31 + 7);
  }
  return bytes;
}

Container make_container(std::uint64_t seed, std::size_t chunks = 8) {
  Container c(0, 256 * 1024);
  Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < chunks; ++i) {
    std::vector<std::uint8_t> data(2048 + rng.next_below(4096));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    c.add(Fingerprint::from_seed(seed * 100 + i), data);
  }
  return c;
}

// Every backend buildable on this machine (uring only when the kernel
// cooperates). Parity tests iterate this list.
std::vector<aio::Backend> available_backends() {
  std::vector<aio::Backend> backends{aio::Backend::kSync,
                                     aio::Backend::kThreads};
  if (aio::uring_supported()) backends.push_back(aio::Backend::kUring);
  return backends;
}

// --- Backend unit tests ---------------------------------------------------

TEST(AsyncIoBackend, ParseAndNameRoundTrip) {
  EXPECT_EQ(aio::parse_backend("sync"), aio::Backend::kSync);
  EXPECT_EQ(aio::parse_backend("threads"), aio::Backend::kThreads);
  EXPECT_EQ(aio::parse_backend("uring"), aio::Backend::kUring);
  EXPECT_EQ(aio::parse_backend("auto"), aio::Backend::kAuto);
  EXPECT_FALSE(aio::parse_backend("aio").has_value());
  EXPECT_FALSE(aio::parse_backend("").has_value());
  for (const auto kind : available_backends()) {
    EXPECT_EQ(aio::parse_backend(aio::backend_name(kind)), kind);
  }
}

TEST(AsyncIoBackend, AutoResolvesToConcreteBackend) {
  const auto backend = aio::make_backend(aio::Backend::kAuto);
  ASSERT_NE(backend, nullptr);
  // Never kAuto: auto is a request, not a backend.
  EXPECT_NE(backend->kind(), aio::Backend::kAuto);
  if (aio::uring_supported()) {
    EXPECT_EQ(backend->kind(), aio::Backend::kUring);
  } else {
    EXPECT_EQ(backend->kind(), aio::Backend::kThreads);
  }
}

TEST(AsyncIoBackend, EnvOverrideForcesFallback) {
  ::setenv("HDS_IO_BACKEND", "sync", 1);
  EXPECT_EQ(aio::make_backend(aio::Backend::kAuto)->kind(),
            aio::Backend::kSync);
  ::setenv("HDS_IO_BACKEND", "threads", 1);
  EXPECT_EQ(aio::make_backend(aio::Backend::kAuto)->kind(),
            aio::Backend::kThreads);
  // Garbage is ignored (warned), not fatal: auto still resolves.
  ::setenv("HDS_IO_BACKEND", "bogus", 1);
  EXPECT_NE(aio::make_backend(aio::Backend::kAuto)->kind(),
            aio::Backend::kAuto);
  ::unsetenv("HDS_IO_BACKEND");
  // An explicit (non-auto) request is never overridden by the env.
  ::setenv("HDS_IO_BACKEND", "threads", 1);
  EXPECT_EQ(aio::make_backend(aio::Backend::kSync)->kind(),
            aio::Backend::kSync);
  ::unsetenv("HDS_IO_BACKEND");
}

TEST(AsyncIoBackend, BatchReadsFillExactBytesOnEveryBackend) {
  const auto dir = fresh_dir("hds_aio_batch");
  const std::size_t file_size = 64 * 1024;
  const auto path = write_patterned_file(dir, file_size);
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  for (const auto kind : available_backends()) {
    SCOPED_TRACE(aio::backend_name(kind));
    const auto backend = aio::make_backend(kind, 8);
    // More ops than queue depth: forces multiple submission windows.
    std::vector<std::vector<std::uint8_t>> buffers;
    std::vector<aio::ReadOp> ops;
    for (std::uint64_t i = 0; i < 20; ++i) {
      const std::uint64_t offset = i * 3001;
      buffers.emplace_back(1500 + i * 17);
      ops.push_back({fd, offset, buffers.back().data(),
                     buffers.back().size(), /*reg_key=*/0, 0, 0});
    }
    // EOF inside the range: error stays 0, filled is the readable tail.
    buffers.emplace_back(4096);
    ops.push_back({fd, file_size - 100, buffers.back().data(), 4096,
                   /*reg_key=*/0, 0, 0});
    // Fully past EOF: zero bytes, still not an error.
    buffers.emplace_back(128);
    ops.push_back({fd, file_size + 10, buffers.back().data(), 128,
                   /*reg_key=*/0, 0, 0});
    // Bad descriptor: per-op error, must not poison the rest of the batch.
    buffers.emplace_back(64);
    ops.push_back({-1, 0, buffers.back().data(), 64, /*reg_key=*/0, 0, 0});

    backend->read_batch(ops);

    for (std::size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(ops[i].complete()) << "op " << i << ": " << ops[i].error;
      EXPECT_EQ(buffers[i], expected_bytes(ops[i].offset, ops[i].len));
    }
    EXPECT_EQ(ops[20].error, 0);
    EXPECT_EQ(ops[20].filled, 100u);
    EXPECT_EQ(std::vector<std::uint8_t>(buffers[20].begin(),
                                        buffers[20].begin() + 100),
              expected_bytes(file_size - 100, 100));
    EXPECT_EQ(ops[21].error, 0);
    EXPECT_EQ(ops[21].filled, 0u);
    EXPECT_EQ(ops[22].error, EBADF);
    const auto stats = backend->stats();
    EXPECT_GE(stats.batches, 1u);
    EXPECT_EQ(stats.reads, ops.size());
  }
  ::close(fd);
}

TEST(AsyncIoBackend, InjectedShortReadsAndEintrHeal) {
  const auto dir = fresh_dir("hds_aio_faults");
  const auto path = write_patterned_file(dir, 32 * 1024);
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  for (const auto kind : available_backends()) {
    SCOPED_TRACE(aio::backend_name(kind));
    const auto backend = aio::make_backend(kind, 4);
    aio::set_fault_plan({/*short_read_every_n=*/2, /*eintr_every_n=*/3});
    std::vector<std::vector<std::uint8_t>> buffers;
    std::vector<aio::ReadOp> ops;
    for (std::uint64_t i = 0; i < 12; ++i) {
      buffers.emplace_back(2000);
      ops.push_back({fd, i * 2500, buffers.back().data(), 2000,
                     /*reg_key=*/0, 0, 0});
    }
    backend->read_batch(ops);
    aio::clear_fault_plan();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      ASSERT_TRUE(ops[i].complete()) << "op " << i << ": " << ops[i].error;
      EXPECT_EQ(buffers[i], expected_bytes(ops[i].offset, ops[i].len));
    }
    const auto stats = backend->stats();
    EXPECT_GT(stats.short_retries, 0u);
    EXPECT_GT(stats.eintr_retries, 0u);
  }
  ::close(fd);
}

TEST(AsyncIoBackend, CrashInjectorTurnsBatchesIntoDeviceErrors) {
  const auto dir = fresh_dir("hds_aio_crash");
  const auto path = write_patterned_file(dir, 8 * 1024);
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  for (const auto kind : available_backends()) {
    SCOPED_TRACE(aio::backend_name(kind));
    const auto backend = aio::make_backend(kind, 4);
    durable::CrashInjector::arm(1, durable::FaultMode::kFail);
    std::vector<std::uint8_t> buffer(1024);
    aio::ReadOp op{fd, 0, buffer.data(), buffer.size(), 0, 0, 0};
    backend->read_batch({&op, 1});
    durable::CrashInjector::disarm();
    EXPECT_EQ(op.error, EIO);
    // The device recovers: the same backend reads fine afterwards.
    op = {fd, 0, buffer.data(), buffer.size(), 0, 0, 0};
    backend->read_batch({&op, 1});
    EXPECT_TRUE(op.complete());
    EXPECT_EQ(buffer, expected_bytes(0, buffer.size()));
  }
  ::close(fd);
}

// --- Store-level parity ---------------------------------------------------

class AsyncStoreParity : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_dir("hds_aio_parity");
    FileContainerStore seed(dir_);
    for (std::uint64_t s = 1; s <= 6; ++s) {
      const auto id = seed.write(make_container(s));
      for (std::size_t i = 0; i < 8; ++i) {
        const auto fp = Fingerprint::from_seed(s * 100 + i);
        const auto got = seed.read(id);
        ASSERT_NE(got, nullptr);
        const auto bytes = got->read(fp);
        ASSERT_TRUE(bytes.has_value());
        reference_[id][fp].assign(bytes->begin(), bytes->end());
      }
      ids_.push_back(id);
    }
  }

  // Reads every container (full and as a 3-chunk partial) through a store
  // configured with `tuning`; checks bytes against the reference and
  // returns the store's logical read accounting.
  std::pair<std::uint64_t, std::uint64_t> run_reads(
      const FileStoreTuning& tuning) {
    FileContainerStore store(dir_, /*index_existing=*/true, tuning);
    for (const auto id : ids_) {
      const auto full = store.read(id);
      if (full == nullptr) {
        ADD_FAILURE() << "full read failed for container " << id;
        continue;
      }
      std::vector<Fingerprint> subset;
      for (const auto& [fp, bytes] : reference_[id]) {
        if (subset.size() < 3) subset.push_back(fp);
        const auto read = full->read(fp);
        if (!read.has_value()) {
          ADD_FAILURE() << "chunk missing from full read";
          continue;
        }
        EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), read->begin(),
                               read->end()));
      }
      const auto partial = store.read_chunks(id, subset);
      if (partial == nullptr) {
        ADD_FAILURE() << "partial read failed for container " << id;
        continue;
      }
      for (const auto& fp : subset) {
        const auto read = partial->read(fp);
        if (!read.has_value()) {
          ADD_FAILURE() << "chunk missing from partial read";
          continue;
        }
        const auto& bytes = reference_[id][fp];
        EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), read->begin(),
                               read->end()));
      }
    }
    return {store.stats().container_reads, store.stats().bytes_read};
  }

  std::filesystem::path dir_;
  std::vector<ContainerId> ids_;
  std::map<ContainerId, std::map<Fingerprint, std::vector<std::uint8_t>>>
      reference_;
};

TEST_F(AsyncStoreParity, RestoredBytesAndLogicalStatsMatchAcrossBackends) {
  FileStoreTuning tuning;
  tuning.io_backend = aio::Backend::kSync;
  const auto baseline = run_reads(tuning);
  EXPECT_EQ(baseline.first, ids_.size() * 2);  // one full + one partial each
  for (const auto kind : available_backends()) {
    SCOPED_TRACE(aio::backend_name(kind));
    tuning.io_backend = kind;
    // Logical container_reads and bytes_read are backend-invariant (§5.3
    // accounting); only bytes_read_physical may differ.
    EXPECT_EQ(run_reads(tuning), baseline);
  }
}

TEST_F(AsyncStoreParity, DirectIoRoundTripsOnEveryBackend) {
  for (const auto kind : available_backends()) {
    SCOPED_TRACE(aio::backend_name(kind));
    FileStoreTuning tuning;
    tuning.io_backend = kind;
    // O_DIRECT where the filesystem allows it, silent buffered fallback
    // where it does not (tmpfs) — bytes must be right either way.
    tuning.direct_io = true;
    FileStoreTuning baseline_tuning;
    baseline_tuning.io_backend = aio::Backend::kSync;
    EXPECT_EQ(run_reads(tuning), run_reads(baseline_tuning));
  }
}

TEST_F(AsyncStoreParity, ReadMeterAttributesCallsToTheCaller) {
  FileContainerStore store(dir_, /*index_existing=*/true);
  ReadMeter a;
  ReadMeter b;
  ASSERT_NE(store.read(ids_[0], &a), nullptr);
  ASSERT_NE(store.read(ids_[1], &b), nullptr);
  ASSERT_NE(store.read(ids_[2], &b), nullptr);
  EXPECT_EQ(a.container_reads.load(), 1u);
  EXPECT_EQ(b.container_reads.load(), 2u);
  EXPECT_GT(a.bytes_read.load(), 0u);
  // Meters partition the store's global accounting exactly.
  EXPECT_EQ(a.container_reads.load() + b.container_reads.load(),
            store.stats().container_reads);
  EXPECT_EQ(a.bytes_read.load() + b.bytes_read.load(),
            store.stats().bytes_read);
}

// Two concurrent restore streams hammer one shared store (the multi-stream
// contract the async data plane exists for): byte-identical results and
// exact per-stream accounting, with no cross-pollution between meters.
TEST_F(AsyncStoreParity, ConcurrentStreamsKeepPerStreamAccounting) {
  for (const auto kind : available_backends()) {
    SCOPED_TRACE(aio::backend_name(kind));
    FileStoreTuning tuning;
    tuning.io_backend = kind;
    tuning.block_cache_bytes = 0;  // every read hits the device path
    FileContainerStore store(dir_, /*index_existing=*/true, tuning);
    constexpr int kRounds = 8;
    ReadMeter meters[2];
    std::atomic<int> failures{0};
    auto stream = [&](int which, bool reversed) {
      auto order = ids_;
      if (reversed) std::reverse(order.begin(), order.end());
      for (int round = 0; round < kRounds; ++round) {
        for (const auto id : order) {
          const auto got = store.read(id, &meters[which]);
          if (got == nullptr) {
            failures.fetch_add(1);
            continue;
          }
          for (const auto& [fp, bytes] : reference_[id]) {
            const auto read = got->read(fp);
            if (!read.has_value() ||
                !std::equal(bytes.begin(), bytes.end(), read->begin(),
                            read->end())) {
              failures.fetch_add(1);
            }
          }
        }
      }
    };
    std::thread other(stream, 1, true);
    stream(0, false);
    other.join();
    EXPECT_EQ(failures.load(), 0);
    const auto per_stream =
        static_cast<std::uint64_t>(kRounds) * ids_.size();
    EXPECT_EQ(meters[0].container_reads.load(), per_stream);
    EXPECT_EQ(meters[1].container_reads.load(), per_stream);
    EXPECT_EQ(store.stats().container_reads, 2 * per_stream);
    EXPECT_EQ(meters[0].bytes_read.load(), meters[1].bytes_read.load());
  }
}

// Two ReadAheadFetcher streams with overlapping prefetch workers against
// one store: the fetcher pipeline above the async backend must stay
// byte-correct and exactly-once under real thread interleavings.
TEST_F(AsyncStoreParity, ConcurrentPrefetchedStreamsStayExactlyOnce) {
  struct StoreFetcher final : ContainerFetcher {
    StoreFetcher(FileContainerStore& s, ReadMeter& m) : store(s), meter(m) {}
    std::shared_ptr<const Container> fetch(const ChunkLoc& loc) override {
      return store.read(loc.cid, &meter);
    }
    FileContainerStore& store;
    ReadMeter& meter;
  };
  FileStoreTuning tuning;
  tuning.block_cache_bytes = 0;
  FileContainerStore store(dir_, /*index_existing=*/true, tuning);
  std::vector<ChunkLoc> locs;
  for (const auto id : ids_) {
    for (std::size_t i = 0; i < 8; ++i) {
      ChunkLoc loc;
      loc.fp = Fingerprint::from_seed(static_cast<std::uint64_t>(id) * 100 +
                                      i);
      loc.cid = id;
      locs.push_back(loc);
    }
  }
  ReadMeter meters[2];
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> wasted_total{0};
  auto stream = [&](int which) {
    StoreFetcher base(store, meters[which]);
    ReadAheadConfig config;
    config.depth = 4;
    config.in_flight = 3;
    ReadAheadFetcher fetcher(base, locs, config);
    // One fetch per container run, like a policy whose cache holds the
    // current container across its chunks (the stream groups by cid).
    std::shared_ptr<const Container> current;
    ContainerId current_id = 0;
    for (const auto& loc : locs) {
      if (current == nullptr || loc.cid != current_id) {
        current = fetcher.fetch(loc);
        current_id = loc.cid;
      }
      if (current == nullptr || !current->contains(loc.fp)) {
        failures.fetch_add(1);
      }
    }
    fetcher.stop();
    // The satellite accounting contract: this stream's meter charges it for
    // exactly its consumed containers plus its own wasted prefetches (reads
    // the prefetcher issued after the consumer had already passed that
    // point) — subtracting waste recovers the serial run's count, with no
    // cross-pollution from the concurrent stream.
    EXPECT_EQ(fetcher.prefetch_hits() + fetcher.prefetch_misses(),
              ids_.size());
    EXPECT_EQ(meters[which].container_reads.load(),
              ids_.size() + fetcher.wasted_reads());
    wasted_total.fetch_add(fetcher.wasted_reads());
  };
  std::thread other(stream, 1);
  stream(0);
  other.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.stats().container_reads,
            2 * ids_.size() + wasted_total.load());
  EXPECT_EQ(meters[0].container_reads.load() +
                meters[1].container_reads.load(),
            store.stats().container_reads);
}

// --- RestoreTuner control loop --------------------------------------------

TunerState tuned_state() {
  TunerState state;
  state.tuning.block_cache_bytes = 32ull << 20;
  state.tuning.fd_cache_slots = 64;
  state.prefetch_depth = 8;
  state.prefetch_in_flight = 2;
  return state;
}

obs::OpProfile restore_op(std::uint64_t logical, std::uint64_t physical) {
  obs::OpProfile op;
  op.kind = "restore";
  op.bytes_logical = logical;
  op.bytes_physical = physical;
  return op;
}

TEST(RestoreTuner, FirstObservationOnlyCollectsBaseline) {
  RestoreTuner tuner(tuned_state());
  FileContainerStore::IoPathStats io;
  io.block_cache_hits = 10;
  io.block_cache_misses = 90;
  const auto decision = tuner.observe(restore_op(1 << 20, 3 << 20), io);
  EXPECT_FALSE(decision.changed);
  EXPECT_EQ(tuner.adjustments(), 0u);
}

TEST(RestoreTuner, GrowsBlockCacheWhileThrashing) {
  RestoreTuner tuner(tuned_state());
  FileContainerStore::IoPathStats io;
  (void)tuner.observe(restore_op(1 << 20, 1 << 20), io);
  // Low hit rate AND the misses became physical reads: budget doubles.
  io.block_cache_hits = 10;
  io.block_cache_misses = 90;
  const auto decision = tuner.observe(restore_op(1 << 20, 3 << 20), io);
  EXPECT_TRUE(decision.changed);
  EXPECT_EQ(decision.state.tuning.block_cache_bytes, 64ull << 20);
  EXPECT_NE(decision.reason.find("block_cache"), std::string::npos);
  // Same signal again compounds from the new state, up to the cap.
  io.block_cache_hits += 10;
  io.block_cache_misses += 90;
  EXPECT_EQ(tuner.observe(restore_op(1 << 20, 3 << 20), io)
                .state.tuning.block_cache_bytes,
            128ull << 20);
}

TEST(RestoreTuner, ShrinksColdOversizedBlockCache) {
  RestoreTuner tuner(tuned_state());
  FileContainerStore::IoPathStats io;
  (void)tuner.observe(restore_op(1 << 20, 0), io);
  io.block_cache_hits = 100;
  io.block_cache_misses = 1;
  io.block_cache_bytes = 1 << 20;  // resident far under the 32 MiB budget
  const auto decision = tuner.observe(restore_op(1 << 20, 0), io);
  EXPECT_TRUE(decision.changed);
  EXPECT_EQ(decision.state.tuning.block_cache_bytes, 16ull << 20);
}

TEST(RestoreTuner, GrowsFdCacheOnChurnButOnlyOneKnobPerRound) {
  RestoreTuner tuner(tuned_state());
  FileContainerStore::IoPathStats io;
  (void)tuner.observe(restore_op(1 << 20, 1 << 20), io);
  // Fd churn AND block-cache thrash: the block cache (checked first) moves,
  // fd slots wait for the next round — coordinate descent.
  io.block_cache_hits = 10;
  io.block_cache_misses = 90;
  io.fd_cache_opens = 50;
  io.fd_cache_hits = 50;
  auto decision = tuner.observe(restore_op(1 << 20, 3 << 20), io);
  EXPECT_EQ(decision.state.tuning.block_cache_bytes, 64ull << 20);
  EXPECT_EQ(decision.state.tuning.fd_cache_slots, 64u);
  // Next round: block cache healthy AND fully resident (so the shrink rule
  // stays quiet), churn persists → fd slots double.
  io.block_cache_hits += 100;
  io.block_cache_bytes = 48ull << 20;
  io.fd_cache_opens += 50;
  io.fd_cache_hits += 50;
  decision = tuner.observe(restore_op(1 << 20, 1 << 20), io);
  EXPECT_TRUE(decision.changed);
  EXPECT_EQ(decision.state.tuning.fd_cache_slots, 128u);
}

TEST(RestoreTuner, PrefetchWindowFollowsSaturationAndWaste) {
  RestoreTuner tuner(tuned_state());
  FileContainerStore::IoPathStats io;
  (void)tuner.observe(restore_op(1 << 20, 0), io);
  // Buffer pegged at its cap with nothing wasted: window doubles and the
  // in-flight worker count follows (depth/4, capped).
  auto op = restore_op(1 << 20, 0);
  op.container_reads = 100;
  op.cache_wasted = 0;
  op.queue_depth_peak = 8.0;
  auto decision = tuner.observe(op, io);
  EXPECT_TRUE(decision.changed);
  EXPECT_EQ(decision.state.prefetch_depth, 16u);
  EXPECT_EQ(decision.state.prefetch_in_flight, 4u);
  EXPECT_GE(decision.state.tuning.io_depth, 32u);
  // Mostly-wasted prefetches: the window halves.
  op.container_reads = 10;
  op.cache_wasted = 30;
  op.queue_depth_peak = 2.0;
  decision = tuner.observe(op, io);
  EXPECT_TRUE(decision.changed);
  EXPECT_EQ(decision.state.prefetch_depth, 8u);
}

TEST(RestoreTuner, RespectsLimitsAndNeverEnablesPrefetchItself) {
  TunerLimits limits;
  limits.max_block_cache_bytes = 64ull << 20;
  auto state = tuned_state();
  state.tuning.block_cache_bytes = 64ull << 20;
  state.prefetch_depth = 0;  // read-ahead off: the tuner must not turn it on
  RestoreTuner tuner(state, limits);
  FileContainerStore::IoPathStats io;
  (void)tuner.observe(restore_op(1 << 20, 1 << 20), io);
  io.block_cache_hits = 10;
  io.block_cache_misses = 90;
  auto op = restore_op(1 << 20, 3 << 20);
  op.queue_depth_peak = 100.0;
  const auto decision = tuner.observe(op, io);
  EXPECT_EQ(decision.state.tuning.block_cache_bytes, 64ull << 20);
  EXPECT_EQ(decision.state.prefetch_depth, 0u);
}

}  // namespace
}  // namespace hds
