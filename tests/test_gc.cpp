// Tests for mark-and-sweep garbage collection on the traditional pipeline:
// space reclamation, survivor integrity, index consistency after remapping,
// and the per-chunk effort the paper's §5.5 contrasts with HiDeStore.
#include <gtest/gtest.h>

#include "backup/gc.h"
#include "workload/generator.h"

namespace hds {
namespace {

std::vector<VersionStream> generate(std::uint32_t versions,
                                    std::size_t chunks) {
  auto p = WorkloadProfile::kernel();
  p.versions = versions;
  p.chunks_per_version = chunks;
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

void expect_exact_restore(DedupPipeline& sys, VersionId version,
                          const VersionStream& original) {
  std::size_t at = 0;
  bool ok = true;
  const auto report = sys.restore(
      version, [&](const ChunkLoc& loc, std::span<const std::uint8_t> bytes) {
        if (at < original.chunks.size()) {
          const auto& want = original.chunks[at];
          ok &= loc.fp == want.fp && bytes.size() == want.size;
        }
        ++at;
      });
  EXPECT_EQ(at, original.chunks.size()) << "version " << version;
  EXPECT_TRUE(ok) << "version " << version;
  EXPECT_EQ(report.stats.failed_chunks, 0u) << "version " << version;
}

class GcTest : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(GcTest, SurvivorsRestoreExactlyAfterCollection) {
  const auto versions = generate(12, 400);
  auto sys = make_baseline(GetParam());
  for (const auto& vs : versions) (void)sys->backup(vs);

  const auto report = collect_garbage(*sys, 6);
  EXPECT_EQ(report.versions_deleted, 6u);
  EXPECT_GT(report.chunks_marked, 0u);
  EXPECT_GT(report.chunks_scanned, 0u);

  for (std::size_t v = 6; v < versions.size(); ++v) {
    expect_exact_restore(*sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

TEST_P(GcTest, BackupsAfterCollectionStayCorrect) {
  auto p = WorkloadProfile::kernel();
  p.versions = 14;
  p.chunks_per_version = 400;
  VersionChainGenerator gen(p);
  std::vector<VersionStream> versions;
  for (int v = 0; v < 10; ++v) versions.push_back(gen.next_version());

  auto sys = make_baseline(GetParam());
  for (const auto& vs : versions) (void)sys->backup(vs);
  (void)collect_garbage(*sys, 5);

  // Keep backing up after GC: the (patched) index must keep producing
  // locations that restore correctly.
  for (int v = 0; v < 4; ++v) {
    versions.push_back(gen.next_version());
    (void)sys->backup(versions.back());
  }
  for (std::size_t v = 10; v < versions.size(); ++v) {
    expect_exact_restore(*sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(Indexes, GcTest,
                         ::testing::Values(BaselineKind::kDdfs,
                                           BaselineKind::kSparse,
                                           BaselineKind::kSilo),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case BaselineKind::kDdfs: return "ddfs";
                             case BaselineKind::kSparse: return "sparse";
                             case BaselineKind::kSilo: return "silo";
                             default: return "other";
                           }
                         });

TEST(Gc, ReclaimsSpaceAndErasesDeadContainers) {
  const auto versions = generate(15, 500);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) (void)sys->backup(vs);

  const auto containers_before = sys->store().container_count();
  const auto report = collect_garbage(*sys, 10);
  EXPECT_GT(report.bytes_reclaimed, 0u);
  EXPECT_GT(report.containers_erased + report.containers_rewritten, 0u);
  EXPECT_LE(sys->store().container_count(), containers_before);
}

TEST(Gc, NeverDeletesNewestVersion) {
  const auto versions = generate(5, 200);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) (void)sys->backup(vs);
  const auto report = collect_garbage(*sys, 99);
  EXPECT_EQ(report.versions_deleted, 4u);
  expect_exact_restore(*sys, 5, versions[4]);
}

TEST(Gc, NoopWhenNothingExpires) {
  const auto versions = generate(5, 200);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) (void)sys->backup(vs);
  const auto report = collect_garbage(*sys, 0);
  EXPECT_EQ(report.versions_deleted, 0u);
  EXPECT_EQ(report.containers_erased, 0u);
  EXPECT_EQ(report.bytes_reclaimed, 0u);
}

TEST(Gc, RewriteThresholdKeepsMostlyLiveContainers) {
  const auto versions = generate(10, 400);
  auto conservative = make_baseline(BaselineKind::kDdfs);
  auto aggressive = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) {
    (void)conservative->backup(vs);
    (void)aggressive->backup(vs);
  }
  GcConfig keep;
  keep.rewrite_dead_fraction = 0.99;  // almost never rewrite
  GcConfig rewrite;
  rewrite.rewrite_dead_fraction = 0.0;  // always rewrite mixed containers
  const auto report_keep = collect_garbage(*conservative, 5, keep);
  const auto report_rewrite = collect_garbage(*aggressive, 5, rewrite);
  EXPECT_LE(report_keep.containers_rewritten,
            report_rewrite.containers_rewritten);
  EXPECT_LE(report_keep.bytes_reclaimed, report_rewrite.bytes_reclaimed);
}

TEST(Gc, EmptyPipelineIsSafe) {
  auto sys = make_baseline(BaselineKind::kDdfs);
  const auto report = collect_garbage(*sys, 10);
  EXPECT_EQ(report.versions_deleted, 0u);
}

}  // namespace
}  // namespace hds
