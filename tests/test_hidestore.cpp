// Tests for HiDeStore itself: exact round trips for every version, dedup
// ratio parity with exact dedup (the paper's headline claim), zero index
// I/O and memory, the window-2 macos behavior, restore locality of the
// newest version, recipe flattening, and GC-free deletion.
#include <gtest/gtest.h>

#include <set>

#include "backup/pipeline.h"
#include "core/hidestore.h"
#include "restore/basic_caches.h"
#include "restore/faa.h"
#include "workload/generator.h"

namespace hds {
namespace {

std::vector<VersionStream> generate(WorkloadProfile p) {
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < p.versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

WorkloadProfile small_kernel(std::uint32_t versions = 12,
                             std::size_t chunks = 400) {
  auto p = WorkloadProfile::kernel();
  p.versions = versions;
  p.chunks_per_version = chunks;
  return p;
}

void expect_exact_restore(HiDeStore& sys, VersionId version,
                          const VersionStream& original) {
  std::size_t at = 0;
  bool ok = true;
  const auto report = sys.restore(
      version, [&](const ChunkLoc& loc, std::span<const std::uint8_t> bytes) {
        if (at < original.chunks.size()) {
          const auto& want = original.chunks[at];
          if (loc.fp != want.fp || bytes.size() != want.size) {
            ok = false;
          } else {
            const auto expect = want.materialize();
            ok &= std::equal(bytes.begin(), bytes.end(), expect.begin());
          }
        }
        ++at;
      });
  EXPECT_EQ(at, original.chunks.size()) << "version " << version;
  EXPECT_TRUE(ok) << "version " << version;
  EXPECT_EQ(report.stats.restored_bytes, original.logical_bytes());
}

TEST(HiDeStore, RoundTripEveryVersion) {
  const auto versions = generate(small_kernel());
  HiDeStore sys;
  for (const auto& vs : versions) (void)sys.backup(vs);
  for (std::size_t v = 0; v < versions.size(); ++v) {
    expect_exact_restore(sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

TEST(HiDeStore, DedupRatioMatchesExactDedup) {
  // The headline claim: no on-disk index, yet the same dedup ratio as DDFS
  // on window-1 workloads.
  const auto versions = generate(small_kernel(20, 500));
  HiDeStore sys;
  auto ddfs = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) {
    (void)sys.backup(vs);
    (void)ddfs->backup(vs);
  }
  EXPECT_EQ(sys.total_stored_bytes(), ddfs->total_stored_bytes());
  EXPECT_DOUBLE_EQ(sys.dedup_ratio(), ddfs->dedup_ratio());
}

TEST(HiDeStore, ZeroIndexLookupsAndMemory) {
  const auto versions = generate(small_kernel(8));
  HiDeStore sys;
  for (const auto& vs : versions) {
    const auto report = sys.backup(vs);
    EXPECT_EQ(report.disk_lookups, 0u);
    EXPECT_EQ(report.index_memory_bytes, 0u);
  }
  // The transient cache is bounded by ~2 versions of 28-byte entries.
  EXPECT_LE(sys.cache_memory_bytes(),
            2 * versions[0].chunks.size() * 4 * kRecipeEntrySize);
}

TEST(HiDeStore, MacosWindowTwoRecoversDedupRatio) {
  auto profile = WorkloadProfile::macos();
  profile.versions = 15;
  profile.chunks_per_version = 600;
  const auto versions = generate(profile);

  auto ddfs = make_baseline(BaselineKind::kDdfs);
  HiDeStoreConfig w1;
  w1.cache_window = 1;
  HiDeStoreConfig w2;
  w2.cache_window = 2;
  HiDeStore sys_w1(w1), sys_w2(w2);
  for (const auto& vs : versions) {
    (void)ddfs->backup(vs);
    (void)sys_w1.backup(vs);
    (void)sys_w2.backup(vs);
  }
  // Window 1 re-stores skip-chunks; window 2 matches exact dedup.
  EXPECT_GT(sys_w1.total_stored_bytes(), ddfs->total_stored_bytes());
  EXPECT_EQ(sys_w2.total_stored_bytes(), ddfs->total_stored_bytes());
}

TEST(HiDeStore, WindowTwoRoundTripsEveryVersion) {
  auto profile = WorkloadProfile::macos();
  profile.versions = 10;
  profile.chunks_per_version = 400;
  const auto versions = generate(profile);
  HiDeStoreConfig config;
  config.cache_window = 2;
  HiDeStore sys(config);
  for (const auto& vs : versions) (void)sys.backup(vs);
  for (std::size_t v = 0; v < versions.size(); ++v) {
    expect_exact_restore(sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

TEST(HiDeStore, NewestVersionRestoresWithFewReads) {
  const auto versions = generate(small_kernel(20, 800));
  HiDeStore sys;
  auto ddfs = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) {
    (void)sys.backup(vs);
    (void)ddfs->backup(vs);
  }
  auto sink = [](const ChunkLoc&, std::span<const std::uint8_t>) {};
  const auto newest = static_cast<VersionId>(versions.size());
  const auto hds_report = sys.restore(newest, sink);
  const auto ddfs_report = ddfs->restore(newest, sink);
  // Physical locality: the hot set is dense, the baseline is fragmented.
  EXPECT_LT(hds_report.stats.container_reads,
            ddfs_report.stats.container_reads / 2);
  EXPECT_GT(hds_report.stats.speed_factor(),
            ddfs_report.stats.speed_factor());
}

TEST(HiDeStore, FlattenPreservesRestoreExactly) {
  const auto versions = generate(small_kernel(10));
  HiDeStore sys;
  for (const auto& vs : versions) (void)sys.backup(vs);

  const auto updated = sys.flatten_recipes();
  EXPECT_GT(updated, 0u);
  for (std::size_t v = 0; v < versions.size(); ++v) {
    expect_exact_restore(sys, static_cast<VersionId>(v + 1), versions[v]);
  }
  // After flattening, no chain is longer than one hop: every old recipe
  // entry is archival (>0), chained to the newest, or active.
  const auto newest = static_cast<VersionId>(versions.size());
  for (VersionId v = 1; v + 1 < newest; ++v) {
    for (const auto& e : sys.recipes().get(v)->entries()) {
      if (e.cid < 0) {
        EXPECT_EQ(static_cast<VersionId>(-e.cid), newest);
      }
    }
  }
}

TEST(HiDeStore, FlattenBeforeRestoreConfig) {
  HiDeStoreConfig config;
  config.flatten_before_restore = true;
  const auto versions = generate(small_kernel(8));
  HiDeStore sys(config);
  for (const auto& vs : versions) (void)sys.backup(vs);
  expect_exact_restore(sys, 3, versions[2]);
}

TEST(HiDeStore, DeletionErasesWholeContainersWithoutScanning) {
  const auto versions = generate(small_kernel(15, 500));
  HiDeStore sys;
  for (const auto& vs : versions) (void)sys.backup(vs);

  const auto before = sys.archival_store().container_count();
  const auto report = sys.delete_versions_up_to(5);
  EXPECT_EQ(report.versions_deleted, 5u);
  EXPECT_GT(report.containers_erased, 0u);
  EXPECT_EQ(report.chunks_scanned, 0u);  // the paper's GC-free claim
  EXPECT_LT(sys.archival_store().container_count(), before);

  // Every surviving version still restores bit-exactly.
  for (std::size_t v = 5; v < versions.size(); ++v) {
    expect_exact_restore(sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

TEST(HiDeStore, DeletionIsIdempotentAndBounded) {
  const auto versions = generate(small_kernel(8));
  HiDeStore sys;
  for (const auto& vs : versions) (void)sys.backup(vs);
  (void)sys.delete_versions_up_to(3);
  const auto again = sys.delete_versions_up_to(3);
  EXPECT_EQ(again.versions_deleted, 0u);
  EXPECT_EQ(again.containers_erased, 0u);
  // Deleting everything keeps the newest version intact.
  (void)sys.delete_versions_up_to(99);
  expect_exact_restore(sys, static_cast<VersionId>(versions.size()),
                       versions.back());
}

TEST(HiDeStore, OverheadsAreRecorded) {
  const auto versions = generate(small_kernel(10));
  HiDeStore sys;
  for (const auto& vs : versions) (void)sys.backup(vs);
  const auto& overheads = sys.overheads();
  EXPECT_GT(overheads.cold_chunks_moved, 0u);
  EXPECT_GT(overheads.cold_bytes_moved, 0u);
  EXPECT_EQ(overheads.recipe_update_ms.count(), versions.size());
  EXPECT_EQ(overheads.move_and_merge_ms.count(), versions.size());
}

TEST(HiDeStore, RestoreWithAlternativePolicies) {
  const auto versions = generate(small_kernel(8));
  HiDeStore sys;
  for (const auto& vs : versions) (void)sys.backup(vs);

  RestoreConfig config;
  ContainerLruRestore lru(config);
  std::size_t at = 0;
  (void)sys.restore_with(4, lru,
                         [&](const ChunkLoc&, std::span<const std::uint8_t>) {
                           ++at;
                         });
  EXPECT_EQ(at, versions[3].chunks.size());
}

TEST(HiDeStore, ColdChunksLeaveActivePool) {
  // After many versions the active pool must hold roughly the hot set
  // (≈ one version), not the whole history.
  const auto versions = generate(small_kernel(30, 500));
  HiDeStore sys;
  std::uint64_t unique_total = 0;
  for (const auto& vs : versions) {
    unique_total += sys.backup(vs).stored_chunks;
  }
  EXPECT_LT(sys.active_pool().chunk_count(), unique_total / 2);
  EXPECT_GT(sys.archival_store().container_count(), 0u);
}

TEST(HiDeStore, CompactionKeepsActivePoolDense) {
  HiDeStoreConfig config;
  config.compaction_threshold = 0.7;
  const auto versions = generate(small_kernel(20, 800));
  HiDeStore sys(config);
  for (const auto& vs : versions) (void)sys.backup(vs);

  // Live bytes per container must stay above ~half of the threshold; a
  // pool that never compacts would decay toward zero.
  const auto& pool = sys.active_pool();
  const double mean_utilization =
      static_cast<double>(pool.used_bytes()) /
      static_cast<double>(pool.physical_bytes());
  EXPECT_GT(mean_utilization, 0.25);
}

TEST(HiDeStore, FlattenThenEvictionKeepsWindowTwoChainsIntact) {
  // Regression (found by the model fuzzer): with window 2, a hot chunk may
  // live only in the second-newest version. flatten_recipes() must chain
  // old entries to the newest recipe *containing* the chunk — pointing at
  // the newest recipe orphans the entry once the chunk later goes cold and
  // only its own recipe learns the archival home.
  HiDeStoreConfig config;
  config.cache_window = 2;
  HiDeStore sys(config);

  auto stream_of = [](std::initializer_list<std::uint64_t> ids) {
    VersionStream vs;
    for (auto id : ids) {
      vs.chunks.push_back(VersionChainGenerator::make_chunk(id));
    }
    return vs;
  };

  (void)sys.backup(stream_of({1, 2, 3}));  // v1
  (void)sys.backup(stream_of({1, 2, 4}));  // v2: chunk 3 skips
  (void)sys.backup(stream_of({1, 5, 6}));  // v3: chunk 2 only in v2 now...
  sys.flatten_recipes();                   // ...and flatten chains to it
  (void)sys.backup(stream_of({1, 7, 8}));  // v4: chunk 2 goes T0
  (void)sys.backup(stream_of({1, 9}));     // v5: chunk 2 evicted (cold)

  // Restoring v2 resolves chunk 2 through its flattened chain into the
  // archival container — this threw before the fix.
  std::size_t at = 0;
  const auto expect = stream_of({1, 2, 4});
  bool ok = true;
  (void)sys.restore(2, [&](const ChunkLoc& loc,
                           std::span<const std::uint8_t> bytes) {
    ok &= at < expect.chunks.size() && loc.fp == expect.chunks[at].fp &&
          bytes.size() == expect.chunks[at].size;
    ++at;
  });
  EXPECT_EQ(at, 3u);
  EXPECT_TRUE(ok);
}

TEST(HiDeStore, RestoreOfUnknownVersionIsEmpty) {
  HiDeStore sys;
  const auto report = sys.restore(
      42, [](const ChunkLoc&, std::span<const std::uint8_t>) { FAIL(); });
  EXPECT_EQ(report.stats.restored_chunks, 0u);
}

}  // namespace
}  // namespace hds
