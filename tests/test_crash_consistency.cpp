// Crash-consistency proving ground (DESIGN.md §9): a 5-version backup run
// is crashed at EVERY write/fsync/rename site the durable layer exposes,
// the repository is reopened, and recovery must land on exactly the last
// committed version — bit-identical restore, fsck clean, and a second open
// finding nothing left to repair. Plus: full-disk simulation (persistent
// write failure reported, store not corrupted) and unit coverage for the
// atomic writer and the MANIFEST journal.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "core/hidestore.h"
#include "storage/durable.h"
#include "storage/manifest.h"
#include "verify/fsck.h"
#include "workload/generator.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

namespace fs = std::filesystem;

using hds::testutil::TempDir;

std::vector<VersionStream> generate(std::uint32_t versions,
                                    std::size_t chunks) {
  auto p = WorkloadProfile::kernel();
  p.versions = versions;
  p.chunks_per_version = chunks;
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

// Small containers so every backup seals a few archival containers — each
// sealing is 5 more crash sites for the matrix to hit.
HiDeStoreConfig repo_config(const fs::path& dir) {
  HiDeStoreConfig config;
  config.container_size = 128 * 1024;
  config.storage_dir = dir;
  return config;
}

void expect_exact_restore(HiDeStore& sys, VersionId version,
                          const VersionStream& original) {
  std::size_t at = 0;
  bool ok = true;
  (void)sys.restore(version, [&](const ChunkLoc& loc,
                                 std::span<const std::uint8_t> bytes) {
    if (at < original.chunks.size()) {
      const auto& want = original.chunks[at];
      if (loc.fp != want.fp || bytes.size() != want.size) {
        ok = false;
      } else {
        const auto expect = want.materialize();
        ok &= std::equal(bytes.begin(), bytes.end(), expect.begin());
      }
    }
    ++at;
  });
  EXPECT_EQ(at, original.chunks.size()) << "version " << version;
  EXPECT_TRUE(ok) << "version " << version;
}

// Backs up and saves `versions` into `dir` with the injector armed at
// `step`. Returns how many saves committed before the simulated crash (all
// of them if the step was never reached). The directory is abandoned
// exactly as the crash left it.
std::size_t run_until_crash(const fs::path& dir,
                            const std::vector<VersionStream>& versions,
                            std::uint64_t step) {
  durable::CrashInjector::arm(step, durable::FaultMode::kThrow);
  std::size_t committed = 0;
  try {
    HiDeStore sys(repo_config(dir));
    for (const auto& vs : versions) {
      (void)sys.backup(vs);
      sys.save(dir);
      ++committed;
    }
  } catch (const durable::InjectedCrash&) {
    // The simulated kill. Nothing is cleaned up, like a real dead process.
  }
  durable::CrashInjector::disarm();
  return committed;
}

// --- The crash matrix ---

TEST(CrashMatrix, EveryWriteSiteRecoversToLastCommittedVersion) {
  const auto versions = generate(5, 120);

  // Dry run with an unreachable trigger to count the sites.
  std::uint64_t total_sites = 0;
  {
    TempDir dir("hds_crash_dry");
    const auto all = run_until_crash(
        dir.path, versions, std::numeric_limits<std::uint64_t>::max());
    ASSERT_EQ(all, versions.size());
    total_sites = durable::CrashInjector::steps();
  }
  // 5 sites per atomic file (state, MANIFEST, each sealed container) plus
  // the aside renames: a non-trivial matrix or the harness is broken.
  ASSERT_GT(total_sites, 50u);

  for (std::uint64_t step = 1; step <= total_sites; ++step) {
    TempDir dir("hds_crash_matrix");
    const std::size_t committed = run_until_crash(dir.path, versions, step);
    ASSERT_LT(committed, versions.size()) << "step " << step;

    RecoveryReport report;
    auto sys = HiDeStore::open(dir.path, &report);
    if (sys == nullptr) {
      // Only acceptable when the crash predates the very first commit.
      EXPECT_EQ(committed, 0u) << "step " << step;
      continue;
    }

    // Recovery lands on the last committed version — or one newer, when
    // the crash hit after the MANIFEST rename (the commit point) but
    // before save() returned.
    const VersionId latest = sys->latest_version();
    EXPECT_GE(latest, committed) << "step " << step;
    EXPECT_LE(latest, committed + 1) << "step " << step;
    EXPECT_EQ(report.committed_version, latest) << "step " << step;
    ASSERT_GT(latest, 0u) << "step " << step;
    expect_exact_restore(*sys, latest, versions[latest - 1]);

    const auto fsck = verify::run_fsck(*sys);
    EXPECT_TRUE(fsck.clean())
        << "step " << step << "\n"
        << fsck.to_text() << report.to_text();

    // Recovery converges: a second open finds nothing left to repair.
    RecoveryReport second;
    auto again = HiDeStore::open(dir.path, &second);
    ASSERT_NE(again, nullptr) << "step " << step;
    EXPECT_FALSE(second.performed)
        << "step " << step << "\n"
        << second.to_text();
    EXPECT_EQ(again->latest_version(), latest) << "step " << step;
  }
}

// --- Full-disk simulation (persistent write failure, process survives) ---

TEST(FullDisk, FailedSaveIsReportedAndRetrySucceeds) {
  TempDir dir("hds_fulldisk_retry");
  const auto versions = generate(2, 120);
  HiDeStore sys(repo_config(dir.path));
  (void)sys.backup(versions[0]);
  sys.save(dir.path);
  (void)sys.backup(versions[1]);

  durable::CrashInjector::arm(2, durable::FaultMode::kFail);
  EXPECT_THROW(sys.save(dir.path), durable::WriteError);
  durable::CrashInjector::disarm();

  // The failure is an error, not corruption: the in-memory system still
  // serves version 2, and the retry commits it.
  expect_exact_restore(sys, 2, versions[1]);
  sys.save(dir.path);
  RecoveryReport report;
  auto reopened = HiDeStore::open(dir.path, &report);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->latest_version(), 2u);
  expect_exact_restore(*reopened, 2, versions[1]);
  EXPECT_TRUE(verify::run_fsck(*reopened).clean());
}

TEST(FullDisk, FailedSaveLeavesPriorCommitRestorable) {
  TempDir dir("hds_fulldisk_rollback");
  const auto versions = generate(2, 120);
  {
    HiDeStore sys(repo_config(dir.path));
    (void)sys.backup(versions[0]);
    sys.save(dir.path);
    (void)sys.backup(versions[1]);
    durable::CrashInjector::arm(1, durable::FaultMode::kFail);
    EXPECT_THROW(sys.save(dir.path), durable::WriteError);
    durable::CrashInjector::disarm();
  }
  // On disk only version 1 ever committed; version 2's sealed containers
  // are orphans of the aborted commit and get quarantined.
  RecoveryReport report;
  auto sys = HiDeStore::open(dir.path, &report);
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->latest_version(), 1u);
  expect_exact_restore(*sys, 1, versions[0]);
  const auto fsck = verify::run_fsck(*sys);
  EXPECT_TRUE(fsck.clean()) << fsck.to_text();
}

// --- AtomicFileWriter units ---

TEST(AtomicFileWriter, CommitPublishesExactBytes) {
  TempDir dir("hds_awriter_commit");
  fs::create_directories(dir.path);
  const auto path = dir.path / "blob";
  const std::string payload = "hello, durable world";
  durable::atomic_write_file(path, std::string_view(payload));
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(fs::exists(dir.path / "blob.tmp"));
}

TEST(AtomicFileWriter, UncommittedWriterLeavesNoFile) {
  TempDir dir("hds_awriter_abort");
  fs::create_directories(dir.path);
  const auto path = dir.path / "blob";
  {
    durable::AtomicFileWriter out(path);
    out.write(std::string_view("half-written"));
    // No commit: destructor must clean up the temp file.
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(dir.path / "blob.tmp"));
}

TEST(AtomicFileWriter, FailedOverwriteKeepsOldContent) {
  TempDir dir("hds_awriter_overwrite");
  fs::create_directories(dir.path);
  const auto path = dir.path / "blob";
  durable::atomic_write_file(path, std::string_view("version one"));
  durable::CrashInjector::arm(1, durable::FaultMode::kFail);
  EXPECT_THROW(
      durable::atomic_write_file(path, std::string_view("version two")),
      durable::WriteError);
  durable::CrashInjector::disarm();
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "version one");
  EXPECT_FALSE(fs::exists(dir.path / "blob.tmp"));
}

TEST(AtomicFileWriter, InjectedCrashLeavesTempDebrisOnly) {
  TempDir dir("hds_awriter_crash");
  fs::create_directories(dir.path);
  const auto path = dir.path / "blob";
  // Crash at the fsync site: the temp file was written but never renamed —
  // exactly what a dead process leaves behind for recovery to sweep.
  durable::CrashInjector::arm(3, durable::FaultMode::kThrow);
  EXPECT_THROW(
      durable::atomic_write_file(path, std::string_view("doomed")),
      durable::InjectedCrash);
  durable::CrashInjector::disarm();
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(dir.path / "blob.tmp"));
}

TEST(AtomicWriterDeathTest, AbortModeExitsTheProcess) {
  TempDir dir("hds_awriter_death");
  fs::create_directories(dir.path);
  const auto path = (dir.path / "blob").string();
  EXPECT_EXIT(
      {
        durable::CrashInjector::arm(1, durable::FaultMode::kAbort);
        durable::AtomicFileWriter out(path);
      },
      ::testing::ExitedWithCode(86), "");
  durable::CrashInjector::disarm();
}

// --- Manifest units ---

Manifest sample_manifest() {
  Manifest manifest;
  for (std::uint64_t e = 1; e <= 3; ++e) {
    CommitRecord r;
    r.epoch = e;
    r.next_version = static_cast<VersionId>(e + 1);
    r.oldest_version = 1;
    r.store_next = static_cast<ContainerId>(10 * e);
    r.state_size = 1000 + e;
    r.state_crc = static_cast<std::uint32_t>(0xC0FFEE00 + e);
    manifest.append(r);
  }
  return manifest;
}

TEST(Manifest, SerializeRoundTrips) {
  const auto manifest = sample_manifest();
  const auto parsed = Manifest::deserialize(manifest.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->records.size(), 3u);
  ASSERT_NE(parsed->head(), nullptr);
  EXPECT_EQ(parsed->head()->epoch, 3u);
  EXPECT_EQ(parsed->head()->next_version, 4u);
  EXPECT_EQ(parsed->head()->store_next, 30);
  EXPECT_EQ(parsed->head()->state_size, 1003u);
  EXPECT_EQ(parsed->head()->state_crc, 0xC0FFEE03u);
}

TEST(Manifest, RejectsAnyFlippedByte) {
  const auto bytes = sample_manifest().serialize();
  for (std::size_t at : {std::size_t{0}, bytes.size() / 2,
                         bytes.size() - 1}) {
    auto corrupt = bytes;
    corrupt[at] ^= 0x01;
    EXPECT_FALSE(Manifest::deserialize(corrupt).has_value())
        << "byte " << at;
  }
  auto truncated = bytes;
  truncated.resize(bytes.size() / 2);
  EXPECT_FALSE(Manifest::deserialize(truncated).has_value());
}

TEST(Manifest, RejectsNonMonotonicEpochs) {
  Manifest manifest = sample_manifest();
  CommitRecord stale;
  stale.epoch = 2;  // not > head epoch 3
  manifest.records.push_back(stale);
  EXPECT_FALSE(Manifest::deserialize(manifest.serialize()).has_value());
}

TEST(Manifest, AppendPrunesToCap) {
  Manifest manifest;
  for (std::uint64_t e = 1; e <= Manifest::kMaxRecords + 3; ++e) {
    CommitRecord r;
    r.epoch = e;
    manifest.append(r);
  }
  EXPECT_EQ(manifest.records.size(), Manifest::kMaxRecords);
  ASSERT_NE(manifest.head(), nullptr);
  EXPECT_EQ(manifest.head()->epoch, Manifest::kMaxRecords + 3);
  EXPECT_EQ(manifest.records.front().epoch, 4u);
}

TEST(Manifest, LoadReportsMissingVsCorrupt) {
  TempDir dir("hds_manifest_load");
  fs::create_directories(dir.path);
  Manifest out;
  EXPECT_EQ(load_manifest(dir.path, out), ManifestStatus::kMissing);
  store_manifest(dir.path, sample_manifest());
  EXPECT_EQ(load_manifest(dir.path, out), ManifestStatus::kOk);
  EXPECT_EQ(out.records.size(), 3u);
  std::ofstream(dir.path / Manifest::kFileName,
                std::ios::binary | std::ios::trunc)
      << "garbage";
  EXPECT_EQ(load_manifest(dir.path, out), ManifestStatus::kCorrupt);
}

}  // namespace
}  // namespace hds
