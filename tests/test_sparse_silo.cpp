// Tests for the near-exact indexes: Sparse Indexing finds duplicates via
// hook-scored champions, SiLo via min-hash similarity + locality blocks.
// Both may miss duplicates (their documented dedup loss) but must never
// claim a false duplicate.
#include <gtest/gtest.h>

#include "index/silo_index.h"
#include "index/sparse_index.h"

namespace hds {
namespace {

ChunkRecord chunk(std::uint64_t id) {
  ChunkRecord rec;
  rec.fp = Fingerprint::from_seed(id);
  rec.size = 4096;
  rec.content_seed = id;
  return rec;
}

std::vector<ChunkRecord> segment_of(std::uint64_t base, std::size_t n) {
  std::vector<ChunkRecord> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(chunk(base + i));
  return out;
}

std::vector<RecipeEntry> entries_for(const std::vector<ChunkRecord>& chunks,
                                     ContainerId cid) {
  std::vector<RecipeEntry> out;
  for (const auto& c : chunks) out.push_back({c.fp, cid, c.size});
  return out;
}

// --- Sparse Indexing ---

TEST(SparseIndex, IdenticalSegmentFullyDeduplicates) {
  SparseIndexConfig config;
  config.sample_rate = 8;  // plenty of hooks at this segment size
  SparseIndex index(config);

  const auto seg = segment_of(0, 512);
  (void)index.dedup_segment(seg);
  index.finish_segment(entries_for(seg, 7));

  const auto decisions = index.dedup_segment(seg);
  std::size_t dups = 0;
  for (const auto& d : decisions) {
    if (d) {
      EXPECT_EQ(*d, 7);
      ++dups;
    }
  }
  // All chunks live in the single champion manifest.
  EXPECT_EQ(dups, seg.size());
  EXPECT_GE(index.stats().disk_lookups, 1u);  // champion load
}

TEST(SparseIndex, NeverClaimsFalseDuplicates) {
  SparseIndex index;
  const auto seg = segment_of(0, 256);
  (void)index.dedup_segment(seg);
  index.finish_segment(entries_for(seg, 1));
  const auto fresh = segment_of(10000, 256);
  for (const auto& d : index.dedup_segment(fresh)) {
    EXPECT_FALSE(d.has_value());
  }
}

TEST(SparseIndex, ChampionCapBoundsManifestLoads) {
  SparseIndexConfig config;
  config.sample_rate = 4;
  config.max_champions = 2;
  SparseIndex index(config);

  // Store the same content via four different manifests.
  const auto seg = segment_of(0, 256);
  for (int i = 0; i < 4; ++i) {
    (void)index.dedup_segment(seg);
    index.finish_segment(entries_for(seg, i + 1));
  }
  const auto before = index.stats().disk_lookups;
  (void)index.dedup_segment(seg);
  EXPECT_LE(index.stats().disk_lookups - before, 2u);
}

TEST(SparseIndex, MemoryIsSparseComparedToChunkCount) {
  SparseIndexConfig config;
  config.sample_rate = 64;
  SparseIndex index(config);
  const auto seg = segment_of(0, 4096);
  (void)index.dedup_segment(seg);
  index.finish_segment(entries_for(seg, 1));
  // Full indexing would need 4096 * 24 bytes; hooks sample 1/64 of that.
  EXPECT_LT(index.memory_bytes(), 4096u * 24u / 16u);
  EXPECT_GT(index.memory_bytes(), 0u);
}

TEST(SparseIndex, PartialOverlapDedupsSharedChunks) {
  SparseIndexConfig config;
  config.sample_rate = 4;
  SparseIndex index(config);
  const auto seg = segment_of(0, 512);
  (void)index.dedup_segment(seg);
  index.finish_segment(entries_for(seg, 3));

  // Second segment: half shared, half new.
  auto mixed = segment_of(0, 256);
  const auto fresh = segment_of(50000, 256);
  mixed.insert(mixed.end(), fresh.begin(), fresh.end());
  const auto decisions = index.dedup_segment(mixed);
  std::size_t dups = 0;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (decisions[i]) {
      EXPECT_LT(i, 256u);  // only the shared half may be duplicate
      ++dups;
    }
  }
  EXPECT_EQ(dups, 256u);
}

// --- SiLo ---

TEST(SiLoIndex, WriteBufferCatchesImmediateLocality) {
  SiLoIndex index;
  const auto seg = segment_of(0, 256);
  (void)index.dedup_segment(seg);
  index.finish_segment(entries_for(seg, 2));

  // Next segment shares chunks with the previous one: the write buffer
  // (same unflushed block) must catch them without any disk lookup.
  const auto decisions = index.dedup_segment(seg);
  std::size_t dups = 0;
  for (const auto& d : decisions) dups += d.has_value();
  EXPECT_EQ(dups, seg.size());
  EXPECT_EQ(index.stats().disk_lookups, 0u);
}

TEST(SiLoIndex, SimilarityHitLoadsBlockFromDisk) {
  SiLoConfig config;
  config.segments_per_block = 1;  // flush every segment
  SiLoIndex index(config);

  const auto seg = segment_of(0, 256);
  (void)index.dedup_segment(seg);
  index.finish_segment(entries_for(seg, 2));  // flushed to block storage

  const auto decisions = index.dedup_segment(seg);
  std::size_t dups = 0;
  for (const auto& d : decisions) dups += d.has_value();
  EXPECT_EQ(dups, seg.size());
  EXPECT_EQ(index.stats().disk_lookups, 1u);  // one block load
}

TEST(SiLoIndex, NeverClaimsFalseDuplicates) {
  SiLoIndex index;
  const auto seg = segment_of(0, 128);
  (void)index.dedup_segment(seg);
  index.finish_segment(entries_for(seg, 1));
  for (const auto& d : index.dedup_segment(segment_of(90000, 128))) {
    EXPECT_FALSE(d.has_value());
  }
}

TEST(SiLoIndex, SimilarSegmentDedupsThroughMinHash) {
  SiLoConfig config;
  config.segments_per_block = 1;
  SiLoIndex index(config);
  const auto seg = segment_of(0, 512);
  (void)index.dedup_segment(seg);
  index.finish_segment(entries_for(seg, 4));

  // 90% shared content: the min fingerprint almost surely survives, so the
  // similar block is loaded and shared chunks deduplicate.
  auto similar = segment_of(0, 460);
  const auto fresh = segment_of(70000, 52);
  similar.insert(similar.end(), fresh.begin(), fresh.end());
  const auto decisions = index.dedup_segment(similar);
  std::size_t dups = 0;
  for (const auto& d : decisions) dups += d.has_value();
  EXPECT_GE(dups, 400u);
}

TEST(SiLoIndex, MemoryCountsOnlyRepresentatives) {
  SiLoConfig config;
  config.segments_per_block = 4;
  SiLoIndex index(config);
  for (int s = 0; s < 8; ++s) {
    const auto seg = segment_of(static_cast<std::uint64_t>(s) * 1000, 256);
    (void)index.dedup_segment(seg);
    index.finish_segment(entries_for(seg, s + 1));
  }
  // 8 representatives, 28 bytes each — orders of magnitude below full
  // indexing of 2048 chunks.
  EXPECT_EQ(index.memory_bytes(), 8u * 28u);
}

}  // namespace
}  // namespace hds
