// Tests for the offline store checker (hds fsck) and the HDS_INVARIANT /
// HDS_CHECK assertion layer: a clean multi-version store passes with zero
// findings, and each seeded corruption class is flagged by exactly the
// invariant that owns it (cascade suppression keeps the others quiet).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "core/hidestore.h"
#include "verify/fsck.h"
#include "verify/invariant.h"
#include "workload/generator.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

namespace fs = std::filesystem;
using verify::FsckReport;
using verify::Invariant;

using hds::testutil::TempDir;

std::vector<VersionStream> generate(std::uint32_t versions,
                                    std::size_t chunks = 300) {
  auto p = WorkloadProfile::kernel();
  p.versions = versions;
  p.chunks_per_version = chunks;
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

void ingest(HiDeStore& sys, std::uint32_t versions) {
  for (const auto& vs : generate(versions)) (void)sys.backup(vs);
}

// Asserts that exactly `expected` is violated and every other invariant
// holds — the "flags exactly that invariant" contract.
void expect_only(const FsckReport& report, Invariant expected) {
  EXPECT_FALSE(report.clean());
  for (const auto& check : report.checks) {
    if (check.invariant == expected) {
      EXPECT_GT(check.violations, 0u)
          << verify::invariant_name(expected) << " should have fired";
      EXPECT_FALSE(check.findings.empty());
    } else {
      EXPECT_EQ(check.violations, 0u)
          << verify::invariant_name(check.invariant)
          << " fired alongside " << verify::invariant_name(expected);
    }
  }
}

// --- On-disk corruption helpers (container file format, see container.cpp:
// 20-byte header | count * 32-byte entry table | data | 4-byte CRC) ---

struct ContainerFile {
  fs::path path;
  std::uint32_t entry_count = 0;
  std::uint32_t data_size = 0;
};

std::uint32_t read_u32_at(const std::vector<std::uint8_t>& bytes,
                          std::size_t at) {
  return std::uint32_t{bytes[at]} | (std::uint32_t{bytes[at + 1]} << 8) |
         (std::uint32_t{bytes[at + 2]} << 16) |
         (std::uint32_t{bytes[at + 3]} << 24);
}

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void spit(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Finds an archival container file carrying at least one payload byte.
ContainerFile find_payload_container(const fs::path& repo) {
  for (const auto& entry : fs::directory_iterator(repo / "archival")) {
    if (entry.path().extension() != ".hdsc") continue;
    const auto bytes = slurp(entry.path());
    if (bytes.size() < 24) continue;
    ContainerFile found;
    found.path = entry.path();
    found.entry_count = read_u32_at(bytes, 12);
    found.data_size = read_u32_at(bytes, 16);
    if (found.data_size > 0) return found;
  }
  ADD_FAILURE() << "no archival container with payload bytes found";
  return {};
}

// Flips one payload byte and repairs the file trailer CRC, so framing
// passes and only the per-chunk CRC can notice. Format 3 puts the data
// region right after the 20-byte header (the entry table is a footer).
void flip_payload_byte(const ContainerFile& file) {
  auto bytes = slurp(file.path);
  const std::size_t payload_at = 20 + file.data_size / 2;
  ASSERT_LT(payload_at, bytes.size() - 4);
  bytes[payload_at] ^= 0xff;
  const std::uint32_t crc = crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  spit(file.path, bytes);
}

void write_u32_at(std::vector<std::uint8_t>& bytes, std::size_t at,
                  std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

// Seeds a footer-index violation that every other invariant is blind to:
// points entry B's extent at entry A's bytes (overlap), then repairs B's
// chunk CRC to the newly referenced bytes, the footer CRC and the file CRC.
// Framing, per-chunk CRC, resolution and accounting all still pass — only
// the footer index's no-overlap rule can object. Returns false when the
// container has fewer than two distinct materialized extents.
bool overlap_footer_entries(const ContainerFile& file) {
  auto bytes = slurp(file.path);
  const std::size_t table_at = 20 + file.data_size;
  // Rows of (row offset in file, entry offset, entry size), non-virtual.
  std::size_t a_row = 0, b_row = 0;
  std::uint32_t a_off = 0, b_size = 0;
  bool have_a = false, have_b = false;
  for (std::uint32_t i = 0; i < file.entry_count; ++i) {
    const std::size_t row = table_at + std::size_t{i} * 32;
    const std::uint32_t off = read_u32_at(bytes, row + 20);
    const std::uint32_t size = read_u32_at(bytes, row + 24);
    if (off == 0xFFFFFFFFu || size == 0) continue;
    // A: the largest extent; B: the smallest other one, so B's extent
    // relocated to A's offset stays inside the data region.
    if (!have_a || size > read_u32_at(bytes, a_row + 24)) {
      if (have_a && (!have_b || read_u32_at(bytes, a_row + 24) < b_size)) {
        b_row = a_row;
        b_size = read_u32_at(bytes, a_row + 24);
        have_b = true;
      }
      a_row = row;
      a_off = off;
      have_a = true;
    } else if (!have_b || size < b_size) {
      b_row = row;
      b_size = size;
      have_b = true;
    }
  }
  if (!have_a || !have_b || a_row == b_row) return false;

  write_u32_at(bytes, b_row + 20, a_off);  // B now overlaps A
  const std::uint32_t new_crc = crc32(bytes.data() + 20 + a_off, b_size);
  write_u32_at(bytes, b_row + 28, new_crc);

  const std::size_t table_bytes = std::size_t{file.entry_count} * 32;
  const std::uint32_t footer_crc =
      crc32(bytes.data() + table_at, table_bytes, crc32(bytes.data(), 20));
  write_u32_at(bytes, table_at + table_bytes, footer_crc);
  write_u32_at(bytes, bytes.size() - 4,
               crc32(bytes.data(), bytes.size() - 4));
  spit(file.path, bytes);
  return true;
}

// --- Clean stores ---

TEST(Fsck, CleanStorePassesWindow1) {
  HiDeStore sys;
  ingest(sys, 8);
  const auto report = verify::run_fsck(sys);
  EXPECT_TRUE(report.clean()) << report.to_text();
  EXPECT_EQ(report.total_violations(), 0u);
  EXPECT_EQ(report.checks.size(), verify::kInvariantCount);
  // The store is non-trivial: every class of object was actually walked.
  EXPECT_GT(report.check(Invariant::kContainerFraming).objects_checked, 0u);
  EXPECT_GT(report.check(Invariant::kChunkCrc).objects_checked, 0u);
  EXPECT_GT(report.check(Invariant::kRecipeResolution).objects_checked, 0u);
  EXPECT_GT(report.check(Invariant::kRecipeChain).objects_checked, 0u);
  EXPECT_GT(report.check(Invariant::kActiveResolution).objects_checked, 0u);
  EXPECT_GT(report.check(Invariant::kCacheConsistency).objects_checked, 0u);
  EXPECT_NE(report.to_text().find("clean"), std::string::npos);
}

TEST(Fsck, CleanStorePassesWindow2) {
  HiDeStoreConfig config;
  config.cache_window = 2;
  HiDeStore sys(config);
  ingest(sys, 8);
  const auto report = verify::run_fsck(sys);
  EXPECT_TRUE(report.clean()) << report.to_text();
}

TEST(Fsck, CleanAfterDeletionAndFlatten) {
  HiDeStore sys;
  ingest(sys, 10);
  (void)sys.delete_versions_up_to(3);
  (void)sys.flatten_recipes();
  sys.refresh_gauges();
  const auto report = verify::run_fsck(sys);
  EXPECT_TRUE(report.clean()) << report.to_text();
}

TEST(Fsck, CleanFileBackedStoreAfterReload) {
  TempDir dir("hds_fsck_clean_reload");
  HiDeStoreConfig config;
  config.storage_dir = dir.path;
  {
    HiDeStore sys(config);
    ingest(sys, 8);
    sys.save(dir.path);
  }
  auto sys = HiDeStore::load(dir.path);
  ASSERT_NE(sys, nullptr);
  const auto report = verify::run_fsck(*sys);
  EXPECT_TRUE(report.clean()) << report.to_text();
}

TEST(Fsck, JsonReportIsWellFormedOnCleanStore) {
  HiDeStore sys;
  ingest(sys, 4);
  const auto json = verify::run_fsck(sys).to_json();
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(json.find("\"invariant\":\"chunk_crc\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- Seeded corruption classes ---

TEST(Fsck, DetectsFlippedPayloadByte) {
  TempDir dir("hds_fsck_flip");
  HiDeStoreConfig config;
  config.storage_dir = dir.path;
  HiDeStore sys(config);
  ingest(sys, 6);
  ASSERT_TRUE(verify::run_fsck(sys).clean());

  const auto file = find_payload_container(dir.path);
  ASSERT_FALSE(file.path.empty());
  flip_payload_byte(file);

  expect_only(verify::run_fsck(sys), Invariant::kChunkCrc);
}

TEST(Fsck, DetectsTruncatedContainerTail) {
  TempDir dir("hds_fsck_trunc");
  HiDeStoreConfig config;
  config.storage_dir = dir.path;
  HiDeStore sys(config);
  ingest(sys, 6);
  ASSERT_TRUE(verify::run_fsck(sys).clean());

  const auto file = find_payload_container(dir.path);
  ASSERT_FALSE(file.path.empty());
  fs::resize_file(file.path, fs::file_size(file.path) - 16);

  expect_only(verify::run_fsck(sys), Invariant::kContainerFraming);
}

TEST(Fsck, DetectsOverlappingFooterExtents) {
  TempDir dir("hds_fsck_overlap");
  HiDeStoreConfig config;
  config.storage_dir = dir.path;
  HiDeStore sys(config);
  ingest(sys, 6);
  ASSERT_TRUE(verify::run_fsck(sys).clean());

  // Any payload-carrying archival container with 2+ real extents will do.
  bool seeded = false;
  for (const auto& entry : fs::directory_iterator(dir.path / "archival")) {
    if (entry.path().extension() != ".hdsc") continue;
    const auto bytes = slurp(entry.path());
    if (bytes.size() < 24) continue;
    ContainerFile file{entry.path(), read_u32_at(bytes, 12),
                       read_u32_at(bytes, 16)};
    if (file.entry_count < 2 || file.data_size == 0) continue;
    if (overlap_footer_entries(file)) {
      seeded = true;
      break;
    }
  }
  ASSERT_TRUE(seeded) << "no container with two materialized extents";

  expect_only(verify::run_fsck(sys), Invariant::kFooterIndex);
}

TEST(Fsck, DetectsDanglingChainCid) {
  HiDeStore sys;
  ingest(sys, 8);
  ASSERT_TRUE(verify::run_fsck(sys).clean());

  // Point an old recipe entry at a recipe that does not exist.
  Recipe* victim = sys.mutable_recipes().get(2);
  ASSERT_NE(victim, nullptr);
  ASSERT_FALSE(victim->entries().empty());
  victim->entries().front().cid =
      -static_cast<ContainerId>(sys.latest_version() + 7);

  expect_only(verify::run_fsck(sys), Invariant::kRecipeChain);
}

TEST(Fsck, DetectsRecipeContainerSizeMismatch) {
  HiDeStore sys;
  ingest(sys, 8);
  ASSERT_TRUE(verify::run_fsck(sys).clean());

  // Find an archival reference and lie about the chunk's size.
  bool mutated = false;
  for (const VersionId v : sys.recipes().versions()) {
    for (auto& entry : sys.mutable_recipes().get(v)->entries()) {
      if (entry.cid > 0) {
        entry.size += 3;
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated) << "no archival recipe entry to corrupt";

  expect_only(verify::run_fsck(sys), Invariant::kRecipeResolution);
}

TEST(Fsck, DetectsFingerprintInBothContainerClasses) {
  HiDeStore sys;
  ingest(sys, 6);
  ASSERT_TRUE(verify::run_fsck(sys).clean());

  // Smuggle a hot (pool-resident) fingerprint into an existing archival
  // container. A zero-byte payload keeps every size/CRC/accounting check
  // honest, so only class exclusivity can object.
  ASSERT_FALSE(sys.active_pool().index().empty());
  const Fingerprint hot = sys.active_pool().index().begin()->first;
  auto ids = sys.archival_store().ids();
  ASSERT_FALSE(ids.empty());
  Container copy = *sys.archival_store().read(ids.front());
  ASSERT_TRUE(copy.add(hot, std::span<const std::uint8_t>{}));
  sys.archival_store().put(std::move(copy));

  expect_only(verify::run_fsck(sys), Invariant::kClassExclusivity);
}

// --- Read-path CRC verification ---

TEST(Fsck, ReadPathCrcFailureSurfacesInMetrics) {
  TempDir dir("hds_fsck_readpath");
  HiDeStoreConfig config;
  config.storage_dir = dir.path;
  HiDeStore sys(config);
  ingest(sys, 6);

  const auto file = find_payload_container(dir.path);
  ASSERT_FALSE(file.path.empty());
  flip_payload_byte(file);

  // Every archival chunk belongs to some retained version, so restoring
  // them all must trip over the corrupt payload.
  std::uint64_t failed = 0;
  for (VersionId v = 1; v <= sys.latest_version(); ++v) {
    failed += sys.restore(v, [](const ChunkLoc&,
                                std::span<const std::uint8_t>) {})
                  .stats.failed_chunks;
  }
  EXPECT_GT(failed, 0u);
  sys.refresh_gauges();
  const auto* counter = sys.metrics().find_counter("io_crc_failures");
  ASSERT_NE(counter, nullptr);
  EXPECT_GT(counter->value(), 0u);
}

// --- HDS_INVARIANT / HDS_CHECK macro layer ---

struct RecordedFailure {
  static std::vector<std::string> exprs;
  static void handler(const char* expr, const char*, int,
                      const std::string&) {
    exprs.emplace_back(expr);
  }
};
std::vector<std::string> RecordedFailure::exprs;

TEST(InvariantMacros, CompiledInOnlyUnderHdsVerify) {
  RecordedFailure::exprs.clear();
  const auto previous =
      verify::set_invariant_handler(&RecordedFailure::handler);
  const std::uint64_t before = verify::invariants_checked();

  HDS_INVARIANT(1 + 1 == 2);
  HDS_CHECK(false, "deliberate failure");

  verify::set_invariant_handler(previous);
#if defined(HDS_VERIFY)
  EXPECT_EQ(verify::invariants_checked(), before + 2);
  ASSERT_EQ(RecordedFailure::exprs.size(), 1u);
  EXPECT_EQ(RecordedFailure::exprs.front(), "false");
#else
  EXPECT_EQ(verify::invariants_checked(), before);
  EXPECT_TRUE(RecordedFailure::exprs.empty());
#endif
}

TEST(InvariantMacros, BackupExercisesEmbeddedChecks) {
  const std::uint64_t before = verify::invariants_checked();
  HiDeStore sys;
  ingest(sys, 4);
#if defined(HDS_VERIFY)
  // Cache rotation, pool bookkeeping and recipe finalization all assert at
  // every version boundary.
  EXPECT_GT(verify::invariants_checked(), before);
#else
  EXPECT_EQ(verify::invariants_checked(), before);
#endif
}

}  // namespace
}  // namespace hds
