// Tests for trace I/O: round trips in both formats, malformed-input
// rejection, and replay equivalence (a replayed trace deduplicates exactly
// like the live stream).
#include <gtest/gtest.h>

#include <sstream>

#include "backup/pipeline.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace hds {
namespace {

std::vector<VersionStream> sample_versions(std::uint32_t n = 4) {
  auto p = WorkloadProfile::kernel();
  p.versions = n;
  p.chunks_per_version = 150;
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < n; ++v) out.push_back(gen.next_version());
  return out;
}

void expect_equal(const std::vector<VersionStream>& a,
                  const std::vector<VersionStream>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t v = 0; v < a.size(); ++v) {
    ASSERT_EQ(a[v].chunks.size(), b[v].chunks.size()) << "version " << v;
    for (std::size_t i = 0; i < a[v].chunks.size(); ++i) {
      EXPECT_EQ(a[v].chunks[i].fp, b[v].chunks[i].fp);
      EXPECT_EQ(a[v].chunks[i].size, b[v].chunks[i].size);
      EXPECT_EQ(a[v].chunks[i].content_seed, b[v].chunks[i].content_seed);
    }
  }
}

TEST(TraceText, RoundTrip) {
  const auto versions = sample_versions();
  std::stringstream buffer;
  write_trace_text(buffer, versions);
  std::vector<VersionStream> back;
  ASSERT_TRUE(read_trace_text(buffer, back));
  expect_equal(versions, back);
}

TEST(TraceText, EmptyTrace) {
  std::stringstream buffer;
  write_trace_text(buffer, {});
  std::vector<VersionStream> back;
  EXPECT_TRUE(read_trace_text(buffer, back));
  EXPECT_TRUE(back.empty());
}

TEST(TraceText, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer;
  buffer << "# a comment\n\nV 1 1\n"
         << Fingerprint::from_seed(7).hex() << " 4096 7\n";
  std::vector<VersionStream> back;
  ASSERT_TRUE(read_trace_text(buffer, back));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].chunks[0].content_seed, 7u);
}

TEST(TraceText, RejectsMalformedInput) {
  const auto cases = {
      std::string("garbage\n"),                       // no version header
      std::string("V 2 1\naaaa 1 1\n"),               // non-sequential
      std::string("V 1 2\n") + Fingerprint::from_seed(1).hex() +
          " 4096 1\n",                                // count mismatch
      std::string("V 1 1\nnothex 4096 1\n"),          // bad fingerprint
  };
  for (const auto& text : cases) {
    std::stringstream buffer(text);
    std::vector<VersionStream> back;
    EXPECT_FALSE(read_trace_text(buffer, back)) << text;
  }
}

TEST(TraceBinary, RoundTrip) {
  const auto versions = sample_versions();
  std::stringstream buffer;
  write_trace_binary(buffer, versions);
  std::vector<VersionStream> back;
  ASSERT_TRUE(read_trace_binary(buffer, back));
  expect_equal(versions, back);
}

TEST(TraceBinary, DetectsCorruption) {
  const auto versions = sample_versions(2);
  std::stringstream buffer;
  write_trace_binary(buffer, versions);
  std::string bytes = buffer.str();
  bytes[bytes.size() / 2] ^= 0x01;
  std::stringstream corrupted(bytes);
  std::vector<VersionStream> back;
  EXPECT_FALSE(read_trace_binary(corrupted, back));
}

TEST(TraceBinary, RejectsWrongMagicAndTruncation) {
  {
    std::stringstream buffer("NOPE....");
    std::vector<VersionStream> back;
    EXPECT_FALSE(read_trace_binary(buffer, back));
  }
  {
    const auto versions = sample_versions(1);
    std::stringstream buffer;
    write_trace_binary(buffer, versions);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);
    std::vector<VersionStream> back;
    EXPECT_FALSE(read_trace_binary(truncated, back));
  }
}

TEST(TraceReplay, DeduplicatesIdenticallyToLiveStream) {
  const auto versions = sample_versions(6);
  std::stringstream buffer;
  write_trace_binary(buffer, versions);
  std::vector<VersionStream> replayed;
  ASSERT_TRUE(read_trace_binary(buffer, replayed));

  auto live = make_baseline(BaselineKind::kDdfs);
  auto replay = make_baseline(BaselineKind::kDdfs);
  for (std::size_t v = 0; v < versions.size(); ++v) {
    const auto a = live->backup(versions[v]);
    const auto b = replay->backup(replayed[v]);
    EXPECT_EQ(a.stored_bytes, b.stored_bytes);
    EXPECT_EQ(a.stored_chunks, b.stored_chunks);
  }
  EXPECT_DOUBLE_EQ(live->dedup_ratio(), replay->dedup_ratio());
}

}  // namespace
}  // namespace hds
