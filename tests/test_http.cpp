// Tests for the embedded metrics HTTP listener (src/obs/http.h): ephemeral
// port binding, route dispatch, query-string stripping, 404/405/400
// handling, handler exceptions becoming 500s, request counting, and
// stop()/restart behavior. Uses a tiny blocking loopback client.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/http.h"

namespace hds::obs {
namespace {

// One-shot HTTP client: sends `raw` to 127.0.0.1:port and returns the whole
// response (the server always closes after one response).
std::string talk(std::uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return talk(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

TEST(HttpServer, BindsEphemeralPortAndServesRoute) {
  HttpServer server(0);
  server.route("/ping", [] {
    HttpServer::Response r;
    r.body = "pong\n";
    return r;
  });
  ASSERT_TRUE(server.start());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);  // ephemeral request resolved

  const auto response = get(server.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\npong\n"), std::string::npos);
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServer, RoutesIgnoreQueryStrings) {
  HttpServer server(0);
  server.route("/metrics", [] {
    HttpServer::Response r;
    r.body = "m 1\n";
    return r;
  });
  ASSERT_TRUE(server.start());
  const auto response = get(server.port(), "/metrics?refresh=1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("m 1"), std::string::npos);
}

TEST(HttpServer, UnknownRouteIs404) {
  HttpServer server(0);
  server.route("/metrics", [] { return HttpServer::Response{}; });
  ASSERT_TRUE(server.start());
  const auto response = get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(response.find("no such route"), std::string::npos);
}

TEST(HttpServer, NonGetIs405AndGarbageIs400) {
  HttpServer server(0);
  server.route("/", [] { return HttpServer::Response{}; });
  ASSERT_TRUE(server.start());
  const auto post =
      talk(server.port(), "POST / HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
  const auto garbage = talk(server.port(), "garbage\r\n\r\n");
  EXPECT_NE(garbage.find("HTTP/1.1 400"), std::string::npos);
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  HttpServer server(0);
  server.route("/boom", []() -> HttpServer::Response {
    throw std::runtime_error("kaboom");
  });
  ASSERT_TRUE(server.start());
  const auto response = get(server.port(), "/boom");
  EXPECT_NE(response.find("HTTP/1.1 500"), std::string::npos);
  EXPECT_NE(response.find("handler failed"), std::string::npos);
}

TEST(HttpServer, StopIsIdempotentAndPortIsReusable) {
  std::uint16_t port = 0;
  {
    HttpServer server(0);
    server.route("/", [] { return HttpServer::Response{}; });
    ASSERT_TRUE(server.start());
    port = server.port();
    server.stop();
    server.stop();  // second stop must be a no-op
    EXPECT_FALSE(server.running());
  }
  // The listener closed its socket, so a new server can take the same port
  // right away (SO_REUSEADDR covers the TIME_WAIT case).
  HttpServer again(port);
  again.route("/", [] { return HttpServer::Response{}; });
  EXPECT_TRUE(again.start());
  EXPECT_EQ(again.port(), port);
  EXPECT_NE(get(port, "/").find("200 OK"), std::string::npos);
}

TEST(HttpServer, CountsServedRequests) {
  HttpServer server(0);
  server.route("/", [] { return HttpServer::Response{}; });
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 3; ++i) (void)get(server.port(), "/");
  (void)get(server.port(), "/missing");  // 404s count as served too
  server.stop();
  EXPECT_EQ(server.requests_served(), 4u);
}

// Raw connected socket for the piecemeal / stalled-reader cases.
int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_raw(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

std::string recv_all(int fd) {
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

TEST(HttpServer, SplitRequestIsServed) {
  HttpServer server(0);
  server.route("/ping", [] {
    HttpServer::Response r;
    r.body = "pong\n";
    return r;
  });
  ASSERT_TRUE(server.start());
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  // The request line arrives in three pieces across packet boundaries; the
  // server must keep reading until the header terminator.
  send_raw(fd, "GET /pi");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  send_raw(fd, "ng HTTP/1.1\r\nHost");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  send_raw(fd, ": x\r\n\r\n");
  const auto response = recv_all(fd);
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("pong"), std::string::npos);
}

TEST(HttpServer, OversizedRequestIs400) {
  HttpServer server(0);
  server.route("/", [] { return HttpServer::Response{}; });
  ASSERT_TRUE(server.start());
  // 32 KB of request with no header terminator: past the 16 KB cap the
  // server must answer 400 instead of buffering forever.
  const std::string flood = "GET /" + std::string(32 * 1024, 'a');
  const auto response = talk(server.port(), flood);
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(response.find("request too large"), std::string::npos);
}

TEST(HttpServer, WorkerPoolServesConcurrently) {
  // /gate parks its worker until /open is served — only possible when two
  // connections are handled by different workers at the same time.
  std::atomic<bool> opened{false};
  HttpServer server(0, /*workers=*/2);
  server.route("/gate", [&opened] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!opened.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    HttpServer::Response r;
    r.body = opened.load(std::memory_order_acquire) ? "opened\n" : "stuck\n";
    return r;
  });
  server.route("/open", [&opened] {
    opened.store(true, std::memory_order_release);
    HttpServer::Response r;
    r.body = "ok\n";
    return r;
  });
  ASSERT_TRUE(server.start());
  std::string gate_response;
  std::thread gate([&] { gate_response = get(server.port(), "/gate"); });
  // Runs while /gate is parked on the other worker.
  EXPECT_NE(get(server.port(), "/open").find("200 OK"), std::string::npos);
  gate.join();
  EXPECT_NE(gate_response.find("opened"), std::string::npos);
  server.stop();
}

TEST(HttpServer, StalledReaderDoesNotWedgeOthers) {
  HttpServer server(0, /*workers=*/2);
  const std::string big(4 * 1024 * 1024, 'x');
  server.route("/big", [&big] {
    HttpServer::Response r;
    r.body = big;
    return r;
  });
  server.route("/healthz", [] {
    HttpServer::Response r;
    r.body = "ok\n";
    return r;
  });
  ASSERT_TRUE(server.start());
  // Request a 4 MB body and never read it: the socket buffers fill, the
  // worker's send() blocks, and SO_SNDTIMEO (2 s) reclaims the worker.
  const int stalled = connect_to(server.port());
  ASSERT_GE(stalled, 0);
  send_raw(stalled, "GET /big HTTP/1.1\r\nHost: x\r\n\r\n");
  // Meanwhile the other worker keeps serving.
  EXPECT_NE(get(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
  // stop() must not hang on the stalled connection (bounded by the 2 s
  // send timeout).
  server.stop();
  ::close(stalled);
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace hds::obs
