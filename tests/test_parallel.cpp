// Unit tests for the concurrency primitives (src/parallel): bounded MPMC
// queue, fixed thread pool, ordered merge. Tagged `concurrency` so the TSan
// CI job can select them with `ctest -L concurrency`.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "parallel/mpmc_queue.h"
#include "parallel/ordered_merge.h"
#include "parallel/thread_pool.h"

namespace {

using namespace hds;
using parallel::BoundedQueue;
using parallel::OrderedMerge;
using parallel::ThreadPool;

TEST(BoundedQueue, FifoSingleThread) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryOpsRespectCapacityAndEmptiness) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks: queue is full
    pushed = true;
  });
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, CloseReleasesBlockedProducerWithFalse) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> result{true};
  std::thread producer([&] { result = q.push(2); });
  q.close();
  producer.join();
  EXPECT_FALSE(result);          // the blocked push was refused
  EXPECT_FALSE(q.push(3));       // pushes after close fail immediately
  EXPECT_EQ(q.pop(), 1);         // pending items still drain
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseReleasesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());  // blocks until close
    done = true;
  });
  q.close();
  consumer.join();
  EXPECT_TRUE(done);
}

TEST(BoundedQueue, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(8);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (const auto v = q.pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (auto it = threads.begin() + 3; it != threads.end(); ++it) it->join();
  q.close();
  for (auto it = threads.begin(); it != threads.begin() + 3; ++it) it->join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(popped, n);
  EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(BoundedQueue, DepthGaugeTracksSize) {
  obs::MetricsRegistry metrics;
  BoundedQueue<int> q(4);
  q.attach_depth_gauge(&metrics.gauge("depth"));
  EXPECT_EQ(metrics.gauge("depth").value(), 0.0);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  EXPECT_EQ(metrics.gauge("depth").value(), 2.0);
  (void)q.pop();
  EXPECT_EQ(metrics.gauge("depth").value(), 1.0);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done, 200);
}

TEST(ThreadPool, WaitIdleIsABarrierAndPoolStaysUsable) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++done; });
    pool.wait_idle();
    EXPECT_EQ(done, 50 * (round + 1));
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, DefaultThreadCountNeverZero) {
  EXPECT_GE(parallel::default_thread_count(), 1u);
}

TEST(OrderedMerge, ReordersOutOfOrderPuts) {
  OrderedMerge<int> merge;
  std::thread producer([&] {
    EXPECT_TRUE(merge.put(2, 20));
    EXPECT_TRUE(merge.put(0, 0));
    EXPECT_TRUE(merge.put(1, 10));
  });
  for (int i = 0; i < 3; ++i) {
    const auto v = merge.next();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i * 10);
  }
  producer.join();
}

TEST(OrderedMerge, ManyProducersStreamInOrder) {
  constexpr std::uint64_t kResults = 400;
  OrderedMerge<std::uint64_t> merge(/*window=*/8);
  std::vector<std::thread> producers;
  std::atomic<std::uint64_t> seq{0};
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (std::uint64_t s = seq++; s < kResults; s = seq++) {
        ASSERT_TRUE(merge.put(s, s * 3));
      }
    });
  }
  for (std::uint64_t i = 0; i < kResults; ++i) {
    const auto v = merge.next();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i * 3);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(merge.next_seq(), kResults);
}

TEST(OrderedMerge, WindowBlocksFarAheadProducer) {
  OrderedMerge<int> merge(/*window=*/2);
  ASSERT_TRUE(merge.put(0, 0));
  ASSERT_TRUE(merge.put(1, 1));
  std::atomic<bool> delivered{false};
  std::thread producer([&] {
    EXPECT_TRUE(merge.put(2, 2));  // blocks: 2 >= next(0) + window(2)
    delivered = true;
  });
  EXPECT_EQ(merge.next(), 0);  // advances next_ to 1, releasing seq 2
  producer.join();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(merge.next(), 1);
  EXPECT_EQ(merge.next(), 2);
}

TEST(OrderedMerge, CloseReleasesEverybody) {
  OrderedMerge<int> merge(/*window=*/1);
  ASSERT_TRUE(merge.put(0, 0));
  std::atomic<bool> refused{false};
  std::thread producer([&] { refused = !merge.put(5, 5); });
  std::thread consumer([&] {
    EXPECT_EQ(merge.next(), 0);
    EXPECT_FALSE(merge.next().has_value());  // seq 1 never arrives
  });
  merge.close();
  producer.join();
  consumer.join();
  EXPECT_TRUE(refused);
}

}  // namespace
