// Tests for the multi-tenant serve front end (src/service): wire framing,
// concurrent per-tenant round trips over one shared container store,
// dedup-state isolation, quota rejection, admission backpressure (kBusy),
// restart persistence, and the tenant_* metrics surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "chunking/chunk_stream.h"
#include "chunking/tttd.h"
#include "common/rng.h"
#include "core/hidestore.h"
#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"
#include "storage/durable.h"
#include "util/temp_dir.h"

namespace hds::service {
namespace {

using testutil::TempDir;

std::vector<std::uint8_t> random_bytes(std::uint64_t seed, std::size_t size) {
  std::vector<std::uint8_t> bytes(size);
  Xoshiro256ss rng(seed);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
  return bytes;
}

// Three versions with realistic overlap: v2 extends v1, v3 rewrites v2's
// head — the shape dedup and recipe chains exercise.
std::vector<std::vector<std::uint8_t>> make_versions(std::uint64_t seed) {
  std::vector<std::vector<std::uint8_t>> versions;
  versions.push_back(random_bytes(seed, 128 * 1024));
  auto v2 = versions[0];
  const auto tail = random_bytes(seed + 1, 16 * 1024);
  v2.insert(v2.end(), tail.begin(), tail.end());
  versions.push_back(v2);
  auto v3 = v2;
  const auto head = random_bytes(seed + 2, 8 * 1024);
  std::copy(head.begin(), head.end(), v3.begin());
  versions.push_back(std::move(v3));
  return versions;
}

Response must_call(ServeClient& client, const Request& req) {
  const auto resp = client.call(req);
  EXPECT_TRUE(resp.has_value()) << "transport failure";
  return resp.value_or(Response{Status::kError, "transport failure", {}});
}

Request backup_request(const std::string& tenant,
                       const std::vector<std::uint8_t>& data,
                       const std::string& label = "data") {
  Request req;
  req.op = Op::kBackup;
  req.tenant = tenant;
  req.label = label;
  req.data = data;
  return req;
}

Request restore_request(const std::string& tenant, std::uint32_t version) {
  Request req;
  req.op = Op::kRestore;
  req.tenant = tenant;
  req.version = version;
  return req;
}

bool wait_counter_at_least(obs::MetricsRegistry& metrics, const char* name,
                           std::uint64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto* counter = metrics.find_counter(name);
    if (counter != nullptr && counter->value() >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// --- Wire protocol ---

TEST(ServiceWire, RequestRoundTrip) {
  Request req;
  req.op = Op::kBackup;
  req.tenant = "alpha-1";
  req.label = "nightly";
  req.version = 7;
  req.data = {1, 2, 3, 0, 255};
  const auto decoded = decode_request(encode_request(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, Op::kBackup);
  EXPECT_EQ(decoded->tenant, "alpha-1");
  EXPECT_EQ(decoded->label, "nightly");
  EXPECT_EQ(decoded->version, 7u);
  EXPECT_EQ(decoded->data, req.data);
}

TEST(ServiceWire, ResponseRoundTripAndEmptyPayload) {
  Response resp;
  resp.status = Status::kQuotaExceeded;
  resp.message = "quota exceeded";
  const auto decoded = decode_response(encode_response(resp));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, Status::kQuotaExceeded);
  EXPECT_EQ(decoded->message, "quota exceeded");
  EXPECT_TRUE(decoded->data.empty());
}

TEST(ServiceWire, MalformedPayloadsAreRejected) {
  EXPECT_FALSE(decode_request({}).has_value());
  // Unknown opcode.
  const std::vector<std::uint8_t> bad_op = {99, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode_request(bad_op).has_value());
  // Truncated: tenant_len says 5 bytes but none follow.
  const std::vector<std::uint8_t> truncated = {0, 5};
  EXPECT_FALSE(decode_request(truncated).has_value());
  EXPECT_FALSE(decode_response({}).has_value());
  const std::vector<std::uint8_t> bad_status = {7, 0, 0, 0, 0};
  EXPECT_FALSE(decode_response(bad_status).has_value());
}

TEST(ServiceWire, TenantNameValidation) {
  EXPECT_TRUE(valid_tenant_name("alpha"));
  EXPECT_TRUE(valid_tenant_name("a-1_b"));
  EXPECT_FALSE(valid_tenant_name(""));
  EXPECT_FALSE(valid_tenant_name("Upper"));
  EXPECT_FALSE(valid_tenant_name("has space"));
  EXPECT_FALSE(valid_tenant_name("dot.dot"));
  EXPECT_FALSE(valid_tenant_name("../escape"));
  EXPECT_FALSE(valid_tenant_name(std::string(33, 'a')));
}

// --- End-to-end service behavior ---

TEST(ServeServer, TwoTenantsConcurrentRoundTrips) {
  TempDir dir("svc_roundtrip");
  ServeConfig config;
  config.repo = dir.path;
  config.max_sessions = 4;
  ServeServer server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::vector<std::string> tenants = {"alpha", "bravo"};
  const std::vector<std::vector<std::vector<std::uint8_t>>> data = {
      make_versions(100), make_versions(200)};

  // Interleaved backups + restores from two concurrent sessions against
  // the one shared store.
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    threads.emplace_back([&, t] {
      ServeClient client;
      ASSERT_TRUE(client.connect(server.port()));
      for (std::size_t v = 0; v < data[t].size(); ++v) {
        const auto resp = must_call(
            client, backup_request(tenants[t], data[t][v],
                                   "v" + std::to_string(v + 1)));
        EXPECT_EQ(resp.status, Status::kOk) << resp.message;
        // Read-your-writes inside the session, interleaved with the other
        // tenant's traffic.
        const auto back = must_call(
            client, restore_request(tenants[t],
                                    static_cast<std::uint32_t>(v + 1)));
        EXPECT_EQ(back.status, Status::kOk) << back.message;
        EXPECT_EQ(back.data, data[t][v]);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Every version restores bit-identical — and identical to what a
  // standalone single-tenant system produces from the same input.
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    HiDeStore solo;  // in-memory single-tenant reference
    TttdChunker chunker;
    ServeClient client;
    ASSERT_TRUE(client.connect(server.port()));
    for (std::size_t v = 0; v < data[t].size(); ++v) {
      (void)solo.backup(chunk_bytes(chunker, data[t][v]));
      const auto resp = must_call(
          client,
          restore_request(tenants[t], static_cast<std::uint32_t>(v + 1)));
      ASSERT_EQ(resp.status, Status::kOk) << resp.message;
      std::vector<std::uint8_t> reference;
      (void)solo.restore(static_cast<VersionId>(v + 1),
                         [&reference](const ChunkLoc&,
                                      std::span<const std::uint8_t> bytes) {
                           reference.insert(reference.end(), bytes.begin(),
                                            bytes.end());
                         });
      EXPECT_EQ(resp.data, reference);
      EXPECT_EQ(resp.data, data[t][v]);
    }
    // The shared store holds both tenants' containers; per-tenant fsck
    // must still come back clean (walks are scoped to the tenant's tags).
    Request fsck;
    fsck.op = Op::kFsck;
    fsck.tenant = tenants[t];
    const auto verdict = must_call(client, fsck);
    EXPECT_EQ(verdict.status, Status::kOk)
        << std::string(verdict.data.begin(), verdict.data.end());
  }
  server.stop();
}

TEST(ServeServer, TenantDedupStateIsIsolated) {
  TempDir dir("svc_isolation");
  ServeConfig config;
  config.repo = dir.path;
  ServeServer server(config);
  ASSERT_TRUE(server.start());

  const auto payload = random_bytes(42, 64 * 1024);
  ServeClient client;
  ASSERT_TRUE(client.connect(server.port()));
  EXPECT_EQ(must_call(client, backup_request("alpha", payload)).status,
            Status::kOk);
  EXPECT_EQ(must_call(client, backup_request("alpha", payload)).status,
            Status::kOk);

  // Tenant bravo sees none of alpha's versions...
  Request list;
  list.op = Op::kList;
  list.tenant = "bravo";
  const auto bravo_list = must_call(client, list);
  EXPECT_EQ(bravo_list.status, Status::kOk);
  EXPECT_TRUE(bravo_list.data.empty())
      << std::string(bravo_list.data.begin(), bravo_list.data.end());
  // ...and restoring alpha's version 1 under bravo fails.
  EXPECT_EQ(must_call(client, restore_request("bravo", 1)).status,
            Status::kError);
  // Dedup is per-tenant: bravo ingesting the same payload stores its own
  // copy (its stats report unique chunks, not a 100% dedup hit).
  EXPECT_EQ(must_call(client, backup_request("bravo", payload)).status,
            Status::kOk);
  const auto alpha_list_resp = [&] {
    Request req;
    req.op = Op::kList;
    req.tenant = "alpha";
    return must_call(client, req);
  }();
  const std::string alpha_list(alpha_list_resp.data.begin(),
                               alpha_list_resp.data.end());
  EXPECT_NE(alpha_list.find("version=1"), std::string::npos);
  EXPECT_NE(alpha_list.find("version=2"), std::string::npos);
  EXPECT_EQ(alpha_list.find("version=3"), std::string::npos);
  server.stop();
}

TEST(ServeServer, StateSurvivesRestart) {
  TempDir dir("svc_restart");
  const auto versions = make_versions(300);
  std::uint16_t port = 0;
  {
    ServeConfig config;
    config.repo = dir.path;
    ServeServer server(config);
    ASSERT_TRUE(server.start());
    port = server.port();
    ServeClient client;
    ASSERT_TRUE(client.connect(port));
    for (const auto& version : versions) {
      ASSERT_EQ(must_call(client, backup_request("alpha", version)).status,
                Status::kOk);
    }
    server.stop();
  }
  {
    ServeConfig config;
    config.repo = dir.path;
    ServeServer server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ServeClient client;
    ASSERT_TRUE(client.connect(server.port()));
    for (std::size_t v = 0; v < versions.size(); ++v) {
      const auto resp = must_call(
          client, restore_request("alpha", static_cast<std::uint32_t>(v + 1)));
      ASSERT_EQ(resp.status, Status::kOk) << resp.message;
      EXPECT_EQ(resp.data, versions[v]);
    }
    // A tenant never written stays empty after the restart, too.
    EXPECT_EQ(must_call(client, restore_request("bravo", 1)).status,
              Status::kError);
    Request fsck;
    fsck.op = Op::kFsck;
    fsck.tenant = "alpha";
    EXPECT_EQ(must_call(client, fsck).status, Status::kOk);
    server.stop();
  }
}

TEST(ServeServer, QuotaRejectsWithoutIngesting) {
  TempDir dir("svc_quota");
  ServeConfig config;
  config.repo = dir.path;
  config.tenant_quota_bytes = 64 * 1024;
  ServeServer server(config);
  ASSERT_TRUE(server.start());
  ServeClient client;
  ASSERT_TRUE(client.connect(server.port()));

  // Over quota: rejected with the dedicated status, nothing stored.
  const auto big = random_bytes(7, 100 * 1024);
  const auto rejected = must_call(client, backup_request("alpha", big));
  EXPECT_EQ(rejected.status, Status::kQuotaExceeded) << rejected.message;
  EXPECT_EQ(must_call(client, restore_request("alpha", 1)).status,
            Status::kError);

  // Under quota still works — the session (and listener) survived.
  const auto small = random_bytes(8, 16 * 1024);
  EXPECT_EQ(must_call(client, backup_request("alpha", small)).status,
            Status::kOk);
  const auto back = must_call(client, restore_request("alpha", 1));
  EXPECT_EQ(back.data, small);

  const auto* rejections =
      server.metrics().find_counter("tenant_alpha_quota_rejections");
  ASSERT_NE(rejections, nullptr);
  EXPECT_GE(rejections->value(), 1u);
  server.stop();
}

TEST(ServeServer, AdmissionBackpressureAnswersBusy) {
  TempDir dir("svc_busy");
  ServeConfig config;
  config.repo = dir.path;
  config.max_sessions = 1;
  config.pending_sessions = 1;
  ServeServer server(config);
  ASSERT_TRUE(server.start());

  // Occupy the single worker: a served ping proves the session is live
  // (the worker is now blocked reading this connection's next frame).
  ServeClient holder;
  ASSERT_TRUE(holder.connect(server.port()));
  Request ping;
  ping.op = Op::kPing;
  EXPECT_EQ(must_call(holder, ping).status, Status::kOk);

  // Fill the pending queue with a second connection.
  ServeClient waiter;
  ASSERT_TRUE(waiter.connect(server.port()));
  ASSERT_TRUE(wait_counter_at_least(server.metrics(),
                                    "serve_sessions_accepted", 2));

  // The third connection must get an explicit kBusy, not an unbounded wait
  // — and must not wedge the listener.
  ServeClient rejected;
  ASSERT_TRUE(rejected.connect(server.port()));
  const auto busy = rejected.call(ping);
  ASSERT_TRUE(busy.has_value());
  EXPECT_EQ(busy->status, Status::kBusy);
  const auto* rejections =
      server.metrics().find_counter("serve_sessions_rejected");
  ASSERT_NE(rejections, nullptr);
  EXPECT_GE(rejections->value(), 1u);

  // Release the worker; the queued session gets served.
  holder.close();
  EXPECT_EQ(must_call(waiter, ping).status, Status::kOk);
  server.stop();
}

TEST(ServeServer, MetricsExposeTenantCounters) {
  TempDir dir("svc_metrics");
  ServeConfig config;
  config.repo = dir.path;
  ServeServer server(config);
  ASSERT_TRUE(server.start());
  ServeClient client;
  ASSERT_TRUE(client.connect(server.port()));
  const auto payload = random_bytes(9, 32 * 1024);
  ASSERT_EQ(must_call(client, backup_request("alpha", payload)).status,
            Status::kOk);
  ASSERT_EQ(must_call(client, restore_request("alpha", 1)).status,
            Status::kOk);

  server.refresh_metrics();
  const std::string prom = server.metrics().to_prometheus();
  for (const char* metric :
       {"tenant_alpha_sessions", "tenant_alpha_backups",
        "tenant_alpha_restores", "tenant_alpha_logical_bytes",
        "tenant_alpha_restored_bytes", "tenant_alpha_chunks",
        "tenant_alpha_versions", "serve_sessions_accepted",
        "serve_pending_sessions"}) {
    EXPECT_NE(prom.find(metric), std::string::npos) << metric;
  }
  const auto* restored =
      server.metrics().find_counter("tenant_alpha_restored_bytes");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->value(), payload.size());
  server.stop();
}

TEST(ServeServer, RefusesSingleTenantRepository) {
  TempDir dir("svc_refuse");
  // A single-tenant repository keeps state.hds at its root.
  HiDeStoreConfig solo_config;
  solo_config.storage_dir = dir.path;
  HiDeStore solo(solo_config);
  solo.save(dir.path);

  ServeConfig config;
  config.repo = dir.path;
  ServeServer server(config);
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_NE(error.find("single-tenant"), std::string::npos) << error;
}

}  // namespace
}  // namespace hds::service
