// Tests for recipe-chain maintenance: the previous-recipe update after a
// version (Figure 7), chain resolution across the three CID kinds, and
// Algorithm 1's flattening (including window-2 skip chains).
#include <gtest/gtest.h>

#include "core/recipe_chain.h"

namespace hds {
namespace {

Fingerprint fp(std::uint64_t id) { return Fingerprint::from_seed(id); }

Recipe recipe_with(VersionId v,
                   std::vector<std::pair<std::uint64_t, ContainerId>> items) {
  Recipe r(v);
  for (const auto& [id, cid] : items) r.add(fp(id), cid, 4096);
  return r;
}

TEST(UpdatePreviousRecipe, ColdChunksGetArchivalHomes) {
  auto prev = recipe_with(3, {{1, 0}, {2, 0}, {3, 0}});
  const ColdMap cold{{fp(1), 17}, {fp(3), 18}};
  const auto updated = update_previous_recipe(prev, cold, 4, nullptr);
  EXPECT_EQ(updated, 3u);
  EXPECT_EQ(prev.entries()[0].cid, 17);
  EXPECT_EQ(prev.entries()[1].cid, -4);  // hot: chained to version 4
  EXPECT_EQ(prev.entries()[2].cid, 18);
}

TEST(UpdatePreviousRecipe, AlreadyFinalizedEntriesUntouched) {
  auto prev = recipe_with(3, {{1, 9}, {2, -2}, {3, 0}});
  const ColdMap cold{{fp(1), 99}, {fp(2), 99}, {fp(3), 20}};
  const auto updated = update_previous_recipe(prev, cold, 4, nullptr);
  EXPECT_EQ(updated, 1u);
  EXPECT_EQ(prev.entries()[0].cid, 9);
  EXPECT_EQ(prev.entries()[1].cid, -2);
  EXPECT_EQ(prev.entries()[2].cid, 20);
}

TEST(UpdatePreviousRecipe, WindowTwoChainsThroughIntermediate) {
  auto prev2 = recipe_with(2, {{1, 0}, {2, 0}, {3, 0}});
  const ColdMap cold{{fp(1), 30}};
  // fp(2) lives in the intermediate version (v3); fp(3) skipped it.
  const std::unordered_set<Fingerprint> between{fp(2)};
  (void)update_previous_recipe(prev2, cold, 4, &between);
  EXPECT_EQ(prev2.entries()[0].cid, 30);
  EXPECT_EQ(prev2.entries()[1].cid, -3);
  EXPECT_EQ(prev2.entries()[2].cid, -4);
}

TEST(ResolveChain, WalksToArchivalHome) {
  RecipeStore store;
  store.put(recipe_with(1, {{7, -2}}));
  store.put(recipe_with(2, {{7, -3}}));
  store.put(recipe_with(3, {{7, 42}}));
  std::size_t hops = 0;
  EXPECT_EQ(resolve_chain(store, fp(7), -2, &hops), 42);
  EXPECT_EQ(hops, 2u);
}

TEST(ResolveChain, PositiveAndZeroAreTerminal) {
  RecipeStore store;
  EXPECT_EQ(resolve_chain(store, fp(1), 5, nullptr), 5);
  EXPECT_EQ(resolve_chain(store, fp(1), 0, nullptr), 0);
}

TEST(ResolveChain, MissingRecipeThrows) {
  RecipeStore store;
  EXPECT_THROW((void)resolve_chain(store, fp(1), -9, nullptr),
               std::runtime_error);
}

TEST(ResolveChain, BrokenChainThrows) {
  RecipeStore store;
  store.put(recipe_with(2, {{8, 1}}));  // recipe exists but lacks fp(7)
  EXPECT_THROW((void)resolve_chain(store, fp(7), -2, nullptr),
               std::runtime_error);
}

TEST(FlattenRecipes, CollapsesChainsToOneHop) {
  RecipeStore store;
  store.put(recipe_with(1, {{7, -2}, {8, -2}}));
  store.put(recipe_with(2, {{7, -3}, {8, 11}}));
  store.put(recipe_with(3, {{7, 50}, {9, 0}}));

  const auto updated = flatten_recipes(store, 1);
  EXPECT_GE(updated, 3u);
  EXPECT_EQ(store.get(1)->entries()[0].cid, 50);  // 7: resolved transitively
  EXPECT_EQ(store.get(1)->entries()[1].cid, 11);  // 8: resolved via v2
  EXPECT_EQ(store.get(2)->entries()[0].cid, 50);
  EXPECT_EQ(store.get(3)->entries()[1].cid, 0);   // newest keeps active refs
}

TEST(FlattenRecipes, StillHotChunksPointAtNewest) {
  RecipeStore store;
  store.put(recipe_with(1, {{7, -2}}));
  store.put(recipe_with(2, {{7, -3}}));
  store.put(recipe_with(3, {{7, 0}}));  // still in active containers

  (void)flatten_recipes(store, 1);
  EXPECT_EQ(store.get(1)->entries()[0].cid, -3);
  EXPECT_EQ(store.get(2)->entries()[0].cid, -3);
}

TEST(FlattenRecipes, WindowTwoResolvesSkipChains) {
  RecipeStore store;
  // fp(7) skips version 2 entirely: R1 chains directly to R3.
  store.put(recipe_with(1, {{7, -3}}));
  store.put(recipe_with(2, {{8, 5}}));
  store.put(recipe_with(3, {{7, -4}}));
  store.put(recipe_with(4, {{7, 77}}));

  (void)flatten_recipes(store, 2);
  EXPECT_EQ(store.get(1)->entries()[0].cid, 77);
  EXPECT_EQ(store.get(3)->entries()[0].cid, 77);
}

TEST(FlattenRecipes, SingleRecipeIsNoop) {
  RecipeStore store;
  store.put(recipe_with(1, {{7, 0}}));
  EXPECT_EQ(flatten_recipes(store, 1), 0u);
  EXPECT_EQ(store.get(1)->entries()[0].cid, 0);
}

TEST(FlattenRecipes, IdempotentSecondPass) {
  RecipeStore store;
  store.put(recipe_with(1, {{7, -2}, {8, -2}}));
  store.put(recipe_with(2, {{7, 13}, {8, -3}}));
  store.put(recipe_with(3, {{8, 21}}));
  (void)flatten_recipes(store, 1);
  const auto cid_7 = store.get(1)->entries()[0].cid;
  const auto cid_8 = store.get(1)->entries()[1].cid;
  (void)flatten_recipes(store, 1);
  EXPECT_EQ(store.get(1)->entries()[0].cid, cid_7);
  EXPECT_EQ(store.get(1)->entries()[1].cid, cid_8);
  EXPECT_EQ(cid_7, 13);
  EXPECT_EQ(cid_8, 21);
}

}  // namespace
}  // namespace hds
