// Tests for the Bloom filter (DDFS "summary vector"): no false negatives,
// false-positive rate near the configured target, sane sizing.
#include <gtest/gtest.h>

#include "index/bloom_filter.h"

namespace hds {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bloom(10000, 0.01);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    bloom.insert(Fingerprint::from_seed(i));
  }
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(bloom.may_contain(Fingerprint::from_seed(i))) << i;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  BloomFilter bloom(10000, 0.01);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    bloom.insert(Fingerprint::from_seed(i));
  }
  std::size_t false_positives = 0;
  const std::size_t probes = 20000;
  for (std::uint64_t i = 0; i < probes; ++i) {
    false_positives += bloom.may_contain(Fingerprint::from_seed(1u << 20 | i));
  }
  const double rate =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  EXPECT_LT(rate, 0.03);  // target 1%, generous headroom for variance
}

TEST(BloomFilter, EmptyFilterRejectsEverything) {
  BloomFilter bloom(1000);
  std::size_t hits = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    hits += bloom.may_contain(Fingerprint::from_seed(i));
  }
  EXPECT_EQ(hits, 0u);
}

TEST(BloomFilter, MemoryScalesWithExpectedItems) {
  BloomFilter small(1000, 0.01);
  BloomFilter large(100000, 0.01);
  EXPECT_GT(large.memory_bytes(), small.memory_bytes() * 50);
}

TEST(BloomFilter, SurvivesZeroAndTinyExpectedItems) {
  BloomFilter bloom(0);
  bloom.insert(Fingerprint::from_seed(1));
  EXPECT_TRUE(bloom.may_contain(Fingerprint::from_seed(1)));
}

}  // namespace
}  // namespace hds
