// Tests for the rewriting filters: each scheme's defining invariant —
// capping bounds distinct containers, CBR respects its budget and utility
// threshold, CFL only fires below its fragmentation threshold, dynamic
// capping (FBW) spares the look-back window.
#include <gtest/gtest.h>

#include <set>

#include "rewrite/capping.h"
#include "rewrite/cbr.h"
#include "rewrite/cfl.h"
#include "rewrite/dynamic_capping.h"
#include "rewrite/rewrite_filter.h"

namespace hds {
namespace {

ChunkRecord chunk(std::uint64_t id, std::uint32_t size = 4096) {
  ChunkRecord rec;
  rec.fp = Fingerprint::from_seed(id);
  rec.size = size;
  rec.content_seed = id;
  return rec;
}

// A fragmented segment: `n` duplicate chunks spread round-robin over
// `containers` distinct old containers, plus `uniques` new chunks.
struct Segment {
  std::vector<ChunkRecord> chunks;
  std::vector<std::optional<ContainerId>> locations;
};

Segment fragmented_segment(std::size_t n, int containers,
                           std::size_t uniques = 0) {
  Segment seg;
  for (std::size_t i = 0; i < n; ++i) {
    seg.chunks.push_back(chunk(i));
    seg.locations.emplace_back(static_cast<ContainerId>(i % containers) + 1);
  }
  for (std::size_t i = 0; i < uniques; ++i) {
    seg.chunks.push_back(chunk(100000 + i));
    seg.locations.emplace_back(std::nullopt);
  }
  return seg;
}

TEST(NoRewrite, NeverRewrites) {
  NoRewrite filter;
  auto seg = fragmented_segment(100, 50);
  const auto plan = filter.plan(seg.chunks, seg.locations);
  for (bool d : plan) EXPECT_FALSE(d);
  EXPECT_EQ(filter.stats().rewritten_chunks, 0u);
}

TEST(Capping, BoundsDistinctOldContainers) {
  RewriteConfig config;
  config.cap = 4;
  CappingRewrite filter(config);
  auto seg = fragmented_segment(200, 20);
  const auto plan = filter.plan(seg.chunks, seg.locations);

  std::set<ContainerId> kept;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (!plan[i] && seg.locations[i]) kept.insert(*seg.locations[i]);
  }
  EXPECT_LE(kept.size(), 4u);
  EXPECT_GT(filter.stats().rewritten_chunks, 0u);
}

TEST(Capping, NoRewriteWhenUnderCap) {
  RewriteConfig config;
  config.cap = 30;
  CappingRewrite filter(config);
  auto seg = fragmented_segment(200, 20);
  const auto plan = filter.plan(seg.chunks, seg.locations);
  for (bool d : plan) EXPECT_FALSE(d);
}

TEST(Capping, KeepsHighestContributors) {
  RewriteConfig config;
  config.cap = 1;
  CappingRewrite filter(config);
  // Container 1 supplies 10 chunks, container 2 supplies 2.
  Segment seg;
  for (int i = 0; i < 10; ++i) {
    seg.chunks.push_back(chunk(i));
    seg.locations.emplace_back(1);
  }
  for (int i = 0; i < 2; ++i) {
    seg.chunks.push_back(chunk(100 + i));
    seg.locations.emplace_back(2);
  }
  const auto plan = filter.plan(seg.chunks, seg.locations);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(plan[i]);
  for (int i = 10; i < 12; ++i) EXPECT_TRUE(plan[i]);
}

TEST(Capping, UniqueChunksNeverMarked) {
  RewriteConfig config;
  config.cap = 1;
  CappingRewrite filter(config);
  auto seg = fragmented_segment(50, 10, 25);
  const auto plan = filter.plan(seg.chunks, seg.locations);
  for (std::size_t i = 50; i < 75; ++i) EXPECT_FALSE(plan[i]);
}

TEST(Cbr, RespectsRewriteBudget) {
  RewriteConfig config;
  config.cbr_budget_ratio = 0.05;
  config.cbr_utility_threshold = 0.5;
  config.container_size = 4 * 1024 * 1024;
  CbrRewrite filter(config);
  filter.begin_version(1);

  auto seg = fragmented_segment(1000, 500);  // terrible utility everywhere
  (void)filter.plan(seg.chunks, seg.locations);
  const std::uint64_t logical = 1000ull * 4096;
  EXPECT_LE(filter.stats().rewritten_bytes,
            static_cast<std::uint64_t>(0.05 * logical) + 4096);
  EXPECT_GT(filter.stats().rewritten_chunks, 0u);
}

TEST(Cbr, HighStreamUtilitySuppressesRewrites) {
  RewriteConfig config;
  config.container_size = 64 * 1024;  // small container, fully useful
  CbrRewrite filter(config);
  filter.begin_version(1);

  // One container supplying 16 × 4 KiB = its entire capacity: utility 0.
  Segment seg;
  for (int i = 0; i < 16; ++i) {
    seg.chunks.push_back(chunk(i));
    seg.locations.emplace_back(1);
  }
  const auto plan = filter.plan(seg.chunks, seg.locations);
  for (bool d : plan) EXPECT_FALSE(d);
}

TEST(Cfl, NoRewriteWhileUnfragmented) {
  RewriteConfig config;
  config.container_size = 64 * 1024;
  config.cfl_threshold = 0.6;
  CflRewrite filter(config);
  filter.begin_version(1);

  // Whole stream served by one container: CFL stays high.
  Segment seg;
  for (int i = 0; i < 16; ++i) {
    seg.chunks.push_back(chunk(i));
    seg.locations.emplace_back(1);
  }
  const auto plan = filter.plan(seg.chunks, seg.locations);
  for (bool d : plan) EXPECT_FALSE(d);
  EXPECT_GT(filter.current_cfl(), 0.6);
}

TEST(Cfl, SelectiveRewriteWhenFragmented) {
  RewriteConfig config;
  config.container_size = 64 * 1024;
  config.cfl_threshold = 0.6;
  config.cfl_min_contribution = 0.5;
  CflRewrite filter(config);
  filter.begin_version(1);

  // 64 chunks over 64 containers: CFL collapses, every container
  // contributes a sliver → selective duplication fires.
  auto seg = fragmented_segment(64, 64);
  (void)filter.plan(seg.chunks, seg.locations);
  EXPECT_LT(filter.current_cfl(), 0.6);
  EXPECT_GT(filter.stats().rewritten_chunks, 0u);
}

TEST(DynamicCapping, SparesLookBackWindow) {
  RewriteConfig config;
  config.lookback_containers = 8;
  config.fbw_budget_ratio = 1.0;  // unlimited budget: only the window saves
  DynamicCappingRewrite filter(config);

  // Teach the window that containers 1..4 were written recently.
  std::vector<RecipeEntry> recent;
  for (std::uint64_t i = 0; i < 4; ++i) {
    recent.push_back({Fingerprint::from_seed(900 + i),
                      static_cast<ContainerId>(i + 1), 4096});
  }
  filter.finish_segment(recent);

  Segment seg;
  for (int i = 0; i < 8; ++i) {
    seg.chunks.push_back(chunk(i));
    // Half in-window (1..4), half far away (100..103).
    seg.locations.emplace_back(i < 4 ? i + 1 : 100 + i);
  }
  const auto plan = filter.plan(seg.chunks, seg.locations);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(plan[i]) << i;
  for (int i = 4; i < 8; ++i) EXPECT_TRUE(plan[i]) << i;
}

TEST(DynamicCapping, BudgetBoundsRewrites) {
  RewriteConfig config;
  config.lookback_containers = 1;
  config.fbw_budget_ratio = 0.02;
  DynamicCappingRewrite filter(config);

  auto seg = fragmented_segment(1000, 200);
  (void)filter.plan(seg.chunks, seg.locations);
  const std::uint64_t logical = 1000ull * 4096;
  EXPECT_LE(filter.stats().rewritten_bytes,
            static_cast<std::uint64_t>(0.02 * logical) + 4096);
}

TEST(DynamicCapping, WindowEvictsOldContainers) {
  RewriteConfig config;
  config.lookback_containers = 2;
  config.fbw_budget_ratio = 1.0;
  DynamicCappingRewrite filter(config);

  // Push containers 1, 2, 3 through the window of size 2: 1 must fall out.
  for (ContainerId cid : {1, 2, 3}) {
    std::vector<RecipeEntry> entries{
        {Fingerprint::from_seed(static_cast<std::uint64_t>(cid) + 500), cid,
         4096}};
    filter.finish_segment(entries);
  }
  Segment seg;
  seg.chunks.push_back(chunk(1));
  seg.locations.emplace_back(1);  // evicted from the window
  seg.chunks.push_back(chunk(2));
  seg.locations.emplace_back(3);  // still in the window
  const auto plan = filter.plan(seg.chunks, seg.locations);
  EXPECT_TRUE(plan[0]);
  EXPECT_FALSE(plan[1]);
}

TEST(RewriteFactory, CreatesEveryKind) {
  for (auto kind : {RewriteKind::kNone, RewriteKind::kCapping,
                    RewriteKind::kCbr, RewriteKind::kCfl,
                    RewriteKind::kDynamicCapping}) {
    auto filter = make_rewrite_filter(kind);
    ASSERT_NE(filter, nullptr);
    EXPECT_FALSE(filter->name().empty());
  }
}

}  // namespace
}  // namespace hds
