// Tests for the synthetic workload generator: determinism, chunk-identity
// consistency, the edit-rate calibration behind Table 1, the version-tag
// decay shape behind Figure 3, and the byte-level workload.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "chunking/chunk_stream.h"
#include "chunking/tttd.h"
#include "workload/generator.h"

namespace hds {
namespace {

std::vector<VersionStream> generate(const WorkloadProfile& p,
                                    std::uint32_t versions) {
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

TEST(Generator, DeterministicAcrossInstances) {
  const auto p = WorkloadProfile::kernel();
  auto a = generate(p, 5);
  auto b = generate(p, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t v = 0; v < a.size(); ++v) {
    ASSERT_EQ(a[v].chunks.size(), b[v].chunks.size());
    for (std::size_t i = 0; i < a[v].chunks.size(); ++i) {
      EXPECT_EQ(a[v].chunks[i].fp, b[v].chunks[i].fp);
      EXPECT_EQ(a[v].chunks[i].size, b[v].chunks[i].size);
    }
  }
}

TEST(Generator, ChunkIdentityIsConsistent) {
  // Same fingerprint ⇒ same size and same content, everywhere.
  const auto versions = generate(WorkloadProfile::gcc(), 8);
  std::unordered_map<Fingerprint, std::uint32_t> sizes;
  for (const auto& vs : versions) {
    for (const auto& c : vs.chunks) {
      const auto [it, fresh] = sizes.emplace(c.fp, c.size);
      if (!fresh) {
        EXPECT_EQ(it->second, c.size);
      }
    }
  }
}

TEST(Generator, SizesWithinBounds) {
  const auto versions = generate(WorkloadProfile::kernel(), 3);
  double total = 0;
  std::size_t count = 0;
  for (const auto& vs : versions) {
    for (const auto& c : vs.chunks) {
      EXPECT_GE(c.size, 1024u);
      EXPECT_LE(c.size, 7 * 1024u);
      total += c.size;
      ++count;
    }
  }
  EXPECT_NEAR(total / static_cast<double>(count), 4096.0, 300.0);
}

TEST(Generator, InterVersionRedundancyMatchesRates) {
  auto p = WorkloadProfile::kernel();
  p.chunks_per_version = 4000;
  const auto versions = generate(p, 6);
  for (std::size_t v = 1; v < versions.size(); ++v) {
    std::unordered_set<Fingerprint> prev;
    for (const auto& c : versions[v - 1].chunks) prev.insert(c.fp);
    std::size_t fresh = 0;
    for (const auto& c : versions[v].chunks) fresh += !prev.contains(c.fp);
    const double fresh_rate = static_cast<double>(fresh) /
                              static_cast<double>(versions[v].chunks.size());
    // mod 6.2% + ins 1.2% ⇒ roughly 4-12% new chunks per version.
    EXPECT_GT(fresh_rate, 0.02) << "version " << v;
    EXPECT_LT(fresh_rate, 0.16) << "version " << v;
  }
}

// Figure 3's defining observation: chunks absent from the current version
// almost never reappear later — except in the macos profile, where they may
// skip exactly one version.
TEST(Generator, KernelChunksDoNotReturnAfterLeaving) {
  const auto versions = generate(WorkloadProfile::kernel(), 10);
  std::unordered_map<Fingerprint, std::size_t> last_seen;
  std::size_t returns = 0, total = 0;
  for (std::size_t v = 0; v < versions.size(); ++v) {
    std::unordered_set<Fingerprint> now;
    for (const auto& c : versions[v].chunks) now.insert(c.fp);
    for (const auto& fp : now) {
      const auto it = last_seen.find(fp);
      if (it != last_seen.end()) {
        ++total;
        if (v - it->second > 1) ++returns;  // skipped at least one version
      }
      last_seen[fp] = v;
    }
  }
  EXPECT_EQ(returns, 0u);
  EXPECT_GT(total, 0u);
}

TEST(Generator, MacosChunksSkipExactlyOneVersion) {
  const auto versions = generate(WorkloadProfile::macos(), 12);
  std::unordered_map<Fingerprint, std::size_t> last_seen;
  std::size_t skip_one = 0, skip_more = 0;
  for (std::size_t v = 0; v < versions.size(); ++v) {
    std::unordered_set<Fingerprint> now;
    for (const auto& c : versions[v].chunks) now.insert(c.fp);
    for (const auto& fp : now) {
      const auto it = last_seen.find(fp);
      if (it != last_seen.end()) {
        if (v - it->second == 2) ++skip_one;
        if (v - it->second > 2) ++skip_more;
      }
      last_seen[fp] = v;
    }
  }
  EXPECT_GT(skip_one, 0u) << "macos must produce 1-version skips";
  EXPECT_EQ(skip_more, 0u) << "but never longer gaps";
}

TEST(Generator, VersionSizeStaysRoughlyStable) {
  auto p = WorkloadProfile::gcc();
  p.chunks_per_version = 2000;
  const auto versions = generate(p, 30);
  for (const auto& vs : versions) {
    EXPECT_GT(vs.chunks.size(), 1000u);
    EXPECT_LT(vs.chunks.size(), 4000u);
  }
}

TEST(Generator, ProfilesAreDistinct) {
  // Different seeds/namespaces: no chunk collisions across profiles.
  const auto a = generate(WorkloadProfile::kernel(), 2);
  const auto b = generate(WorkloadProfile::gcc(), 2);
  std::set<Fingerprint> fps_a;
  for (const auto& vs : a) {
    for (const auto& c : vs.chunks) fps_a.insert(c.fp);
  }
  for (const auto& vs : b) {
    for (const auto& c : vs.chunks) EXPECT_FALSE(fps_a.contains(c.fp));
  }
}

TEST(Generator, MakeChunkMatchesStreamChunks) {
  const auto rec = VersionChainGenerator::make_chunk(12345);
  EXPECT_EQ(rec.fp, Fingerprint::from_seed(12345));
  EXPECT_EQ(rec.content_seed, 12345u);
  const auto bytes = rec.materialize();
  EXPECT_EQ(bytes.size(), rec.size);
}

TEST(ByteWorkload, VersionsEvolveButShareContent) {
  ByteStreamWorkload workload(7, 256 * 1024);
  const auto v1 = workload.next_version(0.05);
  const auto v2 = workload.next_version(0.05);
  EXPECT_EQ(v1.size(), 256u * 1024u);
  // Sizes drift slightly (inserts/deletes) but stay in the same ballpark.
  EXPECT_GT(v2.size(), 200u * 1024u);
  EXPECT_LT(v2.size(), 320u * 1024u);
  EXPECT_NE(v1, v2);
  // Inserts/deletes shift byte positions, so sharing must be measured
  // content-defined — exactly what CDC chunking does.
  TttdChunker chunker;
  std::unordered_set<Fingerprint> fps_v1;
  for (const auto& c : chunk_bytes(chunker, v1).chunks) fps_v1.insert(c.fp);
  const auto stream_v2 = chunk_bytes(chunker, v2);
  std::size_t shared = 0;
  for (const auto& c : stream_v2.chunks) shared += fps_v1.contains(c.fp);
  EXPECT_GT(static_cast<double>(shared) /
                static_cast<double>(stream_v2.chunks.size()),
            0.5);
}

TEST(ByteWorkload, Deterministic) {
  ByteStreamWorkload a(9, 64 * 1024), b(9, 64 * 1024);
  EXPECT_EQ(a.next_version(0.1), b.next_version(0.1));
  EXPECT_EQ(a.next_version(0.1), b.next_version(0.1));
}

}  // namespace
}  // namespace hds
