// Lock-rank checker tests (DESIGN.md §14): ranked-order acquisition is
// clean, inversion and re-entrancy abort, and the hds::Mutex/CondVar
// wrappers keep the held-stack bookkeeping straight across waits.
//
// The lockrank::note_* functions are always compiled, so the checker's
// logic is testable in any build; the Mutex-integration tests additionally
// exercise the wired-up path under -DHDS_VERIFY.

#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <thread>

namespace hds {
namespace {

using lockrank::depth;
using lockrank::note_acquire;
using lockrank::note_release;

TEST(LockRank, AscendingRanksAreClean) {
  int a = 0, b = 0, c = 0;
  ASSERT_EQ(depth(), 0u);
  note_acquire(lockrank::kQueue, &a);
  note_acquire(lockrank::kStoreIndex, &b);
  note_acquire(lockrank::kObsTracer, &c);
  EXPECT_EQ(depth(), 3u);
  note_release(&c);
  note_release(&b);
  note_release(&a);
  EXPECT_EQ(depth(), 0u);
}

TEST(LockRank, OutOfOrderReleaseIsClean) {
  int a = 0, b = 0;
  note_acquire(lockrank::kQueue, &a);
  note_acquire(lockrank::kObsTracer, &b);
  note_release(&a);  // release the outer lock first: legal
  EXPECT_EQ(depth(), 1u);
  note_release(&b);
  EXPECT_EQ(depth(), 0u);
}

TEST(LockRank, UnrankedIsOrderExempt) {
  int a = 0, b = 0, c = 0;
  note_acquire(lockrank::kQueue, &a);
  // An unranked mutex may be taken under anything...
  note_acquire(lockrank::kUnranked, &b);
  // ...and a later ranked acquisition ignores it (only the ranked locks
  // still held — here kQueue — constrain the order).
  note_acquire(lockrank::kObsTracer, &c);
  note_release(&c);
  note_release(&b);
  note_release(&a);
  EXPECT_EQ(depth(), 0u);
}

TEST(LockRankDeath, InversionAborts) {
  int a = 0, b = 0;
  EXPECT_DEATH(
      {
        note_acquire(lockrank::kObsTracer, &a);
        note_acquire(lockrank::kQueue, &b);  // 25 under 70: inversion
      },
      "inversion");
}

TEST(LockRankDeath, EqualRankAborts) {
  int a = 0, b = 0;
  EXPECT_DEATH(
      {
        note_acquire(lockrank::kQueue, &a);
        note_acquire(lockrank::kQueue, &b);  // two queue locks nested
      },
      "inversion");
}

TEST(LockRankDeath, ReentrancyAborts) {
  int a = 0;
  EXPECT_DEATH(
      {
        note_acquire(lockrank::kQueue, &a);
        note_acquire(lockrank::kQueue, &a);  // same mutex twice
      },
      "re-entrant");
}

TEST(LockRankDeath, UnrankedReentrancyStillAborts) {
  int a = 0;
  EXPECT_DEATH(
      {
        note_acquire(lockrank::kUnranked, &a);
        note_acquire(lockrank::kUnranked, &a);
      },
      "re-entrant");
}

TEST(LockRankDeath, ReleasingUnheldAborts) {
  int a = 0;
  EXPECT_DEATH(note_release(&a), "not held");
}

TEST(LockRank, HeldStackIsPerThread) {
  int a = 0;
  note_acquire(lockrank::kObsTracer, &a);
  std::thread other([] {
    // This thread holds nothing: a low rank is fine here even though the
    // spawning thread holds rank 70.
    int b = 0;
    note_acquire(lockrank::kQueue, &b);
    EXPECT_EQ(depth(), 1u);
    note_release(&b);
  });
  other.join();
  EXPECT_EQ(depth(), 1u);
  note_release(&a);
}

// --- Wrapper integration: only meaningful when Mutex calls the checker ---

#if defined(HDS_VERIFY)

TEST(MutexRank, WiredIntoMutexLock) {
  Mutex low(lockrank::kQueue);
  Mutex high(lockrank::kObsTracer);
  {
    MutexLock l1(low);
    EXPECT_EQ(depth(), 1u);
    MutexLock l2(high);
    EXPECT_EQ(depth(), 2u);
  }
  EXPECT_EQ(depth(), 0u);
}

TEST(MutexRank, ManualUnlockRelockTracked) {
  Mutex mu(lockrank::kQueue);
  MutexLock lock(mu);
  EXPECT_EQ(depth(), 1u);
  lock.unlock();
  EXPECT_EQ(depth(), 0u);
  lock.lock();
  EXPECT_EQ(depth(), 1u);
  lock.unlock();
  EXPECT_EQ(depth(), 0u);
}

TEST(MutexRank, TryLockTracked) {
  Mutex mu(lockrank::kQueue);
  ASSERT_TRUE(mu.try_lock());
  EXPECT_EQ(depth(), 1u);
  mu.unlock();
  EXPECT_EQ(depth(), 0u);
}

TEST(MutexRank, CondVarWaitKeepsBookkeeping) {
  Mutex mu(lockrank::kQueue);
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    // Reacquired after the wait: exactly one lock held again.
    EXPECT_EQ(depth(), 1u);
  }
  waker.join();
  EXPECT_EQ(depth(), 0u);
}

TEST(MutexRankDeath, InversionThroughMutexAborts) {
  EXPECT_DEATH(
      {
        Mutex high(lockrank::kObsTracer);
        Mutex low(lockrank::kQueue);
        MutexLock l1(high);
        MutexLock l2(low);
      },
      "inversion");
}

#endif  // HDS_VERIFY

}  // namespace
}  // namespace hds
