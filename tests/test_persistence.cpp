// Tests for HiDeStore save/load: full state round trip, continued backups
// after reload (the rebuilt fingerprint cache must dedup exactly as if the
// process had never exited), corruption rejection, and window-2 reloads.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/byte_io.h"
#include "core/hidestore.h"
#include "workload/generator.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

namespace fs = std::filesystem;

using hds::testutil::TempDir;

std::vector<VersionStream> generate(WorkloadProfile p) {
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < p.versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

WorkloadProfile small_kernel(std::uint32_t versions = 8) {
  auto p = WorkloadProfile::kernel();
  p.versions = versions;
  p.chunks_per_version = 300;
  return p;
}

void expect_exact_restore(HiDeStore& sys, VersionId version,
                          const VersionStream& original) {
  std::size_t at = 0;
  bool ok = true;
  (void)sys.restore(version, [&](const ChunkLoc& loc,
                                 std::span<const std::uint8_t> bytes) {
    if (at < original.chunks.size()) {
      const auto& want = original.chunks[at];
      if (loc.fp != want.fp || bytes.size() != want.size) {
        ok = false;
      } else {
        const auto expect = want.materialize();
        ok &= std::equal(bytes.begin(), bytes.end(), expect.begin());
      }
    }
    ++at;
  });
  EXPECT_EQ(at, original.chunks.size()) << "version " << version;
  EXPECT_TRUE(ok) << "version " << version;
}

TEST(Persistence, SaveLoadRoundTripRestoresEveryVersion) {
  TempDir dir("hds_persist_roundtrip");
  const auto versions = generate(small_kernel());
  {
    HiDeStore sys;
    for (const auto& vs : versions) (void)sys.backup(vs);
    sys.save(dir.path);
  }
  auto sys = HiDeStore::load(dir.path);
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->latest_version(), versions.size());
  for (std::size_t v = 0; v < versions.size(); ++v) {
    expect_exact_restore(*sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

TEST(Persistence, BackupsContinueSeamlesslyAfterReload) {
  TempDir dir("hds_persist_continue");
  auto p = small_kernel(12);
  VersionChainGenerator gen(p);
  std::vector<VersionStream> versions;

  // Control: one uninterrupted system.
  HiDeStore control;
  for (int v = 0; v < 12; ++v) versions.push_back(gen.next_version());
  for (const auto& vs : versions) (void)control.backup(vs);

  // Experiment: save after 6 versions, reload, back up the rest.
  {
    HiDeStore sys;
    for (int v = 0; v < 6; ++v) (void)sys.backup(versions[v]);
    sys.save(dir.path);
  }
  auto sys = HiDeStore::load(dir.path);
  ASSERT_NE(sys, nullptr);
  for (int v = 6; v < 12; ++v) (void)sys->backup(versions[v]);

  // The rebuilt cache must have deduplicated exactly like the control: not
  // one extra byte stored.
  EXPECT_EQ(sys->total_stored_bytes(), control.total_stored_bytes());
  EXPECT_EQ(sys->total_logical_bytes(), control.total_logical_bytes());
  for (std::size_t v = 0; v < versions.size(); ++v) {
    expect_exact_restore(*sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

TEST(Persistence, WindowTwoReloadPreservesSkipChunks) {
  TempDir dir("hds_persist_w2");
  auto p = WorkloadProfile::macos();
  p.versions = 10;
  p.chunks_per_version = 300;
  const auto versions = generate(p);

  HiDeStoreConfig config;
  config.cache_window = 2;
  HiDeStore control(config);
  for (const auto& vs : versions) (void)control.backup(vs);

  {
    HiDeStore sys(config);
    for (int v = 0; v < 5; ++v) (void)sys.backup(versions[v]);
    sys.save(dir.path);
  }
  auto sys = HiDeStore::load(dir.path);
  ASSERT_NE(sys, nullptr);
  for (std::size_t v = 5; v < versions.size(); ++v) {
    (void)sys->backup(versions[v]);
  }
  EXPECT_EQ(sys->total_stored_bytes(), control.total_stored_bytes());
  for (std::size_t v = 0; v < versions.size(); ++v) {
    expect_exact_restore(*sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

TEST(Persistence, DeletionStateSurvivesReload) {
  TempDir dir("hds_persist_delete");
  const auto versions = generate(small_kernel(10));
  {
    HiDeStore sys;
    for (const auto& vs : versions) (void)sys.backup(vs);
    sys.save(dir.path);
  }
  auto sys = HiDeStore::load(dir.path);
  ASSERT_NE(sys, nullptr);
  const auto report = sys->delete_versions_up_to(4);
  EXPECT_EQ(report.versions_deleted, 4u);
  EXPECT_GT(report.containers_erased, 0u);  // tags survived the reload
  for (std::size_t v = 4; v < versions.size(); ++v) {
    expect_exact_restore(*sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

TEST(Persistence, LoadRejectsCorruptState) {
  TempDir dir("hds_persist_corrupt");
  const auto versions = generate(small_kernel(3));
  {
    HiDeStore sys;
    for (const auto& vs : versions) (void)sys.backup(vs);
    sys.save(dir.path);
  }
  const auto file = dir.path / "state.hds";
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    f.write("\xAB", 1);
  }
  EXPECT_EQ(HiDeStore::load(dir.path), nullptr);
}

TEST(Persistence, LoadRejectsMissingAndEmptyState) {
  TempDir dir("hds_persist_missing");
  EXPECT_EQ(HiDeStore::load(dir.path), nullptr);
  fs::create_directories(dir.path);
  std::ofstream(dir.path / "state.hds").close();
  EXPECT_EQ(HiDeStore::load(dir.path), nullptr);
}

TEST(Persistence, SaveIsIdempotent) {
  TempDir dir("hds_persist_idempotent");
  const auto versions = generate(small_kernel(4));
  HiDeStore sys;
  for (const auto& vs : versions) (void)sys.backup(vs);
  sys.save(dir.path);
  sys.save(dir.path);  // overwrite in place
  auto loaded = HiDeStore::load(dir.path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->total_stored_bytes(), sys.total_stored_bytes());
}

// --- ByteWriter/ByteReader unit coverage ---

TEST(ByteIo, RoundTripsAllTypes) {
  ByteWriter writer;
  writer.u8(7);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFULL);
  writer.f64(3.14159);
  writer.blob(std::vector<std::uint8_t>{1, 2, 3});

  ByteReader reader(writer.bytes());
  std::uint8_t a;
  std::uint32_t b;
  std::uint64_t c;
  double d;
  std::vector<std::uint8_t> e;
  ASSERT_TRUE(reader.u8(a));
  ASSERT_TRUE(reader.u32(b));
  ASSERT_TRUE(reader.u64(c));
  ASSERT_TRUE(reader.f64(d));
  ASSERT_TRUE(reader.blob(e));
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 0xDEADBEEF);
  EXPECT_EQ(c, 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(e, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(ByteIo, ReaderFailsClosedOnUnderflow) {
  ByteWriter writer;
  writer.u32(1);
  ByteReader reader(writer.bytes());
  std::uint64_t v;
  EXPECT_FALSE(reader.u64(v));
  EXPECT_FALSE(reader.ok());
  std::uint32_t w;
  EXPECT_FALSE(reader.u32(w));  // stays failed
}

}  // namespace
}  // namespace hds
