// Tests for the DedupPipeline baselines: byte-exact backup/restore round
// trips for every configuration, exactness of DDFS, report consistency,
// intra-version dedup, and the rewriting space/locality trade-off.
#include <gtest/gtest.h>

#include <filesystem>

#include "backup/pipeline.h"
#include "index/full_index.h"
#include "index/silo_index.h"
#include "restore/faa.h"
#include "workload/generator.h"

#include "util/temp_dir.h"

namespace hds {
namespace {

WorkloadProfile small_profile(std::uint32_t versions = 10,
                              std::size_t chunks = 400) {
  auto p = WorkloadProfile::kernel();
  p.versions = versions;
  p.chunks_per_version = chunks;
  return p;
}

std::vector<VersionStream> generate(const WorkloadProfile& p) {
  VersionChainGenerator gen(p);
  std::vector<VersionStream> out;
  for (std::uint32_t v = 0; v < p.versions; ++v) {
    out.push_back(gen.next_version());
  }
  return out;
}

// Restores `version` and checks every chunk against the original stream.
void expect_exact_restore(DedupPipeline& sys, VersionId version,
                          const VersionStream& original) {
  std::size_t at = 0;
  bool content_ok = true;
  const auto report = sys.restore(
      version, [&](const ChunkLoc& loc, std::span<const std::uint8_t> bytes) {
        if (at < original.chunks.size()) {
          const auto& want = original.chunks[at];
          if (loc.fp != want.fp || bytes.size() != want.size) {
            content_ok = false;
          } else {
            const auto expect = want.materialize();
            content_ok &=
                std::equal(bytes.begin(), bytes.end(), expect.begin());
          }
        }
        ++at;
      });
  EXPECT_EQ(at, original.chunks.size());
  EXPECT_TRUE(content_ok);
  EXPECT_EQ(report.stats.restored_bytes, original.logical_bytes());
}

class BaselineTest : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineTest, RoundTripAllVersions) {
  const auto profile = small_profile(8, 300);
  const auto versions = generate(profile);
  auto sys = make_baseline(GetParam());
  for (const auto& vs : versions) (void)sys->backup(vs);
  for (std::size_t v = 0; v < versions.size(); ++v) {
    expect_exact_restore(*sys, static_cast<VersionId>(v + 1), versions[v]);
  }
}

TEST_P(BaselineTest, ReportsAreConsistent) {
  const auto profile = small_profile(5, 300);
  const auto versions = generate(profile);
  auto sys = make_baseline(GetParam());
  std::uint64_t logical = 0, stored = 0;
  for (const auto& vs : versions) {
    const auto report = sys->backup(vs);
    EXPECT_EQ(report.logical_bytes, vs.logical_bytes());
    EXPECT_EQ(report.logical_chunks, vs.chunks.size());
    EXPECT_LE(report.stored_bytes, report.logical_bytes);
    logical += report.logical_bytes;
    stored += report.stored_bytes;
  }
  EXPECT_EQ(sys->total_logical_bytes(), logical);
  EXPECT_EQ(sys->total_stored_bytes(), stored);
  EXPECT_NEAR(sys->dedup_ratio(),
              1.0 - static_cast<double>(stored) / static_cast<double>(logical),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineTest,
                         ::testing::Values(BaselineKind::kDdfs,
                                           BaselineKind::kSparse,
                                           BaselineKind::kSilo,
                                           BaselineKind::kSiloCapping,
                                           BaselineKind::kSiloAlacc,
                                           BaselineKind::kSiloFbw),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case BaselineKind::kDdfs: return "ddfs";
                             case BaselineKind::kSparse: return "sparse";
                             case BaselineKind::kSilo: return "silo";
                             case BaselineKind::kSiloCapping:
                               return "silo_capping";
                             case BaselineKind::kSiloAlacc:
                               return "silo_alacc";
                             case BaselineKind::kSiloFbw: return "silo_fbw";
                           }
                           return "unknown";
                         });

TEST(Pipeline, DdfsIsExact) {
  // Backing up the same version twice must store (almost) nothing new:
  // only what intra-version structure already deduplicated the first time.
  const auto profile = small_profile(1, 500);
  const auto versions = generate(profile);
  auto sys = make_baseline(BaselineKind::kDdfs);
  (void)sys->backup(versions[0]);
  const auto again = sys->backup(versions[0]);
  EXPECT_EQ(again.stored_bytes, 0u);
  EXPECT_EQ(again.stored_chunks, 0u);
}

TEST(Pipeline, IntraVersionDuplicatesStoredOnce) {
  auto rec = VersionChainGenerator::make_chunk(1);
  VersionStream vs;
  for (int i = 0; i < 5; ++i) vs.chunks.push_back(rec);
  auto sys = make_baseline(BaselineKind::kDdfs);
  const auto report = sys->backup(vs);
  EXPECT_EQ(report.stored_chunks, 1u);
  EXPECT_EQ(report.logical_chunks, 5u);
  expect_exact_restore(*sys, 1, vs);
}

TEST(Pipeline, NearExactSchemesStoreAtLeastAsMuchAsDdfs) {
  const auto profile = small_profile(12, 400);
  const auto versions = generate(profile);
  auto ddfs = make_baseline(BaselineKind::kDdfs);
  auto sparse = make_baseline(BaselineKind::kSparse);
  auto silo = make_baseline(BaselineKind::kSilo);
  for (const auto& vs : versions) {
    (void)ddfs->backup(vs);
    (void)sparse->backup(vs);
    (void)silo->backup(vs);
  }
  EXPECT_GE(sparse->total_stored_bytes(), ddfs->total_stored_bytes());
  EXPECT_GE(silo->total_stored_bytes(), ddfs->total_stored_bytes());
  EXPECT_LE(sparse->dedup_ratio(), ddfs->dedup_ratio());
  EXPECT_LE(silo->dedup_ratio(), ddfs->dedup_ratio());
}

TEST(Pipeline, RewritingTradesSpaceForRestoreLocality) {
  // After many versions, capping must (a) have stored strictly more bytes
  // and (b) restore the latest version with fewer container reads than the
  // no-rewrite SiLo baseline.
  auto profile = small_profile(20, 500);
  const auto versions = generate(profile);
  auto plain = make_baseline(BaselineKind::kSilo);
  PipelineConfig config;
  RewriteConfig rewrite_config;
  rewrite_config.cap = 6;
  rewrite_config.container_size = config.container_size;
  auto capped = std::make_unique<DedupPipeline>(
      "silo+capping", std::make_unique<SiLoIndex>(),
      make_rewrite_filter(RewriteKind::kCapping, rewrite_config),
      std::make_unique<MemoryContainerStore>(), config);

  for (const auto& vs : versions) {
    (void)plain->backup(vs);
    (void)capped->backup(vs);
  }
  EXPECT_GT(capped->total_stored_bytes(), plain->total_stored_bytes());
  EXPECT_GT(capped->rewriter().stats().rewritten_chunks, 0u);

  auto count_reads = [&](DedupPipeline& sys) {
    RestoreConfig rc;
    FaaRestore faa(rc);
    const auto report = sys.restore_with(
        static_cast<VersionId>(versions.size()), faa,
        [](const ChunkLoc&, std::span<const std::uint8_t>) {});
    return report.stats.container_reads;
  };
  EXPECT_LT(count_reads(*capped), count_reads(*plain));
}

TEST(Pipeline, RestoreWithEveryPolicyIsExact) {
  const auto profile = small_profile(6, 300);
  const auto versions = generate(profile);
  auto sys = make_baseline(BaselineKind::kDdfs);
  for (const auto& vs : versions) (void)sys->backup(vs);

  for (auto kind : {RestorePolicyKind::kNoCache,
                    RestorePolicyKind::kContainerLru,
                    RestorePolicyKind::kChunkLru, RestorePolicyKind::kFaa,
                    RestorePolicyKind::kAlacc, RestorePolicyKind::kFbw}) {
    auto policy = make_restore_policy(kind);
    std::size_t at = 0;
    bool ok = true;
    (void)sys->restore_with(
        3, *policy,
        [&](const ChunkLoc& loc, std::span<const std::uint8_t> bytes) {
          const auto& want = versions[2].chunks[at++];
          ok &= loc.fp == want.fp && bytes.size() == want.size;
        });
    EXPECT_EQ(at, versions[2].chunks.size()) << policy->name();
    EXPECT_TRUE(ok) << policy->name();
  }
}

TEST(Pipeline, RestoreOfUnknownVersionIsEmpty) {
  auto sys = make_baseline(BaselineKind::kDdfs);
  const auto report = sys->restore(
      99, [](const ChunkLoc&, std::span<const std::uint8_t>) { FAIL(); });
  EXPECT_EQ(report.stats.restored_chunks, 0u);
}

TEST(Pipeline, MetadataOnlyModeMatchesIoCounts) {
  const auto profile = small_profile(6, 300);
  const auto versions = generate(profile);

  PipelineConfig real_config;
  PipelineConfig meta_config;
  meta_config.materialize_contents = false;

  auto real_sys = std::make_unique<DedupPipeline>(
      "real", std::make_unique<FullIndex>(), std::make_unique<NoRewrite>(),
      std::make_unique<MemoryContainerStore>(), real_config);
  auto meta_sys = std::make_unique<DedupPipeline>(
      "meta", std::make_unique<FullIndex>(), std::make_unique<NoRewrite>(),
      std::make_unique<MemoryContainerStore>(), meta_config);

  for (const auto& vs : versions) {
    const auto a = real_sys->backup(vs);
    const auto b = meta_sys->backup(vs);
    EXPECT_EQ(a.stored_bytes, b.stored_bytes);
    EXPECT_EQ(a.stored_chunks, b.stored_chunks);
  }
  auto reads = [](DedupPipeline& sys) {
    RestoreConfig rc;
    FaaRestore faa(rc);
    return sys
        .restore_with(6, faa,
                      [](const ChunkLoc&, std::span<const std::uint8_t>) {})
        .stats.container_reads;
  };
  EXPECT_EQ(reads(*real_sys), reads(*meta_sys));
}

TEST(Pipeline, FileStoreRangeRestoreUsesPartialReads) {
  const auto dir =
      hds::testutil::unique_path("hds_pipeline_partial");
  std::filesystem::remove_all(dir);
  DedupPipeline sys("ddfs-file", std::make_unique<FullIndex>(),
                    std::make_unique<NoRewrite>(),
                    std::make_unique<FileContainerStore>(dir));
  const auto versions = generate(small_profile(6, 300));
  for (const auto& vs : versions) (void)sys.backup(vs);

  // Range restore resolves exactly the needed chunks per container through
  // read_chunks(): the device moves strictly fewer bytes than the logical
  // per-read charge, and the content stays byte-exact.
  sys.store().reset_stats();
  RestoreConfig rc;
  FaaRestore policy(rc);
  std::vector<std::uint8_t> out;
  (void)sys.restore_range(
      static_cast<VersionId>(versions.size()), 0, 256 * 1024, policy,
      [&](const ChunkLoc&, std::span<const std::uint8_t> b) {
        out.insert(out.end(), b.begin(), b.end());
      });
  EXPECT_EQ(out.size(), 256u * 1024u);
  const auto& last = versions.back();
  std::vector<std::uint8_t> expect;
  for (const auto& chunk : last.chunks) {
    const auto bytes = chunk.materialize();
    expect.insert(expect.end(), bytes.begin(), bytes.end());
    if (expect.size() >= out.size()) break;
  }
  expect.resize(out.size());
  EXPECT_EQ(out, expect);

  const auto& stats = sys.store().stats();
  EXPECT_GT(stats.container_reads, 0u);
  EXPECT_GT(stats.bytes_read_physical, 0u);
  EXPECT_LT(stats.bytes_read_physical.load(), stats.bytes_read.load());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hds
