file(REMOVE_RECURSE
  "libhds_storage.a"
)
