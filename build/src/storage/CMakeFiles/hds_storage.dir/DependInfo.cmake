
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/container.cpp" "src/storage/CMakeFiles/hds_storage.dir/container.cpp.o" "gcc" "src/storage/CMakeFiles/hds_storage.dir/container.cpp.o.d"
  "/root/repo/src/storage/container_store.cpp" "src/storage/CMakeFiles/hds_storage.dir/container_store.cpp.o" "gcc" "src/storage/CMakeFiles/hds_storage.dir/container_store.cpp.o.d"
  "/root/repo/src/storage/recipe.cpp" "src/storage/CMakeFiles/hds_storage.dir/recipe.cpp.o" "gcc" "src/storage/CMakeFiles/hds_storage.dir/recipe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
