# Empty dependencies file for hds_storage.
# This may be replaced when dependencies are built.
