file(REMOVE_RECURSE
  "CMakeFiles/hds_storage.dir/container.cpp.o"
  "CMakeFiles/hds_storage.dir/container.cpp.o.d"
  "CMakeFiles/hds_storage.dir/container_store.cpp.o"
  "CMakeFiles/hds_storage.dir/container_store.cpp.o.d"
  "CMakeFiles/hds_storage.dir/recipe.cpp.o"
  "CMakeFiles/hds_storage.dir/recipe.cpp.o.d"
  "libhds_storage.a"
  "libhds_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
