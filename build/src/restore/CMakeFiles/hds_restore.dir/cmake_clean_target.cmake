file(REMOVE_RECURSE
  "libhds_restore.a"
)
