file(REMOVE_RECURSE
  "CMakeFiles/hds_restore.dir/alacc.cpp.o"
  "CMakeFiles/hds_restore.dir/alacc.cpp.o.d"
  "CMakeFiles/hds_restore.dir/basic_caches.cpp.o"
  "CMakeFiles/hds_restore.dir/basic_caches.cpp.o.d"
  "CMakeFiles/hds_restore.dir/faa.cpp.o"
  "CMakeFiles/hds_restore.dir/faa.cpp.o.d"
  "CMakeFiles/hds_restore.dir/fbw_cache.cpp.o"
  "CMakeFiles/hds_restore.dir/fbw_cache.cpp.o.d"
  "CMakeFiles/hds_restore.dir/partial.cpp.o"
  "CMakeFiles/hds_restore.dir/partial.cpp.o.d"
  "CMakeFiles/hds_restore.dir/restorer.cpp.o"
  "CMakeFiles/hds_restore.dir/restorer.cpp.o.d"
  "libhds_restore.a"
  "libhds_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
