# Empty compiler generated dependencies file for hds_restore.
# This may be replaced when dependencies are built.
