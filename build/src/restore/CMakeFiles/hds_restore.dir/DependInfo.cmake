
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/restore/alacc.cpp" "src/restore/CMakeFiles/hds_restore.dir/alacc.cpp.o" "gcc" "src/restore/CMakeFiles/hds_restore.dir/alacc.cpp.o.d"
  "/root/repo/src/restore/basic_caches.cpp" "src/restore/CMakeFiles/hds_restore.dir/basic_caches.cpp.o" "gcc" "src/restore/CMakeFiles/hds_restore.dir/basic_caches.cpp.o.d"
  "/root/repo/src/restore/faa.cpp" "src/restore/CMakeFiles/hds_restore.dir/faa.cpp.o" "gcc" "src/restore/CMakeFiles/hds_restore.dir/faa.cpp.o.d"
  "/root/repo/src/restore/fbw_cache.cpp" "src/restore/CMakeFiles/hds_restore.dir/fbw_cache.cpp.o" "gcc" "src/restore/CMakeFiles/hds_restore.dir/fbw_cache.cpp.o.d"
  "/root/repo/src/restore/partial.cpp" "src/restore/CMakeFiles/hds_restore.dir/partial.cpp.o" "gcc" "src/restore/CMakeFiles/hds_restore.dir/partial.cpp.o.d"
  "/root/repo/src/restore/restorer.cpp" "src/restore/CMakeFiles/hds_restore.dir/restorer.cpp.o" "gcc" "src/restore/CMakeFiles/hds_restore.dir/restorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hds_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
