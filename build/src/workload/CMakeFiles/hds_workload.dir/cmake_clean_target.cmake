file(REMOVE_RECURSE
  "libhds_workload.a"
)
