file(REMOVE_RECURSE
  "CMakeFiles/hds_workload.dir/generator.cpp.o"
  "CMakeFiles/hds_workload.dir/generator.cpp.o.d"
  "CMakeFiles/hds_workload.dir/profile.cpp.o"
  "CMakeFiles/hds_workload.dir/profile.cpp.o.d"
  "CMakeFiles/hds_workload.dir/trace.cpp.o"
  "CMakeFiles/hds_workload.dir/trace.cpp.o.d"
  "libhds_workload.a"
  "libhds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
