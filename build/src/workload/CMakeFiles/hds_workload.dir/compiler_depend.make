# Empty compiler generated dependencies file for hds_workload.
# This may be replaced when dependencies are built.
