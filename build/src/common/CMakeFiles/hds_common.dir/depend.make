# Empty dependencies file for hds_common.
# This may be replaced when dependencies are built.
