
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/chunk.cpp" "src/common/CMakeFiles/hds_common.dir/chunk.cpp.o" "gcc" "src/common/CMakeFiles/hds_common.dir/chunk.cpp.o.d"
  "/root/repo/src/common/crc32.cpp" "src/common/CMakeFiles/hds_common.dir/crc32.cpp.o" "gcc" "src/common/CMakeFiles/hds_common.dir/crc32.cpp.o.d"
  "/root/repo/src/common/fingerprint.cpp" "src/common/CMakeFiles/hds_common.dir/fingerprint.cpp.o" "gcc" "src/common/CMakeFiles/hds_common.dir/fingerprint.cpp.o.d"
  "/root/repo/src/common/sha1.cpp" "src/common/CMakeFiles/hds_common.dir/sha1.cpp.o" "gcc" "src/common/CMakeFiles/hds_common.dir/sha1.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/hds_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/hds_common.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
