file(REMOVE_RECURSE
  "libhds_common.a"
)
