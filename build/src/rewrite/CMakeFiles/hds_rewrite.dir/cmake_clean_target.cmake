file(REMOVE_RECURSE
  "libhds_rewrite.a"
)
