# Empty compiler generated dependencies file for hds_rewrite.
# This may be replaced when dependencies are built.
