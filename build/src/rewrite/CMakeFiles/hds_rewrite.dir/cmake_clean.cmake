file(REMOVE_RECURSE
  "CMakeFiles/hds_rewrite.dir/capping.cpp.o"
  "CMakeFiles/hds_rewrite.dir/capping.cpp.o.d"
  "CMakeFiles/hds_rewrite.dir/cbr.cpp.o"
  "CMakeFiles/hds_rewrite.dir/cbr.cpp.o.d"
  "CMakeFiles/hds_rewrite.dir/cfl.cpp.o"
  "CMakeFiles/hds_rewrite.dir/cfl.cpp.o.d"
  "CMakeFiles/hds_rewrite.dir/dynamic_capping.cpp.o"
  "CMakeFiles/hds_rewrite.dir/dynamic_capping.cpp.o.d"
  "CMakeFiles/hds_rewrite.dir/rewrite_filter.cpp.o"
  "CMakeFiles/hds_rewrite.dir/rewrite_filter.cpp.o.d"
  "libhds_rewrite.a"
  "libhds_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
