
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/capping.cpp" "src/rewrite/CMakeFiles/hds_rewrite.dir/capping.cpp.o" "gcc" "src/rewrite/CMakeFiles/hds_rewrite.dir/capping.cpp.o.d"
  "/root/repo/src/rewrite/cbr.cpp" "src/rewrite/CMakeFiles/hds_rewrite.dir/cbr.cpp.o" "gcc" "src/rewrite/CMakeFiles/hds_rewrite.dir/cbr.cpp.o.d"
  "/root/repo/src/rewrite/cfl.cpp" "src/rewrite/CMakeFiles/hds_rewrite.dir/cfl.cpp.o" "gcc" "src/rewrite/CMakeFiles/hds_rewrite.dir/cfl.cpp.o.d"
  "/root/repo/src/rewrite/dynamic_capping.cpp" "src/rewrite/CMakeFiles/hds_rewrite.dir/dynamic_capping.cpp.o" "gcc" "src/rewrite/CMakeFiles/hds_rewrite.dir/dynamic_capping.cpp.o.d"
  "/root/repo/src/rewrite/rewrite_filter.cpp" "src/rewrite/CMakeFiles/hds_rewrite.dir/rewrite_filter.cpp.o" "gcc" "src/rewrite/CMakeFiles/hds_rewrite.dir/rewrite_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hds_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
