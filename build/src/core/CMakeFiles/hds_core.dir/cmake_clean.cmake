file(REMOVE_RECURSE
  "CMakeFiles/hds_core.dir/active_pool.cpp.o"
  "CMakeFiles/hds_core.dir/active_pool.cpp.o.d"
  "CMakeFiles/hds_core.dir/advisor.cpp.o"
  "CMakeFiles/hds_core.dir/advisor.cpp.o.d"
  "CMakeFiles/hds_core.dir/double_cache.cpp.o"
  "CMakeFiles/hds_core.dir/double_cache.cpp.o.d"
  "CMakeFiles/hds_core.dir/hidestore.cpp.o"
  "CMakeFiles/hds_core.dir/hidestore.cpp.o.d"
  "CMakeFiles/hds_core.dir/recipe_chain.cpp.o"
  "CMakeFiles/hds_core.dir/recipe_chain.cpp.o.d"
  "libhds_core.a"
  "libhds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
