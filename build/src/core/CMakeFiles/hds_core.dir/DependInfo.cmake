
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_pool.cpp" "src/core/CMakeFiles/hds_core.dir/active_pool.cpp.o" "gcc" "src/core/CMakeFiles/hds_core.dir/active_pool.cpp.o.d"
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/hds_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/hds_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/double_cache.cpp" "src/core/CMakeFiles/hds_core.dir/double_cache.cpp.o" "gcc" "src/core/CMakeFiles/hds_core.dir/double_cache.cpp.o.d"
  "/root/repo/src/core/hidestore.cpp" "src/core/CMakeFiles/hds_core.dir/hidestore.cpp.o" "gcc" "src/core/CMakeFiles/hds_core.dir/hidestore.cpp.o.d"
  "/root/repo/src/core/recipe_chain.cpp" "src/core/CMakeFiles/hds_core.dir/recipe_chain.cpp.o" "gcc" "src/core/CMakeFiles/hds_core.dir/recipe_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hds_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/hds_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/restore/CMakeFiles/hds_restore.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hds_index.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/hds_rewrite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
