file(REMOVE_RECURSE
  "libhds_backup.a"
)
