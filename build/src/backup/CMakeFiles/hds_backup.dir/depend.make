# Empty dependencies file for hds_backup.
# This may be replaced when dependencies are built.
