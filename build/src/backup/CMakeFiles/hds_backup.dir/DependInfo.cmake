
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backup/catalog.cpp" "src/backup/CMakeFiles/hds_backup.dir/catalog.cpp.o" "gcc" "src/backup/CMakeFiles/hds_backup.dir/catalog.cpp.o.d"
  "/root/repo/src/backup/gc.cpp" "src/backup/CMakeFiles/hds_backup.dir/gc.cpp.o" "gcc" "src/backup/CMakeFiles/hds_backup.dir/gc.cpp.o.d"
  "/root/repo/src/backup/pipeline.cpp" "src/backup/CMakeFiles/hds_backup.dir/pipeline.cpp.o" "gcc" "src/backup/CMakeFiles/hds_backup.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hds_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hds_index.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/hds_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/restore/CMakeFiles/hds_restore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
