file(REMOVE_RECURSE
  "CMakeFiles/hds_backup.dir/catalog.cpp.o"
  "CMakeFiles/hds_backup.dir/catalog.cpp.o.d"
  "CMakeFiles/hds_backup.dir/gc.cpp.o"
  "CMakeFiles/hds_backup.dir/gc.cpp.o.d"
  "CMakeFiles/hds_backup.dir/pipeline.cpp.o"
  "CMakeFiles/hds_backup.dir/pipeline.cpp.o.d"
  "libhds_backup.a"
  "libhds_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
