file(REMOVE_RECURSE
  "libhds_chunking.a"
)
