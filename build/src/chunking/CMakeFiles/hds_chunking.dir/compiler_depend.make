# Empty compiler generated dependencies file for hds_chunking.
# This may be replaced when dependencies are built.
