file(REMOVE_RECURSE
  "CMakeFiles/hds_chunking.dir/ae.cpp.o"
  "CMakeFiles/hds_chunking.dir/ae.cpp.o.d"
  "CMakeFiles/hds_chunking.dir/chunk_stream.cpp.o"
  "CMakeFiles/hds_chunking.dir/chunk_stream.cpp.o.d"
  "CMakeFiles/hds_chunking.dir/chunker.cpp.o"
  "CMakeFiles/hds_chunking.dir/chunker.cpp.o.d"
  "CMakeFiles/hds_chunking.dir/fastcdc.cpp.o"
  "CMakeFiles/hds_chunking.dir/fastcdc.cpp.o.d"
  "CMakeFiles/hds_chunking.dir/rabin.cpp.o"
  "CMakeFiles/hds_chunking.dir/rabin.cpp.o.d"
  "CMakeFiles/hds_chunking.dir/tttd.cpp.o"
  "CMakeFiles/hds_chunking.dir/tttd.cpp.o.d"
  "libhds_chunking.a"
  "libhds_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
