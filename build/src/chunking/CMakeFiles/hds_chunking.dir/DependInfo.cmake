
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chunking/ae.cpp" "src/chunking/CMakeFiles/hds_chunking.dir/ae.cpp.o" "gcc" "src/chunking/CMakeFiles/hds_chunking.dir/ae.cpp.o.d"
  "/root/repo/src/chunking/chunk_stream.cpp" "src/chunking/CMakeFiles/hds_chunking.dir/chunk_stream.cpp.o" "gcc" "src/chunking/CMakeFiles/hds_chunking.dir/chunk_stream.cpp.o.d"
  "/root/repo/src/chunking/chunker.cpp" "src/chunking/CMakeFiles/hds_chunking.dir/chunker.cpp.o" "gcc" "src/chunking/CMakeFiles/hds_chunking.dir/chunker.cpp.o.d"
  "/root/repo/src/chunking/fastcdc.cpp" "src/chunking/CMakeFiles/hds_chunking.dir/fastcdc.cpp.o" "gcc" "src/chunking/CMakeFiles/hds_chunking.dir/fastcdc.cpp.o.d"
  "/root/repo/src/chunking/rabin.cpp" "src/chunking/CMakeFiles/hds_chunking.dir/rabin.cpp.o" "gcc" "src/chunking/CMakeFiles/hds_chunking.dir/rabin.cpp.o.d"
  "/root/repo/src/chunking/tttd.cpp" "src/chunking/CMakeFiles/hds_chunking.dir/tttd.cpp.o" "gcc" "src/chunking/CMakeFiles/hds_chunking.dir/tttd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
