file(REMOVE_RECURSE
  "libhds_index.a"
)
