
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/bloom_filter.cpp" "src/index/CMakeFiles/hds_index.dir/bloom_filter.cpp.o" "gcc" "src/index/CMakeFiles/hds_index.dir/bloom_filter.cpp.o.d"
  "/root/repo/src/index/full_index.cpp" "src/index/CMakeFiles/hds_index.dir/full_index.cpp.o" "gcc" "src/index/CMakeFiles/hds_index.dir/full_index.cpp.o.d"
  "/root/repo/src/index/silo_index.cpp" "src/index/CMakeFiles/hds_index.dir/silo_index.cpp.o" "gcc" "src/index/CMakeFiles/hds_index.dir/silo_index.cpp.o.d"
  "/root/repo/src/index/sparse_index.cpp" "src/index/CMakeFiles/hds_index.dir/sparse_index.cpp.o" "gcc" "src/index/CMakeFiles/hds_index.dir/sparse_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hds_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
