file(REMOVE_RECURSE
  "CMakeFiles/hds_index.dir/bloom_filter.cpp.o"
  "CMakeFiles/hds_index.dir/bloom_filter.cpp.o.d"
  "CMakeFiles/hds_index.dir/full_index.cpp.o"
  "CMakeFiles/hds_index.dir/full_index.cpp.o.d"
  "CMakeFiles/hds_index.dir/silo_index.cpp.o"
  "CMakeFiles/hds_index.dir/silo_index.cpp.o.d"
  "CMakeFiles/hds_index.dir/sparse_index.cpp.o"
  "CMakeFiles/hds_index.dir/sparse_index.cpp.o.d"
  "libhds_index.a"
  "libhds_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
