# Empty dependencies file for hds_index.
# This may be replaced when dependencies are built.
