# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_chunking[1]_include.cmake")
include("/root/repo/build/tests/test_container[1]_include.cmake")
include("/root/repo/build/tests/test_container_store[1]_include.cmake")
include("/root/repo/build/tests/test_recipe[1]_include.cmake")
include("/root/repo/build/tests/test_bloom[1]_include.cmake")
include("/root/repo/build/tests/test_full_index[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_silo[1]_include.cmake")
include("/root/repo/build/tests/test_rewrite[1]_include.cmake")
include("/root/repo/build/tests/test_restore[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_double_cache[1]_include.cmake")
include("/root/repo/build/tests/test_active_pool[1]_include.cmake")
include("/root/repo/build/tests/test_recipe_chain[1]_include.cmake")
include("/root/repo/build/tests/test_hidestore[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_gc[1]_include.cmake")
include("/root/repo/build/tests/test_advisor[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_persistence[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_file_backed_repo[1]_include.cmake")
include("/root/repo/build/tests/test_partial_restore[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
