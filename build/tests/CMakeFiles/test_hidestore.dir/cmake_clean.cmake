file(REMOVE_RECURSE
  "CMakeFiles/test_hidestore.dir/test_hidestore.cpp.o"
  "CMakeFiles/test_hidestore.dir/test_hidestore.cpp.o.d"
  "test_hidestore"
  "test_hidestore.pdb"
  "test_hidestore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hidestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
