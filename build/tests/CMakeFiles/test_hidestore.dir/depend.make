# Empty dependencies file for test_hidestore.
# This may be replaced when dependencies are built.
