# Empty dependencies file for test_full_index.
# This may be replaced when dependencies are built.
