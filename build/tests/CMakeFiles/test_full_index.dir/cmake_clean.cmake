file(REMOVE_RECURSE
  "CMakeFiles/test_full_index.dir/test_full_index.cpp.o"
  "CMakeFiles/test_full_index.dir/test_full_index.cpp.o.d"
  "test_full_index"
  "test_full_index.pdb"
  "test_full_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_full_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
