file(REMOVE_RECURSE
  "CMakeFiles/test_double_cache.dir/test_double_cache.cpp.o"
  "CMakeFiles/test_double_cache.dir/test_double_cache.cpp.o.d"
  "test_double_cache"
  "test_double_cache.pdb"
  "test_double_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_double_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
