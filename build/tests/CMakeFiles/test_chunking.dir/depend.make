# Empty dependencies file for test_chunking.
# This may be replaced when dependencies are built.
