# Empty dependencies file for test_partial_restore.
# This may be replaced when dependencies are built.
