file(REMOVE_RECURSE
  "CMakeFiles/test_partial_restore.dir/test_partial_restore.cpp.o"
  "CMakeFiles/test_partial_restore.dir/test_partial_restore.cpp.o.d"
  "test_partial_restore"
  "test_partial_restore.pdb"
  "test_partial_restore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
