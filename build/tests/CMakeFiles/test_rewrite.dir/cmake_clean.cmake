file(REMOVE_RECURSE
  "CMakeFiles/test_rewrite.dir/test_rewrite.cpp.o"
  "CMakeFiles/test_rewrite.dir/test_rewrite.cpp.o.d"
  "test_rewrite"
  "test_rewrite.pdb"
  "test_rewrite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
