# Empty compiler generated dependencies file for test_recipe.
# This may be replaced when dependencies are built.
