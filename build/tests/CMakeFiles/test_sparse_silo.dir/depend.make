# Empty dependencies file for test_sparse_silo.
# This may be replaced when dependencies are built.
