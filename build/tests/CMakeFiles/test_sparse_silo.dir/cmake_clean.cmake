file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_silo.dir/test_sparse_silo.cpp.o"
  "CMakeFiles/test_sparse_silo.dir/test_sparse_silo.cpp.o.d"
  "test_sparse_silo"
  "test_sparse_silo.pdb"
  "test_sparse_silo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_silo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
