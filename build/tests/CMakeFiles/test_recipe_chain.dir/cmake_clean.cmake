file(REMOVE_RECURSE
  "CMakeFiles/test_recipe_chain.dir/test_recipe_chain.cpp.o"
  "CMakeFiles/test_recipe_chain.dir/test_recipe_chain.cpp.o.d"
  "test_recipe_chain"
  "test_recipe_chain.pdb"
  "test_recipe_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recipe_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
