# Empty dependencies file for test_recipe_chain.
# This may be replaced when dependencies are built.
