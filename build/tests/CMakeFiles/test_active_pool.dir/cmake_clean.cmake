file(REMOVE_RECURSE
  "CMakeFiles/test_active_pool.dir/test_active_pool.cpp.o"
  "CMakeFiles/test_active_pool.dir/test_active_pool.cpp.o.d"
  "test_active_pool"
  "test_active_pool.pdb"
  "test_active_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_active_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
