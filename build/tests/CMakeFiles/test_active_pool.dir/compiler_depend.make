# Empty compiler generated dependencies file for test_active_pool.
# This may be replaced when dependencies are built.
