# Empty compiler generated dependencies file for test_file_backed_repo.
# This may be replaced when dependencies are built.
