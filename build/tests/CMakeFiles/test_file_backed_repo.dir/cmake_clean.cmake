file(REMOVE_RECURSE
  "CMakeFiles/test_file_backed_repo.dir/test_file_backed_repo.cpp.o"
  "CMakeFiles/test_file_backed_repo.dir/test_file_backed_repo.cpp.o.d"
  "test_file_backed_repo"
  "test_file_backed_repo.pdb"
  "test_file_backed_repo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_backed_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
