file(REMOVE_RECURSE
  "CMakeFiles/test_container_store.dir/test_container_store.cpp.o"
  "CMakeFiles/test_container_store.dir/test_container_store.cpp.o.d"
  "test_container_store"
  "test_container_store.pdb"
  "test_container_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_container_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
