# Empty dependencies file for test_container_store.
# This may be replaced when dependencies are built.
