file(REMOVE_RECURSE
  "CMakeFiles/restore_cache_comparison.dir/restore_cache_comparison.cpp.o"
  "CMakeFiles/restore_cache_comparison.dir/restore_cache_comparison.cpp.o.d"
  "restore_cache_comparison"
  "restore_cache_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_cache_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
