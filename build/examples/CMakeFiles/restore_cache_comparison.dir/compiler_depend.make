# Empty compiler generated dependencies file for restore_cache_comparison.
# This may be replaced when dependencies are built.
