# Empty compiler generated dependencies file for backup_directory.
# This may be replaced when dependencies are built.
