file(REMOVE_RECURSE
  "CMakeFiles/backup_directory.dir/backup_directory.cpp.o"
  "CMakeFiles/backup_directory.dir/backup_directory.cpp.o.d"
  "backup_directory"
  "backup_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
