# Empty compiler generated dependencies file for hds_tool.
# This may be replaced when dependencies are built.
