file(REMOVE_RECURSE
  "CMakeFiles/hds_tool.dir/hds_tool.cpp.o"
  "CMakeFiles/hds_tool.dir/hds_tool.cpp.o.d"
  "hds_tool"
  "hds_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
