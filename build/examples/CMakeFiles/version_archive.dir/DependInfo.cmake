
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/version_archive.cpp" "examples/CMakeFiles/version_archive.dir/version_archive.cpp.o" "gcc" "examples/CMakeFiles/version_archive.dir/version_archive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/hds_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hds_index.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/hds_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/restore/CMakeFiles/hds_restore.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/chunking/CMakeFiles/hds_chunking.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hds_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
