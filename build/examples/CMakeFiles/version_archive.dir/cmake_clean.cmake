file(REMOVE_RECURSE
  "CMakeFiles/version_archive.dir/version_archive.cpp.o"
  "CMakeFiles/version_archive.dir/version_archive.cpp.o.d"
  "version_archive"
  "version_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
