# Empty dependencies file for version_archive.
# This may be replaced when dependencies are built.
