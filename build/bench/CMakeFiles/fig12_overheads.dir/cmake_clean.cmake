file(REMOVE_RECURSE
  "CMakeFiles/fig12_overheads.dir/fig12_overheads.cpp.o"
  "CMakeFiles/fig12_overheads.dir/fig12_overheads.cpp.o.d"
  "fig12_overheads"
  "fig12_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
