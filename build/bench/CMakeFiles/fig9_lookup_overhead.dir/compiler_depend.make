# Empty compiler generated dependencies file for fig9_lookup_overhead.
# This may be replaced when dependencies are built.
