# Empty compiler generated dependencies file for fig11_restore_speed.
# This may be replaced when dependencies are built.
