file(REMOVE_RECURSE
  "CMakeFiles/fig11_restore_speed.dir/fig11_restore_speed.cpp.o"
  "CMakeFiles/fig11_restore_speed.dir/fig11_restore_speed.cpp.o.d"
  "fig11_restore_speed"
  "fig11_restore_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_restore_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
