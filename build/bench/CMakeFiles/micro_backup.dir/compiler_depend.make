# Empty compiler generated dependencies file for micro_backup.
# This may be replaced when dependencies are built.
