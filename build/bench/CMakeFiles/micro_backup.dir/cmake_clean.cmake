file(REMOVE_RECURSE
  "CMakeFiles/micro_backup.dir/micro_backup.cpp.o"
  "CMakeFiles/micro_backup.dir/micro_backup.cpp.o.d"
  "micro_backup"
  "micro_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
