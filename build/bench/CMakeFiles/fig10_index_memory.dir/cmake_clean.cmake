file(REMOVE_RECURSE
  "CMakeFiles/fig10_index_memory.dir/fig10_index_memory.cpp.o"
  "CMakeFiles/fig10_index_memory.dir/fig10_index_memory.cpp.o.d"
  "fig10_index_memory"
  "fig10_index_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_index_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
