# Empty dependencies file for e8_deletion.
# This may be replaced when dependencies are built.
