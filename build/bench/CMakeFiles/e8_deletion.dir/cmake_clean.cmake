file(REMOVE_RECURSE
  "CMakeFiles/e8_deletion.dir/e8_deletion.cpp.o"
  "CMakeFiles/e8_deletion.dir/e8_deletion.cpp.o.d"
  "e8_deletion"
  "e8_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
