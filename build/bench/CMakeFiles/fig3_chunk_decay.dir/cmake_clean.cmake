file(REMOVE_RECURSE
  "CMakeFiles/fig3_chunk_decay.dir/fig3_chunk_decay.cpp.o"
  "CMakeFiles/fig3_chunk_decay.dir/fig3_chunk_decay.cpp.o.d"
  "fig3_chunk_decay"
  "fig3_chunk_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_chunk_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
