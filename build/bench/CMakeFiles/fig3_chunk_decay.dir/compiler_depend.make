# Empty compiler generated dependencies file for fig3_chunk_decay.
# This may be replaced when dependencies are built.
