#include "verify/fsck.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/crc32.h"
#include "core/hidestore.h"
#include "storage/manifest.h"

namespace hds::verify {

namespace {

constexpr std::string_view kNames[kInvariantCount] = {
    "container_framing", "deletion_tags",     "chunk_crc",
    "recipe_resolution", "recipe_chain",      "active_resolution",
    "class_exclusivity", "pool_utilization",  "cache_consistency",
    "accounting",        "manifest_commit",   "orphan_containers",
    "footer_index",
};

// Accumulates one invariant's result, capping recorded findings.
class CheckBuilder {
 public:
  CheckBuilder(Invariant invariant, std::size_t max_findings)
      : max_findings_(max_findings) {
    check_.invariant = invariant;
  }

  void object() noexcept { check_.objects_checked++; }
  void objects(std::uint64_t n) noexcept { check_.objects_checked += n; }

  void fail(std::string object, std::string detail) {
    check_.violations++;
    if (check_.findings.size() < max_findings_) {
      check_.findings.push_back(
          {check_.invariant, std::move(object), std::move(detail)});
    }
  }

  // Checks one named predicate as a single object.
  void expect(bool ok, std::string_view object, std::string_view detail) {
    check_.objects_checked++;
    if (!ok) fail(std::string(object), std::string(detail));
  }

  [[nodiscard]] FsckCheck take() { return std::move(check_); }

 private:
  std::size_t max_findings_;
  FsckCheck check_;
};

std::string container_name(ContainerId cid) {
  return "container " + std::to_string(cid);
}

std::string entry_name(VersionId version, std::size_t index,
                       const Fingerprint& fp) {
  return "recipe v" + std::to_string(version) + " entry " +
         std::to_string(index) + " (" + fp.hex().substr(0, 12) + ")";
}

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Shared walk state: archival containers read once, cascade suppression.
struct StoreView {
  std::unordered_map<ContainerId, std::shared_ptr<const Container>> archival;
  std::unordered_set<ContainerId> unreadable;

  [[nodiscard]] const Container* find(ContainerId cid) const noexcept {
    const auto it = archival.find(cid);
    return it == archival.end() ? nullptr : it->second.get();
  }
};

FsckCheck check_container_framing(HiDeStore& sys, StoreView& view,
                                  const FsckOptions& opt) {
  CheckBuilder out(Invariant::kContainerFraming, opt.max_findings);
  // With a shared archival store the walk is scoped to THIS system's
  // deletion tags — the other ids belong to other tenants, and flagging
  // them as untagged (or counting them in accounting) would be noise.
  std::vector<ContainerId> ids;
  if (sys.shared_archival()) {
    ids.reserve(sys.container_tags().size());
    for (const auto& [cid, version] : sys.container_tags()) {
      (void)version;
      ids.push_back(cid);
    }
  } else {
    ids = sys.archival_store().ids();
  }
  std::sort(ids.begin(), ids.end());
  for (const ContainerId cid : ids) {
    out.object();
    // read_verified bypasses the file store's fd/block caches: fsck must
    // see the medium, not a pristine in-memory image of the container.
    const auto container = sys.archival_store().read_verified(cid);
    if (!container) {
      view.unreadable.insert(cid);
      out.fail(container_name(cid),
               "unreadable or corrupt (deserialize/CRC failure)");
      continue;
    }
    view.archival.emplace(cid, container);
    if (container->id() != cid) {
      out.fail(container_name(cid),
               "stored ID " + std::to_string(container->id()) +
                   " does not match its store key");
    }
    if (container->data_size() > container->capacity()) {
      out.fail(container_name(cid),
               "data size " + std::to_string(container->data_size()) +
                   " exceeds capacity " +
                   std::to_string(container->capacity()));
    }
  }
  return out.take();
}

FsckCheck check_deletion_tags(const HiDeStore& sys, const StoreView& view,
                              const FsckOptions& opt) {
  CheckBuilder out(Invariant::kDeletionTags, opt.max_findings);
  const auto& tags = sys.container_tags();
  for (const auto& [cid, container] : view.archival) {
    (void)container;
    out.object();
    if (!tags.contains(cid)) {
      out.fail(container_name(cid),
               "archival container carries no deletion tag (§4.5)");
    }
  }
  for (const auto& [cid, version] : tags) {
    out.object();
    if (!view.archival.contains(cid) && !view.unreadable.contains(cid)) {
      out.fail(container_name(cid),
               "deletion tag (version " + std::to_string(version) +
                   ") points at a container absent from the store");
    }
    if (version >= sys.latest_version() && version != 0) {
      out.fail(container_name(cid),
               "deletion tag version " + std::to_string(version) +
                   " is not older than the latest version " +
                   std::to_string(sys.latest_version()));
    }
  }
  return out.take();
}

FsckCheck check_chunk_crc(const HiDeStore& sys, const StoreView& view,
                          const FsckOptions& opt) {
  CheckBuilder out(Invariant::kChunkCrc, opt.max_findings);
  for (const auto& [cid, container] : view.archival) {
    out.objects(container->chunk_count());
    for (const auto& fp : container->corrupt_chunks()) {
      out.fail(container_name(cid) + " chunk " + fp.hex().substr(0, 12),
               "payload CRC-32 does not match the recorded per-chunk CRC");
    }
  }
  const auto& pool = sys.active_pool();
  for (const ContainerId cid : pool.container_ids_sorted()) {
    const auto container = pool.peek(cid);
    if (!container) continue;
    out.objects(container->chunk_count());
    for (const auto& fp : container->corrupt_chunks()) {
      out.fail("active " + container_name(cid) + " chunk " +
                   fp.hex().substr(0, 12),
               "payload CRC-32 does not match the recorded per-chunk CRC");
    }
  }
  return out.take();
}

// Lazily built fingerprint → CID map per recipe, for chain walking.
class RecipeMaps {
 public:
  explicit RecipeMaps(const RecipeStore& recipes) : recipes_(recipes) {}

  // nullptr when the recipe does not exist.
  const std::unordered_map<Fingerprint, ContainerId>* get(VersionId v) {
    if (const auto it = maps_.find(v); it != maps_.end()) {
      return it->second ? &*it->second : nullptr;
    }
    const Recipe* recipe = recipes_.get(v);
    auto& slot = maps_[v];
    if (recipe == nullptr) return nullptr;
    slot.emplace();
    for (const auto& e : recipe->entries()) slot->try_emplace(e.fp, e.cid);
    return &*slot;
  }

 private:
  const RecipeStore& recipes_;
  std::unordered_map<VersionId,
                     std::optional<std::unordered_map<Fingerprint,
                                                      ContainerId>>>
      maps_;
};

FsckCheck check_recipe_resolution(const HiDeStore& sys, const StoreView& view,
                                  const FsckOptions& opt) {
  CheckBuilder out(Invariant::kRecipeResolution, opt.max_findings);
  for (const VersionId v : sys.recipes().versions()) {
    const Recipe* recipe = sys.recipes().get(v);
    const auto& entries = recipe->entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& e = entries[i];
      if (e.cid <= 0) continue;
      out.object();
      // Cascade suppression: framing already reported unreadable containers.
      if (view.unreadable.contains(e.cid)) continue;
      const Container* container = view.find(e.cid);
      if (container == nullptr) {
        out.fail(entry_name(v, i, e.fp),
                 "archival CID " + std::to_string(e.cid) +
                     " is not in the container store");
        continue;
      }
      const auto entry = container->find(e.fp);
      if (!entry) {
        out.fail(entry_name(v, i, e.fp),
                 container_name(e.cid) +
                     " does not hold the referenced fingerprint");
      } else if (entry->size != e.size) {
        out.fail(entry_name(v, i, e.fp),
                 "recipe records " + std::to_string(e.size) +
                     " bytes but " + container_name(e.cid) + " holds " +
                     std::to_string(entry->size));
      }
    }
  }
  return out.take();
}

FsckCheck check_recipe_chain(const HiDeStore& sys, const FsckOptions& opt) {
  CheckBuilder out(Invariant::kRecipeChain, opt.max_findings);
  RecipeMaps maps(sys.recipes());
  const auto& pool = sys.active_pool();
  const std::size_t depth_limit = sys.recipes().versions().size() + 1;

  for (const VersionId v : sys.recipes().versions()) {
    const Recipe* recipe = sys.recipes().get(v);
    const auto& entries = recipe->entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& e = entries[i];
      if (e.cid >= 0) continue;
      out.object();

      ContainerId cid = e.cid;
      VersionId at = v;
      std::size_t hops = 0;
      std::unordered_set<VersionId> visited;
      bool bad = false;
      while (cid < 0) {
        const auto target = static_cast<VersionId>(-cid);
        if (target <= at) {
          out.fail(entry_name(v, i, e.fp),
                   "chain CID -" + std::to_string(target) +
                       " does not point forward in time (from v" +
                       std::to_string(at) + ")");
          bad = true;
          break;
        }
        if (!visited.insert(target).second || ++hops > depth_limit) {
          out.fail(entry_name(v, i, e.fp),
                   "chain cycles or exceeds the retained-version depth " +
                       std::to_string(depth_limit));
          bad = true;
          break;
        }
        const auto* map = maps.get(target);
        if (map == nullptr) {
          out.fail(entry_name(v, i, e.fp),
                   "chain CID points at missing recipe v" +
                       std::to_string(target));
          bad = true;
          break;
        }
        const auto hit = map->find(e.fp);
        if (hit == map->end()) {
          // Legal when the chunk lives on only through the active pool
          // (see HiDeStore::resolve); anything else is a broken chain.
          if (pool.find(e.fp) == nullptr) {
            out.fail(entry_name(v, i, e.fp),
                     "chain broken: fingerprint absent from recipe v" +
                         std::to_string(target) + " and from the pool");
            bad = true;
          }
          cid = kCidActive;
          break;
        }
        at = target;
        cid = hit->second;
      }
      if (bad) continue;
      if (cid == kCidActive && pool.find(e.fp) == nullptr) {
        out.fail(entry_name(v, i, e.fp),
                 "chain terminates in the active class but the pool does "
                 "not hold the fingerprint");
      }
    }
  }
  return out.take();
}

FsckCheck check_active_resolution(const HiDeStore& sys,
                                  const FsckOptions& opt) {
  CheckBuilder out(Invariant::kActiveResolution, opt.max_findings);
  const auto& pool = sys.active_pool();
  const auto window = static_cast<VersionId>(sys.config().cache_window);
  const VersionId latest = sys.latest_version();

  for (const VersionId v : sys.recipes().versions()) {
    const Recipe* recipe = sys.recipes().get(v);
    const auto& entries = recipe->entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& e = entries[i];
      if (e.cid != kCidActive) continue;
      out.object();
      if (v + window <= latest) {
        out.fail(entry_name(v, i, e.fp),
                 "active CID in a finalized recipe (older than the newest " +
                     std::to_string(window) + ")");
        continue;
      }
      const ContainerId* cid = pool.find(e.fp);
      if (cid == nullptr) {
        out.fail(entry_name(v, i, e.fp),
                 "active chunk missing from the pool index");
        continue;
      }
      const auto container = pool.peek(*cid);
      const auto entry = container ? container->find(e.fp) : std::nullopt;
      if (!entry) {
        out.fail(entry_name(v, i, e.fp),
                 "pool index points at active " + container_name(*cid) +
                     " which does not hold the chunk");
      } else if (entry->size != e.size) {
        out.fail(entry_name(v, i, e.fp),
                 "recipe records " + std::to_string(e.size) +
                     " bytes but active " + container_name(*cid) +
                     " holds " + std::to_string(entry->size));
      }
    }
  }
  return out.take();
}

FsckCheck check_class_exclusivity(const HiDeStore& sys, const StoreView& view,
                                  const FsckOptions& opt) {
  CheckBuilder out(Invariant::kClassExclusivity, opt.max_findings);
  std::unordered_map<Fingerprint, ContainerId> archival_fps;
  for (const auto& [cid, container] : view.archival) {
    for (const auto& [fp, entry] : container->entries()) {
      (void)entry;
      archival_fps.try_emplace(fp, cid);
    }
  }
  for (const auto& [fp, active_cid] : sys.active_pool().index()) {
    out.object();
    if (const auto it = archival_fps.find(fp); it != archival_fps.end()) {
      out.fail("chunk " + fp.hex().substr(0, 12),
               "hot (active " + container_name(active_cid) +
                   ") and cold (archival " + container_name(it->second) +
                   ") at once");
    }
  }
  return out.take();
}

FsckCheck check_pool_utilization(const HiDeStore& sys,
                                 const FsckOptions& opt) {
  CheckBuilder out(Invariant::kPoolUtilization, opt.max_findings);
  const auto& pool = sys.active_pool();
  const double threshold = sys.config().compaction_threshold;
  std::vector<ContainerId> sparse;
  for (const ContainerId cid : pool.container_ids_sorted()) {
    out.object();
    const auto container = pool.peek(cid);
    if (!container) continue;
    if (container->data_size() > container->capacity()) {
      out.fail("active " + container_name(cid),
               "data size exceeds capacity");
    }
    if (container->utilization() < threshold) sparse.push_back(cid);
    // Pool-index agreement: every chunk of the container is indexed here.
    for (const auto& [fp, entry] : container->entries()) {
      (void)entry;
      const ContainerId* indexed = pool.find(fp);
      if (indexed == nullptr || *indexed != cid) {
        out.fail("active " + container_name(cid) + " chunk " +
                     fp.hex().substr(0, 12),
                 indexed == nullptr
                     ? "chunk not present in the pool index"
                     : "pool index maps the chunk to container " +
                           std::to_string(*indexed));
      }
    }
  }
  // Opposite direction: every index entry points at a container that
  // actually holds the chunk.
  for (const auto& [fp, cid] : pool.index()) {
    out.object();
    const auto container = pool.peek(cid);
    if (!container || !container->contains(fp)) {
      out.fail("pool index entry " + fp.hex().substr(0, 12),
               !container
                   ? "points at missing active " + container_name(cid)
                   : "active " + container_name(cid) +
                         " does not hold the chunk");
    }
  }
  if (sparse.size() > 1) {
    std::string list;
    for (const ContainerId cid : sparse) {
      list += (list.empty() ? "" : ", ") + std::to_string(cid);
    }
    out.fail("active pool",
             std::to_string(sparse.size()) +
                 " containers below the merge threshold (" + list +
                 ") — compaction should leave at most one");
  }
  return out.take();
}

FsckCheck check_cache_consistency(const HiDeStore& sys,
                                  const FsckOptions& opt) {
  CheckBuilder out(Invariant::kCacheConsistency, opt.max_findings);
  const auto& pool = sys.active_pool();
  std::unordered_set<Fingerprint> cached;

  const DoubleHashFingerprintCache::Table* tables[] = {
      &sys.cache().current(), &sys.cache().previous(), &sys.cache().oldest()};
  const char* tier_names[] = {"T2", "T1", "T0"};
  for (std::size_t t = 0; t < 3; ++t) {
    for (const auto& [fp, entry] : *tables[t]) {
      out.object();
      cached.insert(fp);
      const ContainerId* cid = pool.find(fp);
      const std::string object = std::string(tier_names[t]) + " entry " +
                                 fp.hex().substr(0, 12);
      if (cid == nullptr) {
        out.fail(object, "cached chunk is absent from the pool index");
        continue;
      }
      if (*cid != entry.active_cid) {
        out.fail(object, "cache records active container " +
                             std::to_string(entry.active_cid) +
                             " but the pool index says " +
                             std::to_string(*cid));
        continue;
      }
      const auto container = pool.peek(*cid);
      const auto stored = container ? container->find(fp) : std::nullopt;
      if (!stored) {
        out.fail(object, "pool container does not hold the cached chunk");
      } else if (stored->size != entry.size) {
        out.fail(object, "cache records " + std::to_string(entry.size) +
                             " bytes but the container holds " +
                             std::to_string(stored->size));
      }
    }
  }
  // Opposite direction: every pooled chunk must still be hot, i.e. present
  // in one of the cache tables (§4.1/4.2: the pool IS the hot set).
  for (const auto& [fp, cid] : pool.index()) {
    out.object();
    if (!cached.contains(fp)) {
      out.fail("pooled chunk " + fp.hex().substr(0, 12) + " (active " +
                   container_name(cid) + ")",
               "absent from every fingerprint-cache table");
    }
  }
  return out.take();
}

FsckCheck check_accounting(const HiDeStore& sys, const StoreView& view,
                           const FsckOptions& opt) {
  CheckBuilder out(Invariant::kAccounting, opt.max_findings);
  const auto& m = sys.metrics();
  const auto counter = [&](std::string_view name) -> std::uint64_t {
    const auto* c = m.find_counter(name);
    return c == nullptr ? 0 : c->value();
  };
  const auto gauge = [&](std::string_view name) -> double {
    const auto* g = m.find_gauge(name);
    return g == nullptr ? 0.0 : g->value();
  };

  out.expect(counter("chunks_processed") ==
                 counter("t1_hits") + counter("t2_hits") +
                     counter("t0_hits") + counter("unique_chunks"),
             "counter chunks_processed",
             "t1_hits + t2_hits + t0_hits + unique_chunks must equal "
             "chunks_processed");
  out.expect(counter("index_disk_lookups") == 0, "counter index_disk_lookups",
             "HiDeStore never consults an on-disk index (§4.1)");
  out.expect(counter("delete_chunks_scanned") == 0,
             "counter delete_chunks_scanned",
             "deletion never scans chunks (§4.5)");
  out.expect(counter("stored_bytes") <= counter("logical_bytes"),
             "counter stored_bytes",
             "cannot store more than was ingested");

  const auto near = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
  };
  out.expect(near(gauge("versions_retained"),
                  static_cast<double>(sys.recipes().versions().size())),
             "gauge versions_retained", "stale against the recipe store");
  out.expect(near(gauge("active_containers"),
                  static_cast<double>(sys.active_pool().container_count())),
             "gauge active_containers", "stale against the active pool");
  out.expect(near(gauge("archival_containers"),
                  static_cast<double>(view.archival.size() +
                                      view.unreadable.size())),
             "gauge archival_containers", "stale against the container store");
  out.expect(near(gauge("cache_memory_bytes"),
                  static_cast<double>(sys.cache_memory_bytes())),
             "gauge cache_memory_bytes", "stale against the cache");
  out.expect(near(gauge("active_pool_bytes"),
                  static_cast<double>(sys.active_pool().used_bytes())),
             "gauge active_pool_bytes", "stale against the active pool");
  out.expect(near(gauge("dedup_ratio"), sys.dedup_ratio()),
             "gauge dedup_ratio", "stale against cumulative accounting");

  std::uint64_t physical = sys.active_pool().used_bytes();
  for (const auto& [cid, container] : view.archival) {
    (void)cid;
    physical += container->used_bytes();
  }
  out.expect(physical <= sys.total_stored_bytes(), "space accounting",
             "live bytes (" + std::to_string(physical) +
                 ") exceed cumulative stored bytes (" +
                 std::to_string(sys.total_stored_bytes()) + ")");
  return out.take();
}

// Both §9 durability invariants apply only to persistent repositories: an
// in-memory system has no journal, and a working directory that was never
// save()d has nothing to agree with — those skip with zero objects.
FsckCheck check_manifest_commit(const HiDeStore& sys,
                                const FsckOptions& opt) {
  CheckBuilder out(Invariant::kManifestCommit, opt.max_findings);
  const auto& dir = sys.config().storage_dir;
  if (dir.empty()) return out.take();
  Manifest manifest;
  const ManifestStatus status = load_manifest(dir, manifest);
  if (status == ManifestStatus::kMissing) return out.take();
  if (status == ManifestStatus::kIoError) {
    out.expect(false, "MANIFEST", "journal unreadable (I/O failure)");
    return out.take();
  }
  if (status == ManifestStatus::kCorrupt) {
    out.expect(false, "MANIFEST", "journal unreadable (CRC/format failure)");
    return out.take();
  }
  const CommitRecord* head = manifest.head();
  out.expect(head != nullptr, "MANIFEST", "journal holds no commit record");
  if (head == nullptr) return out.take();
  out.expect(head->epoch == sys.epoch(), "MANIFEST head",
             "journal epoch " + std::to_string(head->epoch) +
                 " disagrees with the live system's epoch " +
                 std::to_string(sys.epoch()));
  out.expect(head->next_version == sys.latest_version() + 1,
             "MANIFEST head",
             "journal commits up to version " +
                 std::to_string(head->next_version - 1) +
                 " but the recipe head is version " +
                 std::to_string(sys.latest_version()));
  out.expect(head->oldest_version == sys.oldest_version(), "MANIFEST head",
             "journal oldest version " +
                 std::to_string(head->oldest_version) +
                 " disagrees with the live system's " +
                 std::to_string(sys.oldest_version()));
  // The committed state file the record stamps must exist byte-for-byte.
  std::ifstream in(dir / "state.hds", std::ios::binary | std::ios::ate);
  if (!in) {
    out.expect(false, "state.hds", "committed state file is missing");
    return out.take();
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  out.expect(static_cast<bool>(in) || bytes.empty(), "state.hds",
             "committed state file is unreadable");
  out.expect(bytes.size() == head->state_size &&
                 crc32(bytes.data(), bytes.size()) == head->state_crc,
             "state.hds",
             "committed state file does not match the journal's size/CRC "
             "stamp");
  return out.take();
}

FsckCheck check_orphan_containers(const HiDeStore& sys,
                                  const FsckOptions& opt) {
  CheckBuilder out(Invariant::kOrphanContainers, opt.max_findings);
  const auto& dir = sys.config().storage_dir;
  if (dir.empty()) return out.take();
  Manifest manifest;
  if (load_manifest(dir, manifest) != ManifestStatus::kOk) return out.take();
  const CommitRecord* head = manifest.head();
  if (head == nullptr) return out.take();

  const auto& tags = sys.container_tags();
  std::error_code ec;
  const auto archival_dir = dir / "archival";
  if (!std::filesystem::is_directory(archival_dir, ec)) return out.take();
  std::vector<std::pair<ContainerId, std::string>> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(archival_dir, ec)) {
    const auto name = entry.path().filename().string();
    if (name.rfind("container_", 0) != 0 || !entry.is_regular_file()) {
      continue;
    }
    // container_<id>.hdsc
    const auto id_str = name.substr(10, name.size() - 10 - 5);
    char* end = nullptr;
    const long id = std::strtol(id_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || id <= 0) continue;
    files.emplace_back(static_cast<ContainerId>(id), name);
  }
  std::sort(files.begin(), files.end());
  for (const auto& [id, name] : files) {
    out.object();
    if (!tags.contains(id)) {
      out.fail(name,
               "archival container file carries no committed deletion tag "
               "(orphan of an aborted commit)");
    } else if (id >= head->store_next) {
      out.fail(name, "container ID " + std::to_string(id) +
                         " is at/past the journal's committed watermark " +
                         std::to_string(head->store_next));
    }
  }
  return out.take();
}

// The partial-read fast path trusts the footer index without reading the
// data region, so fsck re-derives exactly what it trusts: the file size the
// header implies, the footer CRC, and non-overlapping entry extents.
// Containers the framing pass already reported are skipped (cascade
// suppression); format-2 files have no footer index and pass vacuously.
FsckCheck check_footer_index(const HiDeStore& sys, const StoreView& view,
                             const FsckOptions& opt) {
  CheckBuilder out(Invariant::kFooterIndex, opt.max_findings);
  const auto& dir = sys.config().storage_dir;
  if (dir.empty()) return out.take();
  const auto archival_dir = dir / "archival";
  std::error_code ec;
  if (!std::filesystem::is_directory(archival_dir, ec)) return out.take();

  std::vector<std::pair<ContainerId, std::filesystem::path>> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(archival_dir, ec)) {
    const auto name = entry.path().filename().string();
    if (name.rfind("container_", 0) != 0 || !entry.is_regular_file()) {
      continue;
    }
    // container_<id>.hdsc
    const auto id_str = name.substr(10, name.size() - 10 - 5);
    char* end = nullptr;
    const long id = std::strtol(id_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || id <= 0) continue;
    files.emplace_back(static_cast<ContainerId>(id), entry.path());
  }
  std::sort(files.begin(), files.end());

  for (const auto& [id, path] : files) {
    if (view.unreadable.contains(id)) continue;  // framing already reported
    out.object();
    const std::string name = path.filename().string();
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto size = in ? in.tellg() : std::streampos(-1);
    if (size < 0) {
      out.fail(name, "container file unreadable");
      continue;
    }
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!in && !bytes.empty()) {
      out.fail(name, "container file unreadable");
      continue;
    }
    const auto header = Container::parse_header(bytes);
    if (!header) continue;     // unparseable → framing's finding, not ours
    if (!header->footer_indexed) continue;  // format 2: no footer index
    if (bytes.size() != header->expected_file_size()) {
      out.fail(name, "file size " + std::to_string(bytes.size()) +
                         " does not match the header-implied " +
                         std::to_string(header->expected_file_size()));
      continue;
    }
    const std::span<const std::uint8_t> all(bytes);
    const auto entries = Container::parse_footer(
        all.first(Container::kHeaderSize),
        all.subspan(static_cast<std::size_t>(header->footer_offset()),
                    static_cast<std::size_t>(header->footer_size())));
    if (!entries) {
      out.fail(name,
               "footer index fails its CRC or holds an out-of-bounds extent");
      continue;
    }
    // No two physical extents may overlap: a partial read hands each extent
    // to exactly one chunk.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
    extents.reserve(entries->size());
    for (const auto& [fp, entry] : *entries) {
      (void)fp;
      if (entry.offset == Container::kVirtualOffset || entry.size == 0) {
        continue;
      }
      extents.emplace_back(entry.offset,
                           std::uint64_t{entry.offset} + entry.size);
    }
    std::sort(extents.begin(), extents.end());
    for (std::size_t i = 1; i < extents.size(); ++i) {
      if (extents[i].first < extents[i - 1].second) {
        out.fail(name, "entry extents overlap at offset " +
                           std::to_string(extents[i].first));
        break;
      }
    }
  }
  return out.take();
}

}  // namespace

std::string_view invariant_name(Invariant invariant) noexcept {
  return kNames[static_cast<std::size_t>(invariant)];
}

const FsckCheck& FsckReport::check(Invariant invariant) const {
  return checks.at(static_cast<std::size_t>(invariant));
}

bool FsckReport::clean() const noexcept {
  return std::all_of(checks.begin(), checks.end(),
                     [](const FsckCheck& c) { return c.passed(); });
}

std::uint64_t FsckReport::total_violations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : checks) total += c.violations;
  return total;
}

std::string FsckReport::to_text() const {
  std::ostringstream out;
  const std::uint64_t total = total_violations();
  if (total == 0) {
    out << "hds fsck: clean — all " << checks.size()
        << " invariants hold\n";
  } else {
    std::size_t failed = 0;
    for (const auto& c : checks) failed += c.passed() ? 0 : 1;
    out << "hds fsck: " << failed << " invariant(s) violated, " << total
        << " finding(s)\n";
  }
  for (const auto& c : checks) {
    out << "  [" << (c.passed() ? " OK " : "FAIL") << "] ";
    const auto name = invariant_name(c.invariant);
    out << name;
    for (std::size_t pad = name.size(); pad < 20; ++pad) out << ' ';
    out << c.violations << " violation(s), " << c.objects_checked
        << " object(s) checked\n";
    for (const auto& f : c.findings) {
      out << "         " << f.object << ": " << f.detail << "\n";
    }
  }
  return out.str();
}

std::string FsckReport::to_json() const {
  std::string out = "{\"clean\":";
  out += clean() ? "true" : "false";
  out += ",\"total_violations\":" + std::to_string(total_violations());
  out += ",\"checks\":[";
  bool first_check = true;
  for (const auto& c : checks) {
    if (!first_check) out += ',';
    first_check = false;
    out += "{\"invariant\":\"";
    out += invariant_name(c.invariant);
    out += "\",\"passed\":";
    out += c.passed() ? "true" : "false";
    out += ",\"objects_checked\":" + std::to_string(c.objects_checked);
    out += ",\"violations\":" + std::to_string(c.violations);
    out += ",\"findings\":[";
    bool first_finding = true;
    for (const auto& f : c.findings) {
      if (!first_finding) out += ',';
      first_finding = false;
      out += "{\"object\":\"";
      json_escape(out, f.object);
      out += "\",\"detail\":\"";
      json_escape(out, f.detail);
      out += "\"}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

FsckReport run_fsck(HiDeStore& system, const FsckOptions& options) {
  FsckReport report;
  report.checks.reserve(kInvariantCount);
  StoreView view;
  report.checks.push_back(check_container_framing(system, view, options));
  report.checks.push_back(check_deletion_tags(system, view, options));
  report.checks.push_back(check_chunk_crc(system, view, options));
  report.checks.push_back(check_recipe_resolution(system, view, options));
  report.checks.push_back(check_recipe_chain(system, options));
  report.checks.push_back(check_active_resolution(system, options));
  report.checks.push_back(check_class_exclusivity(system, view, options));
  report.checks.push_back(check_pool_utilization(system, options));
  report.checks.push_back(check_cache_consistency(system, options));
  report.checks.push_back(check_accounting(system, view, options));
  report.checks.push_back(check_manifest_commit(system, options));
  report.checks.push_back(check_orphan_containers(system, options));
  report.checks.push_back(check_footer_index(system, view, options));
  return report;
}

}  // namespace hds::verify
