// HDS_INVARIANT / HDS_CHECK — in-process structural assertions.
//
// The fsck checker (src/verify/fsck.h) validates the paper's invariants
// offline; these macros embed the same predicates inline at the
// version-boundary transitions (cache rotation, cold eviction, pool
// compaction, recipe finalization, container sealing) so tier-1 tests
// exercise them on every run.
//
// Both macros compile out completely unless the build defines HDS_VERIFY
// (cmake -DHDS_VERIFY=ON); condition and message expressions are not
// evaluated in normal builds. On failure the installed handler runs — the
// default prints the expression and location to stderr and aborts; tests
// install a recording handler to assert that violations are caught.
//
// This header is deliberately header-only (inline state) so that low-level
// libraries (hds_storage, hds_core) can assert without linking against
// hds_verify, which sits above them.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hds::verify {

// Handler invoked when a compiled-in invariant fails. The default aborts;
// a test handler may record and return (execution then continues past the
// failed check) or throw.
using InvariantHandler = void (*)(const char* expr, const char* file,
                                  int line, const std::string& message);

namespace detail {
inline std::atomic<std::uint64_t>& check_counter() noexcept {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

inline std::atomic<InvariantHandler>& handler_slot() noexcept {
  static std::atomic<InvariantHandler> handler{nullptr};
  return handler;
}

inline void count_check() noexcept {
  check_counter().fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

// Number of HDS_INVARIANT/HDS_CHECK evaluations so far (0 in builds
// without HDS_VERIFY) — lets tests prove the assertions actually ran.
[[nodiscard]] inline std::uint64_t invariants_checked() noexcept {
  return detail::check_counter().load(std::memory_order_relaxed);
}

// Installs a failure handler; returns the previous one (nullptr = default
// print-and-abort). Pass nullptr to restore the default.
inline InvariantHandler set_invariant_handler(InvariantHandler handler) {
  return detail::handler_slot().exchange(handler);
}

inline void invariant_failed(const char* expr, const char* file, int line,
                             const std::string& message) {
  if (InvariantHandler handler = detail::handler_slot().load()) {
    handler(expr, file, line, message);
    return;
  }
  std::fprintf(stderr, "[hds] invariant violated at %s:%d: %s%s%s\n", file,
               line, expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace hds::verify

#if defined(HDS_VERIFY)
// Bare structural assertion: HDS_INVARIANT(t2.empty()).
#define HDS_INVARIANT(cond)                                             \
  do {                                                                  \
    ::hds::verify::detail::count_check();                               \
    if (!(cond)) {                                                      \
      ::hds::verify::invariant_failed(#cond, __FILE__, __LINE__,        \
                                      std::string());                   \
    }                                                                   \
  } while (false)
// Assertion with a diagnostic message, built only on failure:
// HDS_CHECK(count <= 1, "sparse containers survived compaction").
#define HDS_CHECK(cond, msg)                                            \
  do {                                                                  \
    ::hds::verify::detail::count_check();                               \
    if (!(cond)) {                                                      \
      ::hds::verify::invariant_failed(#cond, __FILE__, __LINE__,        \
                                      std::string(msg));                \
    }                                                                   \
  } while (false)
#else
#define HDS_INVARIANT(cond) ((void)0)
#define HDS_CHECK(cond, msg) ((void)0)
#endif
