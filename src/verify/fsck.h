// Offline store checker ("hds_tool fsck") — walks every container, recipe
// and the catalog of a HiDeStore repository and validates the full
// invariant catalog the paper implies (DESIGN.md §8):
//
//   container_framing   archival containers deserialize, carry the right ID,
//                       and every entry extent lies inside the data region;
//   deletion_tags       archival IDs and §4.5 deletion tags are a bijection;
//   chunk_crc           every stored payload matches its per-chunk CRC-32;
//   recipe_resolution   archival CIDs (>0) resolve to a container that holds
//                       the fingerprint at the recorded size (§4.3);
//   recipe_chain        chain CIDs (<0) point forward in time at retained
//                       recipes, terminate, and never cycle (Algorithm 1);
//   active_resolution   active CIDs (==0) appear only in the newest `window`
//                       recipes and resolve through the pool index (§4.2);
//   class_exclusivity   no fingerprint is simultaneously hot (active pool)
//                       and cold (archival container) (§4.2);
//   pool_utilization    at most one active container sits below the merge
//                       threshold after compaction (Figure 6);
//   cache_consistency   the double-hash cache and the pool index agree
//                       exactly — same fingerprints, CIDs and sizes (§4.1);
//   accounting          dedup counters and repository gauges cross-check
//                       against the recomputed store state;
//   manifest_commit     the MANIFEST journal head agrees with the live
//                       system — same epoch and version window, and the
//                       committed state file it stamps exists byte-for-byte
//                       (persistent repositories only, §9);
//   orphan_containers   no archival container file on disk escapes the
//                       committed deletion tags or sits at/past the
//                       journal's container-ID watermark (persistent
//                       repositories only, §9);
//   footer_index        every format-3 container file's footer index is
//                       self-consistent: file size matches the header,
//                       the footer CRC validates, and no two entry extents
//                       overlap in the data region — the partial-read fast
//                       path (DESIGN.md §10) trusts exactly these facts
//                       (persistent repositories only; format-2 files pass
//                       vacuously).
//
// The report carries per-invariant pass/fail, object counts and the first
// offending objects, and renders as text or JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hds {
class HiDeStore;
}

namespace hds::verify {

enum class Invariant {
  kContainerFraming,
  kDeletionTags,
  kChunkCrc,
  kRecipeResolution,
  kRecipeChain,
  kActiveResolution,
  kClassExclusivity,
  kPoolUtilization,
  kCacheConsistency,
  kAccounting,
  kManifestCommit,
  kOrphanContainers,
  kFooterIndex,
};

inline constexpr std::size_t kInvariantCount = 13;

[[nodiscard]] std::string_view invariant_name(Invariant invariant) noexcept;

struct FsckOptions {
  // Findings recorded per invariant; violations past the cap are still
  // counted, just not materialized.
  std::size_t max_findings = 16;
};

struct FsckFinding {
  Invariant invariant = Invariant::kContainerFraming;
  std::string object;  // e.g. "container 7", "recipe v3 entry 12"
  std::string detail;
};

struct FsckCheck {
  Invariant invariant = Invariant::kContainerFraming;
  std::uint64_t objects_checked = 0;
  std::uint64_t violations = 0;
  std::vector<FsckFinding> findings;  // first offenders, capped

  [[nodiscard]] bool passed() const noexcept { return violations == 0; }
};

struct FsckReport {
  // One entry per Invariant, in declaration order.
  std::vector<FsckCheck> checks;

  [[nodiscard]] const FsckCheck& check(Invariant invariant) const;
  [[nodiscard]] bool clean() const noexcept;
  [[nodiscard]] std::uint64_t total_violations() const noexcept;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
};

// Runs every check against a live system. Non-const because walking the
// archival store issues (counted) container reads. Findings cascade-suppress:
// a container that already failed framing is not re-reported by the chunk
// CRC / resolution / exclusivity passes.
[[nodiscard]] FsckReport run_fsck(HiDeStore& system,
                                  const FsckOptions& options = {});

}  // namespace hds::verify
