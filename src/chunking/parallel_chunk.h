// ParallelChunkPipeline — multi-threaded ingest front end (chunk + SHA-1)
// whose output is BIT-IDENTICAL to the serial chunk_bytes() path.
//
// Destor structures backup as concurrent phases joined by queues; this is
// that structure for the CPU-heavy front end, built so that parallelism
// never changes a boundary or a fingerprint:
//
//   1. Speculative scan (parallel). The input is split into large segments;
//      each worker runs the chunker over [segment_start, segment_end +
//      max_chunk_size) and records candidate cut positions. Candidates are
//      exact *provided the chunk they terminate starts at a true boundary*,
//      because every Chunker resets its rolling state at a boundary and
//      decides a cut from at most max_chunk_size() bytes past the chunk
//      start.
//   2. Boundary merge (sequential, cheap). Walk segments in order carrying
//      the current true boundary. When it coincides with a segment's scan
//      start or one of its candidates, the segment's remaining candidates
//      are accepted wholesale ("resync"). Otherwise one chunk is re-scanned
//      serially (a "fixup", normally 0–2 per segment since CDC boundaries
//      depend only on a small trailing window).
//   3. Fingerprint + pack (parallel). The merged chunk list is cut into
//      ~1 MiB batches; workers SHA-1 each batch into records backed by one
//      shared buffer per batch, and an OrderedMerge reassembles the
//      VersionStream in recipe order while workers are still hashing.
//
// The same batch layout is used by the serial path, so recipes, dedup
// ratios, and every downstream figure are unchanged at any thread count
// (asserted by ParallelChunk.* tests across all five chunkers).
#pragma once

#include <span>

#include "chunking/chunk_stream.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hds {

struct ParallelChunkConfig {
  // Worker threads; 0 means parallel::default_thread_count(). 1 falls back
  // to the serial path.
  std::size_t threads = 0;
  // Speculative scan granularity; clamped to ≥ 4 × max_chunk_size().
  std::size_t segment_bytes = 4 * 1024 * 1024;
  // Fingerprint task granularity (also the shared-buffer size).
  std::size_t batch_bytes = kIngestBatchBytes;
  // Optional observability: ingest_* counters/histograms and the
  // ingest_queue_depth gauge land in `metrics`; phase spans in `tracer`.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

class ParallelChunkPipeline {
 public:
  explicit ParallelChunkPipeline(const Chunker& chunker,
                                 const ParallelChunkConfig& config = {});

  // Chunks and fingerprints `data`. Deterministic: equal input and chunker
  // produce an equal stream at every thread count.
  [[nodiscard]] VersionStream run(std::span<const std::uint8_t> data) const;

  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_; }

 private:
  const Chunker& chunker_;
  ParallelChunkConfig config_;
  std::size_t threads_;
};

// Convenience wrapper: chunk_bytes() on `threads` workers.
[[nodiscard]] VersionStream chunk_bytes_parallel(
    const Chunker& chunker, std::span<const std::uint8_t> data,
    std::size_t threads);

}  // namespace hds
