#include "chunking/chunk_stream.h"

#include "common/sha1.h"

namespace hds {

VersionStream chunk_bytes(const Chunker& chunker,
                          std::span<const std::uint8_t> data) {
  VersionStream stream;
  for (auto piece : chunker.split(data)) {
    ChunkRecord rec;
    rec.fp = Sha1::digest(piece);
    rec.size = static_cast<std::uint32_t>(piece.size());
    rec.data = std::make_shared<const std::vector<std::uint8_t>>(
        piece.begin(), piece.end());
    stream.chunks.push_back(std::move(rec));
  }
  return stream;
}

}  // namespace hds
