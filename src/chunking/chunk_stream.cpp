#include "chunking/chunk_stream.h"

#include "common/sha1.h"

namespace hds {

namespace detail {

std::vector<IngestBatch> make_batches(std::span<const std::size_t> lengths,
                                      std::size_t batch_bytes) {
  std::vector<IngestBatch> batches;
  IngestBatch current;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (current.chunk_count > 0 &&
        current.byte_len + lengths[i] > batch_bytes) {
      batches.push_back(current);
      current = IngestBatch{i, 0, pos, 0};
    }
    current.chunk_count++;
    current.byte_len += lengths[i];
    pos += lengths[i];
  }
  if (current.chunk_count > 0) batches.push_back(current);
  return batches;
}

VersionStream pack_batch(std::span<const std::uint8_t> bytes,
                         std::span<const std::size_t> lengths) {
  const auto buffer = std::make_shared<const std::vector<std::uint8_t>>(
      bytes.begin(), bytes.end());
  VersionStream out;
  out.chunks.reserve(lengths.size());
  std::size_t offset = 0;
  for (const std::size_t len : lengths) {
    ChunkRecord rec;
    rec.size = static_cast<std::uint32_t>(len);
    rec.data = buffer;
    rec.data_offset = static_cast<std::uint32_t>(offset);
    rec.fp = Sha1::digest(std::span(buffer->data() + offset, len));
    out.chunks.push_back(std::move(rec));
    offset += len;
  }
  return out;
}

void append_stream(VersionStream& dst, VersionStream&& src) {
  if (dst.chunks.empty()) {
    dst.chunks = std::move(src.chunks);
    return;
  }
  dst.chunks.reserve(dst.chunks.size() + src.chunks.size());
  for (auto& rec : src.chunks) dst.chunks.push_back(std::move(rec));
  src.chunks.clear();
}

}  // namespace detail

VersionStream chunk_bytes(const Chunker& chunker,
                          std::span<const std::uint8_t> data) {
  std::vector<std::size_t> lengths;
  chunker.chunk(data, lengths);
  VersionStream stream;
  stream.chunks.reserve(lengths.size());
  for (const auto& batch : detail::make_batches(lengths, kIngestBatchBytes)) {
    detail::append_stream(
        stream,
        detail::pack_batch(
            data.subspan(batch.byte_begin, batch.byte_len),
            std::span(lengths).subspan(batch.chunk_begin, batch.chunk_count)));
  }
  return stream;
}

}  // namespace hds
