// Bridges raw byte buffers to the pipeline's ChunkRecord representation:
// chunk → SHA-1 → ChunkRecord with shared content bytes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "chunking/chunker.h"
#include "common/chunk.h"

namespace hds {

// Records are packed in batches of roughly this many bytes; all chunks of a
// batch share one backing buffer (ChunkRecord::data + data_offset) instead
// of owning per-chunk copies.
inline constexpr std::size_t kIngestBatchBytes = 1024 * 1024;

// Chunks `data` with `chunker` and fingerprints each chunk with SHA-1.
// The returned records own copies of their bytes (shared per batch), so the
// input buffer may be discarded afterwards. Single-threaded reference path;
// ParallelChunkPipeline (parallel_chunk.h) produces the identical stream on
// many threads.
[[nodiscard]] VersionStream chunk_bytes(const Chunker& chunker,
                                        std::span<const std::uint8_t> data);

namespace detail {

// A run of consecutive chunks packed against one shared buffer.
struct IngestBatch {
  std::size_t chunk_begin = 0;  // index into the chunk-length list
  std::size_t chunk_count = 0;
  std::size_t byte_begin = 0;  // offset into the ingest buffer
  std::size_t byte_len = 0;
};

// Greedily groups consecutive chunk lengths into batches of at most
// `batch_bytes` (always at least one chunk per batch). Shared by the serial
// and parallel ingest paths so both produce the same buffer layout.
[[nodiscard]] std::vector<IngestBatch> make_batches(
    std::span<const std::size_t> lengths, std::size_t batch_bytes);

// Fingerprints the chunks covering `bytes` (sum of `lengths` must equal
// bytes.size()) and packs them into records backed by ONE shared copy of
// `bytes`. Pure function of its inputs — safe to call from worker threads.
[[nodiscard]] VersionStream pack_batch(std::span<const std::uint8_t> bytes,
                                       std::span<const std::size_t> lengths);

// Moves every record of `src` onto the end of `dst`.
void append_stream(VersionStream& dst, VersionStream&& src);

}  // namespace detail

}  // namespace hds
