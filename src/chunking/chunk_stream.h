// Bridges raw byte buffers to the pipeline's ChunkRecord representation:
// chunk → SHA-1 → ChunkRecord with shared content bytes.
#pragma once

#include <span>

#include "chunking/chunker.h"
#include "common/chunk.h"

namespace hds {

// Chunks `data` with `chunker` and fingerprints each chunk with SHA-1.
// The returned records own copies of their bytes (shared_ptr), so the input
// buffer may be discarded afterwards.
[[nodiscard]] VersionStream chunk_bytes(const Chunker& chunker,
                                        std::span<const std::uint8_t> data);

}  // namespace hds
