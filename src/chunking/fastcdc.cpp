#include "chunking/fastcdc.h"

#include <array>
#include <bit>

#include "common/rng.h"

namespace hds {

namespace {
// Gear table: 256 random 64-bit values, fixed for reproducibility.
const std::array<std::uint64_t, 256>& gear_table() {
  static const auto table = [] {
    std::array<std::uint64_t, 256> t{};
    SplitMix64 mix(0x46617374434443ULL);  // "FastCDC"
    for (auto& v : t) v = mix.next();
    return t;
  }();
  return table;
}

// A mask with `bits` one-bits spread across the high half of the word, per
// the FastCDC paper's observation that spread bits discriminate better than
// a dense low mask for the Gear hash (whose low bits mix slowly).
std::uint64_t spread_mask(int bits) {
  std::uint64_t mask = 0;
  SplitMix64 mix(0x6D61736BULL + static_cast<std::uint64_t>(bits));
  int set = 0;
  while (set < bits) {
    const int pos = 16 + static_cast<int>(mix.next() % 48);
    const std::uint64_t bit = 1ULL << pos;
    if (!(mask & bit)) {
      mask |= bit;
      ++set;
    }
  }
  return mask;
}
}  // namespace

FastCdcChunker::FastCdcChunker(const ChunkerParams& params)
    : min_size_(params.min_size),
      normal_size_(params.avg_size),
      max_size_(params.max_size) {
  const int bits = std::max(1, static_cast<int>(std::bit_width(params.avg_size)) - 1);
  mask_small_ = spread_mask(bits + 2);
  mask_large_ = spread_mask(std::max(1, bits - 2));
}

void FastCdcChunker::chunk(std::span<const std::uint8_t> data,
                           std::vector<std::size_t>& lengths) const {
  const auto& gear = gear_table();
  std::size_t chunk_start = 0;
  while (chunk_start < data.size()) {
    const std::size_t remaining = data.size() - chunk_start;
    if (remaining <= min_size_) {
      lengths.push_back(remaining);
      break;
    }
    const std::size_t limit = std::min(remaining, max_size_);
    const std::size_t normal = std::min(limit, normal_size_);

    std::uint64_t h = 0;
    std::size_t cut = limit;  // default: forced cut at max/end
    // FastCDC skips the hash entirely below min_size (cut cannot land there).
    std::size_t i = min_size_;
    for (; i < normal; ++i) {
      h = (h << 1) + gear[data[chunk_start + i]];
      if ((h & mask_small_) == 0) {
        cut = i + 1;
        break;
      }
    }
    if (cut == limit) {
      for (; i < limit; ++i) {
        h = (h << 1) + gear[data[chunk_start + i]];
        if ((h & mask_large_) == 0) {
          cut = i + 1;
          break;
        }
      }
    }
    lengths.push_back(cut);
    chunk_start += cut;
  }
}

}  // namespace hds
