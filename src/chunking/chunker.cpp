#include "chunking/chunker.h"

#include <stdexcept>

#include "chunking/ae.h"
#include "chunking/fastcdc.h"
#include "chunking/fixed.h"
#include "chunking/rabin.h"
#include "chunking/tttd.h"

namespace hds {

std::vector<std::span<const std::uint8_t>> Chunker::split(
    std::span<const std::uint8_t> data) const {
  std::vector<std::size_t> lengths;
  chunk(data, lengths);
  std::vector<std::span<const std::uint8_t>> out;
  out.reserve(lengths.size());
  std::size_t offset = 0;
  for (std::size_t len : lengths) {
    out.push_back(data.subspan(offset, len));
    offset += len;
  }
  return out;
}

std::unique_ptr<Chunker> make_chunker(ChunkerKind kind,
                                      const ChunkerParams& params) {
  switch (kind) {
    case ChunkerKind::kFixed:
      return std::make_unique<FixedChunker>(params);
    case ChunkerKind::kRabin:
      return std::make_unique<RabinChunker>(params);
    case ChunkerKind::kTttd:
      return std::make_unique<TttdChunker>(params);
    case ChunkerKind::kFastCdc:
      return std::make_unique<FastCdcChunker>(params);
    case ChunkerKind::kAe:
      return std::make_unique<AeChunker>(params);
  }
  throw std::invalid_argument("unknown ChunkerKind");
}

}  // namespace hds
