// TTTD — Two Thresholds, Two Divisors (Eshghi & Tang, HP Labs TR 2005-30).
//
// The paper's prototype chunks with TTTD. Beyond plain divisor-test CDC,
// TTTD adds a *backup divisor* (half as selective): if no main-divisor
// boundary appears before the maximum threshold, the most recent backup
// boundary is used instead of a hard cut, which keeps chunk sizes tight
// around the average without destroying content-definedness at forced cuts.
#pragma once

#include "chunking/chunker.h"
#include "chunking/rabin.h"

namespace hds {

class TttdChunker final : public Chunker {
 public:
  explicit TttdChunker(const ChunkerParams& params = {});

  void chunk(std::span<const std::uint8_t> data,
             std::vector<std::size_t>& lengths) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "tttd";
  }
  [[nodiscard]] std::size_t max_chunk_size() const noexcept override {
    return max_size_;
  }

 private:
  std::size_t min_size_;
  std::size_t max_size_;
  std::uint64_t main_divisor_;
  std::uint64_t backup_divisor_;
};

}  // namespace hds
