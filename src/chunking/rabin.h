// Rabin fingerprinting over GF(2) and Rabin-based CDC.
//
// The rolling hash is a polynomial fingerprint modulo an irreducible
// polynomial of degree 53 (the LBFS polynomial), computed with the classic
// two-table scheme: an append table reduces the high byte after a shift, a
// remove table cancels the byte leaving a fixed-size window.
#pragma once

#include <array>
#include <cstdint>

#include "chunking/chunker.h"

namespace hds {

class RabinHash {
 public:
  static constexpr std::uint64_t kPolynomial = 0x3DA3358B4DC173ULL;  // deg 53
  static constexpr int kDegree = 53;
  static constexpr std::size_t kWindowSize = 48;

  RabinHash();

  void reset() noexcept;

  // Slides the window one byte forward and returns the new fingerprint.
  std::uint64_t roll(std::uint8_t in) noexcept;

  [[nodiscard]] std::uint64_t value() const noexcept { return fp_; }

 private:
  std::uint64_t append(std::uint64_t fp, std::uint8_t b) const noexcept;

  std::array<std::uint64_t, 256> append_table_{};
  std::array<std::uint64_t, 256> remove_table_{};
  std::array<std::uint8_t, kWindowSize> window_{};
  std::size_t pos_ = 0;
  std::uint64_t fp_ = 0;
};

class RabinChunker final : public Chunker {
 public:
  explicit RabinChunker(const ChunkerParams& params = {});

  void chunk(std::span<const std::uint8_t> data,
             std::vector<std::size_t>& lengths) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rabin";
  }
  [[nodiscard]] std::size_t max_chunk_size() const noexcept override {
    return params_.max_size;
  }

 private:
  ChunkerParams params_;
  std::uint64_t mask_;  // boundary when (fp & mask_) == mask_
};

}  // namespace hds
