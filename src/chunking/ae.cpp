#include "chunking/ae.h"

#include <array>

#include "common/rng.h"

namespace hds {

namespace {
// Byte-value randomization table so runs of identical bytes do not defeat
// the extremum search.
const std::array<std::uint64_t, 256>& value_table() {
  static const auto table = [] {
    std::array<std::uint64_t, 256> t{};
    SplitMix64 mix(0x41452D434443ULL);  // "AE-CDC"
    for (auto& v : t) v = mix.next();
    return t;
  }();
  return table;
}
}  // namespace

AeChunker::AeChunker(const ChunkerParams& params)
    : min_size_(params.min_size), max_size_(params.max_size) {
  // Expected chunk size of AE is w*(e-1)+1 ≈ 1.718*w for random input, so
  // w = avg / (e-1).
  window_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(params.avg_size) /
                                  1.71828));
}

void AeChunker::chunk(std::span<const std::uint8_t> data,
                      std::vector<std::size_t>& lengths) const {
  const auto& values = value_table();
  std::size_t chunk_start = 0;
  while (chunk_start < data.size()) {
    std::uint64_t rolling = 0;
    std::uint64_t max_value = 0;
    std::size_t max_pos = chunk_start;
    std::size_t cut = 0;
    const std::size_t end = std::min(data.size(), chunk_start + max_size_);
    for (std::size_t i = chunk_start; i < end; ++i) {
      // Mix a short history so the extremum reflects local content, not a
      // single byte.
      rolling = (rolling << 7) + values[data[i]];
      if (i < chunk_start + min_size_) {
        // Positions below the minimum cannot become boundaries but still
        // participate as extremum candidates.
        if (rolling >= max_value) {
          max_value = rolling;
          max_pos = i;
        }
        continue;
      }
      if (rolling > max_value) {
        max_value = rolling;
        max_pos = i;
      } else if (i - max_pos >= window_) {
        cut = i - chunk_start + 1;
        break;
      }
    }
    if (cut == 0) cut = end - chunk_start;  // forced cut at max/end
    lengths.push_back(cut);
    chunk_start += cut;
  }
}

}  // namespace hds
