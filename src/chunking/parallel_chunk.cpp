#include "chunking/parallel_chunk.h"

#include <algorithm>
#include <thread>

#include "common/stats.h"
#include "parallel/ordered_merge.h"
#include "parallel/thread_pool.h"

namespace hds {

namespace {

// One segment's speculative scan: candidate cut positions (absolute, sorted)
// produced by chunking [start, window_end) in isolation.
struct SegmentScan {
  std::size_t start = 0;
  std::size_t window_end = 0;
  std::vector<std::size_t> cuts;
};

}  // namespace

ParallelChunkPipeline::ParallelChunkPipeline(const Chunker& chunker,
                                             const ParallelChunkConfig& config)
    : chunker_(chunker), config_(config) {
  threads_ = config_.threads == 0 ? parallel::default_thread_count()
                                  : config_.threads;
  if (config_.batch_bytes == 0) config_.batch_bytes = kIngestBatchBytes;
}

VersionStream ParallelChunkPipeline::run(
    std::span<const std::uint8_t> data) const {
  const std::size_t max_chunk = std::max<std::size_t>(
      1, chunker_.max_chunk_size());
  const std::size_t segment =
      std::max(config_.segment_bytes, 4 * max_chunk);
  if (threads_ <= 1 || data.size() <= segment) {
    return chunk_bytes(chunker_, data);
  }

  obs::Span pipeline_span(config_.tracer, "parallel_chunk");
  const std::size_t total = data.size();
  const std::size_t n_segments = (total + segment - 1) / segment;
  parallel::ThreadPool pool(std::min(threads_, n_segments));
  obs::Gauge* depth_gauge =
      config_.metrics ? &config_.metrics->gauge("ingest_queue_depth")
                      : nullptr;
  if (depth_gauge != nullptr) pool.attach_depth_gauge(depth_gauge);
  if (config_.tracer != nullptr) {
    pool.attach_tracer(config_.tracer, "ingest_queue");
  }

  // --- Phase 1: speculative per-segment scans (parallel) ---
  std::vector<SegmentScan> scans(n_segments);
  {
    obs::Span scan_span(config_.tracer, "ingest_scan");
    for (std::size_t s = 0; s < n_segments; ++s) {
      pool.submit([&, s] {
        Stopwatch timer;
        SegmentScan& scan = scans[s];
        scan.start = s * segment;
        scan.window_end = std::min(total, scan.start + segment + max_chunk);
        std::vector<std::size_t> lengths;
        chunker_.chunk(
            data.subspan(scan.start, scan.window_end - scan.start), lengths);
        scan.cuts.reserve(lengths.size());
        std::size_t pos = scan.start;
        for (const std::size_t len : lengths) {
          pos += len;
          scan.cuts.push_back(pos);
        }
        if (config_.metrics) {
          config_.metrics->histogram("ingest_scan_ms")
              .observe(timer.elapsed_ms());
        }
      });
    }
    pool.wait_idle();
  }

  // --- Phase 2: boundary merge (sequential) ---
  // Invariant: `cur` is always a true (serial) boundary. A candidate cut is
  // accepted only when its chunk start is a true boundary AND the decision
  // window [start, start + max_chunk) fit inside the scan window, so every
  // accepted length provably equals the serial one.
  std::vector<std::size_t> lengths;
  lengths.reserve(total / std::max<std::size_t>(1, max_chunk / 4) + 16);
  std::uint64_t fixups = 0;
  {
    obs::Span merge_span(config_.tracer, "ingest_merge");
    std::vector<std::size_t> tmp;
    std::size_t cur = 0;
    while (cur < total) {
      const std::size_t j = std::min(cur / segment, n_segments - 1);
      const SegmentScan& scan = scans[j];
      const bool synced =
          cur == scan.start ||
          std::binary_search(scan.cuts.begin(), scan.cuts.end(), cur);
      if (synced) {
        auto it = std::upper_bound(scan.cuts.begin(), scan.cuts.end(), cur);
        std::size_t prev = cur;
        for (; it != scan.cuts.end(); ++it) {
          const bool decided = prev + max_chunk <= scan.window_end ||
                               scan.window_end == total;
          if (!decided) break;
          lengths.push_back(*it - prev);
          prev = *it;
          // Once past the segment's own span, the next segment's scan (or a
          // fixup) takes over.
          if (prev >= scan.start + segment) break;
        }
        if (prev != cur) {
          cur = prev;
          continue;
        }
      }
      // Fixup: re-scan exactly one chunk serially from the true boundary.
      // All chunkers force a cut within max_chunk bytes, so a window of
      // min(max_chunk, rest) reproduces the serial decision exactly.
      tmp.clear();
      chunker_.chunk(data.subspan(cur, std::min(max_chunk, total - cur)),
                     tmp);
      lengths.push_back(tmp.front());
      cur += tmp.front();
      ++fixups;
    }
  }
  if (config_.metrics) {
    config_.metrics->counter("ingest_segments").inc(n_segments);
    config_.metrics->counter("ingest_fixup_chunks").inc(fixups);
    config_.metrics->counter("ingest_bytes").inc(total);
  }

  // --- Phase 3: fingerprint + pack (parallel), ordered reassembly ---
  const auto batches = detail::make_batches(lengths, config_.batch_bytes);
  if (config_.metrics) {
    config_.metrics->counter("ingest_batches").inc(batches.size());
  }
  obs::Span hash_span(config_.tracer, "ingest_fingerprint");
  parallel::OrderedMerge<VersionStream> merge(2 * pool.thread_count());
  // Submission gets its own thread so the consumer below drains the merge
  // concurrently. Submitting from the consumer thread would deadlock once
  // every worker blocks in the reorder window and the task queue fills —
  // nobody would be left to call next().
  std::thread producer([&] {
    for (std::size_t b = 0; b < batches.size(); ++b) {
      pool.submit([&, b] {
        Stopwatch timer;
        const auto& batch = batches[b];
        auto part = detail::pack_batch(
            data.subspan(batch.byte_begin, batch.byte_len),
            std::span(lengths).subspan(batch.chunk_begin, batch.chunk_count));
        if (config_.metrics) {
          config_.metrics->histogram("ingest_pack_ms")
              .observe(timer.elapsed_ms());
        }
        merge.put(b, std::move(part));
      });
    }
  });
  VersionStream stream;
  stream.chunks.reserve(lengths.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    auto part = merge.next();
    if (!part) break;  // unreachable unless the merge is closed early
    detail::append_stream(stream, std::move(*part));
  }
  producer.join();
  pool.wait_idle();
  return stream;
}

VersionStream chunk_bytes_parallel(const Chunker& chunker,
                                   std::span<const std::uint8_t> data,
                                   std::size_t threads) {
  ParallelChunkConfig config;
  config.threads = threads;
  return ParallelChunkPipeline(chunker, config).run(data);
}

}  // namespace hds
