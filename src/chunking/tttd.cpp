#include "chunking/tttd.h"

namespace hds {

TttdChunker::TttdChunker(const ChunkerParams& params)
    : min_size_(params.min_size), max_size_(params.max_size) {
  // The HP TR parameters for a 1008-byte average are Tmin=460, Tmax=2800,
  // D=540, D'=270; we scale the divisors to the requested average. The
  // divisor test is (fp mod D) == D-1.
  const std::size_t span =
      params.avg_size > min_size_ ? params.avg_size - min_size_ : 1;
  main_divisor_ = std::max<std::uint64_t>(1, span);
  backup_divisor_ = std::max<std::uint64_t>(1, main_divisor_ / 2);
}

void TttdChunker::chunk(std::span<const std::uint8_t> data,
                        std::vector<std::size_t>& lengths) const {
  RabinHash hash;
  std::size_t chunk_start = 0;
  std::size_t backup_len = 0;  // most recent backup-divisor boundary
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t fp = hash.roll(data[i]);
    ++i;
    const std::size_t len = i - chunk_start;
    if (len < min_size_) continue;

    if (fp % main_divisor_ == main_divisor_ - 1) {
      lengths.push_back(len);
      chunk_start = i;
      backup_len = 0;
      hash.reset();
      continue;
    }
    if (fp % backup_divisor_ == backup_divisor_ - 1) backup_len = len;

    if (len >= max_size_) {
      // No main boundary found: fall back to the last backup boundary, or
      // force a cut at the maximum threshold.
      const std::size_t cut = backup_len != 0 ? backup_len : len;
      lengths.push_back(cut);
      chunk_start += cut;
      i = chunk_start;
      backup_len = 0;
      hash.reset();
    }
  }
  if (chunk_start < data.size()) lengths.push_back(data.size() - chunk_start);
}

}  // namespace hds
