#include "chunking/rabin.h"

#include <bit>

namespace hds {

namespace {
// Reduces (value << 8) modulo the polynomial, bit by bit. Used only at table
// construction time; the hot path is table-driven.
std::uint64_t slow_append_byte(std::uint64_t fp, std::uint8_t b,
                               std::uint64_t poly, int degree) noexcept {
  for (int i = 7; i >= 0; --i) {
    fp <<= 1;
    fp |= (b >> i) & 1;
    if (fp & (1ULL << degree)) fp ^= poly | (1ULL << degree);
  }
  return fp;
}
}  // namespace

RabinHash::RabinHash() {
  // append_table_[t] = (t << degree) mod P, reducing the byte that overflows
  // past the polynomial degree after an 8-bit shift.
  for (unsigned t = 0; t < 256; ++t) {
    std::uint64_t v = t;
    // v currently represents t * x^degree; reduce by appending degree zero
    // bits with reduction enabled.
    std::uint64_t fp = t;
    for (int i = 0; i < kDegree; ++i) {
      fp <<= 1;
      if (fp & (1ULL << kDegree)) fp ^= kPolynomial | (1ULL << kDegree);
    }
    append_table_[t] = fp;
    (void)v;
  }
  // remove_table_[b] = b * x^(8*kWindowSize) mod P: the contribution of a
  // byte after the whole window has slid past it.
  for (unsigned b = 0; b < 256; ++b) {
    std::uint64_t fp = 0;
    fp = slow_append_byte(fp, static_cast<std::uint8_t>(b), kPolynomial,
                          kDegree);
    for (std::size_t i = 0; i < kWindowSize; ++i) {
      fp = slow_append_byte(fp, 0, kPolynomial, kDegree);
    }
    remove_table_[b] = fp;
  }
  reset();
}

void RabinHash::reset() noexcept {
  window_.fill(0);
  pos_ = 0;
  fp_ = 0;
}

std::uint64_t RabinHash::append(std::uint64_t fp,
                                std::uint8_t b) const noexcept {
  const auto top = static_cast<std::uint8_t>(fp >> (kDegree - 8));
  return ((fp << 8) | b) ^ append_table_[top] ^
         ((static_cast<std::uint64_t>(top) << kDegree));
}

std::uint64_t RabinHash::roll(std::uint8_t in) noexcept {
  const std::uint8_t out = window_[pos_];
  window_[pos_] = in;
  pos_ = (pos_ + 1) % kWindowSize;
  fp_ = append(fp_ ^ 0, in) ^ remove_table_[out];
  // Keep the fingerprint inside the field.
  fp_ &= (1ULL << kDegree) - 1;
  return fp_;
}

RabinChunker::RabinChunker(const ChunkerParams& params) : params_(params) {
  // Boundary test (fp & mask) == mask fires with probability 2^-k; choose k
  // so the expected distance between boundaries beyond min_size is
  // avg - min.
  const std::size_t target =
      params_.avg_size > params_.min_size ? params_.avg_size - params_.min_size
                                          : params_.avg_size;
  const int bits = std::max(1, static_cast<int>(std::bit_width(target)) - 1);
  mask_ = (1ULL << bits) - 1;
}

void RabinChunker::chunk(std::span<const std::uint8_t> data,
                         std::vector<std::size_t>& lengths) const {
  RabinHash hash;
  std::size_t chunk_start = 0;
  std::size_t i = 0;
  while (i < data.size()) {
    hash.roll(data[i]);
    ++i;
    const std::size_t len = i - chunk_start;
    if (len < params_.min_size) continue;
    if ((hash.value() & mask_) == mask_ || len >= params_.max_size) {
      lengths.push_back(len);
      chunk_start = i;
      hash.reset();
    }
  }
  if (chunk_start < data.size()) lengths.push_back(data.size() - chunk_start);
}

}  // namespace hds
