// Chunker: splits a byte stream into variable-size chunks.
//
// Content-defined chunking (CDC) places chunk boundaries at positions chosen
// by the *content* (a rolling hash satisfying a divisor test), so an insert
// or delete early in a file only shifts boundaries locally — the
// boundary-shift resistance that makes dedup between versions effective
// (paper §2.1, §6). Fixed-size chunking is provided as the classic
// non-CDC baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace hds {

struct ChunkerParams {
  std::size_t min_size = kDefaultMinChunkSize;
  std::size_t avg_size = kDefaultAvgChunkSize;
  std::size_t max_size = kDefaultMaxChunkSize;
};

class Chunker {
 public:
  virtual ~Chunker() = default;

  // Appends the lengths of the chunks covering `data` (sum == data.size()).
  // The final chunk may be shorter than min_size.
  // Thread-safety contract: chunk() keeps all rolling state in locals, so
  // one Chunker may be used from many threads concurrently (the parallel
  // ingest pipeline relies on this).
  virtual void chunk(std::span<const std::uint8_t> data,
                     std::vector<std::size_t>& lengths) const = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  // Upper bound on any produced chunk length. Every implementation decides a
  // chunk's cut point from at most this many bytes past the chunk start (and
  // resets its rolling state at each boundary), which is what makes
  // segment-parallel chunking exactly reproducible (parallel_chunk.h).
  [[nodiscard]] virtual std::size_t max_chunk_size() const noexcept = 0;

  // Convenience: returns chunk views into `data`.
  [[nodiscard]] std::vector<std::span<const std::uint8_t>> split(
      std::span<const std::uint8_t> data) const;
};

enum class ChunkerKind { kFixed, kRabin, kTttd, kFastCdc, kAe };

// Factory covering every implemented algorithm.
[[nodiscard]] std::unique_ptr<Chunker> make_chunker(
    ChunkerKind kind, const ChunkerParams& params = {});

}  // namespace hds
