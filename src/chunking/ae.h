// AE — Asymmetric Extremum chunking (Zhang et al., INFOCOM'15).
//
// Declares a boundary when a byte position holds the maximum hash value of
// an asymmetric window: nothing to its left within the current chunk exceeds
// it, and a fixed-width window to its right contains no larger value. AE
// needs no divisor test and no backup window, giving a very tight size
// distribution with one comparison per byte.
#pragma once

#include "chunking/chunker.h"

namespace hds {

class AeChunker final : public Chunker {
 public:
  explicit AeChunker(const ChunkerParams& params = {});

  void chunk(std::span<const std::uint8_t> data,
             std::vector<std::size_t>& lengths) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ae";
  }
  [[nodiscard]] std::size_t max_chunk_size() const noexcept override {
    return max_size_;
  }

 private:
  std::size_t window_;  // right-hand window width (≈ avg/(e-1))
  std::size_t min_size_;
  std::size_t max_size_;
};

}  // namespace hds
