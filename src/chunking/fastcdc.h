// FastCDC (Xia et al., USENIX ATC'16).
//
// Replaces Rabin with the cheaper Gear rolling hash and applies *normalized
// chunking*: a harder mask before the normal size and an easier mask after
// it, which concentrates the size distribution around the average while
// skipping the sub-minimum region entirely.
#pragma once

#include "chunking/chunker.h"

namespace hds {

class FastCdcChunker final : public Chunker {
 public:
  explicit FastCdcChunker(const ChunkerParams& params = {});

  void chunk(std::span<const std::uint8_t> data,
             std::vector<std::size_t>& lengths) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fastcdc";
  }
  [[nodiscard]] std::size_t max_chunk_size() const noexcept override {
    return max_size_;
  }

 private:
  std::size_t min_size_;
  std::size_t normal_size_;
  std::size_t max_size_;
  std::uint64_t mask_small_;  // stricter: used before normal_size
  std::uint64_t mask_large_;  // looser: used after normal_size
};

}  // namespace hds
