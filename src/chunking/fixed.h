// Fixed-size chunking: the non-content-defined baseline. A single inserted
// byte shifts every later boundary, so cross-version dedup collapses — the
// failure mode CDC exists to avoid.
#pragma once

#include "chunking/chunker.h"

namespace hds {

class FixedChunker final : public Chunker {
 public:
  explicit FixedChunker(const ChunkerParams& params = {})
      : size_(params.avg_size) {}

  void chunk(std::span<const std::uint8_t> data,
             std::vector<std::size_t>& lengths) const override {
    std::size_t remaining = data.size();
    while (remaining >= size_) {
      lengths.push_back(size_);
      remaining -= size_;
    }
    if (remaining > 0) lengths.push_back(remaining);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fixed";
  }
  [[nodiscard]] std::size_t max_chunk_size() const noexcept override {
    return size_;
  }

 private:
  std::size_t size_;
};

}  // namespace hds
