// FingerprintIndex: the dedup decision engine of a backup pipeline.
//
// The pipeline feeds whole *segments* (a few MB of consecutive chunks) and
// receives, per chunk, either the container already holding it (duplicate)
// or "unique". Segment granularity is what the similarity/locality indexes
// (Sparse Indexing, SiLo) fundamentally operate on; exact indexes simply
// answer chunk-by-chunk inside the batch.
//
// Accounting contract (drives Figures 9 and 10):
//   * stats().disk_lookups — lookup requests served from on-disk structures
//     (full index probes, manifest loads, similarity-block loads). This is
//     Destor's "lookup requests per GB" numerator.
//   * memory_bytes() — resident size of the index tables the scheme must
//     keep in RAM (full table / hook index / SHTable).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/chunk.h"
#include "storage/recipe.h"

namespace hds {

struct IndexStats {
  std::uint64_t disk_lookups = 0;   // on-disk index/manifest/block fetches
  std::uint64_t cache_hits = 0;     // answered from in-memory state
  std::uint64_t dup_chunks = 0;
  std::uint64_t unique_chunks = 0;

  void reset() noexcept { *this = IndexStats{}; }
};

class FingerprintIndex {
 public:
  virtual ~FingerprintIndex() = default;

  virtual void begin_version(VersionId version) { (void)version; }

  // For each chunk of the segment: the container holding an existing copy,
  // or nullopt if the scheme considers it unique (must be stored).
  // Near-exact schemes may return nullopt for true duplicates — that is
  // their documented dedup-ratio loss.
  virtual std::vector<std::optional<ContainerId>> dedup_segment(
      std::span<const ChunkRecord> chunks) = 0;

  // Called after the segment's chunks reach their final homes, in stream
  // order (duplicates carry their old container, uniques their new one).
  // Segment-based schemes build manifests/blocks from this.
  virtual void finish_segment(std::span<const RecipeEntry> entries) = 0;

  virtual void end_version() {}

  // Garbage collection moved (`remap`) or dropped (`erased`) chunks; the
  // index must stop handing out stale container IDs. Schemes unable to
  // update in place must at least forget the affected fingerprints (a
  // dedup-ratio loss, never a correctness one).
  virtual void apply_gc(
      const std::unordered_map<Fingerprint, ContainerId>& remap,
      const std::unordered_set<Fingerprint>& erased) {
    (void)remap;
    (void)erased;
  }

  [[nodiscard]] virtual std::uint64_t memory_bytes() const = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] const IndexStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

 protected:
  IndexStats stats_;
};

}  // namespace hds
