// SparseIndex — Sparse Indexing (Lillibridge et al., FAST'09).
//
// Near-exact dedup that keeps only a *sampled* index in RAM:
//   * each incoming segment samples "hooks" (fingerprints whose low bits are
//     zero, one per `sample_rate` chunks on average);
//   * hooks are looked up in the sparse hook→manifest index to score past
//     segment manifests; the top `max_champions` manifests are loaded from
//     disk (each load = one disk lookup) and the segment is deduplicated
//     against their chunk lists only;
//   * chunks absent from every champion are stored again — the documented
//     dedup-ratio loss of sampling (paper §5.2.1).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "index/fingerprint_index.h"

namespace hds {

struct SparseIndexConfig {
  std::uint32_t sample_rate = 64;  // 1 hook per 64 chunks on average
  std::size_t max_champions = 2;   // manifests loaded per segment
  std::size_t max_manifests_per_hook = 4;
};

class SparseIndex final : public FingerprintIndex {
 public:
  explicit SparseIndex(const SparseIndexConfig& config = {});

  std::vector<std::optional<ContainerId>> dedup_segment(
      std::span<const ChunkRecord> chunks) override;
  void finish_segment(std::span<const RecipeEntry> entries) override;
  void apply_gc(const std::unordered_map<Fingerprint, ContainerId>& remap,
                const std::unordered_set<Fingerprint>& erased) override;

  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sparse";
  }

 private:
  using ManifestId = std::uint64_t;

  [[nodiscard]] bool is_hook(const Fingerprint& fp) const noexcept {
    return fp.prefix64() % config_.sample_rate == 0;
  }

  SparseIndexConfig config_;
  // In-memory sparse index: hook → manifests containing it.
  std::unordered_map<Fingerprint, std::deque<ManifestId>> hook_index_;
  // On-disk manifests (segment recipes); loads are counted as disk lookups.
  std::unordered_map<ManifestId,
                     std::vector<std::pair<Fingerprint, ContainerId>>>
      manifests_;
  ManifestId next_manifest_ = 1;
};

}  // namespace hds
