#include "index/bloom_filter.h"

#include <cmath>
#include <cstring>

namespace hds {

BloomFilter::BloomFilter(std::size_t expected_items, double fp_rate) {
  expected_items = std::max<std::size_t>(1, expected_items);
  // Standard sizing: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
  const double ln2 = 0.6931471805599453;
  const auto bits = static_cast<std::size_t>(
      std::ceil(-static_cast<double>(expected_items) * std::log(fp_rate) /
                (ln2 * ln2)));
  num_bits_ = std::max<std::size_t>(64, bits);
  num_hashes_ = std::max(
      1, static_cast<int>(std::round(
             static_cast<double>(num_bits_) /
             static_cast<double>(expected_items) * ln2)));
  num_hashes_ = std::min(num_hashes_, 16);
  bits_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::positions(const Fingerprint& fp,
                            std::uint64_t* out) const noexcept {
  std::uint64_t h1, h2;
  std::memcpy(&h1, fp.bytes.data(), 8);
  std::memcpy(&h2, fp.bytes.data() + 8, 8);
  if (h2 == 0) h2 = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < num_hashes_; ++i) {
    out[i] = (h1 + static_cast<std::uint64_t>(i) * h2) % num_bits_;
  }
}

void BloomFilter::insert(const Fingerprint& fp) noexcept {
  std::uint64_t pos[16];
  positions(fp, pos);
  for (int i = 0; i < num_hashes_; ++i) {
    bits_[pos[i] >> 6] |= 1ULL << (pos[i] & 63);
  }
}

bool BloomFilter::may_contain(const Fingerprint& fp) const noexcept {
  std::uint64_t pos[16];
  positions(fp, pos);
  for (int i = 0; i < num_hashes_; ++i) {
    if (!(bits_[pos[i] >> 6] & (1ULL << (pos[i] & 63)))) return false;
  }
  return true;
}

}  // namespace hds
