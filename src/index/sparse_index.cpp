#include "index/sparse_index.h"

#include <algorithm>

namespace hds {

SparseIndex::SparseIndex(const SparseIndexConfig& config) : config_(config) {}

std::vector<std::optional<ContainerId>> SparseIndex::dedup_segment(
    std::span<const ChunkRecord> chunks) {
  // 1. Sample hooks and score candidate manifests by hook overlap.
  std::unordered_map<ManifestId, std::size_t> scores;
  for (const auto& chunk : chunks) {
    if (!is_hook(chunk.fp)) continue;
    const auto it = hook_index_.find(chunk.fp);
    if (it == hook_index_.end()) continue;
    for (const ManifestId m : it->second) scores[m]++;
  }

  // 2. Choose champions: highest hook overlap first (ties: newer manifest,
  // which tends to have better physical locality).
  std::vector<std::pair<ManifestId, std::size_t>> ranked(scores.begin(),
                                                         scores.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first > b.first;
  });
  if (ranked.size() > config_.max_champions) {
    ranked.resize(config_.max_champions);
  }

  // 3. Load champions (one disk lookup each) and merge their chunk lists.
  std::unordered_map<Fingerprint, ContainerId> known;
  for (const auto& [manifest, score] : ranked) {
    (void)score;
    stats_.disk_lookups++;
    for (const auto& [fp, cid] : manifests_.at(manifest)) {
      known.emplace(fp, cid);
    }
  }

  // 4. Deduplicate strictly against the champions.
  std::vector<std::optional<ContainerId>> out;
  out.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    const auto it = known.find(chunk.fp);
    if (it != known.end()) {
      stats_.cache_hits++;
      stats_.dup_chunks++;
      out.emplace_back(it->second);
    } else {
      stats_.unique_chunks++;
      out.emplace_back(std::nullopt);
    }
  }
  return out;
}

void SparseIndex::finish_segment(std::span<const RecipeEntry> entries) {
  const ManifestId manifest = next_manifest_++;
  auto& list = manifests_[manifest];
  list.reserve(entries.size());
  for (const auto& e : entries) {
    if (e.cid <= 0) continue;
    list.emplace_back(e.fp, e.cid);
    if (e.fp.prefix64() % config_.sample_rate == 0) {
      auto& owners = hook_index_[e.fp];
      owners.push_back(manifest);
      // Keep only the most recent owners per hook (bounded RAM).
      while (owners.size() > config_.max_manifests_per_hook) {
        owners.pop_front();
      }
    }
  }
}

void SparseIndex::apply_gc(
    const std::unordered_map<Fingerprint, ContainerId>& remap,
    const std::unordered_set<Fingerprint>& erased) {
  // Manifests are segment snapshots on disk; GC patches them in place so
  // champion-based dedup never hands out a retired container ID.
  for (auto& [id, list] : manifests_) {
    std::erase_if(list, [&](const auto& pair) {
      return erased.contains(pair.first);
    });
    for (auto& [fp, cid] : list) {
      if (const auto it = remap.find(fp); it != remap.end()) {
        cid = it->second;
      }
    }
  }
}

std::uint64_t SparseIndex::memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [hook, owners] : hook_index_) {
    total += kFingerprintSize + owners.size() * sizeof(ManifestId);
  }
  return total;
}

}  // namespace hds
