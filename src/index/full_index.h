// FullIndex — the DDFS scheme (Zhu et al., FAST'08): exact deduplication
// against a complete fingerprint→container table, made affordable by
//   1. a Bloom filter ("summary vector") that short-circuits most unique
//      chunks without touching the table, and
//   2. locality-preserved caching: when a probe of the (conceptually
//      on-disk) full table hits, the metadata of the whole enclosing
//      container is prefetched into an LRU cache, so the stream's logical
//      locality turns one disk lookup into many subsequent cache hits.
//
// Every probe of the full table counts as one disk lookup (Figure 9); the
// full table plus the Bloom filter are its memory bill (Figure 10).
#pragma once

#include <list>
#include <unordered_map>

#include "index/bloom_filter.h"
#include "index/fingerprint_index.h"

namespace hds {

struct FullIndexConfig {
  std::size_t expected_chunks = 1 << 20;  // Bloom filter sizing
  double bloom_fp_rate = 0.01;
  std::size_t cache_containers = 64;  // LRU capacity, in containers
};

class FullIndex final : public FingerprintIndex {
 public:
  explicit FullIndex(const FullIndexConfig& config = {});

  std::vector<std::optional<ContainerId>> dedup_segment(
      std::span<const ChunkRecord> chunks) override;
  void finish_segment(std::span<const RecipeEntry> entries) override;
  void apply_gc(const std::unordered_map<Fingerprint, ContainerId>& remap,
                const std::unordered_set<Fingerprint>& erased) override;

  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ddfs";
  }

  [[nodiscard]] std::size_t table_entries() const noexcept {
    return table_.size();
  }

 private:
  void cache_container(ContainerId cid);
  [[nodiscard]] std::optional<ContainerId> lookup_one(const Fingerprint& fp);

  FullIndexConfig config_;
  BloomFilter bloom_;
  // The complete fingerprint→container table. Conceptually on disk; probes
  // are counted as disk lookups, but the size still dominates Figure 10
  // because DDFS must dedicate RAM/cache to it in proportion.
  std::unordered_map<Fingerprint, ContainerId> table_;
  // Container → fingerprints, used to prefetch container metadata on a hit
  // (models reading the container's metadata section from disk).
  std::unordered_map<ContainerId, std::vector<Fingerprint>>
      container_members_;

  // Locality cache: fingerprints of recently touched containers.
  std::unordered_map<Fingerprint, ContainerId> cache_;
  std::list<ContainerId> lru_;  // front = most recent
  std::unordered_map<ContainerId, std::list<ContainerId>::iterator> lru_pos_;
};

}  // namespace hds
