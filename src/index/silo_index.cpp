#include "index/silo_index.h"

#include <algorithm>

namespace hds {

SiLoIndex::SiLoIndex(const SiLoConfig& config) : config_(config) {}

void SiLoIndex::touch_block(BlockId id) {
  if (const auto it = cached_.find(id); it != cached_.end()) {
    cache_lru_.erase(it->second);
  } else {
    // Fetching a block from disk is the scheme's I/O cost.
    stats_.disk_lookups++;
  }
  cache_lru_.push_front(id);
  cached_[id] = cache_lru_.begin();
  while (cache_lru_.size() > config_.read_cache_blocks) {
    cached_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
}

std::vector<std::optional<ContainerId>> SiLoIndex::dedup_segment(
    std::span<const ChunkRecord> chunks) {
  // Representative fingerprint = minimum of the segment (min-hash).
  if (!chunks.empty()) {
    const auto rep = std::min_element(chunks.begin(), chunks.end(),
                                      [](const auto& a, const auto& b) {
                                        return a.fp < b.fp;
                                      })
                         ->fp;
    const auto it = sh_table_.find(rep);
    // A representative can point at the still-unflushed write block; that
    // case is already covered by the in-RAM write-buffer probe below.
    if (it != sh_table_.end() && blocks_.contains(it->second)) {
      touch_block(it->second);
    }
  }

  std::vector<std::optional<ContainerId>> out;
  out.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    std::optional<ContainerId> loc;
    // 1. The write buffer captures immediate stream locality.
    if (const auto it = write_block_.chunks.find(chunk.fp);
        it != write_block_.chunks.end()) {
      loc = it->second;
    }
    // 2. Cached similarity blocks.
    if (!loc) {
      for (const BlockId id : cache_lru_) {
        const auto& block = blocks_.at(id);
        if (const auto it = block.chunks.find(chunk.fp);
            it != block.chunks.end()) {
          loc = it->second;
          break;
        }
      }
    }
    if (loc) {
      stats_.cache_hits++;
      stats_.dup_chunks++;
    } else {
      stats_.unique_chunks++;
    }
    out.push_back(loc);
  }
  return out;
}

void SiLoIndex::finish_segment(std::span<const RecipeEntry> entries) {
  Fingerprint rep;
  bool have_rep = false;
  for (const auto& e : entries) {
    if (e.cid <= 0) continue;
    write_block_.chunks.emplace(e.fp, e.cid);
    if (!have_rep || e.fp < rep) {
      rep = e.fp;
      have_rep = true;
    }
  }
  if (have_rep) {
    // The representative points at the block that will contain the segment.
    sh_table_[rep] = next_block_;
  }
  if (++write_block_segments_ >= config_.segments_per_block) {
    blocks_.emplace(next_block_, std::move(write_block_));
    next_block_++;
    write_block_ = Block{};
    write_block_segments_ = 0;
  }
}

void SiLoIndex::apply_gc(
    const std::unordered_map<Fingerprint, ContainerId>& remap,
    const std::unordered_set<Fingerprint>& erased) {
  auto patch = [&](Block& block) {
    std::erase_if(block.chunks,
                  [&](const auto& pair) { return erased.contains(pair.first); });
    for (auto& [fp, cid] : block.chunks) {
      if (const auto it = remap.find(fp); it != remap.end()) {
        cid = it->second;
      }
    }
  };
  for (auto& [id, block] : blocks_) patch(block);
  patch(write_block_);
}

std::uint64_t SiLoIndex::memory_bytes() const {
  // SHTable: 20-byte representative + 8-byte block id per segment.
  return sh_table_.size() * (kFingerprintSize + sizeof(BlockId));
}

}  // namespace hds
