// SiLoIndex — SiLo (Xia et al., USENIX ATC'11): similarity + locality.
//
// Segments are represented by their *minimum* fingerprint (Broder min-hash:
// similar segments share their minimum with high probability). Consecutive
// segments are packed into larger "blocks" that preserve stream locality.
// The in-memory similarity hash table (SHTable) maps representative
// fingerprints to blocks; on a similarity hit the whole block is fetched
// into a small read cache (one disk lookup per block load), and the segment
// is deduplicated against every cached block. Because one representative
// per segment is far sparser than Sparse Indexing's hooks, SiLo's RAM bill
// is lower; the locality blocks recover most — not all — of the missed
// duplicates.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "index/fingerprint_index.h"

namespace hds {

struct SiLoConfig {
  std::size_t segments_per_block = 8;
  std::size_t read_cache_blocks = 8;  // LRU capacity, in blocks
};

class SiLoIndex final : public FingerprintIndex {
 public:
  explicit SiLoIndex(const SiLoConfig& config = {});

  std::vector<std::optional<ContainerId>> dedup_segment(
      std::span<const ChunkRecord> chunks) override;
  void finish_segment(std::span<const RecipeEntry> entries) override;
  void apply_gc(const std::unordered_map<Fingerprint, ContainerId>& remap,
                const std::unordered_set<Fingerprint>& erased) override;

  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "silo";
  }

 private:
  using BlockId = std::uint64_t;
  struct Block {
    std::unordered_map<Fingerprint, ContainerId> chunks;
  };

  void touch_block(BlockId id);

  SiLoConfig config_;
  // SHTable: segment representative fingerprint → block holding it.
  std::unordered_map<Fingerprint, BlockId> sh_table_;
  // On-disk blocks; loads are counted as disk lookups.
  std::unordered_map<BlockId, Block> blocks_;
  BlockId next_block_ = 1;

  // Write buffer: the block currently being filled (in RAM by design —
  // locality for free against the immediately preceding segments).
  Block write_block_;
  std::size_t write_block_segments_ = 0;

  // Read cache of recently loaded blocks.
  std::list<BlockId> cache_lru_;  // front = most recent
  std::unordered_map<BlockId, std::list<BlockId>::iterator> cached_;
};

}  // namespace hds
