#include "index/full_index.h"

namespace hds {

FullIndex::FullIndex(const FullIndexConfig& config)
    : config_(config),
      bloom_(config.expected_chunks, config.bloom_fp_rate) {}

void FullIndex::cache_container(ContainerId cid) {
  if (const auto pos = lru_pos_.find(cid); pos != lru_pos_.end()) {
    lru_.erase(pos->second);
  } else {
    for (const auto& fp : container_members_[cid]) cache_[fp] = cid;
  }
  lru_.push_front(cid);
  lru_pos_[cid] = lru_.begin();

  while (lru_.size() > config_.cache_containers) {
    const ContainerId victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    for (const auto& fp : container_members_[victim]) {
      const auto it = cache_.find(fp);
      if (it != cache_.end() && it->second == victim) cache_.erase(it);
    }
  }
}

std::optional<ContainerId> FullIndex::lookup_one(const Fingerprint& fp) {
  // 1. Locality cache: free.
  if (const auto it = cache_.find(fp); it != cache_.end()) {
    stats_.cache_hits++;
    cache_container(it->second);  // refresh recency
    return it->second;
  }
  // 2. Bloom filter: "definitely new" costs nothing.
  if (!bloom_.may_contain(fp)) return std::nullopt;
  // 3. Probe the full table: one disk lookup, hit or miss (a miss here is a
  // Bloom false positive and still pays the I/O).
  stats_.disk_lookups++;
  const auto it = table_.find(fp);
  if (it == table_.end()) return std::nullopt;
  cache_container(it->second);
  return it->second;
}

std::vector<std::optional<ContainerId>> FullIndex::dedup_segment(
    std::span<const ChunkRecord> chunks) {
  std::vector<std::optional<ContainerId>> out;
  out.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    auto loc = lookup_one(chunk.fp);
    if (loc) {
      stats_.dup_chunks++;
    } else {
      stats_.unique_chunks++;
    }
    out.push_back(loc);
  }
  return out;
}

void FullIndex::finish_segment(std::span<const RecipeEntry> entries) {
  for (const auto& e : entries) {
    if (e.cid <= 0) continue;
    const auto [it, inserted] = table_.emplace(e.fp, e.cid);
    if (inserted) {
      bloom_.insert(e.fp);
      container_members_[e.cid].push_back(e.fp);
    }
  }
}

void FullIndex::apply_gc(
    const std::unordered_map<Fingerprint, ContainerId>& remap,
    const std::unordered_set<Fingerprint>& erased) {
  // The Bloom filter cannot unlearn erased fingerprints; their future
  // probes become counted disk lookups that miss — exactly how DDFS pays
  // for deletions in practice.
  for (const auto& fp : erased) {
    if (const auto it = table_.find(fp); it != table_.end()) {
      const auto it_cache = cache_.find(fp);
      if (it_cache != cache_.end()) cache_.erase(it_cache);
      table_.erase(it);
    }
  }
  for (const auto& [fp, cid] : remap) {
    if (const auto it = table_.find(fp); it != table_.end()) {
      it->second = cid;
      container_members_[cid].push_back(fp);
      if (const auto it_cache = cache_.find(fp); it_cache != cache_.end()) {
        it_cache->second = cid;
      }
    }
  }
}

std::uint64_t FullIndex::memory_bytes() const {
  // 20-byte key + 4-byte container ID per entry, plus the Bloom filter.
  return table_.size() * (kFingerprintSize + sizeof(ContainerId)) +
         bloom_.memory_bytes();
}

}  // namespace hds
