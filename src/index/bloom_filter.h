// Bloom filter over fingerprints (Zhu et al., FAST'08 call it the "summary
// vector"): answers "definitely new" for most unique chunks so the on-disk
// full index is only probed for likely duplicates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fingerprint.h"

namespace hds {

class BloomFilter {
 public:
  // Sized for `expected_items` at roughly the given false-positive rate.
  explicit BloomFilter(std::size_t expected_items, double fp_rate = 0.01);

  void insert(const Fingerprint& fp) noexcept;
  // False positives possible; false negatives are not.
  [[nodiscard]] bool may_contain(const Fingerprint& fp) const noexcept;

  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return bits_.size() * sizeof(std::uint64_t);
  }
  [[nodiscard]] std::size_t bit_count() const noexcept { return num_bits_; }

 private:
  // Derives the k probe positions from two independent 64-bit halves of the
  // fingerprint (Kirsch–Mitzenmacher double hashing).
  void positions(const Fingerprint& fp, std::uint64_t* out) const noexcept;

  std::size_t num_bits_;
  int num_hashes_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace hds
