#include "workload/trace.h"

#include <cstring>
#include <sstream>
#include <string>

#include "common/crc32.h"

namespace hds {

namespace {
constexpr char kBinaryMagic[4] = {'H', 'D', 'S', 'T'};

void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 8);
}

bool get_u32(std::istream& in, std::uint32_t& v) {
  std::uint8_t buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  v = std::uint32_t{buf[0]} | (std::uint32_t{buf[1]} << 8) |
      (std::uint32_t{buf[2]} << 16) | (std::uint32_t{buf[3]} << 24);
  return true;
}

bool get_u64(std::istream& in, std::uint64_t& v) {
  std::uint8_t buf[8];
  if (!in.read(reinterpret_cast<char*>(buf), 8)) return false;
  v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return true;
}
}  // namespace

void write_trace_text(std::ostream& out,
                      const std::vector<VersionStream>& versions) {
  for (std::size_t v = 0; v < versions.size(); ++v) {
    out << "V " << (v + 1) << ' ' << versions[v].chunks.size() << '\n';
    for (const auto& c : versions[v].chunks) {
      out << c.fp.hex() << ' ' << c.size << ' ' << c.content_seed << '\n';
    }
  }
}

bool read_trace_text(std::istream& in, std::vector<VersionStream>& out) {
  std::string line;
  VersionStream* current = nullptr;
  std::size_t expected = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == 'V') {
      if (current != nullptr && current->chunks.size() != expected) {
        return false;
      }
      std::istringstream header(line.substr(1));
      std::size_t version = 0;
      if (!(header >> version >> expected)) return false;
      if (version != out.size() + 1) return false;  // must be sequential
      out.emplace_back();
      current = &out.back();
      current->chunks.reserve(expected);
      continue;
    }
    if (current == nullptr) return false;
    std::istringstream fields(line);
    std::string hex;
    ChunkRecord rec;
    if (!(fields >> hex >> rec.size >> rec.content_seed)) return false;
    if (!Fingerprint::from_hex(hex, rec.fp)) return false;
    current->chunks.push_back(std::move(rec));
  }
  return current == nullptr || current->chunks.size() == expected;
}

void write_trace_binary(std::ostream& out,
                        const std::vector<VersionStream>& versions) {
  // Body is buffered so the CRC can cover everything after the magic.
  std::ostringstream body;
  put_u32(body, static_cast<std::uint32_t>(versions.size()));
  for (const auto& vs : versions) {
    put_u32(body, static_cast<std::uint32_t>(vs.chunks.size()));
    for (const auto& c : vs.chunks) {
      body.write(reinterpret_cast<const char*>(c.fp.bytes.data()),
                 kFingerprintSize);
      put_u32(body, c.size);
      put_u64(body, c.content_seed);
    }
  }
  const std::string bytes = body.str();
  out.write(kBinaryMagic, 4);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  put_u32(out, crc32(bytes.data(), bytes.size()));
}

bool read_trace_binary(std::istream& in, std::vector<VersionStream>& out) {
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kBinaryMagic, 4) != 0) {
    return false;
  }
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (body.size() < 8) return false;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, body.data() + body.size() - 4, 4);
  // stored little-endian by put_u32
  std::uint32_t le = 0;
  for (int i = 3; i >= 0; --i) {
    le = (le << 8) |
         static_cast<std::uint8_t>(body[body.size() - 4 + i]);
  }
  body.resize(body.size() - 4);
  if (crc32(body.data(), body.size()) != le) return false;

  std::istringstream stream(body);
  std::uint32_t version_count = 0;
  if (!get_u32(stream, version_count)) return false;
  for (std::uint32_t v = 0; v < version_count; ++v) {
    std::uint32_t chunk_count = 0;
    if (!get_u32(stream, chunk_count)) return false;
    VersionStream vs;
    vs.chunks.reserve(chunk_count);
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
      ChunkRecord rec;
      if (!stream.read(reinterpret_cast<char*>(rec.fp.bytes.data()),
                       kFingerprintSize)) {
        return false;
      }
      if (!get_u32(stream, rec.size) || !get_u64(stream, rec.content_seed)) {
        return false;
      }
      vs.chunks.push_back(std::move(rec));
    }
    out.push_back(std::move(vs));
  }
  return true;
}

}  // namespace hds
