// Fingerprint-trace I/O: persist and replay backup streams as metadata.
//
// Real dedup research runs on hash traces (the fslhomes/macos datasets of
// Table 1 are exactly that: FSL snapshot traces of per-chunk fingerprints
// and sizes, no content). This module defines a trace format so workloads
// can be captured once and replayed across systems, or real-world traces
// converted into it:
//
//   text form (one backup version per stanza):
//     V <version-number> <chunk-count>
//     <40-hex-fingerprint> <size> <content-seed>
//     ...
//
//   binary form: "HDST" magic, u32 version count, then per version a u32
//   chunk count and packed 32-byte records (20B fp, 4B size, 8B seed),
//   CRC-32 trailer.
//
// Chunk contents regenerate from the seed (common/chunk.h), so a trace is
// enough to drive byte-exact restores.
#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "common/chunk.h"

namespace hds {

// --- Text format ---
void write_trace_text(std::ostream& out,
                      const std::vector<VersionStream>& versions);
// Returns false on malformed input; `out` is left with the versions parsed
// so far.
bool read_trace_text(std::istream& in, std::vector<VersionStream>& out);

// --- Binary format ---
void write_trace_binary(std::ostream& out,
                        const std::vector<VersionStream>& versions);
bool read_trace_binary(std::istream& in, std::vector<VersionStream>& out);

}  // namespace hds
