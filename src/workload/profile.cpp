#include "workload/profile.h"

namespace hds {

// Calibration targets (Table 1): dedup ratio 91.53% over 158 versions for
// kernel, 78.75% / 175 for gcc, 92.17% / 102 for fslhomes, 89.56% / 25 for
// macos. With ratio ≈ 1 - (1/V + mod + ins), the rates below land within
// ~1 point of each target (verified by bench/table1_workloads).

WorkloadProfile WorkloadProfile::kernel() {
  WorkloadProfile p;
  p.name = "kernel";
  p.versions = 158;
  p.chunks_per_version = 2048;
  p.mod_rate = 0.070;
  p.ins_rate = 0.014;
  p.del_rate = 0.012;
  p.mean_run_length = 8.0;
  p.seed = 0x6B65726E;
  return p;
}

WorkloadProfile WorkloadProfile::gcc() {
  WorkloadProfile p;
  p.name = "gcc";
  p.versions = 175;
  p.chunks_per_version = 2048;
  p.mod_rate = 0.171;
  p.ins_rate = 0.051;
  p.del_rate = 0.046;
  p.mean_run_length = 10.0;
  p.burst_prob = 0.05;  // major releases rewrite much more
  p.burst_multiplier = 2.0;
  p.seed = 0x67636300;
  return p;
}

WorkloadProfile WorkloadProfile::fslhomes() {
  WorkloadProfile p;
  p.name = "fslhomes";
  p.versions = 102;
  p.chunks_per_version = 4096;
  p.mod_rate = 0.060;
  p.ins_rate = 0.014;
  p.del_rate = 0.012;
  p.mean_run_length = 4.0;  // home-dir snapshots: scattered small edits
  p.intra_dup_rate = 0.06;  // user files share more content internally
  p.seed = 0x66736C68;
  return p;
}

WorkloadProfile WorkloadProfile::macos() {
  WorkloadProfile p;
  p.name = "macos";
  p.versions = 25;
  p.chunks_per_version = 4096;
  p.mod_rate = 0.063;
  p.ins_rate = 0.014;
  p.del_rate = 0.012;
  p.mean_run_length = 8.0;
  p.skip_rate = 0.35;  // Figure 3d: chunks skip one version and return
  p.burst_prob = 0.15;  // OS point upgrades
  p.burst_multiplier = 3.0;
  p.seed = 0x6D61636F;
  return p;
}

}  // namespace hds
