// VersionChainGenerator: synthesizes a chain of backup versions with the
// redundancy structure of the paper's datasets.
//
// A version is a sequence of chunk identities (64-bit seeds). Fingerprint,
// size and content of a chunk are pure functions of its seed, so the same
// logical chunk is bit-identical wherever it appears and restores verify
// exactly. Version k+1 is derived from version k by clustered edits
// (modify / insert / delete runs), optional temporary removals that return
// one version later (macos), and occasional upgrade bursts — see
// WorkloadProfile.
#pragma once

#include <cstdint>
#include <vector>

#include "common/chunk.h"
#include "common/rng.h"
#include "workload/profile.h"

namespace hds {

class VersionChainGenerator {
 public:
  explicit VersionChainGenerator(WorkloadProfile profile);

  // Produces the next version of the chain (call 1..profile.versions times;
  // further calls keep mutating past the profile's nominal length).
  [[nodiscard]] VersionStream next_version();

  [[nodiscard]] std::uint32_t versions_generated() const noexcept {
    return generated_;
  }
  [[nodiscard]] const WorkloadProfile& profile() const noexcept {
    return profile_;
  }

  // Deterministic chunk materialization shared with the pipeline.
  [[nodiscard]] static ChunkRecord make_chunk(std::uint64_t id) noexcept;

 private:
  std::uint64_t fresh_id() noexcept { return id_counter_++; }
  void apply_edits();

  WorkloadProfile profile_;
  Xoshiro256ss rng_;
  std::vector<std::uint64_t> current_;  // chunk ids of the latest version
  // Runs removed in the previous version that must reappear in this one
  // (position hint, ids).
  std::vector<std::pair<std::size_t, std::vector<std::uint64_t>>> returning_;
  std::uint64_t id_counter_;
  std::uint32_t generated_ = 0;
};

// Byte-level workload for end-to-end runs: one logical buffer per version,
// mutated with byte-range edits, to be chunked by a real Chunker.
class ByteStreamWorkload {
 public:
  ByteStreamWorkload(std::uint64_t seed, std::size_t initial_bytes);

  // Returns the current version's bytes, then mutates for the next call.
  [[nodiscard]] std::vector<std::uint8_t> next_version(double edit_rate);

 private:
  Xoshiro256ss rng_;
  std::vector<std::uint8_t> data_;
};

}  // namespace hds
