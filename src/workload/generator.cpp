#include "workload/generator.h"

#include <algorithm>

namespace hds {

namespace {
// Size is a pure function of the chunk id: uniform in [1 KiB, 7 KiB],
// averaging the paper's 4 KiB.
std::uint32_t size_from_id(std::uint64_t id) noexcept {
  SplitMix64 mix(id ^ 0x73697A65ULL);  // "size"
  return static_cast<std::uint32_t>(1024 + mix.next() % (6 * 1024 + 1));
}
}  // namespace

ChunkRecord VersionChainGenerator::make_chunk(std::uint64_t id) noexcept {
  ChunkRecord rec;
  rec.fp = Fingerprint::from_seed(id);
  rec.size = size_from_id(id);
  rec.content_seed = id;
  return rec;
}

VersionChainGenerator::VersionChainGenerator(WorkloadProfile profile)
    : profile_(std::move(profile)),
      rng_(profile_.seed),
      // Ids are namespaced by the profile seed so different workloads never
      // collide in shared stores.
      id_counter_((profile_.seed << 20) + 1) {}

VersionStream VersionChainGenerator::next_version() {
  if (generated_ == 0) {
    current_.reserve(profile_.chunks_per_version);
    for (std::size_t i = 0; i < profile_.chunks_per_version; ++i) {
      if (!current_.empty() && rng_.chance(profile_.intra_dup_rate)) {
        current_.push_back(current_[rng_.next_below(current_.size())]);
      } else {
        current_.push_back(fresh_id());
      }
    }
  } else {
    apply_edits();
  }
  ++generated_;

  VersionStream stream;
  stream.chunks.reserve(current_.size());
  for (const std::uint64_t id : current_) {
    stream.chunks.push_back(make_chunk(id));
  }
  return stream;
}

void VersionChainGenerator::apply_edits() {
  double mod = profile_.mod_rate;
  double ins = profile_.ins_rate;
  double del = profile_.del_rate;
  if (profile_.burst_prob > 0 && rng_.chance(profile_.burst_prob)) {
    mod = std::min(0.9, mod * profile_.burst_multiplier);
    ins = std::min(0.5, ins * profile_.burst_multiplier);
    del = std::min(0.5, del * profile_.burst_multiplier);
  }

  // Runs temporarily removed last version are reinserted at the very end of
  // this pass (not here): they must not be re-picked by this version's
  // modify/delete steps, or the absence gap would exceed one version and
  // violate the macos window-2 contract (see Figure 3d).
  auto returning = std::move(returning_);
  returning_.clear();

  const std::size_t n = current_.size() + [&] {
    std::size_t total = 0;
    for (const auto& [pos, ids] : returning) total += ids.size();
    return total;
  }();
  auto run_length = [&]() -> std::size_t {
    // Geometric with the profile's mean, capped to keep edits local.
    std::size_t len = 1;
    while (len < 8 * static_cast<std::size_t>(profile_.mean_run_length) &&
           !rng_.chance(1.0 / profile_.mean_run_length)) {
      ++len;
    }
    return len;
  };

  // 2. Modify runs: replace chunk ids with fresh content. A slice of the
  // removed runs only skips this version (macos redundancy window of 2).
  std::size_t to_modify =
      static_cast<std::size_t>(mod * static_cast<double>(n));
  while (to_modify > 0 && !current_.empty()) {
    const std::size_t start = rng_.next_below(current_.size());
    const std::size_t len =
        std::min({run_length(), to_modify, current_.size() - start});
    if (rng_.chance(profile_.skip_rate)) {
      // Temporarily remove; the ids come back next version.
      std::vector<std::uint64_t> ids(current_.begin() + start,
                                     current_.begin() + start + len);
      returning_.emplace_back(start, std::move(ids));
      current_.erase(current_.begin() + start, current_.begin() + start + len);
    } else {
      for (std::size_t i = start; i < start + len; ++i) {
        current_[i] = fresh_id();
      }
    }
    to_modify -= len;
  }

  // 3. Delete runs.
  std::size_t to_delete =
      static_cast<std::size_t>(del * static_cast<double>(n));
  while (to_delete > 0 && current_.size() > 1) {
    const std::size_t start = rng_.next_below(current_.size());
    const std::size_t len =
        std::min({run_length(), to_delete, current_.size() - start});
    current_.erase(current_.begin() + start, current_.begin() + start + len);
    to_delete -= len;
  }

  // 4. Insert runs of new chunks (some duplicating existing content).
  std::size_t to_insert =
      static_cast<std::size_t>(ins * static_cast<double>(n));
  while (to_insert > 0) {
    const std::size_t start = rng_.next_below(current_.size() + 1);
    const std::size_t len = std::min(run_length(), to_insert);
    std::vector<std::uint64_t> ids;
    ids.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      if (!current_.empty() && rng_.chance(profile_.intra_dup_rate)) {
        ids.push_back(current_[rng_.next_below(current_.size())]);
      } else {
        ids.push_back(fresh_id());
      }
    }
    current_.insert(current_.begin() + static_cast<std::ptrdiff_t>(start),
                    ids.begin(), ids.end());
    to_insert -= len;
  }

  // 5. Reinsert the temporarily removed runs near their original positions.
  for (auto& [pos, ids] : returning) {
    const std::size_t at = std::min(pos, current_.size());
    current_.insert(current_.begin() + static_cast<std::ptrdiff_t>(at),
                    ids.begin(), ids.end());
  }
}

ByteStreamWorkload::ByteStreamWorkload(std::uint64_t seed,
                                       std::size_t initial_bytes)
    : rng_(seed) {
  data_.resize(initial_bytes);
  for (auto& b : data_) b = static_cast<std::uint8_t>(rng_.next());
}

std::vector<std::uint8_t> ByteStreamWorkload::next_version(double edit_rate) {
  const auto snapshot = data_;

  // Mutate for the next call: replace, insert and delete byte runs.
  std::size_t budget =
      static_cast<std::size_t>(edit_rate * static_cast<double>(data_.size()));
  while (budget > 0 && data_.size() > 4096) {
    const std::size_t len = 64 + rng_.next_below(4096);
    const std::size_t start = rng_.next_below(data_.size() - 1);
    const std::size_t run = std::min({len, budget, data_.size() - start});
    switch (rng_.next_below(3)) {
      case 0:  // replace
        for (std::size_t i = start; i < start + run; ++i) {
          data_[i] = static_cast<std::uint8_t>(rng_.next());
        }
        break;
      case 1:  // delete
        data_.erase(data_.begin() + static_cast<std::ptrdiff_t>(start),
                    data_.begin() + static_cast<std::ptrdiff_t>(start + run));
        break;
      default: {  // insert
        std::vector<std::uint8_t> fresh(run);
        for (auto& b : fresh) b = static_cast<std::uint8_t>(rng_.next());
        data_.insert(data_.begin() + static_cast<std::ptrdiff_t>(start),
                     fresh.begin(), fresh.end());
        break;
      }
    }
    budget -= run;
  }
  return snapshot;
}

}  // namespace hds
