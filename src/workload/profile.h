// Workload profiles calibrated to the paper's four datasets (Table 1).
//
// The real datasets (Linux kernel, gcc, fslhomes, macos) are multi-hundred-
// GB archives; what the paper's metrics actually depend on is the
// *redundancy structure between consecutive versions*: how much of each
// version is new, how edits cluster, whether chunks can skip a version and
// return (macos), and how often heavy upgrades occur. These profiles
// reproduce that structure at laptop scale — per DESIGN.md §2, every
// reported metric is a ratio (dedup %, lookups/GB, MB/read), so the shapes
// survive the downscaling.
#pragma once

#include <cstdint>
#include <string>

namespace hds {

struct WorkloadProfile {
  std::string name;
  std::uint32_t versions = 100;
  std::size_t chunks_per_version = 2048;

  // Fraction of each version's chunks replaced by new content / newly
  // inserted / deleted. mod+ins ≈ the per-version "new data" fraction that
  // sets the dedup ratio: ratio ≈ 1 - (1/V + mod + ins).
  double mod_rate = 0.05;
  double ins_rate = 0.01;
  double del_rate = 0.01;

  // Edits cluster in runs of this mean length (geometric), mimicking how
  // software updates touch contiguous file regions.
  double mean_run_length = 8.0;

  // macos-style redundancy window of 2: fraction of removed runs that are
  // only *temporarily* absent and reappear in the following version.
  double skip_rate = 0.0;

  // Occasional heavy upgrades (macos point-releases, gcc major versions):
  // with probability burst_prob a version multiplies its edit rates.
  double burst_prob = 0.0;
  double burst_multiplier = 3.0;

  // Fraction of newly created chunks that duplicate another chunk of the
  // same version (intra-version redundancy: headers, license blobs, ...).
  double intra_dup_rate = 0.03;

  std::uint64_t seed = 0x48694465;  // deterministic per profile

  // The four paper datasets. Version counts match Table 1; sizes are the
  // scaled defaults (override `versions`/`chunks_per_version` freely).
  static WorkloadProfile kernel();
  static WorkloadProfile gcc();
  static WorkloadProfile fslhomes();
  static WorkloadProfile macos();
};

}  // namespace hds
