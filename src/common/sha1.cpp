#include "common/sha1.h"

#include <cstring>

namespace hds {

namespace {
constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

void Sha1::reset() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  total_len_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(n, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }
  while (n >= 64) {
    process_block(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffer_len_ = n;
  }
}

Fingerprint Sha1::finish() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;

  // Padding: 0x80, zeros, then 64-bit big-endian bit length.
  std::uint8_t pad = 0x80;
  update(std::span(&pad, 1));
  total_len_ -= 1;  // padding does not count toward the message length
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) {
    update(std::span(&zero, 1));
    total_len_ -= 1;
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span(len_be, 8));

  Fingerprint fp;
  for (int i = 0; i < 5; ++i) {
    fp.bytes[4 * i] = static_cast<std::uint8_t>(h_[i] >> 24);
    fp.bytes[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    fp.bytes[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    fp.bytes[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return fp;
}

}  // namespace hds
