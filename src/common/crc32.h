// CRC-32 (IEEE 802.3 polynomial), table-driven.
//
// Used as an integrity checksum on serialized containers and recipes —
// corruption of on-disk structures must be detected before chunks are handed
// back to a restore.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace hds {

[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0) noexcept;

inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) noexcept {
  return crc32(std::span(static_cast<const std::uint8_t*>(data), len), seed);
}

}  // namespace hds
