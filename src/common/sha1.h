// SHA-1, implemented from scratch (FIPS 180-4).
//
// The paper (and Destor, DDFS, Sparse Indexing, SiLo) fingerprints chunks
// with SHA-1. Cryptographic strength is irrelevant here — what matters is a
// uniformly distributed 160-bit identifier whose collision probability is far
// below hardware error rates — so a clean, dependency-free implementation is
// the right tool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/fingerprint.h"

namespace hds {

class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(const void* data, std::size_t len) noexcept {
    update(std::span(static_cast<const std::uint8_t*>(data), len));
  }

  // Finalizes and returns the digest. The object must be reset() before
  // reuse; finalization consumes the internal state.
  [[nodiscard]] Fingerprint finish() noexcept;

  // One-shot convenience.
  [[nodiscard]] static Fingerprint digest(
      std::span<const std::uint8_t> data) noexcept {
    Sha1 h;
    h.update(data);
    return h.finish();
  }
  [[nodiscard]] static Fingerprint digest(const void* data,
                                          std::size_t len) noexcept {
    return digest(std::span(static_cast<const std::uint8_t*>(data), len));
  }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[5]{};
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64]{};
  std::size_t buffer_len_ = 0;
};

}  // namespace hds
