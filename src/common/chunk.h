// ChunkRecord: one chunk of a backup stream, as seen by the dedup pipeline.
//
// A chunk's content comes from one of two places:
//   * real bytes, produced by a Chunker over a byte stream (examples, tests);
//   * a deterministic generator seeded by `content_seed`, produced by the
//     synthetic workload generator. Since the bytes are a pure function of
//     the seed, restores can be verified bit-exactly without retaining the
//     logical stream (DESIGN.md §6).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/fingerprint.h"

namespace hds {

// Fills `out` with `size` deterministic bytes derived from `seed`.
void generate_chunk_content(std::uint64_t seed, std::uint32_t size,
                            std::uint8_t* out) noexcept;

struct ChunkRecord {
  Fingerprint fp;
  std::uint32_t size = 0;
  // Generator seed; meaningful only when `data` is null.
  std::uint64_t content_seed = 0;
  // Backing buffer for real bytes; null for synthetic chunks. The chunk
  // occupies bytes [data_offset, data_offset + size) of the buffer, so one
  // buffer is shared by every chunk cut from the same ingest batch instead
  // of each record owning a private copy (the buffer lives until the last
  // record referencing it dies).
  std::shared_ptr<const std::vector<std::uint8_t>> data;
  std::uint32_t data_offset = 0;

  // The real content bytes; empty span for synthetic chunks.
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    if (!data) return {};
    return {data->data() + data_offset, size};
  }

  // Returns the chunk content, synthesizing it from the seed if needed.
  [[nodiscard]] std::vector<std::uint8_t> materialize() const;
};

// A whole backup version as a flat chunk sequence plus its logical size.
struct VersionStream {
  std::vector<ChunkRecord> chunks;

  [[nodiscard]] std::uint64_t logical_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : chunks) total += c.size;
    return total;
  }
};

}  // namespace hds
