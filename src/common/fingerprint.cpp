#include "common/fingerprint.h"

#include "common/rng.h"

namespace hds {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string Fingerprint::hex() const {
  std::string out;
  out.reserve(2 * kFingerprintSize);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

bool Fingerprint::from_hex(std::string_view hex, Fingerprint& out) noexcept {
  if (hex.size() != 2 * kFingerprintSize) return false;
  for (std::size_t i = 0; i < kFingerprintSize; ++i) {
    const int hi = hex_value(hex[2 * i]);
    const int lo = hex_value(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return true;
}

Fingerprint Fingerprint::from_seed(std::uint64_t seed) noexcept {
  Fingerprint fp;
  SplitMix64 mix(seed);
  for (std::size_t i = 0; i < kFingerprintSize; i += 8) {
    const std::uint64_t v = mix.next();
    const std::size_t n = std::min<std::size_t>(8, kFingerprintSize - i);
    std::memcpy(fp.bytes.data() + i, &v, n);
  }
  return fp;
}

}  // namespace hds
