// Fingerprint: the 20-byte SHA-1 digest that identifies a chunk.
//
// Deduplication systems identify duplicate chunks by comparing fingerprints
// instead of chunk contents; the probability of a SHA-1 collision is far
// below the probability of a hardware error (Zhu et al., FAST'08), so equal
// fingerprints are treated as equal chunks throughout this codebase.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

namespace hds {

inline constexpr std::size_t kFingerprintSize = 20;

struct Fingerprint {
  std::array<std::uint8_t, kFingerprintSize> bytes{};

  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;

  // First 8 bytes interpreted little-endian; SHA-1 output is uniformly
  // distributed, so this prefix is a high-quality 64-bit hash by itself.
  [[nodiscard]] std::uint64_t prefix64() const noexcept {
    std::uint64_t v;
    std::memcpy(&v, bytes.data(), sizeof v);
    return v;
  }

  [[nodiscard]] std::string hex() const;

  // Parses a 40-char hex string. Returns false on malformed input.
  static bool from_hex(std::string_view hex, Fingerprint& out) noexcept;

  // Builds a synthetic fingerprint from a 64-bit seed (used by trace-driven
  // workloads where chunk identity is known without hashing real bytes).
  static Fingerprint from_seed(std::uint64_t seed) noexcept;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.prefix64());
  }
};

}  // namespace hds

template <>
struct std::hash<hds::Fingerprint> {
  std::size_t operator()(const hds::Fingerprint& fp) const noexcept {
    return hds::FingerprintHash{}(fp);
  }
};
