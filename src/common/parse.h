// Strict unsigned-integer parsing for CLI flags and positional arguments.
//
// std::strtoul is the wrong tool for operator input: it accepts leading
// whitespace and signs, silently stops at the first non-digit ("--threads=abc"
// becomes 0, "--port=80x" becomes 80) and wraps out-of-range values through
// errno nobody checks ("--port=99999" becomes 34463). parse_uint accepts
// exactly a non-empty run of decimal digits whose value fits in [0, max] —
// no sign, no whitespace, no base prefix, no trailing junk — and returns
// nullopt for everything else, so callers must handle bad input explicitly.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace hds {

[[nodiscard]] constexpr std::optional<std::uint64_t> parse_uint(
    std::string_view text, std::uint64_t max = UINT64_MAX) noexcept {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  if (value > max) return std::nullopt;
  return value;
}

}  // namespace hds
