// Small measurement utilities shared by benches and the pipeline.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace hds {

// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}
  void restart() noexcept { start_ = clock::now(); }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Streaming mean/min/max accumulator.
class MeanAccumulator {
 public:
  void add(double v) noexcept {
    sum_ += v;
    ++count_;
    if (v < min_ || count_ == 1) min_ = v;
    if (v > max_ || count_ == 1) max_ = v;
  }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  double sum_ = 0, min_ = 0, max_ = 0;
  std::uint64_t count_ = 0;
};

// Fixed-width table printer used by the figure/table benches so their output
// mirrors the rows the paper reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hds
