// Small measurement utilities shared by benches and the pipeline.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hds {

// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}
  void restart() noexcept { start_ = clock::now(); }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Streaming mean/min/max accumulator. Accumulators combine with merge(), so
// per-thread or per-bench instances can be folded into one.
class MeanAccumulator {
 public:
  void add(double v) noexcept {
    sum_ += v;
    ++count_;
    // Extrema start at ±infinity, so the first sample needs no special case.
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  void merge(const MeanAccumulator& other) noexcept {
    sum_ += other.sum_;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // Reconstructs an accumulator from externally tracked aggregates (e.g. a
  // metrics histogram's count/sum/min/max).
  [[nodiscard]] static MeanAccumulator from_parts(double sum,
                                                  std::uint64_t count,
                                                  double min,
                                                  double max) noexcept {
    MeanAccumulator acc;
    if (count == 0) return acc;
    acc.sum_ = sum;
    acc.count_ = count;
    acc.min_ = min;
    acc.max_ = max;
    return acc;
  }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t count_ = 0;
};

// Fixed-width table printer used by the figure/table benches so their output
// mirrors the rows the paper reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hds
