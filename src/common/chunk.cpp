#include "common/chunk.h"

#include <cstring>

#include "common/rng.h"

namespace hds {

void generate_chunk_content(std::uint64_t seed, std::uint32_t size,
                            std::uint8_t* out) noexcept {
  SplitMix64 mix(seed ^ 0xC2B2AE3D27D4EB4FULL);
  std::uint32_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint64_t v = mix.next();
    std::memcpy(out + i, &v, 8);
  }
  if (i < size) {
    const std::uint64_t v = mix.next();
    std::memcpy(out + i, &v, size - i);
  }
}

std::vector<std::uint8_t> ChunkRecord::materialize() const {
  if (data) {
    const auto view = bytes();
    return {view.begin(), view.end()};
  }
  std::vector<std::uint8_t> bytes(size);
  generate_chunk_content(content_seed, size, bytes.data());
  return bytes;
}

}  // namespace hds
