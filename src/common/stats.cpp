#include "common/stats.h"

#include <cstdio>
#include <utility>

namespace hds {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace hds
