// Deterministic pseudo-random generators.
//
// Every stochastic component in this repository (workload generation, chunk
// contents, sampling) draws from these seeded generators so that experiments
// are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>

namespace hds {

// SplitMix64 (Steele et al.): tiny, statistically strong, ideal for seeding
// and for deriving independent streams from a 64-bit key.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** — fast general-purpose generator for workload mutation
// decisions. Seeded via SplitMix64 per the authors' recommendation.
class Xoshiro256ss {
 public:
  explicit constexpr Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Bias is negligible for bound << 2^64.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace hds
