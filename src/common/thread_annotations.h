// Compile-time lock discipline (DESIGN.md §14).
//
// Three layers, one header:
//
//   1. HDS_* macros wrapping Clang's Thread Safety Analysis attributes.
//      Under clang the analysis proves — on every path, not just the
//      interleavings a test happens to execute — that state marked
//      HDS_GUARDED_BY is only touched with its mutex held. Off clang the
//      macros expand to nothing, so GCC builds are unaffected.
//
//   2. hds::lockrank — a thread-local held-lock stack with a total order
//      over every mutex in the tree (the table below and DESIGN.md §14).
//      Acquiring a ranked mutex while holding one of equal or higher rank
//      aborts: the dynamic complement to the static story, catching the
//      A→B vs B→A inversion TSA's intra-function view cannot see.
//      note_acquire()/note_release() are always compiled (tests exercise
//      them in any build); hds::Mutex only calls them under -DHDS_VERIFY,
//      so release builds pay one int of storage and nothing else.
//
//   3. hds::Mutex / MutexLock / CondVar — annotated wrappers that replace
//      every raw std::mutex / lock_guard / unique_lock / condition_variable
//      in src/ (tools/check_rules.py enforces this). CondVar waits directly
//      on hds::Mutex (BasicLockable), so rank bookkeeping survives the
//      wait's unlock/relock automatically.
//
// Rank table (lower acquired first; kUnranked mutexes are exempt from the
// order check but still re-entrancy-checked):
//
//   rank  mutex                              may be held while acquiring
//   4     service::TenantRegistry::mu_       tenant op (6) on first open
//   5     service::ServeServer sessions mu   (leaf)
//   6     service::Tenant::op_mu             everything below (a whole
//                                            backup/restore runs under it)
//   10    ReadAheadFetcher::mu_              obs registry (60), tracer (70)
//   15    RestoreTuner::mu_                  obs registry (60)
//   20    ThreadPool::mu_                    (leaf)
//   25    BoundedQueue::mu_                  tracer (70) via wait spans
//   26    OrderedMerge::mu_                  (leaf)
//   30    aio threads-backend batch latch    (leaf)
//   35    aio fault-injection plan           (leaf)
//   40    container-store index maps         (leaf)
//   45    FdCache::mu_                       (leaf)
//   50    BlockCache shard mu                (leaf)
//   55    obs::HttpServer queue mu           (leaf)
//   60    obs::MetricsRegistry::mu_          (leaf)
//   65    obs::OpProfiler::mu_               (leaf)
//   70    obs::Tracer::mu_                   (leaf, innermost)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <condition_variable>
#include <mutex>
#include <vector>

// --- Clang Thread Safety Analysis attribute macros -------------------------

#if defined(__clang__)
#define HDS_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define HDS_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

#define HDS_CAPABILITY(x) HDS_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define HDS_SCOPED_CAPABILITY \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define HDS_GUARDED_BY(x) HDS_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define HDS_PT_GUARDED_BY(x) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define HDS_ACQUIRED_BEFORE(...) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define HDS_ACQUIRED_AFTER(...) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define HDS_REQUIRES(...) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define HDS_ACQUIRE(...) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define HDS_RELEASE(...) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define HDS_TRY_ACQUIRE(...) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define HDS_EXCLUDES(...) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define HDS_ASSERT_CAPABILITY(x) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define HDS_RETURN_CAPABILITY(x) \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define HDS_NO_THREAD_SAFETY_ANALYSIS \
  HDS_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

// Runtime rank enforcement rides the same switch as the invariant checker:
// on in debug/CI (-DHDS_VERIFY), compiled out of release binaries.
#if defined(HDS_VERIFY)
#define HDS_LOCK_RANK_CHECKS 1
#else
#define HDS_LOCK_RANK_CHECKS 0
#endif

namespace hds::lockrank {

// One level per mutex class; a thread may only acquire strictly ascending
// ranks. Gaps are deliberate room for future mutexes.
inline constexpr int kUnranked = 0;  // order-exempt (still no re-entry)
inline constexpr int kServiceRegistry = 4;   // service::TenantRegistry::mu_
inline constexpr int kServiceSessions = 5;   // ServeServer active-fd set
inline constexpr int kServiceTenant = 6;     // service::Tenant::op_mu
inline constexpr int kRestorePrefetch = 10;  // ReadAheadFetcher::mu_
inline constexpr int kRestoreTuner = 15;     // RestoreTuner::mu_
inline constexpr int kPoolIdle = 20;         // ThreadPool::mu_
inline constexpr int kQueue = 25;            // BoundedQueue::mu_
inline constexpr int kOrderedMerge = 26;     // OrderedMerge::mu_
inline constexpr int kIoLatch = 30;          // aio threads-backend latch
inline constexpr int kIoFault = 35;          // aio fault-injection plan
inline constexpr int kStoreIndex = 40;       // container-store index maps
inline constexpr int kFdCache = 45;          // FdCache::mu_
inline constexpr int kBlockCacheShard = 50;  // BlockCache::Shard::mu
inline constexpr int kHttpServer = 55;       // obs::HttpServer queue mu
inline constexpr int kObsRegistry = 60;      // obs::MetricsRegistry::mu_
inline constexpr int kObsProfiler = 65;      // obs::OpProfiler::mu_
inline constexpr int kObsTracer = 70;        // obs::Tracer::mu_ (innermost)

struct HeldLock {
  const void* mu;
  int rank;
};

// The per-thread held stack. Exposed (not an implementation detail) so
// tests can assert bookkeeping without poking at thread_local internals.
inline std::vector<HeldLock>& held_stack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

[[nodiscard]] inline std::size_t depth() { return held_stack().size(); }

// Record an acquisition ABOUT to happen (call before blocking on the real
// mutex, so a genuine deadlock is still reported rather than hung on).
// Aborts on re-entry of the same mutex and on rank inversion: acquiring a
// ranked mutex while the highest ranked mutex already held ranks >= it.
inline void note_acquire(int rank, const void* mu) {
  auto& stack = held_stack();
  for (const HeldLock& held : stack) {
    if (held.mu == mu) {
      std::fprintf(stderr,
                   "hds lockrank: re-entrant acquisition of mutex %p "
                   "(rank %d)\n",
                   mu, held.rank);
      std::abort();
    }
  }
  if (rank != kUnranked) {
    for (const HeldLock& held : stack) {
      if (held.rank != kUnranked && held.rank >= rank) {
        std::fprintf(stderr,
                     "hds lockrank: inversion — acquiring mutex %p "
                     "(rank %d) while holding mutex %p (rank %d); "
                     "ranks must be strictly ascending (DESIGN.md §14)\n",
                     mu, rank, held.mu, held.rank);
        std::abort();
      }
    }
  }
  stack.push_back(HeldLock{mu, rank});
}

// Out-of-order release is legal (and happens: CondVar re-sorts nothing),
// so remove by pointer, wherever it sits.
inline void note_release(const void* mu) {
  auto& stack = held_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mu == mu) {
      stack.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "hds lockrank: release of mutex %p that is not held\n", mu);
  std::abort();
}

}  // namespace hds::lockrank

namespace hds {

// The project mutex. Identical cost to std::mutex in release builds (the
// rank is one int); under -DHDS_VERIFY every lock()/unlock() maintains the
// lockrank held-stack. Annotated as a TSA capability, so members declared
// HDS_GUARDED_BY(mu_) are compile-time checked under clang.
class HDS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(int rank = lockrank::kUnranked) noexcept : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HDS_ACQUIRE() {
#if HDS_LOCK_RANK_CHECKS
    // Before blocking: a real inversion deadlock must abort with the two
    // ranks named, not hang in mu_.lock().
    lockrank::note_acquire(rank_, this);
#endif
    mu_.lock();
  }

  void unlock() HDS_RELEASE() {
    mu_.unlock();
#if HDS_LOCK_RANK_CHECKS
    lockrank::note_release(this);
#endif
  }

  bool try_lock() HDS_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#if HDS_LOCK_RANK_CHECKS
    if (ok) lockrank::note_acquire(rank_, this);
#endif
    return ok;
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  std::mutex mu_;
  int rank_;
};

// Scoped lock, the project replacement for std::lock_guard/unique_lock on
// hds::Mutex. TSA's scoped-capability rules understand the manual
// unlock()/lock() pair, so the unlock-while-doing-I/O pattern keeps its
// compile-time checking.
class HDS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HDS_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() HDS_RELEASE() {
    if (held_) mu_.unlock();
  }

  // Manual relock/release inside the scope (e.g. drop the lock across a
  // store read, retake it to publish the result).
  void lock() HDS_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  void unlock() HDS_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

 private:
  Mutex& mu_;
  bool held_;
};

// Condition variable waiting directly on hds::Mutex. The wait() contract is
// the standard one (spurious wakeups happen; callers loop on their
// predicate):
//
//   while (!ready) cv.wait(mu);
//
// Predicate-lambda overloads are deliberately absent: TSA cannot see
// through the lambda, so explicit while-loops keep the analysis sound.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, waits, and reacquires it before returning.
  // The lockrank stack follows: Mutex::unlock/lock run inside the wait.
  void wait(Mutex& mu) HDS_REQUIRES(mu) { wait_impl(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any calls mu.unlock()/mu.lock() itself — correct at
  // runtime, invisible to TSA, hence the analysis opt-out on this one line.
  void wait_impl(Mutex& mu) HDS_NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  std::condition_variable_any cv_;
};

}  // namespace hds
