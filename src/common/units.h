// Size units and system-wide constants from the paper.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hds {

inline constexpr std::size_t KiB = 1024;
inline constexpr std::size_t MiB = 1024 * KiB;
inline constexpr std::size_t GiB = 1024 * MiB;

// The paper stores chunks in "typical 4MB" containers and chunks data at
// 4-8KB average. These are the defaults; every component accepts overrides.
inline constexpr std::size_t kDefaultContainerSize = 4 * MiB;
inline constexpr std::size_t kDefaultAvgChunkSize = 4 * KiB;
inline constexpr std::size_t kDefaultMinChunkSize = 1 * KiB;
inline constexpr std::size_t kDefaultMaxChunkSize = 16 * KiB;

// Recipe entry layout (paper §2.1): 20-byte fingerprint + 4-byte container
// ID + 4-byte size = 28 bytes per chunk.
inline constexpr std::size_t kRecipeEntrySize = 28;

}  // namespace hds
