// Little-endian byte serialization helpers for on-disk state files.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace hds {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  // Length-prefixed blob.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Cursor-based reader; every getter returns false on underflow, after
// which the reader stays failed.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (!take(1)) return false;
    v = data_[pos_ - 1];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (!take(4)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ - 4 + i];
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (!take(8)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ - 8 + i];
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, 8);
    return true;
  }
  bool raw(std::span<std::uint8_t> out) {
    if (!take(out.size())) return false;
    std::memcpy(out.data(), data_.data() + pos_ - out.size(), out.size());
    return true;
  }
  bool blob(std::vector<std::uint8_t>& out) {
    std::uint32_t len;
    if (!u32(len) || !take(len)) return false;
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_ - len),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_));
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return ok_ && pos_ == data_.size();
  }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace hds
