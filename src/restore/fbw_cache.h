// FBW-style restore cache: a chunk cache managed with recipe future
// knowledge (windowed Belady/OPT eviction).
//
// The HiDeStore paper pairs ALACC's rewriting with "FBW as the restore
// caching scheme" (Cao et al., FAST'19). The essential idea is exploiting
// the recipe's exact future reference order inside a bounded window: on
// every container read, only chunks with a known upcoming use are admitted,
// and eviction removes the chunk whose next use is farthest away — the
// optimal choice within the window. Since the FAST'19 code is not
// available, this is a from-scratch reconstruction of that principle
// (substitution documented in DESIGN.md).
#pragma once

#include "restore/restorer.h"

namespace hds {

class FbwRestore final : public RestorePolicy {
 public:
  explicit FbwRestore(const RestoreConfig& config)
      : budget_bytes_(config.memory_budget),
        window_chunks_(config.lookahead_chunks) {}

  RestoreStats restore(std::span<const ChunkLoc> stream,
                       ContainerFetcher& fetcher,
                       const ChunkSink& sink) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fbw";
  }

 private:
  std::size_t budget_bytes_;
  std::size_t window_chunks_;
};

}  // namespace hds
