#include "restore/faa.h"

#include <cstring>
#include <vector>

namespace hds {

RestoreStats FaaRestore::restore(std::span<const ChunkLoc> stream,
                                 ContainerFetcher& fetcher,
                                 const ChunkSink& sink) {
  RestoreStats stats;
  std::vector<std::uint8_t> area;
  std::vector<std::size_t> offsets;
  std::vector<bool> filled;

  std::size_t pos = 0;
  while (pos < stream.size()) {
    // The area spans chunks [pos, end) with total size ≤ area_bytes_
    // (always at least one chunk so oversized chunks cannot stall).
    std::size_t end = pos;
    std::size_t total = 0;
    while (end < stream.size() &&
           (end == pos || total + stream[end].size <= area_bytes_)) {
      total += stream[end].size;
      ++end;
    }

    area.assign(total, 0);
    offsets.assign(end - pos, 0);
    filled.assign(end - pos, false);
    std::size_t offset = 0;
    for (std::size_t i = pos; i < end; ++i) {
      offsets[i - pos] = offset;
      offset += stream[i].size;
    }

    for (std::size_t i = pos; i < end; ++i) {
      if (filled[i - pos]) continue;
      const auto container = fetcher.fetch(stream[i]);
      stats.container_reads++;
      if (!container) {
        // Unfetchable container: fail every slot assigned to it (once),
        // leaving the zero-initialized area bytes in place.
        for (std::size_t j = i; j < end; ++j) {
          if (!filled[j - pos] && stream[j].key() == stream[i].key()) {
            filled[j - pos] = true;
            stats.failed_chunks++;
          }
        }
        continue;
      }
      // One read fills every area slot this container can serve.
      for (std::size_t j = i; j < end; ++j) {
        if (filled[j - pos] || stream[j].key() != stream[i].key()) continue;
        if (const auto bytes = container->read(stream[j].fp)) {
          std::memcpy(area.data() + offsets[j - pos], bytes->data(),
                      bytes->size());
          filled[j - pos] = true;
          if (j != i) stats.cache_hits++;
        }
      }
      // Slots whose assigned container lacks their chunk stay unfilled;
      // fail them now so they are not refetched forever.
      for (std::size_t j = i; j < end; ++j) {
        if (!filled[j - pos] && stream[j].key() == stream[i].key()) {
          filled[j - pos] = true;
          stats.failed_chunks++;
        }
      }
    }

    for (std::size_t i = pos; i < end; ++i) {
      sink(stream[i],
           std::span(area.data() + offsets[i - pos], stream[i].size));
      stats.restored_bytes += stream[i].size;
      stats.restored_chunks++;
    }
    pos = end;
  }
  return stats;
}

}  // namespace hds
