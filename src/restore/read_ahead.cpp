#include "restore/read_ahead.h"

#include <algorithm>
#include <string>

namespace hds {

ReadAheadFetcher::ReadAheadFetcher(ContainerFetcher& base,
                                   std::span<const ChunkLoc> stream,
                                   const ReadAheadConfig& config)
    : base_(base),
      stream_(stream),
      depth_(config.depth == 0 ? 1 : config.depth),
      metrics_(config.metrics),
      tracer_(config.tracer),
      flow_id_base_(config.flow_id_base),
      profile_(config.profile) {
  const std::size_t workers = std::clamp<std::size_t>(
      config.in_flight == 0 ? 1 : config.in_flight, 1, depth_);
  workers_running_ = workers;
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // `workers` is captured by value: naming must not read threads_ while
    // this loop is still appending to it.
    threads_.emplace_back([this, w, workers] {
      if (tracer_ != nullptr) {
        tracer_->set_thread_name(
            workers > 1 ? "restore_prefetch_" + std::to_string(w)
                        : std::string("restore_prefetch"));
      }
      prefetch_loop();
    });
  }
}

ReadAheadFetcher::~ReadAheadFetcher() { stop(); }

void ReadAheadFetcher::stop() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    space_.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ReadAheadFetcher::prefetch_loop() {
  while (true) {
    ChunkLoc loc{};
    std::uint64_t key = 0;
    {
      MutexLock lock(mu_);
      if (!stop_ && buffer_.size() >= depth_) {
        // Backpressure wait: the buffer is full, the consumer is behind.
        // The span is a no-op without a tracer.
        obs::Span wait(tracer_, "prefetch_buffer_full");
        while (!stop_ && buffer_.size() >= depth_) space_.wait(mu_);
      }
      if (stop_) break;
      // Claim the next container this restore will need. Each distinct
      // container is claimed at most once per restore (walked_): the
      // stream names a container once per chunk, so without this dedup
      // every chunk after the consumer takes the entry would re-issue the
      // same read as a wasted prefetch. If a policy's cache evicts a
      // container and re-fetches it later, the consumer's miss path reads
      // it directly — exactly the read the serial run would have done.
      bool claimed = false;
      while (cursor_ < stream_.size()) {
        const ChunkLoc& next = stream_[cursor_++];
        if (next.active) continue;  // the active pool is consumer-only
        key = next.key();
        if (!walked_.insert(key).second) continue;
        // Resident, in flight on another worker, or being read directly by
        // the consumer right now: already paid for, don't read it twice.
        if (!buffer_.try_emplace(key).second) continue;
        loc = next;
        claimed = true;
        break;
      }
      if (!claimed) break;  // stream exhausted
      ++issued_;
      publish_depth();
    }
    obs::Span read_span(tracer_, "prefetch_read");
    read_span.arg("cid", static_cast<std::uint64_t>(loc.cid));
    auto container = base_.fetch(loc);  // the one counted store read
    if (tracer_ != nullptr) {
      // Flow start: this container's journey begins on the fetcher thread;
      // the consumer's fetch() terminates it (same id) on its own thread.
      tracer_->flow_begin("container", flow_id_base_ + key);
    }
    read_span.end();
    {
      MutexLock lock(mu_);
      const auto it = buffer_.find(key);
      if (it != buffer_.end()) {
        it->second.container = std::move(container);
        it->second.ready = true;
      }
      ready_.notify_all();
    }
    if (metrics_ != nullptr) {
      metrics_->counter("restore_prefetch_issued").inc();
    }
  }
  MutexLock lock(mu_);
  // Only the last worker out declares prefetching done: until then another
  // worker may still be mid-read, and the consumer must keep waiting on
  // in-flight entries rather than miss past them.
  if (--workers_running_ == 0) prefetch_done_ = true;
  ready_.notify_all();
}

std::shared_ptr<const Container> ReadAheadFetcher::fetch(
    const ChunkLoc& loc) {
  if (loc.active) return base_.fetch(loc);  // never prefetched
  const std::uint64_t key = loc.key();
  MutexLock lock(mu_);
  auto it = buffer_.find(key);
  if (it != buffer_.end() && !it->second.consumer_owned) {
    if (!it->second.ready) {
      // In flight on a prefetch worker; its read is the counted one.
      // Re-find on every wakeup: inserts may rehash the map while we
      // wait, invalidating `it`. The wait is the restorer's I/O-wait: the
      // span shows the consumer stalled on an in-flight prefetch read.
      obs::Span wait(tracer_, "fetch_wait_inflight");
      while (true) {
        const auto cur = buffer_.find(key);
        if (cur == buffer_.end() || cur->second.ready) break;
        ready_.wait(mu_);
      }
      wait.end();
      it = buffer_.find(key);
    }
    if (it != buffer_.end() && it->second.ready) {
      auto container = std::move(it->second.container);
      buffer_.erase(it);
      ++consumed_;
      ++hits_;
      publish_depth();
      space_.notify_all();
      lock.unlock();
      if (tracer_ != nullptr) {
        // Flow finish, bound to the enclosing restorer-side span: the
        // arrow lands where the container is consumed.
        tracer_->flow_end("container", flow_id_base_ + key);
      }
      if (metrics_ != nullptr) {
        metrics_->counter("restore_prefetch_hits").inc();
      }
      return container;
    }
  }
  // Miss: read directly, marking the key so a racing prefetcher skips it.
  // The walked_ entry is the durable half of the mark: without it, a
  // worker whose cursor reaches this container only after the direct read
  // finished (and the buffer_ marker below was erased) would claim it and
  // issue a wasted prefetch the consumer has already moved past.
  const bool mark = it == buffer_.end() && !prefetch_done_ && !stop_;
  if (mark) {
    walked_.insert(key);
    buffer_.try_emplace(key).first->second.consumer_owned = true;
  }
  ++misses_;
  lock.unlock();
  if (metrics_ != nullptr) {
    metrics_->counter("restore_prefetch_misses").inc();
  }
  auto container = base_.fetch(loc);
  if (mark) {
    // Retake and release inside the branch so the lock state is identical
    // on both paths into the return below.
    lock.lock();
    buffer_.erase(key);
    publish_depth();
    space_.notify_all();
    lock.unlock();
  }
  return container;
}

void ReadAheadFetcher::publish_depth() {
  if (metrics_ != nullptr) {
    metrics_->gauge("restore_prefetch_depth")
        .set(static_cast<double>(buffer_.size()));
  }
  if (profile_ != nullptr) {
    profile_->sample_queue_depth(static_cast<double>(buffer_.size()));
  }
}

std::uint64_t ReadAheadFetcher::wasted_reads() const noexcept {
  MutexLock lock(mu_);
  return issued_ - consumed_;
}

std::uint64_t ReadAheadFetcher::prefetch_hits() const noexcept {
  MutexLock lock(mu_);
  return hits_;
}

std::uint64_t ReadAheadFetcher::prefetch_misses() const noexcept {
  MutexLock lock(mu_);
  return misses_;
}

}  // namespace hds
