#include "restore/read_ahead.h"

#include <unordered_set>

namespace hds {

ReadAheadFetcher::ReadAheadFetcher(ContainerFetcher& base,
                                   std::span<const ChunkLoc> stream,
                                   const ReadAheadConfig& config)
    : base_(base),
      stream_(stream),
      depth_(config.depth == 0 ? 1 : config.depth),
      metrics_(config.metrics),
      tracer_(config.tracer),
      flow_id_base_(config.flow_id_base),
      profile_(config.profile),
      thread_([this] { prefetch_loop(); }) {}

ReadAheadFetcher::~ReadAheadFetcher() { stop(); }

void ReadAheadFetcher::stop() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    space_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void ReadAheadFetcher::prefetch_loop() {
  // Each distinct container is prefetched at most once per restore. The
  // stream names a container once per chunk, so without this dedup every
  // chunk after the consumer takes the entry would re-issue the same read
  // as a wasted prefetch. If a policy's cache evicts a container and
  // re-fetches it later, the consumer's miss path reads it directly —
  // exactly the read the serial run would have done.
  std::unordered_set<std::uint64_t> walked;
  if (tracer_ != nullptr) tracer_->set_thread_name("restore_prefetch");
  for (const ChunkLoc& loc : stream_) {
    if (loc.active) continue;  // the active pool is consumer-thread-only
    const std::uint64_t key = loc.key();
    if (!walked.insert(key).second) continue;
    {
      std::unique_lock lock(mu_);
      if (!stop_ && buffer_.size() >= depth_ && tracer_ != nullptr) {
        // Backpressure wait: the buffer is full, the consumer is behind.
        obs::Span wait(tracer_, "prefetch_buffer_full");
        space_.wait(lock, [&] { return stop_ || buffer_.size() < depth_; });
      } else {
        space_.wait(lock, [&] { return stop_ || buffer_.size() < depth_; });
      }
      if (stop_) break;
      // Resident, in flight, or being read directly by the consumer right
      // now: the container is already paid for, don't read it twice.
      if (!buffer_.try_emplace(key).second) continue;
      ++issued_;
      publish_depth();
    }
    obs::Span read_span(tracer_, "prefetch_read");
    read_span.arg("cid", static_cast<std::uint64_t>(loc.cid));
    auto container = base_.fetch(loc);  // the one counted store read
    if (tracer_ != nullptr) {
      // Flow start: this container's journey begins on the fetcher thread;
      // the consumer's fetch() terminates it (same id) on its own thread.
      tracer_->flow_begin("container", flow_id_base_ + key);
    }
    read_span.end();
    {
      std::lock_guard lock(mu_);
      const auto it = buffer_.find(key);
      if (it != buffer_.end()) {
        it->second.container = std::move(container);
        it->second.ready = true;
      }
      ready_.notify_all();
    }
    if (metrics_ != nullptr) {
      metrics_->counter("restore_prefetch_issued").inc();
    }
  }
  std::lock_guard lock(mu_);
  prefetch_done_ = true;
  ready_.notify_all();
}

std::shared_ptr<const Container> ReadAheadFetcher::fetch(
    const ChunkLoc& loc) {
  if (loc.active) return base_.fetch(loc);  // never prefetched
  const std::uint64_t key = loc.key();
  std::unique_lock lock(mu_);
  auto it = buffer_.find(key);
  if (it != buffer_.end() && !it->second.consumer_owned) {
    if (!it->second.ready) {
      // In flight on the prefetch thread; its read is the counted one.
      // Re-find inside the predicate: inserts may rehash the map while we
      // wait, invalidating `it`. The wait is the restorer's I/O-wait: the
      // span shows the consumer stalled on an in-flight prefetch read.
      obs::Span wait(tracer_, "fetch_wait_inflight");
      ready_.wait(lock, [&] {
        const auto cur = buffer_.find(key);
        return cur == buffer_.end() || cur->second.ready;
      });
      wait.end();
      it = buffer_.find(key);
    }
    if (it != buffer_.end() && it->second.ready) {
      auto container = std::move(it->second.container);
      buffer_.erase(it);
      ++consumed_;
      ++hits_;
      publish_depth();
      space_.notify_all();
      lock.unlock();
      if (tracer_ != nullptr) {
        // Flow finish, bound to the enclosing restorer-side span: the
        // arrow lands where the container is consumed.
        tracer_->flow_end("container", flow_id_base_ + key);
      }
      if (metrics_ != nullptr) {
        metrics_->counter("restore_prefetch_hits").inc();
      }
      return container;
    }
  }
  // Miss: read directly, marking the key so a racing prefetcher skips it.
  const bool mark = it == buffer_.end() && !prefetch_done_ && !stop_;
  if (mark) buffer_.try_emplace(key).first->second.consumer_owned = true;
  ++misses_;
  lock.unlock();
  if (metrics_ != nullptr) {
    metrics_->counter("restore_prefetch_misses").inc();
  }
  auto container = base_.fetch(loc);
  if (mark) {
    lock.lock();
    buffer_.erase(key);
    publish_depth();
    space_.notify_all();
  }
  return container;
}

void ReadAheadFetcher::publish_depth() {
  if (metrics_ != nullptr) {
    metrics_->gauge("restore_prefetch_depth")
        .set(static_cast<double>(buffer_.size()));
  }
  if (profile_ != nullptr) {
    profile_->sample_queue_depth(static_cast<double>(buffer_.size()));
  }
}

std::uint64_t ReadAheadFetcher::wasted_reads() const noexcept {
  std::lock_guard lock(mu_);
  return issued_ - consumed_;
}

std::uint64_t ReadAheadFetcher::prefetch_hits() const noexcept {
  std::lock_guard lock(mu_);
  return hits_;
}

std::uint64_t ReadAheadFetcher::prefetch_misses() const noexcept {
  std::lock_guard lock(mu_);
  return misses_;
}

}  // namespace hds
