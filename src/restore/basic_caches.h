// The classic restore caches (paper §2.3):
//   * NoCacheRestore      — reads a container per chunk, coalescing only
//                           consecutive chunks from the same container;
//   * ContainerLruRestore — LRU over whole containers (Zhu'08 style);
//   * ChunkLruRestore     — LRU over individual chunks: every fetched
//                           container's chunks enter the cache, so useful
//                           bytes survive even after their container is
//                           evicted (finer-grained, better for fragmented
//                           streams).
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "restore/restorer.h"

namespace hds {

class NoCacheRestore final : public RestorePolicy {
 public:
  RestoreStats restore(std::span<const ChunkLoc> stream,
                       ContainerFetcher& fetcher,
                       const ChunkSink& sink) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "nocache";
  }
};

class ContainerLruRestore final : public RestorePolicy {
 public:
  explicit ContainerLruRestore(const RestoreConfig& config)
      : capacity_(std::max<std::size_t>(
            1, config.memory_budget / config.container_size)) {}

  RestoreStats restore(std::span<const ChunkLoc> stream,
                       ContainerFetcher& fetcher,
                       const ChunkSink& sink) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "container-lru";
  }

 private:
  std::size_t capacity_;
};

class ChunkLruRestore final : public RestorePolicy {
 public:
  explicit ChunkLruRestore(const RestoreConfig& config)
      : capacity_bytes_(config.memory_budget) {}

  RestoreStats restore(std::span<const ChunkLoc> stream,
                       ContainerFetcher& fetcher,
                       const ChunkSink& sink) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "chunk-lru";
  }

 private:
  std::size_t capacity_bytes_;
};

}  // namespace hds
