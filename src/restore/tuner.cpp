#include "restore/tuner.h"

#include <algorithm>
#include <cstdio>

namespace hds {

namespace {

// "32MiB" / "512KiB" — budgets are always powers of two here.
std::string fmt_bytes(std::size_t bytes) {
  if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0) {
    return std::to_string(bytes >> 20) + "MiB";
  }
  if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0) {
    return std::to_string(bytes >> 10) + "KiB";
  }
  return std::to_string(bytes) + "B";
}

std::string fmt_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", rate);
  return buf;
}

// Safe hit-rate: no traffic means no evidence, reported as -1 so rules
// requiring a signal skip rather than misread "no misses" as "perfect".
double rate_of(std::uint64_t hits, std::uint64_t total) {
  if (total == 0) return -1.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

RestoreTuner::RestoreTuner(const TunerState& initial,
                           const TunerLimits& limits)
    : state_(initial), limits_(limits) {
  // Normalize the starting point into bounds so the first doubling/halving
  // lands inside them too.
  state_.tuning.block_cache_bytes =
      std::clamp(state_.tuning.block_cache_bytes,
                 limits_.min_block_cache_bytes, limits_.max_block_cache_bytes);
  state_.tuning.fd_cache_slots =
      std::clamp(state_.tuning.fd_cache_slots, limits_.min_fd_cache_slots,
                 limits_.max_fd_cache_slots);
  if (state_.prefetch_depth > 0) {
    state_.prefetch_depth =
        std::clamp(state_.prefetch_depth, limits_.min_prefetch_depth,
                   limits_.max_prefetch_depth);
  }
  if (state_.prefetch_in_flight == 0) state_.prefetch_in_flight = 1;
}

void RestoreTuner::attach_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    (void)metrics_->counter("tuner_observations");
    (void)metrics_->counter("tuner_adjustments");
  }
}

TunerDecision RestoreTuner::observe(
    const obs::OpProfile& op, const FileContainerStore::IoPathStats& io) {
  MutexLock lock(mu_);
  ++observations_;

  // Per-restore deltas of the store's cumulative counters. The first
  // observation has no baseline: collect one, recommend nothing.
  FileContainerStore::IoPathStats d{};
  if (have_prev_) {
    d.block_cache_hits = io.block_cache_hits - prev_io_.block_cache_hits;
    d.block_cache_misses = io.block_cache_misses - prev_io_.block_cache_misses;
    d.fd_cache_hits = io.fd_cache_hits - prev_io_.fd_cache_hits;
    d.fd_cache_opens = io.fd_cache_opens - prev_io_.fd_cache_opens;
  }
  prev_io_ = io;
  const bool warmed = have_prev_;
  have_prev_ = true;

  const double block_hit =
      rate_of(d.block_cache_hits, d.block_cache_hits + d.block_cache_misses);
  const double fd_miss =
      rate_of(d.fd_cache_opens, d.fd_cache_opens + d.fd_cache_hits);
  const double amplification =
      op.bytes_logical == 0
          ? 0.0
          : static_cast<double>(op.bytes_physical) /
                static_cast<double>(op.bytes_logical);

  TunerDecision decision;
  decision.state = state_;
  if (!warmed) {
    publish(block_hit, amplification);
    return decision;
  }

  const auto note = [&](std::string text) {
    if (!decision.reason.empty()) decision.reason += "; ";
    decision.reason += std::move(text);
    decision.changed = true;
  };

  // --- Cache budgets: coordinate descent, at most one knob per restore ---
  auto& tuning = decision.state.tuning;
  if (block_hit >= 0.0 && block_hit < 0.5 && amplification > 1.25 &&
      tuning.block_cache_bytes < limits_.max_block_cache_bytes) {
    // Thrashing AND the misses hit the device: more budget can pay off.
    const std::size_t next = std::min(tuning.block_cache_bytes * 2,
                                      limits_.max_block_cache_bytes);
    note("block_cache " + fmt_bytes(tuning.block_cache_bytes) + "->" +
         fmt_bytes(next) + " (hit " + fmt_rate(block_hit) + ", amp " +
         fmt_rate(amplification) + ")");
    tuning.block_cache_bytes = next;
  } else if (block_hit > 0.95 &&
             tuning.block_cache_bytes > limits_.min_block_cache_bytes &&
             io.block_cache_bytes < tuning.block_cache_bytes / 4) {
    // Near-perfect hits from a quarter of the budget: give memory back.
    const std::size_t next = std::max(tuning.block_cache_bytes / 2,
                                      limits_.min_block_cache_bytes);
    note("block_cache " + fmt_bytes(tuning.block_cache_bytes) + "->" +
         fmt_bytes(next) + " (hit " + fmt_rate(block_hit) + ", resident " +
         fmt_bytes(io.block_cache_bytes) + ")");
    tuning.block_cache_bytes = next;
  } else if (fd_miss > 0.25 && d.fd_cache_opens + d.fd_cache_hits >= 16 &&
             tuning.fd_cache_slots < limits_.max_fd_cache_slots) {
    // Container descriptors churn: each re-open is a syscall plus a lost
    // uring fixed-file slot.
    const std::size_t next =
        std::min(tuning.fd_cache_slots * 2, limits_.max_fd_cache_slots);
    note("fd_cache " + std::to_string(tuning.fd_cache_slots) + "->" +
         std::to_string(next) + " (miss " + fmt_rate(fd_miss) + ")");
    tuning.fd_cache_slots = next;
  }

  // --- Prefetch window: independent subsystem, may move the same round ---
  if (decision.state.prefetch_depth > 0) {
    const std::uint64_t prefetch_total = op.container_reads + op.cache_wasted;
    const double waste = rate_of(op.cache_wasted, prefetch_total);
    const double depth_now =
        static_cast<double>(decision.state.prefetch_depth);
    if (waste > 0.5 &&
        decision.state.prefetch_depth > limits_.min_prefetch_depth) {
      // Reading ahead of containers the policy never needs: narrow it.
      const std::size_t next = std::max(decision.state.prefetch_depth / 2,
                                        limits_.min_prefetch_depth);
      note("prefetch " + std::to_string(decision.state.prefetch_depth) +
           "->" + std::to_string(next) + " (waste " + fmt_rate(waste) + ")");
      decision.state.prefetch_depth = next;
    } else if (op.queue_depth_peak >= 0.9 * depth_now && waste >= 0.0 &&
               waste < 0.1 &&
               decision.state.prefetch_depth < limits_.max_prefetch_depth) {
      // Buffer pegged at capacity and nearly nothing wasted: the consumer
      // wants more lookahead than we are allowed to hold.
      const std::size_t next = std::min(decision.state.prefetch_depth * 2,
                                        limits_.max_prefetch_depth);
      note("prefetch " + std::to_string(decision.state.prefetch_depth) +
           "->" + std::to_string(next) + " (peak " +
           fmt_rate(op.queue_depth_peak) + "/" +
           std::to_string(decision.state.prefetch_depth) + ")");
      decision.state.prefetch_depth = next;
    }
    // Overlap follows the window: one in-flight read per ~4 buffered
    // containers keeps workers busy without starving the buffer of slots.
    decision.state.prefetch_in_flight =
        std::clamp<std::size_t>(decision.state.prefetch_depth / 4, 1,
                                limits_.max_prefetch_in_flight);
    // One submission window should cover every overlapping prefetch read's
    // extent list; 8 extents per container read is the observed shape of
    // footer-index runs.
    decision.state.tuning.io_depth =
        std::max<std::size_t>(decision.state.prefetch_in_flight * 8, 32);
  }

  if (decision.changed) {
    ++adjustments_;
    state_ = decision.state;
  }
  publish(block_hit, amplification);
  return decision;
}

void RestoreTuner::publish(double block_hit_rate, double amplification) {
  if (metrics_ == nullptr) return;
  metrics_->counter("tuner_observations").inc();
  auto& adj = metrics_->counter("tuner_adjustments");
  if (adjustments_ > adj.value()) adj.inc(adjustments_ - adj.value());
  metrics_->gauge("tuner_block_cache_bytes")
      .set(static_cast<double>(state_.tuning.block_cache_bytes));
  metrics_->gauge("tuner_fd_cache_slots")
      .set(static_cast<double>(state_.tuning.fd_cache_slots));
  metrics_->gauge("tuner_prefetch_depth")
      .set(static_cast<double>(state_.prefetch_depth));
  metrics_->gauge("tuner_prefetch_in_flight")
      .set(static_cast<double>(state_.prefetch_in_flight));
  if (block_hit_rate >= 0.0) {
    metrics_->gauge("tuner_block_hit_rate").set(block_hit_rate);
  }
  metrics_->gauge("tuner_read_amplification").set(amplification);
}

}  // namespace hds
