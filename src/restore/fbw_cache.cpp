#include "restore/fbw_cache.h"

#include <map>
#include <unordered_map>
#include <vector>

namespace hds {

namespace {
// Position lists per fingerprint let us answer "when is this chunk needed
// next?" with a binary search — the future knowledge the policy exploits.
struct FutureIndex {
  std::unordered_map<Fingerprint, std::vector<std::size_t>> positions;

  explicit FutureIndex(std::span<const ChunkLoc> stream) {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      positions[stream[i].fp].push_back(i);
    }
  }

  // First use at or after `from`, clipped to the window; SIZE_MAX if none.
  [[nodiscard]] std::size_t next_use(const Fingerprint& fp, std::size_t from,
                                     std::size_t window_end) const {
    const auto it = positions.find(fp);
    if (it == positions.end()) return SIZE_MAX;
    const auto& list = it->second;
    const auto lb = std::lower_bound(list.begin(), list.end(), from);
    if (lb == list.end() || *lb >= window_end) return SIZE_MAX;
    return *lb;
  }
};
}  // namespace

RestoreStats FbwRestore::restore(std::span<const ChunkLoc> stream,
                                 ContainerFetcher& fetcher,
                                 const ChunkSink& sink) {
  RestoreStats stats;
  const FutureIndex future(stream);

  struct Entry {
    std::vector<std::uint8_t> bytes;
    std::map<std::size_t, Fingerprint>::iterator heap_pos;
  };
  std::unordered_map<Fingerprint, Entry> cache;
  // Ordered by next-use position; eviction pops the farthest (rbegin).
  std::map<std::size_t, Fingerprint> by_next_use;
  std::size_t cached_bytes = 0;

  auto erase_entry = [&](const Fingerprint& fp) {
    const auto it = cache.find(fp);
    if (it == cache.end()) return;
    cached_bytes -= it->second.bytes.size();
    by_next_use.erase(it->second.heap_pos);
    cache.erase(it);
  };

  auto admit = [&](const Fingerprint& fp, std::span<const std::uint8_t> bytes,
                   std::size_t next) {
    if (cache.contains(fp) || bytes.size() > budget_bytes_) return;
    // Evict farthest-next-use entries, but never for a chunk needed later
    // than they are.
    while (cached_bytes + bytes.size() > budget_bytes_) {
      const auto farthest = std::prev(by_next_use.end());
      if (farthest->first <= next) return;  // victim is more useful
      erase_entry(farthest->second);
      stats.cache_evictions++;
    }
    // Keys collide only for the same fingerprint at the same position, and
    // duplicates were filtered above, so insertion always succeeds.
    const auto [pos, ok] = by_next_use.emplace(next, fp);
    if (!ok) return;
    cache.emplace(fp,
                  Entry{std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
                        pos});
    cached_bytes += bytes.size();
  };

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto& loc = stream[i];
    const std::size_t window_end =
        std::min(stream.size(), i + 1 + window_chunks_);

    if (const auto it = cache.find(loc.fp); it != cache.end()) {
      stats.cache_hits++;
      sink(loc, it->second.bytes);
      stats.restored_bytes += loc.size;
      stats.restored_chunks++;
      // Re-key to the next future use, or drop if none in window.
      const std::size_t next = future.next_use(loc.fp, i + 1, window_end);
      const std::vector<std::uint8_t> bytes = it->second.bytes;
      erase_entry(loc.fp);
      if (next != SIZE_MAX) admit(loc.fp, bytes, next);
      continue;
    }

    const auto container = fetcher.fetch(loc);
    stats.container_reads++;
    if (!container) {
      stats.failed_chunks++;
      sink(loc, {});
      stats.restored_bytes += loc.size;
      stats.restored_chunks++;
      continue;
    }
    const auto bytes = container->read(loc.fp);
    if (!bytes) stats.failed_chunks++;
    sink(loc, bytes ? *bytes : std::span<const std::uint8_t>{});
    stats.restored_bytes += loc.size;
    stats.restored_chunks++;

    // Admit container chunks with a known upcoming use.
    for (const auto& [fp, entry] : container->entries()) {
      const std::size_t next = future.next_use(fp, i + 1, window_end);
      if (next == SIZE_MAX) continue;
      if (const auto chunk_bytes = container->read(fp)) {
        admit(fp, *chunk_bytes, next);
      }
    }
  }
  return stats;
}

}  // namespace hds
