// Partial restore: reconstruct only a byte range of a backup stream.
//
// Backup tools rarely restore whole snapshots — they pull one file out of
// last Tuesday's backup. Given the resolved chunk stream of a version and
// a logical byte range, this runs a restore policy over just the chunks
// overlapping the range and trims the first/last chunk so the sink
// receives exactly the requested bytes. Container reads are counted as
// usual, so the locality benefits (or penalties) of a layout show up in
// partial restores too.
#pragma once

#include "restore/restorer.h"

namespace hds {

// Restores logical bytes [offset, offset + length) of `stream`. Returns
// the policy's stats (restored_bytes counts the trimmed bytes actually
// delivered). Ranges beyond the stream end are clipped; an empty
// intersection is a no-op.
RestoreStats restore_byte_range(std::span<const ChunkLoc> stream,
                                std::uint64_t offset, std::uint64_t length,
                                RestorePolicy& policy,
                                ContainerFetcher& fetcher,
                                const ChunkSink& sink);

}  // namespace hds
