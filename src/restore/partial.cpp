#include "restore/partial.h"

#include <vector>

namespace hds {

RestoreStats restore_byte_range(std::span<const ChunkLoc> stream,
                                std::uint64_t offset, std::uint64_t length,
                                RestorePolicy& policy,
                                ContainerFetcher& fetcher,
                                const ChunkSink& sink) {
  // Locate the covering chunk sub-span.
  std::size_t first = 0;
  std::uint64_t first_start = 0;  // logical offset of stream[first]
  std::uint64_t position = 0;
  while (first < stream.size() && position + stream[first].size <= offset) {
    position += stream[first].size;
    ++first;
  }
  first_start = position;

  std::size_t last = first;  // one past the final covered chunk
  const std::uint64_t range_end = offset + length;
  while (last < stream.size() && position < range_end) {
    position += stream[last].size;
    ++last;
  }
  if (first >= last || length == 0) return RestoreStats{};

  const std::span covered = stream.subspan(first, last - first);

  // Wrap the sink to trim the first and last chunks to the range.
  std::uint64_t cursor = first_start;
  RestoreStats stats = policy.restore(
      covered, fetcher,
      [&](const ChunkLoc& loc, std::span<const std::uint8_t> bytes) {
        const std::uint64_t chunk_start = cursor;
        const std::uint64_t chunk_end = cursor + loc.size;
        cursor = chunk_end;

        const std::uint64_t take_from = std::max(chunk_start, offset);
        const std::uint64_t take_to = std::min(chunk_end, range_end);
        if (take_from >= take_to) return;  // fully trimmed (cannot happen)
        // Failed chunks arrive as empty spans; pass the emptiness through.
        if (bytes.empty()) {
          sink(loc, bytes);
          return;
        }
        sink(loc, bytes.subspan(take_from - chunk_start,
                                take_to - take_from));
      });

  // Report the bytes actually delivered, not the covering chunks' total.
  const std::uint64_t delivered =
      std::min(range_end, position) - std::max(first_start, offset);
  stats.restored_bytes = delivered;
  return stats;
}

}  // namespace hds
