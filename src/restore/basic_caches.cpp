#include "restore/basic_caches.h"

namespace hds {

RestoreStats NoCacheRestore::restore(std::span<const ChunkLoc> stream,
                                     ContainerFetcher& fetcher,
                                     const ChunkSink& sink) {
  RestoreStats stats;
  std::shared_ptr<const Container> current;
  std::uint64_t current_key = ~0ULL;
  for (const auto& loc : stream) {
    if (!current || loc.key() != current_key) {
      current = fetcher.fetch(loc);
      current_key = loc.key();
      stats.container_reads++;
    } else {
      stats.cache_hits++;
    }
    const auto bytes =
        current ? current->read(loc.fp)
                : std::optional<std::span<const std::uint8_t>>{};
    if (!bytes) stats.failed_chunks++;
    sink(loc, bytes ? *bytes : std::span<const std::uint8_t>{});
    stats.restored_bytes += loc.size;
    stats.restored_chunks++;
  }
  return stats;
}

RestoreStats ContainerLruRestore::restore(std::span<const ChunkLoc> stream,
                                          ContainerFetcher& fetcher,
                                          const ChunkSink& sink) {
  RestoreStats stats;
  std::list<std::uint64_t> lru;  // front = most recent
  std::unordered_map<std::uint64_t,
                     std::pair<std::shared_ptr<const Container>,
                               std::list<std::uint64_t>::iterator>>
      cache;

  for (const auto& loc : stream) {
    const std::uint64_t key = loc.key();
    std::shared_ptr<const Container> container;
    if (const auto it = cache.find(key); it != cache.end()) {
      stats.cache_hits++;
      lru.erase(it->second.second);
      lru.push_front(key);
      it->second.second = lru.begin();
      container = it->second.first;
    } else {
      container = fetcher.fetch(loc);
      stats.container_reads++;
      if (container) {
        lru.push_front(key);
        cache.emplace(key, std::make_pair(container, lru.begin()));
        while (cache.size() > capacity_) {
          cache.erase(lru.back());
          lru.pop_back();
          stats.cache_evictions++;
        }
      }
    }
    const auto bytes =
        container ? container->read(loc.fp)
                  : std::optional<std::span<const std::uint8_t>>{};
    if (!bytes) stats.failed_chunks++;
    sink(loc, bytes ? *bytes : std::span<const std::uint8_t>{});
    stats.restored_bytes += loc.size;
    stats.restored_chunks++;
  }
  return stats;
}

RestoreStats ChunkLruRestore::restore(std::span<const ChunkLoc> stream,
                                      ContainerFetcher& fetcher,
                                      const ChunkSink& sink) {
  RestoreStats stats;
  struct Entry {
    std::vector<std::uint8_t> bytes;
    std::list<Fingerprint>::iterator pos;
  };
  std::list<Fingerprint> lru;  // front = most recent
  std::unordered_map<Fingerprint, Entry> cache;
  std::size_t cached_bytes = 0;

  auto evict_to_fit = [&] {
    while (cached_bytes > capacity_bytes_ && !lru.empty()) {
      const auto it = cache.find(lru.back());
      cached_bytes -= it->second.bytes.size();
      cache.erase(it);
      lru.pop_back();
      stats.cache_evictions++;
    }
  };

  for (const auto& loc : stream) {
    if (const auto it = cache.find(loc.fp); it != cache.end()) {
      stats.cache_hits++;
      lru.erase(it->second.pos);
      lru.push_front(loc.fp);
      it->second.pos = lru.begin();
      sink(loc, it->second.bytes);
    } else if (const auto container = fetcher.fetch(loc); container) {
      stats.container_reads++;
      // Admit every chunk of the fetched container: stream locality makes
      // its neighbours likely to be needed soon.
      for (const auto& [fp, entry] : container->entries()) {
        if (cache.contains(fp)) continue;
        const auto bytes = container->read(fp);
        if (!bytes) continue;
        lru.push_front(fp);
        cache.emplace(
            fp, Entry{std::vector<std::uint8_t>(bytes->begin(), bytes->end()),
                      lru.begin()});
        cached_bytes += bytes->size();
      }
      evict_to_fit();
      const auto bytes = container->read(loc.fp);
      if (!bytes) stats.failed_chunks++;
      sink(loc, bytes ? *bytes : std::span<const std::uint8_t>{});
    } else {
      stats.container_reads++;
      stats.failed_chunks++;
      sink(loc, {});
    }
    stats.restored_bytes += loc.size;
    stats.restored_chunks++;
  }
  return stats;
}

}  // namespace hds
