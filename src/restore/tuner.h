// RestoreTuner — closes the loop between restore observability and the I/O
// fast-path knobs (DESIGN.md §13.4).
//
// Every completed restore leaves two evidence trails: its OpProfile
// (logical vs physical bytes, cache economics, prefetch queue-depth peaks)
// and the FileContainerStore's IoPathStats (block/fd cache hit counters,
// bytes actually read). The tuner consumes one (profile, io-stats) pair per
// restore and recommends the next restore's budgets:
//
//   * block_cache_bytes   — grown while the block cache thrashes (low hit
//                           rate AND real read amplification), shrunk when
//                           it is cold and oversized;
//   * fd_cache_slots      — grown while container opens churn;
//   * prefetch depth      — grown while the read-ahead buffer saturates
//                           without waste, shrunk when prefetches are
//                           mostly wasted;
//   * prefetch in-flight  — follows depth (one reader per ~4 buffered
//                           containers, capped), so deeper windows also get
//                           more overlapping reads;
//   * io_depth            — sized so one uring submission window covers the
//                           in-flight prefetch reads.
//
// The loop is deliberately conservative: at most one cache knob moves per
// observation (coordinate descent — moving several at once makes the next
// observation unattributable), every move is a doubling/halving bounded by
// TunerLimits, and a knob reverses direction only on fresh evidence. The
// tuner itself is pure bookkeeping: callers apply `TunerDecision.state`
// via HiDeStore::set_io_tuning()/set_read_ahead() (hds_tool --auto-tune
// does exactly that between versions of `restore all`).
//
// Thread-safety: observe()/state()/observations()/adjustments() are safe to
// call concurrently (mu_, rank kRestoreTuner); attach_metrics() is a setup
// operation, serialized externally. One tuner should still observe every
// restore on its store — the delta bookkeeping is per-tuner.
#pragma once

#include <cstdint>
#include <string>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "storage/container_store.h"

namespace hds {

// Hard bounds on every knob the tuner may move. Defaults keep the block
// cache between 4 MiB and 256 MiB — a middleware-sized budget, not a page
// cache replacement.
struct TunerLimits {
  std::size_t min_block_cache_bytes = 4ull << 20;
  std::size_t max_block_cache_bytes = 256ull << 20;
  std::size_t min_fd_cache_slots = 16;
  std::size_t max_fd_cache_slots = 512;
  std::size_t min_prefetch_depth = 2;
  std::size_t max_prefetch_depth = 64;
  std::size_t max_prefetch_in_flight = 8;
};

// The complete knob set a decision covers. `tuning` feeds
// HiDeStore::set_io_tuning(); the prefetch pair feeds set_read_ahead().
// prefetch_depth == 0 means read-ahead stays off (the tuner never turns it
// on by itself — overlap is the caller's policy choice).
struct TunerState {
  FileStoreTuning tuning;
  std::size_t prefetch_depth = 0;
  std::size_t prefetch_in_flight = 1;
};

struct TunerDecision {
  TunerState state;
  bool changed = false;
  // Human-readable trail of what moved and why, e.g.
  // "block_cache 32MiB->64MiB (hit 0.31, amp 2.4)". Empty when unchanged.
  std::string reason;
};

class RestoreTuner {
 public:
  explicit RestoreTuner(const TunerState& initial,
                        const TunerLimits& limits = {});

  // Optional tuner_* counters and gauges (see DESIGN.md §13.4). Must
  // outlive the tuner.
  void attach_metrics(obs::MetricsRegistry* metrics);

  // Feed one completed restore. `op` is that restore's OpProfile;
  // `io` is the owning FileContainerStore's io_stats() snapshot taken
  // after the restore (the tuner diffs it against the previous
  // observation's snapshot internally, so pass cumulative values).
  TunerDecision observe(const obs::OpProfile& op,
                        const FileContainerStore::IoPathStats& io);

  // By value: a reference into mutable tuner state would race the next
  // observe().
  [[nodiscard]] TunerState state() const {
    MutexLock lock(mu_);
    return state_;
  }
  [[nodiscard]] std::uint64_t observations() const {
    MutexLock lock(mu_);
    return observations_;
  }
  [[nodiscard]] std::uint64_t adjustments() const {
    MutexLock lock(mu_);
    return adjustments_;
  }

 private:
  void publish(double block_hit_rate, double amplification)
      HDS_REQUIRES(mu_);

  mutable Mutex mu_{lockrank::kRestoreTuner};
  TunerState state_ HDS_GUARDED_BY(mu_);
  TunerLimits limits_;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Previous cumulative io_stats snapshot; deltas describe the last
  // restore only, so one tuner must observe every restore on the store
  // (hds_tool owns the store for the whole invocation, so it does).
  FileContainerStore::IoPathStats prev_io_ HDS_GUARDED_BY(mu_){};
  bool have_prev_ HDS_GUARDED_BY(mu_) = false;
  std::uint64_t observations_ HDS_GUARDED_BY(mu_) = 0;
  std::uint64_t adjustments_ HDS_GUARDED_BY(mu_) = 0;
};

}  // namespace hds
