// ALACC — Adaptive Look-Ahead Chunk Caching (Cao, Wen, Xie & Du, FAST'18).
//
// Combines a forward assembly area with a chunk cache and adapts the split
// between them. When a container is read to fill the area, chunks of it
// that the look-ahead window (recipe knowledge beyond the area) says will
// be needed again are admitted to the chunk cache; area misses consult the
// cache before paying a container read. Periodically, the policy shifts
// memory toward whichever side (area vs cache) produced more hits — a
// faithful, simplified rendering of ALACC's adaptive sizing.
#pragma once

#include "restore/restorer.h"

namespace hds {

class AlaccRestore final : public RestorePolicy {
 public:
  explicit AlaccRestore(const RestoreConfig& config)
      : total_budget_(config.memory_budget),
        container_size_(config.container_size),
        lookahead_chunks_(config.lookahead_chunks) {}

  RestoreStats restore(std::span<const ChunkLoc> stream,
                       ContainerFetcher& fetcher,
                       const ChunkSink& sink) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "alacc";
  }

 private:
  std::size_t total_budget_;
  std::size_t container_size_;
  std::size_t lookahead_chunks_;
};

}  // namespace hds
