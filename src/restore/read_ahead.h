// ReadAheadFetcher — overlaps container I/O with chunk assembly during
// restore (the concurrency half of ALACC-style restore pipelining).
//
// One or more prefetch workers (`in_flight`) walk the resolved recipe
// stream ahead of the consumer — sharing a cursor, so with N workers up to
// N containers' reads are in flight simultaneously — and issue
// ContainerStore reads through the wrapped fetcher into a small bounded
// buffer (backpressure: workers block when `depth` containers are
// resident). The consumer's fetch() takes buffered containers without
// touching the store, so each physical read happens exactly once:
//
//   * a prefetched container consumed by the policy  → 1 store read (by the
//     prefetcher);
//   * a miss (policy fetched something unpredicted)  → 1 direct store read;
//   * an in-flight collision                         → the consumer waits
//     for the prefetcher's read instead of issuing a second one.
//
// Restore POLICIES are untouched: they still count one container read per
// fetch() call, so speed factors and every Fig 11 number are computed from
// the same accounting with read-ahead on or off. The only divergence is a
// *wasted* prefetch — a container fetched ahead that the policy's own cache
// made unnecessary — which callers subtract via wasted_reads() when they
// cross-check policy counts against store counters (and export as the
// restore_prefetch_wasted metric).
//
// Thread-safety: the wrapped fetcher must tolerate concurrent fetch() calls
// for non-active locations (ContainerStore::read is; the active pool is
// not, so locations with `active` set are never prefetched and always read
// on the consumer thread).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "restore/restorer.h"

namespace hds {

struct ReadAheadConfig {
  // Containers resident in the prefetch buffer (including in-flight reads)
  // before the prefetch workers block.
  std::size_t depth = 8;
  // Prefetch worker threads — concurrent container reads in flight. More
  // workers than `depth` cannot help (each in-flight read occupies a buffer
  // slot), so the effective count is min(in_flight, depth). 0 means 1.
  std::size_t in_flight = 1;
  // Optional restore_prefetch_* counters and buffer-depth gauge.
  obs::MetricsRegistry* metrics = nullptr;
  // Optional cross-thread tracing: the prefetch thread wraps each store
  // read in a "prefetch_read" span and starts a "container" flow per
  // container; the consumer's fetch() terminates the flow when it takes
  // the buffered container, so the trace draws an arrow from the fetcher
  // thread into the restorer's "fetch_wait"/policy span. Ids are
  // flow_id_base + loc.key(), so the caller must pick a base disjoint
  // across concurrent restores (e.g. tracer->next_id() << 33).
  obs::Tracer* tracer = nullptr;
  std::uint64_t flow_id_base = 0;
  // Optional per-op profiling: buffer-depth samples land in the active
  // operation's recorder (thread-safe; see OpRecorder). Must outlive the
  // fetcher.
  obs::OpRecorder* profile = nullptr;
};

class ReadAheadFetcher final : public ContainerFetcher {
 public:
  // `stream` must outlive this fetcher (the caller owns the resolved recipe
  // for the whole restore).
  ReadAheadFetcher(ContainerFetcher& base, std::span<const ChunkLoc> stream,
                   const ReadAheadConfig& config = {});
  ~ReadAheadFetcher() override;

  ReadAheadFetcher(const ReadAheadFetcher&) = delete;
  ReadAheadFetcher& operator=(const ReadAheadFetcher&) = delete;

  std::shared_ptr<const Container> fetch(const ChunkLoc& loc) override;

  // Stops and joins the prefetch workers (idempotent; also run by the
  // destructor). After stop(), wasted_reads() is final.
  void stop();

  // Prefetched containers the policy never consumed — store reads the
  // serial path would not have issued.
  [[nodiscard]] std::uint64_t wasted_reads() const noexcept;
  [[nodiscard]] std::uint64_t prefetch_hits() const noexcept;
  [[nodiscard]] std::uint64_t prefetch_misses() const noexcept;

 private:
  struct Entry {
    std::shared_ptr<const Container> container;
    bool ready = false;
    // Inserted by the consumer's miss path purely to keep the prefetcher
    // from re-reading the same container concurrently.
    bool consumer_owned = false;
  };

  void prefetch_loop();
  void publish_depth() HDS_REQUIRES(mu_);

  ContainerFetcher& base_;
  std::span<const ChunkLoc> stream_;
  const std::size_t depth_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  const std::uint64_t flow_id_base_;
  obs::OpRecorder* profile_;

  // Outermost restore-side lock (rank kRestorePrefetch): held while the
  // depth gauge registers (kObsRegistry) and wait spans record
  // (kObsTracer), never while base_.fetch() runs.
  mutable Mutex mu_{lockrank::kRestorePrefetch};
  CondVar space_;  // workers wait for buffer room
  CondVar ready_;  // consumer waits for in-flight reads
  std::unordered_map<std::uint64_t, Entry> buffer_ HDS_GUARDED_BY(mu_);
  // Shared walk state: workers claim successive stream positions under mu_;
  // each distinct container is claimed (and read) by exactly one worker.
  std::size_t cursor_ HDS_GUARDED_BY(mu_) = 0;
  std::unordered_set<std::uint64_t> walked_ HDS_GUARDED_BY(mu_);
  std::size_t workers_running_ HDS_GUARDED_BY(mu_) = 0;
  bool stop_ HDS_GUARDED_BY(mu_) = false;
  bool prefetch_done_ HDS_GUARDED_BY(mu_) = false;
  std::uint64_t issued_ HDS_GUARDED_BY(mu_) = 0;
  std::uint64_t consumed_ HDS_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ HDS_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ HDS_GUARDED_BY(mu_) = 0;

  std::vector<std::thread> threads_;  // last: start after all state is ready
};

}  // namespace hds
