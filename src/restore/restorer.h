// Restore engine: reconstructs a backup stream from container storage under
// a pluggable caching policy.
//
// The unit of disk I/O is the container; every policy below differs only in
// what it keeps in memory between container fetches. The paper's restore
// metric, speed factor = MB restored per container read (§5.3), is computed
// from the counters gathered here, which deliberately ignores device speed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>

#include "common/chunk.h"
#include "storage/container.h"

namespace hds {

// One chunk of the restore stream, already resolved to its container.
// `active` selects the container namespace: HiDeStore keeps hot chunks in
// active containers whose IDs are disjoint from archival IDs.
struct ChunkLoc {
  Fingerprint fp;
  std::uint32_t size = 0;
  ContainerId cid = 0;
  bool active = false;

  // Cache key combining namespace and ID.
  [[nodiscard]] std::uint64_t key() const noexcept {
    return (static_cast<std::uint64_t>(active) << 32) |
           static_cast<std::uint32_t>(cid);
  }
};

// Fetches the container that holds `loc`. Implementations bridge to the
// archival ContainerStore and (for HiDeStore) the active pool. Each call is
// one container read; policies count calls.
class ContainerFetcher {
 public:
  virtual ~ContainerFetcher() = default;
  virtual std::shared_ptr<const Container> fetch(const ChunkLoc& loc) = 0;
};

struct RestoreStats {
  std::uint64_t restored_bytes = 0;
  std::uint64_t restored_chunks = 0;
  std::uint64_t container_reads = 0;
  std::uint64_t cache_hits = 0;
  // Entries (containers or chunks, per policy) dropped to stay within the
  // memory budget. 0 for policies without an eviction decision (nocache,
  // FAA's sliding area).
  std::uint64_t cache_evictions = 0;
  // Chunks whose container could not be fetched or did not hold them
  // (corrupt or missing on-disk data). Such chunks are delivered to the
  // sink as empty spans; the restore continues so the damage is bounded
  // and reportable instead of fatal.
  std::uint64_t failed_chunks = 0;

  // The paper's speed factor: mean MB restored per container read.
  [[nodiscard]] double speed_factor() const noexcept {
    if (container_reads == 0) return 0.0;
    return static_cast<double>(restored_bytes) / (1024.0 * 1024.0) /
           static_cast<double>(container_reads);
  }
};

// Receives restored chunks in stream order.
using ChunkSink =
    std::function<void(const ChunkLoc&, std::span<const std::uint8_t>)>;

class RestorePolicy {
 public:
  virtual ~RestorePolicy() = default;

  virtual RestoreStats restore(std::span<const ChunkLoc> stream,
                               ContainerFetcher& fetcher,
                               const ChunkSink& sink) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

enum class RestorePolicyKind {
  kNoCache,
  kContainerLru,
  kChunkLru,
  kFaa,
  kAlacc,
  kFbw,
};

struct RestoreConfig {
  // Total memory budget of the policy, in bytes. Policies interpret it:
  // container LRU holds budget/container_size containers, chunk caches hold
  // budget bytes of chunks, FAA uses it as the assembly-area size, ALACC
  // splits it adaptively between area and chunk cache.
  std::size_t memory_budget = 64 * 1024 * 1024;
  std::size_t container_size = 4 * 1024 * 1024;
  // Look-ahead window (in chunks) for recipe-aware policies (ALACC, FBW).
  std::size_t lookahead_chunks = 16 * 1024;
};

[[nodiscard]] std::unique_ptr<RestorePolicy> make_restore_policy(
    RestorePolicyKind kind, const RestoreConfig& config = {});

}  // namespace hds
