// FAA — Forward Assembly Area (Lillibridge, Eshghi & Bhagwat, FAST'13).
//
// Uses the recipe's perfect future knowledge: an M-byte assembly buffer is
// laid over the next M bytes of the stream; each container needed inside the
// area is read exactly once, filling every slot it can serve, then the area
// is flushed and slides forward. A container is re-read only if its chunks
// are spread across more than one area.
#pragma once

#include "restore/restorer.h"

namespace hds {

class FaaRestore final : public RestorePolicy {
 public:
  explicit FaaRestore(const RestoreConfig& config)
      : area_bytes_(config.memory_budget) {}

  RestoreStats restore(std::span<const ChunkLoc> stream,
                       ContainerFetcher& fetcher,
                       const ChunkSink& sink) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "faa";
  }

 private:
  std::size_t area_bytes_;
};

}  // namespace hds
