#include "restore/restorer.h"

#include <stdexcept>

#include "restore/alacc.h"
#include "restore/basic_caches.h"
#include "restore/faa.h"
#include "restore/fbw_cache.h"

namespace hds {

std::unique_ptr<RestorePolicy> make_restore_policy(
    RestorePolicyKind kind, const RestoreConfig& config) {
  switch (kind) {
    case RestorePolicyKind::kNoCache:
      return std::make_unique<NoCacheRestore>();
    case RestorePolicyKind::kContainerLru:
      return std::make_unique<ContainerLruRestore>(config);
    case RestorePolicyKind::kChunkLru:
      return std::make_unique<ChunkLruRestore>(config);
    case RestorePolicyKind::kFaa:
      return std::make_unique<FaaRestore>(config);
    case RestorePolicyKind::kAlacc:
      return std::make_unique<AlaccRestore>(config);
    case RestorePolicyKind::kFbw:
      return std::make_unique<FbwRestore>(config);
  }
  throw std::invalid_argument("unknown RestorePolicyKind");
}

}  // namespace hds
