// ContainerChunkIndex — which fingerprints a restore needs from each
// archival container.
//
// Built once per restore from the resolved chunk stream, then handed (by
// const pointer) to the fetchers so read_chunks() can ask the store for
// exactly the needed chunks of a container instead of the whole thing —
// the footer-index partial-read fast path (DESIGN.md §10). Const after
// construction, so the ReadAheadFetcher's prefetch thread shares it safely.
#pragma once

#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "restore/restorer.h"
#include "storage/container.h"

namespace hds {

using ContainerChunkIndex =
    std::unordered_map<ContainerId, std::vector<Fingerprint>>;

// Groups the archival fingerprints of `stream` by container, deduplicated
// (a chunk referenced many times in the stream is fetched once per
// container read). Active-class locations are skipped — they are served
// from the in-memory pool, not the store.
inline ContainerChunkIndex build_container_chunk_index(
    std::span<const ChunkLoc> stream) {
  ContainerChunkIndex index;
  std::unordered_map<ContainerId, std::unordered_set<Fingerprint>> seen;
  for (const ChunkLoc& loc : stream) {
    if (loc.active || loc.cid <= 0) continue;
    if (seen[loc.cid].insert(loc.fp).second) {
      index[loc.cid].push_back(loc.fp);
    }
  }
  return index;
}

}  // namespace hds
