#include "restore/alacc.h"

#include <cstring>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace hds {

namespace {
// LRU chunk cache with a byte budget.
class ChunkCache {
 public:
  void set_capacity(std::size_t bytes) {
    capacity_ = bytes;
    evict_to_fit();
  }

  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_;
  }

  [[nodiscard]] const std::vector<std::uint8_t>* get(const Fingerprint& fp) {
    const auto it = entries_.find(fp);
    if (it == entries_.end()) return nullptr;
    lru_.erase(it->second.pos);
    lru_.push_front(fp);
    it->second.pos = lru_.begin();
    return &it->second.bytes;
  }

  void put(const Fingerprint& fp, std::span<const std::uint8_t> bytes) {
    if (entries_.contains(fp) || bytes.size() > capacity_) return;
    lru_.push_front(fp);
    entries_.emplace(
        fp, Entry{std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
                  lru_.begin()});
    used_ += bytes.size();
    evict_to_fit();
  }

 private:
  struct Entry {
    std::vector<std::uint8_t> bytes;
    std::list<Fingerprint>::iterator pos;
  };

  void evict_to_fit() {
    while (used_ > capacity_ && !lru_.empty()) {
      const auto it = entries_.find(lru_.back());
      used_ -= it->second.bytes.size();
      entries_.erase(it);
      lru_.pop_back();
      evictions_++;
    }
  }

  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Fingerprint> lru_;
  std::unordered_map<Fingerprint, Entry> entries_;
};
}  // namespace

RestoreStats AlaccRestore::restore(std::span<const ChunkLoc> stream,
                                   ContainerFetcher& fetcher,
                                   const ChunkSink& sink) {
  RestoreStats stats;

  // Initial split: half assembly area, half chunk cache.
  std::size_t area_bytes = std::max(container_size_, total_budget_ / 2);
  ChunkCache cache;
  cache.set_capacity(total_budget_ - std::min(total_budget_, area_bytes));

  std::vector<std::uint8_t> area;
  std::vector<std::size_t> offsets;
  std::vector<bool> filled;

  std::uint64_t epoch_cache_hits = 0;
  std::uint64_t epoch_reads = 0;

  std::size_t pos = 0;
  while (pos < stream.size()) {
    std::size_t end = pos;
    std::size_t total = 0;
    while (end < stream.size() &&
           (end == pos || total + stream[end].size <= area_bytes)) {
      total += stream[end].size;
      ++end;
    }

    area.assign(total, 0);
    offsets.assign(end - pos, 0);
    filled.assign(end - pos, false);
    std::size_t offset = 0;
    for (std::size_t i = pos; i < end; ++i) {
      offsets[i - pos] = offset;
      offset += stream[i].size;
    }

    // Fingerprints needed beyond this area, within the look-ahead window:
    // candidates for the chunk cache.
    std::unordered_set<Fingerprint> needed_later;
    const std::size_t look_end =
        std::min(stream.size(), end + lookahead_chunks_);
    for (std::size_t j = end; j < look_end; ++j) {
      needed_later.insert(stream[j].fp);
    }

    for (std::size_t i = pos; i < end; ++i) {
      if (filled[i - pos]) continue;

      // 1. Chunk cache.
      if (const auto* bytes = cache.get(stream[i].fp)) {
        std::memcpy(area.data() + offsets[i - pos], bytes->data(),
                    bytes->size());
        filled[i - pos] = true;
        stats.cache_hits++;
        epoch_cache_hits++;
        continue;
      }

      // 2. Container read: fill all slots it serves, feed the chunk cache
      // with its look-ahead-relevant chunks.
      const auto container = fetcher.fetch(stream[i]);
      stats.container_reads++;
      epoch_reads++;
      if (!container) {
        for (std::size_t j = i; j < end; ++j) {
          if (!filled[j - pos] && stream[j].key() == stream[i].key()) {
            filled[j - pos] = true;
            stats.failed_chunks++;
          }
        }
        continue;
      }
      for (std::size_t j = i; j < end; ++j) {
        if (filled[j - pos] || stream[j].key() != stream[i].key()) continue;
        if (const auto bytes = container->read(stream[j].fp)) {
          std::memcpy(area.data() + offsets[j - pos], bytes->data(),
                      bytes->size());
          filled[j - pos] = true;
          if (j != i) stats.cache_hits++;
        }
      }
      for (const auto& [fp, entry] : container->entries()) {
        if (!needed_later.contains(fp)) continue;
        if (const auto bytes = container->read(fp)) cache.put(fp, *bytes);
      }
      // Chunks whose assigned container lacks them stay unfilled: fail
      // them once instead of refetching.
      for (std::size_t j = i; j < end; ++j) {
        if (!filled[j - pos] && stream[j].key() == stream[i].key()) {
          filled[j - pos] = true;
          stats.failed_chunks++;
        }
      }
    }

    for (std::size_t i = pos; i < end; ++i) {
      sink(stream[i],
           std::span(area.data() + offsets[i - pos], stream[i].size));
      stats.restored_bytes += stream[i].size;
      stats.restored_chunks++;
    }
    pos = end;

    // Adaptation: every few areas, move one container's worth of memory
    // toward whichever side is earning its keep.
    if (epoch_reads + epoch_cache_hits >= 64) {
      const bool cache_earning = epoch_cache_hits * 4 >= epoch_reads;
      const std::size_t step = container_size_;
      if (cache_earning && area_bytes > 2 * step) {
        area_bytes -= step;
      } else if (!cache_earning && area_bytes + step <= total_budget_) {
        area_bytes += step;
      }
      cache.set_capacity(total_budget_ -
                         std::min(total_budget_, area_bytes));
      epoch_cache_hits = 0;
      epoch_reads = 0;
    }
  }
  stats.cache_evictions = cache.evictions();
  return stats;
}

}  // namespace hds
