#include "core/active_pool.h"

#include <algorithm>
#include <stdexcept>

#include "common/byte_io.h"
#include "verify/invariant.h"

namespace hds {

Container& ActiveContainerPool::open_container(std::size_t chunk_size) {
  if (open_id_ != 0) {
    auto& open = *containers_.at(open_id_);
    if (open.fits(chunk_size)) return open;
  }
  open_id_ = next_id_++;
  auto container = std::make_shared<Container>(open_id_, container_size_);
  auto& ref = *container;
  containers_.emplace(open_id_, std::move(container));
  return ref;
}

ContainerId ActiveContainerPool::add(const ChunkRecord& chunk) {
  auto& container = open_container(chunk.size);
  bool ok;
  if (!materialize_) {
    ok = container.add_meta(chunk.fp, chunk.size);
  } else if (chunk.data) {
    // Real bytes: copy straight out of the shared ingest buffer.
    ok = container.add(chunk.fp, chunk.bytes());
  } else {
    const auto bytes = chunk.materialize();
    ok = container.add(chunk.fp, bytes);
  }
  if (!ok) throw std::logic_error("active pool: duplicate or oversize chunk");
  index_[chunk.fp] = container.id();
  HDS_CHECK(containers_.at(container.id())->contains(chunk.fp),
            "stored chunk not retrievable from its active container");
  return container.id();
}

const ContainerId* ActiveContainerPool::find(
    const Fingerprint& fp) const noexcept {
  const auto it = index_.find(fp);
  return it == index_.end() ? nullptr : &it->second;
}

std::shared_ptr<const Container> ActiveContainerPool::peek(
    ContainerId cid) const noexcept {
  const auto it = containers_.find(cid);
  return it == containers_.end() ? nullptr : it->second;
}

std::shared_ptr<const Container> ActiveContainerPool::fetch(ContainerId cid) {
  const auto it = containers_.find(cid);
  if (it == containers_.end()) return nullptr;
  stats_.container_reads++;
  stats_.bytes_read += it->second->data_size();
  if (m_reads_ != nullptr) {
    m_reads_->inc();
    m_bytes_read_->inc(it->second->data_size());
  }
  return it->second;
}

void ActiveContainerPool::attach_metrics(obs::MetricsRegistry& registry) {
  m_reads_ = &registry.counter("pool_container_reads");
  m_bytes_read_ = &registry.counter("pool_bytes_read");
}

std::vector<std::uint8_t> ActiveContainerPool::extract(const Fingerprint& fp) {
  const auto idx = index_.find(fp);
  if (idx == index_.end()) {
    throw std::logic_error("active pool: extract of unknown chunk");
  }
  auto& container = *containers_.at(idx->second);
  const auto bytes = container.read(fp);
  if (!bytes) {
    // contains() but unreadable ⇒ the payload failed its per-chunk CRC.
    throw std::runtime_error("active pool: chunk payload corrupt");
  }
  std::vector<std::uint8_t> out(bytes->begin(), bytes->end());
  container.remove(fp);
  index_.erase(idx);
  HDS_INVARIANT(!index_.contains(fp));
  return out;
}

void ActiveContainerPool::discard(const Fingerprint& fp) {
  const auto idx = index_.find(fp);
  if (idx == index_.end()) {
    throw std::logic_error("active pool: discard of unknown chunk");
  }
  containers_.at(idx->second)->remove(fp);
  index_.erase(idx);
  HDS_INVARIANT(!index_.contains(fp));
}

std::vector<ContainerId> ActiveContainerPool::container_ids_sorted() const {
  std::vector<ContainerId> ids;
  ids.reserve(containers_.size());
  for (const auto& [id, _] : containers_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::uint64_t ActiveContainerPool::used_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [_, c] : containers_) total += c->used_bytes();
  return total;
}

std::vector<std::uint8_t> ActiveContainerPool::serialize_state() const {
  ByteWriter writer;
  writer.u32(static_cast<std::uint32_t>(next_id_));
  writer.u32(static_cast<std::uint32_t>(open_id_));
  writer.u32(static_cast<std::uint32_t>(containers_.size()));
  for (const ContainerId id : container_ids_sorted()) {
    writer.blob(containers_.at(id)->serialize());
  }
  return writer.take();
}

bool ActiveContainerPool::restore_state(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  std::uint32_t next_id, open_id, count;
  if (!reader.u32(next_id) || !reader.u32(open_id) || !reader.u32(count)) {
    return false;
  }
  decltype(containers_) loaded;
  decltype(index_) index;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> blob;
    if (!reader.blob(blob)) return false;
    auto container = Container::deserialize(blob);
    if (!container) return false;
    const ContainerId id = container->id();
    for (const auto& [fp, entry] : container->entries()) index[fp] = id;
    loaded.emplace(id,
                   std::make_shared<Container>(std::move(*container)));
  }
  if (!reader.exhausted()) return false;
  next_id_ = static_cast<ContainerId>(next_id);
  open_id_ = static_cast<ContainerId>(open_id);
  containers_ = std::move(loaded);
  index_ = std::move(index);
  return true;
}

std::unordered_map<Fingerprint, ContainerId> ActiveContainerPool::compact(
    double threshold) {
  std::unordered_map<Fingerprint, ContainerId> remap;

  // Sparse = below the utilization threshold. The open container is merged
  // like any other; merging re-opens a fresh tail container anyway.
  std::vector<ContainerId> sparse;
  for (const auto& [id, c] : containers_) {
    if (c->utilization() < threshold || c->chunk_count() == 0) {
      sparse.push_back(id);
    }
  }
  if (sparse.size() < 2) return remap;
  std::sort(sparse.begin(), sparse.end());

  open_id_ = 0;  // force a fresh destination container
  for (const ContainerId src_id : sparse) {
    const auto src = containers_.at(src_id);
    // Copy chunks out in offset order to preserve their adjacency.
    std::vector<std::pair<std::uint32_t, Fingerprint>> order;
    order.reserve(src->entries().size());
    for (const auto& [fp, entry] : src->entries()) {
      order.emplace_back(entry.offset, fp);
    }
    std::sort(order.begin(), order.end());

    for (const auto& [offset, fp] : order) {
      (void)offset;
      // read() CRC-verifies the payload once; the stored entry CRC is then
      // reused so the merge is one memcpy per chunk, no re-checksum.
      const auto read = src->read(fp);
      if (!read) {
        throw std::runtime_error("active pool: chunk payload corrupt");
      }
      const auto bytes = *read;
      const auto entry = src->find(fp);
      auto& dst = open_container(bytes.size());
      // Metadata-only pools stay metadata-only through compaction; never
      // materialize placeholder payloads.
      const bool ok =
          materialize_ ? dst.add_with_crc(fp, bytes, entry->crc)
                       : dst.add_meta(fp,
                                      static_cast<std::uint32_t>(bytes.size()));
      if (!ok) {
        throw std::logic_error("active pool: compaction add failed");
      }
      index_[fp] = dst.id();
      remap[fp] = dst.id();
    }
    containers_.erase(src_id);
  }
  // Post-compaction invariant (Figure 6): merging leaves at most one
  // container (the fresh tail) below the utilization threshold.
  HDS_CHECK(std::count_if(containers_.begin(), containers_.end(),
                          [&](const auto& kv) {
                            return kv.second->utilization() < threshold;
                          }) <= 1,
            "compaction left more than one sparse active container");
  HDS_CHECK(std::all_of(remap.begin(), remap.end(),
                        [&](const auto& kv) {
                          const auto it = containers_.find(kv.second);
                          return it != containers_.end() &&
                                 it->second->contains(kv.first);
                        }),
            "compaction remap points at a container missing the chunk");
  return remap;
}

}  // namespace hds
