// ActiveContainerPool — HiDeStore's staging area for hot chunks (§4.2).
//
// Active containers take the unique chunks of the version being backed up.
// They are *mutable*: after each version, cold chunks are evicted to
// archival containers, leaving holes that variable-size chunks cannot
// refill (Figure 6). The pool therefore merges sparse containers
// (utilization below a threshold) into freshly packed ones, keeping the hot
// set physically dense — which is exactly why the newest version restores
// with few container reads.
//
// Active container IDs live in their own namespace, disjoint from archival
// IDs; recipes reference active chunks with CID 0 and resolve through the
// pool's fingerprint index at restore time.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/chunk.h"
#include "storage/container.h"
#include "storage/container_store.h"

namespace hds {

class ActiveContainerPool {
 public:
  explicit ActiveContainerPool(std::size_t container_size,
                               bool materialize_contents)
      : container_size_(container_size),
        materialize_(materialize_contents) {}

  // Stores a unique chunk, returning the active container ID it landed in.
  ContainerId add(const ChunkRecord& chunk);

  // Where does this chunk currently live? (restore-time CID-0 resolution)
  [[nodiscard]] const ContainerId* find(const Fingerprint& fp) const noexcept;

  // Fetches a container for a restore — counted as one container read.
  [[nodiscard]] std::shared_ptr<const Container> fetch(ContainerId cid);

  // Diagnostic access (fsck): same container, no I/O accounting.
  [[nodiscard]] std::shared_ptr<const Container> peek(
      ContainerId cid) const noexcept;

  // The full fingerprint → active-container index (fsck walks it to verify
  // pool/cache/class-exclusivity invariants).
  [[nodiscard]] const std::unordered_map<Fingerprint, ContainerId>& index()
      const noexcept {
    return index_;
  }

  // Pulls a cold chunk out of the pool: returns its bytes and removes it.
  // Internal data movement — not counted as a restore read.
  [[nodiscard]] std::vector<std::uint8_t> extract(const Fingerprint& fp);

  // Removes a chunk whose bytes the caller already staged elsewhere — the
  // batched eviction path reads the span straight out of the container
  // (Container::remove never touches the data region, so spans stay valid)
  // and discards the entry afterwards, skipping extract()'s copy. Throws on
  // an unknown fingerprint, like extract().
  void discard(const Fingerprint& fp);

  // Merges containers with utilization < threshold into freshly packed
  // ones. Returns the fp→new-CID remap of every chunk that moved.
  std::unordered_map<Fingerprint, ContainerId> compact(double threshold);

  [[nodiscard]] std::size_t container_count() const noexcept {
    return containers_.size();
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return index_.size();
  }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept;
  // Physical footprint: container count × container size.
  [[nodiscard]] std::uint64_t physical_bytes() const noexcept {
    return containers_.size() * container_size_;
  }

  [[nodiscard]] const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  // Mirrors restore-time fetches into `pool_container_reads` /
  // `pool_bytes_read` counters of `registry` (which must outlive the pool).
  void attach_metrics(obs::MetricsRegistry& registry);

  // Cold chunks of one source container, in storage-offset order — eviction
  // preserves the physical adjacency the chunks already had.
  [[nodiscard]] std::vector<ContainerId> container_ids_sorted() const;

  // Pool-state persistence (next/open IDs + every container). The index is
  // rebuilt from container contents on load.
  [[nodiscard]] std::vector<std::uint8_t> serialize_state() const;
  bool restore_state(std::span<const std::uint8_t> bytes);

 private:
  Container& open_container(std::size_t chunk_size);

  std::size_t container_size_;
  bool materialize_;
  ContainerId next_id_ = 1;
  ContainerId open_id_ = 0;  // 0 = none
  std::unordered_map<ContainerId, std::shared_ptr<Container>> containers_;
  std::unordered_map<Fingerprint, ContainerId> index_;
  IoStats stats_;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
};

}  // namespace hds
