#include "core/hidestore.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "common/byte_io.h"
#include "common/crc32.h"
#include "obs/log.h"
#include "storage/durable.h"
#include "storage/manifest.h"
#include "restore/chunk_index.h"
#include "restore/faa.h"
#include "restore/partial.h"
#include "restore/read_ahead.h"
#include "verify/invariant.h"

namespace hds {

namespace {
// Dispatches fetches to the archival store or the active pool. When a
// restore's per-container chunk index is attached, archival fetches go
// through read_chunks() so the file-backed store can serve them with
// footer-index partial reads; accounting is identical (one container read
// of full logical size either way). The index is const — the read-ahead
// prefetch thread shares the fetcher.
class HiDeStoreFetcher final : public ContainerFetcher {
 public:
  HiDeStoreFetcher(ContainerStore& archival, ActiveContainerPool& pool,
                   const ContainerChunkIndex* needed = nullptr)
      : archival_(archival), pool_(pool), needed_(needed) {}

  std::shared_ptr<const Container> fetch(const ChunkLoc& loc) override {
    if (loc.active) {
      auto container = pool_.fetch(loc.cid);
      if (container) {
        pool_fetches_.fetch_add(1, std::memory_order_relaxed);
      }
      return container;
    }
    if (needed_ != nullptr) {
      if (const auto it = needed_->find(loc.cid); it != needed_->end()) {
        return archival_.read_chunks(loc.cid, it->second, &meter_);
      }
    }
    return archival_.read(loc.cid, &meter_);
  }

  // Exact per-stream accounting: every archival read this fetcher issued
  // (consumer thread + prefetch workers), immune to other restore streams
  // sharing the store — global-counter deltas are not (they attribute a
  // concurrent stream's reads to whichever stream samples last).
  [[nodiscard]] const ReadMeter& meter() const noexcept { return meter_; }
  [[nodiscard]] std::uint64_t pool_fetches() const noexcept {
    return pool_fetches_.load(std::memory_order_relaxed);
  }

 private:
  ContainerStore& archival_;
  ActiveContainerPool& pool_;
  const ContainerChunkIndex* needed_;
  ReadMeter meter_;
  std::atomic<std::uint64_t> pool_fetches_{0};
};
}  // namespace

namespace {
std::shared_ptr<ContainerStore> make_archival_store(
    const HiDeStoreConfig& config, bool index_existing) {
  if (config.storage_dir.empty()) {
    return std::make_shared<MemoryContainerStore>();
  }
  return std::make_shared<FileContainerStore>(
      config.storage_dir / "archival", index_existing, config.io_tuning);
}
}  // namespace

HiDeStore::HiDeStore(const HiDeStoreConfig& config)
    : config_(config),
      store_(make_archival_store(config, /*index_existing=*/false)),
      pool_(config.container_size, config.materialize_contents),
      cache_(config.cache_window) {
  register_metrics();
  store_->attach_metrics(metrics_, "store");
  pool_.attach_metrics(metrics_);
  crc_failures_baseline_ = chunk_crc_failures();
}

HiDeStore::HiDeStore(const HiDeStoreConfig& config,
                     std::shared_ptr<ContainerStore> shared_store)
    : config_(config),
      store_(std::move(shared_store)),
      shared_store_(true),
      pool_(config.container_size, config.materialize_contents),
      cache_(config.cache_window) {
  if (store_ == nullptr) {
    throw std::invalid_argument("HiDeStore: shared store must not be null");
  }
  register_metrics();
  // Deliberately no store_->attach_metrics(): the shared store belongs to
  // the service layer, which mirrors it into ONE registry — per-tenant
  // mirrors would race each other over the same counters.
  pool_.attach_metrics(metrics_);
  crc_failures_baseline_ = chunk_crc_failures();
}

void HiDeStore::register_metrics() {
  for (const char* name :
       {// Backup / dedup (§4.1): t1_hits + t2_hits (+ t0_hits when
        // cache_window == 2) + unique_chunks == chunks_processed, and
        // index_disk_lookups stays 0 forever.
        "chunks_processed", "t1_hits", "t2_hits", "t0_hits", "unique_chunks",
        "cache_migrations", "index_disk_lookups", "logical_bytes",
        "stored_bytes", "backups_completed",
        // Cold eviction / compaction (§4.2).
        "cold_chunks_moved", "cold_bytes_moved", "containers_merged",
        // Restore (§4.4).
        "restores_completed", "restored_bytes", "restored_chunks",
        "restore_container_reads", "restore_cache_hits",
        "restore_cache_evictions", "restore_chain_hops",
        "restore_failed_chunks", "recipe_entries_flattened",
        "restore_prefetch_issued", "restore_prefetch_hits",
        "restore_prefetch_misses", "restore_prefetch_wasted",
        // Deletion (§4.5): delete_chunks_scanned stays 0 — no GC.
        "versions_deleted", "containers_erased", "bytes_reclaimed",
        "delete_chunks_scanned",
        // Integrity: per-chunk CRC mismatches observed on any read path.
        "io_crc_failures",
        // Container I/O fast path (DESIGN.md §10) — all 0 for in-memory
        // repositories.
        "io_fd_cache_hits", "io_fd_cache_opens", "io_block_cache_hits",
        "io_block_cache_misses", "io_block_cache_evictions",
        "io_partial_reads", "io_read_errors",
        // Async read backend (DESIGN.md §13) — batches submitted to the
        // io_uring/threads backend, enter/submit syscalls, and retries the
        // backend absorbed (short reads, EINTR).
        "io_async_batches", "io_async_reads", "io_async_submits",
        "io_async_short_retries", "io_async_eintr_retries"}) {
    (void)metrics_.counter(name);
  }
  for (const char* name : {"backup_ms", "recipe_update_ms",
                           "move_and_merge_ms", "restore_ms", "delete_ms"}) {
    (void)metrics_.histogram(name);
  }
  refresh_gauges();
}

void HiDeStore::refresh_gauges() {
  metrics_.gauge("cache_memory_bytes")
      .set(static_cast<double>(cache_.memory_bytes()));
  metrics_.gauge("active_containers")
      .set(static_cast<double>(pool_.container_count()));
  // Shared store: count THIS tenant's containers (its deletion tags), not
  // every tenant's — the store-wide total belongs to the service registry.
  metrics_.gauge("archival_containers")
      .set(static_cast<double>(shared_store_ ? container_version_.size()
                                             : store_->container_count()));
  metrics_.gauge("active_pool_bytes")
      .set(static_cast<double>(pool_.used_bytes()));
  metrics_.gauge("versions_retained")
      .set(static_cast<double>(recipes_.versions().size()));
  metrics_.gauge("dedup_ratio").set(dedup_ratio());
  // Mirror the process-wide chunk-CRC failure count (growth since this
  // system was opened) into the registry so exporters and `hds_tool stats`
  // surface it alongside everything else.
  auto& crc = metrics_.counter("io_crc_failures");
  const std::uint64_t seen = chunk_crc_failures() - crc_failures_baseline_;
  if (seen > crc.value()) crc.inc(seen - crc.value());
  // Same diff-mirror for the file store's fast-path counters (monotonic
  // since store construction; metrics are reset when a repository reopens,
  // right after the store is rebuilt). Skipped for a shared store — its
  // counters aggregate every tenant and are mirrored once, by the owner.
  if (shared_store_) return;
  if (const auto* file = dynamic_cast<const FileContainerStore*>(store_.get())) {
    const auto io = file->io_stats();
    const auto mirror = [&](const char* name, std::uint64_t value) {
      auto& counter = metrics_.counter(name);
      if (value > counter.value()) counter.inc(value - counter.value());
    };
    mirror("io_fd_cache_hits", io.fd_cache_hits);
    mirror("io_fd_cache_opens", io.fd_cache_opens);
    mirror("io_block_cache_hits", io.block_cache_hits);
    mirror("io_block_cache_misses", io.block_cache_misses);
    mirror("io_block_cache_evictions", io.block_cache_evictions);
    mirror("io_partial_reads", io.partial_reads);
    mirror("io_read_errors", io.read_errors);
    mirror("io_async_batches", io.io_batches);
    mirror("io_async_reads", io.io_reads);
    mirror("io_async_submits", io.io_submits);
    mirror("io_async_short_retries", io.io_short_retries);
    mirror("io_async_eintr_retries", io.io_eintr_retries);
    metrics_.gauge("io_open_fds").set(static_cast<double>(io.open_fds));
    metrics_.gauge("io_block_cache_bytes")
        .set(static_cast<double>(io.block_cache_bytes));
    metrics_.gauge("io_registered_files")
        .set(static_cast<double>(io.io_registered_files));
    // Backend identity: 0 = sync, 1 = threads, 2 = io_uring (aio::Backend
    // enum order) — lets dashboards tell which read path produced the
    // io_async_* numbers.
    metrics_.gauge("io_backend")
        .set(static_cast<double>(static_cast<int>(file->io_backend())));
  }
}

void HiDeStore::set_io_tuning(const FileStoreTuning& tuning) {
  config_.io_tuning = tuning;
  if (auto* file = dynamic_cast<FileContainerStore*>(store_.get())) {
    file->set_tuning(tuning);
  }
}

HiDeStoreOverheads HiDeStore::overheads() const {
  HiDeStoreOverheads o;
  if (const auto* h = metrics_.find_histogram("recipe_update_ms")) {
    o.recipe_update_ms = MeanAccumulator::from_parts(h->sum(), h->count(),
                                                     h->min(), h->max());
  }
  if (const auto* h = metrics_.find_histogram("move_and_merge_ms")) {
    o.move_and_merge_ms = MeanAccumulator::from_parts(h->sum(), h->count(),
                                                      h->min(), h->max());
  }
  if (const auto* c = metrics_.find_counter("cold_chunks_moved")) {
    o.cold_chunks_moved = c->value();
  }
  if (const auto* c = metrics_.find_counter("cold_bytes_moved")) {
    o.cold_bytes_moved = c->value();
  }
  if (const auto* c = metrics_.find_counter("containers_merged")) {
    o.containers_merged = c->value();
  }
  return o;
}

BackupReport HiDeStore::backup(const VersionStream& stream) {
  Stopwatch timer;
  obs::Span backup_span(tracer_, "backup");
  const VersionId version = next_version_++;
  auto prof = profiler_.begin("backup");
  prof->set_version(static_cast<std::uint32_t>(version));

  BackupReport report;
  report.version = version;

  // --- Phase 1: dedup against the fingerprint cache only (§4.1) ---
  std::uint64_t t1_hits = 0, t2_hits = 0, t0_hits = 0;
  Recipe recipe(version);
  {
    obs::Span dedup_span(tracer_, "dedup");
    auto dedup_phase = prof->phase("dedup");
    for (const auto& chunk : stream.chunks) {
      report.logical_bytes += chunk.size;
      report.logical_chunks++;
      CacheTier tier = CacheTier::kT2;
      if (cache_.lookup_and_promote(chunk.fp, &tier) == nullptr) {
        const ContainerId active_cid = pool_.add(chunk);
        cache_.insert_unique(chunk.fp, active_cid, chunk.size);
        report.stored_bytes += chunk.size;
        report.stored_chunks++;
      } else {
        switch (tier) {
          case CacheTier::kT2: t2_hits++; break;
          case CacheTier::kT1: t1_hits++; break;
          case CacheTier::kT0: t0_hits++; break;
        }
      }
      // Every chunk of the newest version is (for now) in active containers.
      recipe.add(chunk.fp, kCidActive, chunk.size);
    }
  }
  metrics_.counter("chunks_processed").inc(report.logical_chunks);
  metrics_.counter("t1_hits").inc(t1_hits);
  metrics_.counter("t2_hits").inc(t2_hits);
  metrics_.counter("t0_hits").inc(t0_hits);
  metrics_.counter("unique_chunks").inc(report.stored_chunks);
  // T1/T0 hits migrate the entry into T2 — the hot set following the data.
  metrics_.counter("cache_migrations").inc(t1_hits + t0_hits);
  metrics_.counter("logical_bytes").inc(report.logical_bytes);
  metrics_.counter("stored_bytes").inc(report.stored_bytes);

  // --- Phase 2: classify, evict cold chunks, merge sparse containers ---
  Stopwatch move_timer;
  ColdMap cold_map;
  {
    obs::Span move_span(tracer_, "move_and_merge");
    auto move_phase = prof->phase("move_and_merge");
    auto cold = cache_.rotate();
    // The cold chunks were last referenced `window` versions ago.
    const VersionId cold_version =
        version > static_cast<VersionId>(config_.cache_window)
            ? version - static_cast<VersionId>(config_.cache_window)
            : 0;
    if (!cold.empty()) {
      evict_cold(std::move(cold), cold_map, cold_version);
    }
    const auto remap = pool_.compact(config_.compaction_threshold);
    if (!remap.empty()) {
      cache_.remap_active(remap);
      metrics_.counter("containers_merged").inc();
    }
    metrics_.histogram("move_and_merge_ms").observe(move_timer.elapsed_ms());
  }

  // --- Phase 3: finalize the recipe one window back (§4.3) ---
  Stopwatch recipe_timer;
  {
    obs::Span recipe_span(tracer_, "recipe_update");
    auto recipe_phase = prof->phase("recipe_update");
    if (config_.cache_window == 1) {
      if (Recipe* prev = recipes_.get(version - 1)) {
        update_previous_recipe(*prev, cold_map, version, nullptr);
      }
    } else if (version >= 2) {
      if (Recipe* prev2 = recipes_.get(version - 2)) {
        std::unordered_set<Fingerprint> between;
        if (const Recipe* prev1 = recipes_.get(version - 1)) {
          for (const auto& e : prev1->entries()) between.insert(e.fp);
        }
        update_previous_recipe(*prev2, cold_map, version, &between);
      }
    }
    metrics_.histogram("recipe_update_ms").observe(recipe_timer.elapsed_ms());
  }

  recipes_.put(std::move(recipe));

  total_logical_bytes_ += report.logical_bytes;
  total_stored_bytes_ += report.stored_bytes;
  report.disk_lookups = 0;  // HiDeStore never consults an on-disk index
  report.index_memory_bytes = 0;  // no full index table (Fig 10)
  report.elapsed_ms = timer.elapsed_ms();
  prof->set_chunks(report.logical_chunks);
  prof->add_bytes(report.logical_bytes, report.stored_bytes);
  // Backup cache economics: dedup hits / unique chunks (each one a store
  // write) / nothing wasted on this path.
  prof->set_cache(t1_hits + t2_hits + t0_hits, report.stored_chunks, 0);
  metrics_.counter("backups_completed").inc();
  metrics_.histogram("backup_ms").observe(report.elapsed_ms);
  refresh_gauges();
  check_version_invariants();
  if (obs::log_enabled(obs::LogLevel::kInfo)) {
    obs::log_info("backup",
                  {{"version", version},
                   {"logical_bytes", report.logical_bytes},
                   {"stored_bytes", report.stored_bytes},
                   {"chunks", report.logical_chunks},
                   {"t1_hits", t1_hits},
                   {"t2_hits", t2_hits},
                   {"unique", report.stored_chunks},
                   {"elapsed_ms", report.elapsed_ms}});
  }
  return report;
}

void HiDeStore::check_version_invariants() const {
#if defined(HDS_VERIFY)
  // Version boundary audit (§4.1/§4.2 coupling): the fingerprint cache and
  // the active pool must describe each other exactly. Forward direction —
  // every cached entry resolves to a pool container that holds the chunk.
  std::size_t cached = 0;
  for (const auto* table :
       {&cache_.current(), &cache_.previous(), &cache_.oldest()}) {
    cached += table->size();
    for (const auto& [fp, entry] : *table) {
      const ContainerId* cid = pool_.find(fp);
      HDS_CHECK(cid != nullptr && *cid == entry.active_cid,
                "cached chunk missing from the active pool index");
      const auto container = pool_.peek(entry.active_cid);
      HDS_CHECK(container != nullptr && container->contains(fp),
                "cached chunk missing from its active container");
    }
  }
  // Reverse direction: the pool holds nothing the cache has forgotten.
  HDS_CHECK(cached == pool_.index().size(),
            "active pool holds chunks absent from every cache table");
#endif
}

void HiDeStore::evict_cold(DoubleHashFingerprintCache::Table cold,
                           ColdMap& cold_map, VersionId cold_version) {
  obs::Span evict_span(tracer_, "evict_cold");
  std::uint64_t chunks_moved = 0, bytes_moved = 0;
  // Evict container by container, chunks in offset order: the adjacency
  // cold chunks had in the active set is preserved in the archival layout,
  // which is what old-version restores have left to lean on.
  std::unordered_map<ContainerId, std::vector<Fingerprint>> by_container;
  for (const auto& [fp, entry] : cold) {
    (void)entry;
    const ContainerId* cid = pool_.find(fp);
    if (cid == nullptr) continue;  // already evicted (duplicate cold entry)
    by_container[*cid].push_back(fp);
  }

  Container archival(store_->reserve_id(), config_.container_size);
  auto flush = [&] {
    if (archival.chunk_count() == 0) return;
    const ContainerId id = archival.id();
    container_version_.emplace(id, cold_version);
    store_->put(std::move(archival));
    archival = Container(store_->reserve_id(), config_.container_size);
  };

  for (const ContainerId src : pool_.container_ids_sorted()) {
    const auto it = by_container.find(src);
    if (it == by_container.end()) continue;
    auto& fps = it->second;
    const auto src_container = pool_.fetch(src);
    std::sort(fps.begin(), fps.end(),
              [&](const Fingerprint& a, const Fingerprint& b) {
                return src_container->find(a)->offset <
                       src_container->find(b)->offset;
              });
    // Batched move: each chunk is staged straight from the source
    // container's data region into the archival container (one copy, CRC
    // carried over from the entry table) and then discarded from the pool —
    // extract()'s intermediate vector is gone. Spans stay valid across
    // discard() because Container::remove never touches the data region.
    // The archival container is written once, sequentially, when it fills.
    for (const auto& fp : fps) {
      const auto entry = src_container->find(fp);
      if (!archival.fits(entry->size)) flush();
      if (entry->offset == Container::kVirtualOffset) {
        // Metadata-only chunk (materialize_contents == false).
        archival.add_meta(fp, entry->size);
      } else {
        const auto bytes = src_container->read(fp);  // CRC-verified span
        if (!bytes) {
          throw std::runtime_error("active pool: chunk payload corrupt");
        }
        archival.add_with_crc(fp, *bytes, entry->crc);
      }
      pool_.discard(fp);
      cold_map[fp] = archival.id();
      chunks_moved++;
      bytes_moved += entry->size;
    }
  }
  flush();
  metrics_.counter("cold_chunks_moved").inc(chunks_moved);
  metrics_.counter("cold_bytes_moved").inc(bytes_moved);
}

ChunkLoc HiDeStore::resolve(
    const RecipeEntry& entry,
    std::unordered_map<VersionId,
                       std::unordered_map<Fingerprint, ContainerId>>&
        chain_cache,
    std::size_t* hops) const {
  ContainerId cid = entry.cid;
  while (cid < 0) {
    const auto version = static_cast<VersionId>(-cid);
    auto [it, fresh] = chain_cache.try_emplace(version);
    if (fresh) {
      if (hops != nullptr) ++*hops;
      const Recipe* recipe = recipes_.get(version);
      if (recipe == nullptr) {
        throw std::runtime_error("recipe chain points at missing recipe");
      }
      for (const auto& e : recipe->entries()) {
        it->second.emplace(e.fp, e.cid);
      }
    }
    const auto hit = it->second.find(entry.fp);
    if (hit == it->second.end()) {
      // Algorithm 1 writes -n for "still in active containers"; the chunk
      // need not literally appear in recipe n (it may live on only through
      // the fingerprint cache / active pool, e.g. a version n-1 leftover).
      // The pool index is authoritative for every hot chunk.
      if (pool_.find(entry.fp) != nullptr) {
        cid = kCidActive;
        break;
      }
      throw std::runtime_error("recipe chain broken: fingerprint not found");
    }
    cid = hit->second;
  }
  if (cid == kCidActive) {
    const ContainerId* active = pool_.find(entry.fp);
    if (active == nullptr) {
      throw std::runtime_error("active chunk missing from pool index");
    }
    return ChunkLoc{entry.fp, entry.size, *active, /*active=*/true};
  }
  return ChunkLoc{entry.fp, entry.size, cid, /*active=*/false};
}

RestoreReport HiDeStore::restore(VersionId version, const ChunkSink& sink) {
  RestoreConfig cache_config;
  cache_config.container_size = config_.container_size;
  FaaRestore policy{cache_config};
  return restore_with(version, policy, sink);
}

namespace {
using ChainCache =
    std::unordered_map<VersionId,
                       std::unordered_map<Fingerprint, ContainerId>>;
}  // namespace

RestoreReport HiDeStore::restore_with(VersionId version,
                                      RestorePolicy& policy,
                                      const ChunkSink& sink) {
  return restore_range(version, 0, UINT64_MAX, policy, sink);
}

RestoreReport HiDeStore::restore_range(VersionId version,
                                       std::uint64_t offset,
                                       std::uint64_t length,
                                       RestorePolicy& policy,
                                       const ChunkSink& sink) {
  Stopwatch timer;
  obs::Span restore_span(tracer_, "restore");
  if (tracer_ != nullptr) tracer_->set_thread_name("restore_main");
  auto prof = profiler_.begin("restore");
  prof->set_version(static_cast<std::uint32_t>(version));
  RestoreReport report;
  report.version = version;

  if (config_.flatten_before_restore) flatten_recipes();

  const Recipe* recipe = recipes_.get(version);
  if (recipe == nullptr) return report;

  ChainCache chain_cache;
  std::vector<ChunkLoc> stream;
  stream.reserve(recipe->chunk_count());
  std::size_t hops = 0;
  {
    obs::Span resolve_span(tracer_, "resolve_recipe");
    auto resolve_phase = prof->phase("resolve_recipe");
    for (const auto& e : recipe->entries()) {
      stream.push_back(resolve(e, chain_cache, &hops));
    }
  }
  metrics_.counter("restore_chain_hops").inc(hops);

  // Per-container fingerprint sets of this restore, so archival fetches can
  // use the store's partial-read fast path. Const once built — shared with
  // the read-ahead thread.
  const ContainerChunkIndex needed = build_container_chunk_index(stream);
  HiDeStoreFetcher direct(*store_, pool_, &needed);
  ContainerFetcher* fetcher = &direct;
  const bool whole = offset == 0 && length == UINT64_MAX;
  std::unique_ptr<ReadAheadFetcher> read_ahead;
  if (read_ahead_depth_ > 0 && whole) {
    ReadAheadConfig ra_config;
    ra_config.depth = read_ahead_depth_;
    ra_config.in_flight = read_ahead_in_flight_;
    ra_config.metrics = &metrics_;
    ra_config.tracer = tracer_;
    // Flow ids are base + loc.key() (key's top bit is the 33-bit
    // active|cid pair), so shifting a fresh tracer id past bit 33 keeps
    // concurrent restores' flows disjoint.
    ra_config.flow_id_base =
        tracer_ != nullptr ? tracer_->next_id() << 33 : 0;
    ra_config.profile = prof.get();
    read_ahead =
        std::make_unique<ReadAheadFetcher>(direct, stream, ra_config);
    fetcher = read_ahead.get();
  }
  {
    obs::Span policy_span(tracer_, "policy_restore");
    auto policy_phase = prof->phase("policy_restore");
    report.stats =
        whole ? policy.restore(stream, *fetcher, sink)
              : restore_byte_range(stream, offset, length, policy, *fetcher,
                                   sink);
  }
  std::uint64_t wasted = 0;
  if (read_ahead) {
    read_ahead->stop();
    wasted = read_ahead->wasted_reads();
    metrics_.counter("restore_prefetch_wasted").inc(wasted);
  }
  // Policies count fetch() calls themselves; cross-check with THIS stream's
  // fetcher meter — not global store-counter deltas, which would attribute
  // a concurrent restore's reads (and physical bytes) to whoever samples
  // last. Wasted prefetches (containers read ahead that the policy's own
  // cache made unnecessary) are excluded so the reported count equals the
  // serial run's — they are tracked by restore_prefetch_wasted instead.
  const auto stream_reads =
      direct.meter().container_reads.load(std::memory_order_relaxed) +
      direct.pool_fetches();
  report.stats.container_reads = stream_reads - wasted;
  report.elapsed_ms = timer.elapsed_ms();
  prof->set_chunks(report.stats.restored_chunks);
  prof->add_bytes(
      report.stats.restored_bytes,
      direct.meter().bytes_read_physical.load(std::memory_order_relaxed));
  prof->set_container_reads(report.stats.container_reads);
  // Restore cache economics: policy cache hits / fetches that reached a
  // store / prefetches the policy's cache made unnecessary.
  prof->set_cache(report.stats.cache_hits, report.stats.container_reads,
                  wasted);
  metrics_.counter("restores_completed").inc();
  metrics_.counter("restored_bytes").inc(report.stats.restored_bytes);
  metrics_.counter("restored_chunks").inc(report.stats.restored_chunks);
  metrics_.counter("restore_container_reads")
      .inc(report.stats.container_reads);
  metrics_.counter("restore_cache_hits").inc(report.stats.cache_hits);
  metrics_.counter("restore_cache_evictions")
      .inc(report.stats.cache_evictions);
  metrics_.counter("restore_failed_chunks").inc(report.stats.failed_chunks);
  metrics_.histogram("restore_ms").observe(report.elapsed_ms);
  if (obs::log_enabled(obs::LogLevel::kInfo)) {
    obs::log_info("restore",
                  {{"version", version},
                   {"policy", policy.name()},
                   {"restored_bytes", report.stats.restored_bytes},
                   {"container_reads", report.stats.container_reads},
                   {"cache_hits", report.stats.cache_hits},
                   {"chain_hops", static_cast<std::uint64_t>(hops)},
                   {"failed_chunks", report.stats.failed_chunks},
                   {"elapsed_ms", report.elapsed_ms}});
  }
  return report;
}

std::size_t HiDeStore::flatten_recipes() {
  obs::Span flatten_span(tracer_, "flatten_recipes");
  const std::size_t updated =
      hds::flatten_recipes(recipes_, config_.cache_window);
  metrics_.counter("recipe_entries_flattened").inc(updated);
  return updated;
}

namespace {
constexpr std::uint32_t kStateMagic = 0x48445353;  // "HDSS"
// Format 3: a commit epoch (u64) follows the format field, tying the
// snapshot to its MANIFEST record. Format 2 (pre-journal, per-chunk CRC
// column) files are still accepted and adopt epoch 1 on load.
constexpr std::uint32_t kStateFormat = 3;
constexpr std::uint32_t kStateFormatLegacy = 2;
constexpr const char* kStateFile = "state.hds";
// Rename-aside copy of the committed state, alive only inside a save():
// present on open() => a save crashed, and the journal decides which of
// the two snapshots is the committed one.
constexpr const char* kStatePrevFile = "state.prev.hds";

std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto end = in.tellg();
  // tellg() returns -1 on failure; casting that to size_t would request an
  // absurd allocation. Treat it as the read failure it is.
  if (end < 0) return std::nullopt;
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(end));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in && !bytes.empty()) return std::nullopt;
  return bytes;
}

// Reads just enough of a (possibly uncommitted) format-3 snapshot to say
// which versions rolling it back discards. Tolerates a bad CRC trailer —
// the prefix is all that is needed.
struct StateHeader {
  std::uint64_t epoch = 0;
  VersionId next_version = 0;
};
std::optional<StateHeader> peek_state_header(
    std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  std::uint32_t magic, format;
  if (!reader.u32(magic) || magic != kStateMagic) return std::nullopt;
  if (!reader.u32(format) || format != kStateFormat) return std::nullopt;
  StateHeader header;
  if (!reader.u64(header.epoch)) return std::nullopt;
  std::uint64_t u64v;
  double f64v;
  std::uint32_t u32v;
  std::uint8_t u8v;
  if (!reader.u64(u64v) || !reader.f64(f64v) || !reader.u32(u32v) ||
      !reader.u8(u8v) || !reader.u8(u8v) || !reader.u8(u8v) ||
      !reader.u32(header.next_version)) {
    return std::nullopt;
  }
  return header;
}
}  // namespace

void HiDeStore::save(const std::filesystem::path& dir) {
  // Shared-store tenants never inline containers (they belong to every
  // tenant); their storage_dir is the tenant state directory.
  const bool inline_archival = !shared_store_ && config_.storage_dir.empty();
  if (!config_.storage_dir.empty() &&
      std::filesystem::weakly_canonical(dir) !=
          std::filesystem::weakly_canonical(config_.storage_dir)) {
    throw std::invalid_argument(
        "HiDeStore::save: a file-backed repository must be saved into its "
        "own storage_dir");
  }
  std::filesystem::create_directories(dir);

  const std::uint64_t epoch = epoch_ + 1;
  ByteWriter writer;
  writer.u32(kStateMagic);
  writer.u32(kStateFormat);
  writer.u64(epoch);
  writer.u64(config_.container_size);
  writer.f64(config_.compaction_threshold);
  writer.u32(static_cast<std::uint32_t>(config_.cache_window));
  writer.u8(config_.materialize_contents ? 1 : 0);
  writer.u8(config_.flatten_before_restore ? 1 : 0);
  // Archival placement: 0 = file-backed in <dir>/archival, 1 = serialized
  // inline below, 2 = shared store owned by the service layer.
  writer.u8(shared_store_ ? 2 : (inline_archival ? 1 : 0));
  writer.u32(next_version_);
  writer.u32(oldest_version_);
  writer.u64(total_logical_bytes_);
  writer.u64(total_stored_bytes_);

  // Deletion tags.
  writer.u32(static_cast<std::uint32_t>(container_version_.size()));
  for (const auto& [cid, version] : container_version_) {
    writer.u32(static_cast<std::uint32_t>(cid));
    writer.u32(version);
  }

  // Recipes, oldest first.
  const auto versions = recipes_.versions();
  writer.u32(static_cast<std::uint32_t>(versions.size()));
  for (const VersionId v : versions) {
    writer.blob(recipes_.get(v)->serialize());
  }

  // Active pool + archival containers (inline only for in-memory stores;
  // a file-backed repository already has them as individual files).
  writer.blob(pool_.serialize_state());
  if (inline_archival) {
    auto ids = store_->ids();
    std::sort(ids.begin(), ids.end());
    writer.u32(static_cast<std::uint32_t>(ids.size()));
    for (const ContainerId cid : ids) {
      writer.blob(store_->read(cid)->serialize());
    }
  }
  writer.u32(static_cast<std::uint32_t>(store_->next_id()));

  auto bytes = writer.take();
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  ByteWriter trailer;
  trailer.u32(crc);
  bytes.insert(bytes.end(), trailer.bytes().begin(), trailer.bytes().end());
  // The journal vouches for the published file byte-for-byte, so its CRC
  // covers the trailer too (unlike `crc`, which the trailer itself stores).
  const std::uint32_t file_crc = crc32(bytes.data(), bytes.size());

  const auto state_path = dir / kStateFile;
  const auto prev_path = dir / kStatePrevFile;

  // Commit protocol: (1) move the committed state aside, (2) write the new
  // state atomically, (3) append to the MANIFEST — its rename is the commit
  // point — then (4) drop the aside copy. A crash at any step leaves either
  // the old or the new version fully recoverable by open().
  bool wrote = false;
  try {
    if (std::filesystem::exists(state_path)) {
      durable::atomic_rename(state_path, prev_path);
    }
    durable::atomic_write_file(state_path, bytes);
    wrote = true;

    Manifest manifest;
    if (load_manifest(dir, manifest) != ManifestStatus::kOk ||
        (manifest.head() != nullptr && manifest.head()->epoch >= epoch)) {
      // Foreign, corrupt or future-dated journal: restart it rather than
      // publish a record the existing history contradicts.
      manifest.records.clear();
    }
    CommitRecord record;
    record.epoch = epoch;
    record.next_version = next_version_;
    record.oldest_version = oldest_version_;
    record.store_next = store_->next_id();
    record.state_size = bytes.size();
    record.state_crc = file_crc;
    manifest.append(record);
    store_manifest(dir, manifest);
  } catch (const durable::InjectedCrash&) {
    throw;  // simulated crash: leave the directory exactly as a crash would
  } catch (...) {
    // Real write failure (disk full, permissions): roll the directory back
    // so the previously committed version is the visible one again. Only
    // remove state.hds if this save actually wrote it — the failure may
    // have struck before or during the aside rename, while state.hds was
    // still the committed copy. The in-memory system (and epoch_) is
    // untouched; the caller may retry.
    std::error_code ec;
    if (wrote) std::filesystem::remove(state_path, ec);
    if (std::filesystem::exists(prev_path, ec) &&
        !std::filesystem::exists(state_path, ec)) {
      std::filesystem::rename(prev_path, state_path, ec);
    }
    throw;
  }
  epoch_ = epoch;
  std::error_code ec;
  std::filesystem::remove(prev_path, ec);  // best-effort; open() also cleans
}

std::unique_ptr<HiDeStore> HiDeStore::load(
    const std::filesystem::path& dir) {
  return open(dir, nullptr);
}

std::unique_ptr<HiDeStore> HiDeStore::open(const std::filesystem::path& dir,
                                           RecoveryReport* report) {
  return open_impl(dir, nullptr, report);
}

std::unique_ptr<HiDeStore> HiDeStore::open_shared(
    const std::filesystem::path& dir,
    std::shared_ptr<ContainerStore> shared_store, RecoveryReport* report) {
  if (shared_store == nullptr) return nullptr;
  return open_impl(dir, std::move(shared_store), report);
}

std::unique_ptr<HiDeStore> HiDeStore::open_impl(
    const std::filesystem::path& dir,
    std::shared_ptr<ContainerStore> shared, RecoveryReport* report_out) {
  RecoveryReport local;
  RecoveryReport& report = report_out != nullptr ? *report_out : local;
  report = RecoveryReport{};

  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return nullptr;

  // 1. Sweep atomic-writer debris: a *.tmp file is by construction an
  // unpublished partial write from a crashed process.
  std::size_t swept = 0;
  for (const char* sub : {".", "archival"}) {
    const auto subdir = dir / sub;
    if (!std::filesystem::is_directory(subdir, ec)) continue;
    std::vector<std::filesystem::path> debris;
    for (const auto& entry :
         std::filesystem::directory_iterator(subdir, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".tmp") {
        debris.push_back(entry.path());
      }
    }
    for (const auto& path : debris) {
      quarantine_file(dir, path, report);
      ++swept;
    }
  }
  if (swept > 0) {
    report.notes.push_back("swept " + std::to_string(swept) +
                           " partial write(s) (*.tmp)");
  }

  // 2. The journal names the newest committed version.
  Manifest manifest;
  const ManifestStatus status = load_manifest(dir, manifest);
  if (status == ManifestStatus::kCorrupt) {
    quarantine_file(dir, dir / Manifest::kFileName, report);
    report.notes.push_back("MANIFEST unreadable; quarantined (rebuilding)");
  } else if (status == ManifestStatus::kIoError) {
    // The bytes may still be fine on disk — don't quarantine over a
    // transient read failure; just recover without the journal.
    report.notes.push_back("MANIFEST read failed (I/O); ignoring journal");
  }
  const CommitRecord* head = manifest.head();

  const auto state_path = dir / kStateFile;
  const auto prev_path = dir / kStatePrevFile;
  auto state_bytes = read_file_bytes(state_path);
  auto prev_bytes = read_file_bytes(prev_path);

  const auto matches = [](const std::optional<std::vector<std::uint8_t>>& b,
                          const CommitRecord& r) {
    return b.has_value() && b->size() == r.state_size &&
           crc32(b->data(), b->size()) == r.state_crc;
  };

  // 3. Pick the snapshot to trust. The committed one is whichever file the
  // journal head vouches for byte-for-byte; with no usable journal, fall
  // back to the newest parseable candidate and rebuild the journal from it.
  std::unique_ptr<HiDeStore> sys;
  const std::vector<std::uint8_t>* committed_bytes = nullptr;
  bool manifest_trusted = false;

  if (head != nullptr && matches(state_bytes, *head)) {
    sys = parse_state(dir, *state_bytes, shared);
    if (sys != nullptr) {
      committed_bytes = &*state_bytes;
      manifest_trusted = true;
      if (prev_bytes.has_value()) {
        // Crash after the commit point but before cleanup: the aside copy
        // of the prior version is committed debris.
        std::filesystem::remove(prev_path, ec);
        report.performed = true;
        report.notes.push_back(
            "removed leftover state.prev.hds (crash after commit)");
      }
    }
  }
  if (sys == nullptr && head != nullptr && matches(prev_bytes, *head)) {
    sys = parse_state(dir, *prev_bytes, shared);
    if (sys != nullptr) {
      // Crash between the state rename and the journal commit: state.hds
      // (if present) is an uncommitted version. Quarantine it, promote the
      // aside copy back.
      if (state_bytes.has_value()) {
        if (const auto hdr = peek_state_header(*state_bytes);
            hdr.has_value() && hdr->next_version > head->next_version) {
          report.rolled_back_versions =
              hdr->next_version - head->next_version;
        }
        quarantine_file(dir, state_path, report);
      }
      std::filesystem::rename(prev_path, state_path, ec);
      committed_bytes = &*prev_bytes;
      manifest_trusted = true;
      report.performed = true;
      report.notes.push_back("rolled back to committed epoch " +
                             std::to_string(head->epoch));
    }
  }
  if (sys == nullptr) {
    if (head != nullptr) {
      report.performed = true;
      report.notes.push_back(
          "no state file matches the MANIFEST head; best-effort open");
    }
    if (state_bytes.has_value()) {
      sys = parse_state(dir, *state_bytes, shared);
      if (sys != nullptr) {
        committed_bytes = &*state_bytes;
        if (prev_bytes.has_value()) {
          // state.hds is the newest parseable snapshot; the aside copy is
          // an older one whose committal we can no longer judge. Keep it
          // out of the way but recoverable.
          quarantine_file(dir, prev_path, report);
        }
      } else {
        quarantine_file(dir, state_path, report);
        report.notes.push_back("state.hds unreadable; quarantined");
      }
    }
    if (sys == nullptr && prev_bytes.has_value()) {
      sys = parse_state(dir, *prev_bytes, shared);
      if (sys != nullptr) {
        std::filesystem::rename(prev_path, state_path, ec);
        committed_bytes = &*prev_bytes;
        report.performed = true;
        report.notes.push_back("promoted state.prev.hds to state.hds");
      } else {
        quarantine_file(dir, prev_path, report);
        report.notes.push_back("state.prev.hds unreadable; quarantined");
      }
    }
  }
  if (sys == nullptr) {
    // Nothing committed is recoverable. Report what the journal knows.
    if (head != nullptr) {
      report.committed_epoch = head->epoch;
      report.committed_version = head->next_version - 1;
    }
    return nullptr;
  }

  // 4. Reconcile the container directory with the committed deletion tags.
  // Skipped for a shared store: one tenant's tags cover only its own
  // containers, so "untagged" does not mean "orphan" — the service layer
  // reconciles against the union of every tenant's tags instead.
  if (auto* fstore = shared == nullptr
                         ? dynamic_cast<FileContainerStore*>(sys->store_.get())
                         : nullptr) {
    auto on_disk = fstore->ids();
    std::sort(on_disk.begin(), on_disk.end());
    for (const ContainerId id : on_disk) {
      if (sys->container_version_.contains(id)) continue;
      // Sealed by a transaction that never committed: an orphan.
      report.orphan_containers.push_back(id);
      quarantine_file(dir, fstore->container_path(id), report);
      fstore->forget(id);
    }
    for (const auto& [id, version] : sys->container_version_) {
      if (!std::filesystem::exists(fstore->container_path(id), ec)) {
        report.missing_containers.push_back(id);
      }
    }
    std::sort(report.missing_containers.begin(),
              report.missing_containers.end());
    if (!report.missing_containers.empty()) {
      report.notes.push_back(
          std::to_string(report.missing_containers.size()) +
          " tagged archival container(s) missing — affected versions "
          "cannot fully restore");
    }
  }

  // 5. With no trustworthy journal, rebuild it from the snapshot we loaded
  // so the next open() (and fsck) has a commit record to check against.
  if (!manifest_trusted) {
    if (sys->epoch_ == 0) sys->epoch_ = 1;
    Manifest rebuilt;
    CommitRecord record;
    record.epoch = sys->epoch_;
    record.next_version = sys->next_version_;
    record.oldest_version = sys->oldest_version_;
    record.store_next = sys->store_->next_id();
    record.state_size = committed_bytes->size();
    record.state_crc = crc32(committed_bytes->data(),
                             committed_bytes->size());
    rebuilt.append(record);
    try {
      store_manifest(dir, rebuilt);
      report.performed = true;
      report.notes.push_back("rebuilt MANIFEST at epoch " +
                             std::to_string(record.epoch));
    } catch (const durable::WriteError& e) {
      report.notes.push_back(std::string("could not rebuild MANIFEST: ") +
                             e.what());
    }
  }

  report.opened = true;
  report.committed_epoch = sys->epoch_;
  report.committed_version = sys->latest_version();
  sys->refresh_gauges();
  return sys;
}

std::unique_ptr<HiDeStore> HiDeStore::parse_state(
    const std::filesystem::path& dir, std::span<const std::uint8_t> bytes,
    std::shared_ptr<ContainerStore> shared) {
  if (bytes.size() < 12) return nullptr;

  // CRC trailer over the whole body.
  std::uint32_t stored_crc = 0;
  for (int i = 3; i >= 0; --i) {
    stored_crc = (stored_crc << 8) | bytes[bytes.size() - 4 +
                                           static_cast<std::size_t>(i)];
  }
  if (crc32(bytes.data(), bytes.size() - 4) != stored_crc) return nullptr;

  ByteReader reader(bytes.subspan(0, bytes.size() - 4));
  std::uint32_t magic, format;
  if (!reader.u32(magic) || magic != kStateMagic) return nullptr;
  if (!reader.u32(format) ||
      (format != kStateFormat && format != kStateFormatLegacy)) {
    return nullptr;
  }
  std::uint64_t epoch = 1;  // pre-journal snapshots adopt epoch 1
  if (format == kStateFormat && !reader.u64(epoch)) return nullptr;
  if (format == kStateFormat && epoch == 0) return nullptr;

  HiDeStoreConfig config;
  std::uint64_t container_size;
  std::uint32_t window;
  std::uint8_t materialize, flatten, inline_archival;
  if (!reader.u64(container_size) ||
      !reader.f64(config.compaction_threshold) || !reader.u32(window) ||
      !reader.u8(materialize) || !reader.u8(flatten) ||
      !reader.u8(inline_archival)) {
    return nullptr;
  }
  config.container_size = container_size;
  config.cache_window = static_cast<int>(window);
  config.materialize_contents = materialize != 0;
  config.flatten_before_restore = flatten != 0;
  if (config.cache_window != 1 && config.cache_window != 2) return nullptr;
  // inline_archival: 0 = file-backed archival under `dir`, 1 = containers
  // serialized inline (in-memory repo), 2 = shared store owned by a
  // service. A snapshot written in one mode cannot be opened in the other
  // — a tenant dir opened as a standalone repo (or vice versa) would wire
  // the wrong store underneath the deletion tags.
  if (inline_archival > 2) return nullptr;
  if ((inline_archival == 2) != (shared != nullptr)) return nullptr;
  if (inline_archival != 1) config.storage_dir = dir;

  auto sys = shared != nullptr
                 ? std::make_unique<HiDeStore>(config, shared)
                 : std::make_unique<HiDeStore>(config);
  sys->epoch_ = epoch;
  if (inline_archival == 0) {
    // Reopen the on-disk container files and resume the ID counter.
    sys->store_ = make_archival_store(config, /*index_existing=*/true);
    sys->store_->attach_metrics(sys->metrics_, "store");
  }
  if (!reader.u32(sys->next_version_) || !reader.u32(sys->oldest_version_) ||
      !reader.u64(sys->total_logical_bytes_) ||
      !reader.u64(sys->total_stored_bytes_)) {
    return nullptr;
  }

  std::uint32_t tag_count;
  if (!reader.u32(tag_count)) return nullptr;
  for (std::uint32_t i = 0; i < tag_count; ++i) {
    std::uint32_t cid, version;
    if (!reader.u32(cid) || !reader.u32(version)) return nullptr;
    sys->container_version_.emplace(static_cast<ContainerId>(cid), version);
  }

  std::uint32_t recipe_count;
  if (!reader.u32(recipe_count)) return nullptr;
  for (std::uint32_t i = 0; i < recipe_count; ++i) {
    std::vector<std::uint8_t> blob;
    if (!reader.blob(blob)) return nullptr;
    auto recipe = Recipe::deserialize(blob);
    if (!recipe) return nullptr;
    sys->recipes_.put(std::move(*recipe));
  }

  std::vector<std::uint8_t> pool_blob;
  if (!reader.blob(pool_blob) || !sys->pool_.restore_state(pool_blob)) {
    return nullptr;
  }

  if (inline_archival == 1) {
    std::uint32_t archival_count;
    if (!reader.u32(archival_count)) return nullptr;
    for (std::uint32_t i = 0; i < archival_count; ++i) {
      std::vector<std::uint8_t> blob;
      if (!reader.blob(blob)) return nullptr;
      auto container = Container::deserialize(blob);
      if (!container) return nullptr;
      sys->store_->put(std::move(*container));
    }
  }
  std::uint32_t store_next;
  if (!reader.u32(store_next) || !reader.exhausted()) return nullptr;
  if (shared != nullptr) {
    // The shared counter is the max over every tenant's snapshot — raise
    // it, never lower it, and leave the shared stats alone (they aggregate
    // all tenants and belong to the service).
    sys->store_->bump_next_id(static_cast<ContainerId>(store_next));
  } else {
    sys->store_->restore_next_id(static_cast<ContainerId>(store_next));
    sys->store_->reset_stats();
  }

  // Rebuild the fingerprint cache by prefetching the newest recipes — the
  // paper's §4.1 mechanism ("the metadata of CV in the recipe is prefetched
  // to T1").
  DoubleHashFingerprintCache::Table t1, t0;
  const VersionId latest = sys->latest_version();
  if (const Recipe* newest = sys->recipes_.get(latest)) {
    for (const auto& e : newest->entries()) {
      if (e.cid != kCidActive) continue;
      if (const ContainerId* cid = sys->pool_.find(e.fp)) {
        t1.emplace(e.fp, CacheEntry{*cid, e.size});
      }
    }
  }
  if (config.cache_window == 2 && latest >= 2) {
    if (const Recipe* previous = sys->recipes_.get(latest - 1)) {
      for (const auto& e : previous->entries()) {
        if (e.cid != kCidActive || t1.contains(e.fp)) continue;
        if (const ContainerId* cid = sys->pool_.find(e.fp)) {
          t0.emplace(e.fp, CacheEntry{*cid, e.size});
        }
      }
    }
  }
  sys->cache_.restore_tables(std::move(t1), std::move(t0));
  // Like reset_stats() above: loading replays container writes into the
  // store, which the mirrored counters saw. Start the process clean.
  sys->metrics_.reset();
  sys->refresh_gauges();
  return sys;
}

DeletionReport HiDeStore::delete_versions_up_to(VersionId version) {
  Stopwatch timer;
  obs::Span delete_span(tracer_, "delete_versions");
  DeletionReport report;

  for (VersionId v = oldest_version_;
       v <= version && v < latest_version(); ++v) {
    if (recipes_.erase(v)) report.versions_deleted++;
  }
  oldest_version_ = std::max(oldest_version_, version + 1);

  // Cold chunks are grouped by the version that last referenced them; once
  // every version up to `version` is retired, their containers hold only
  // unreachable chunks and vanish wholesale — no per-chunk liveness check.
  std::vector<ContainerId> victims;
  for (const auto& [cid, tag] : container_version_) {
    if (tag <= version) victims.push_back(cid);
  }
  for (const ContainerId cid : victims) {
    if (const auto container = store_->read(cid)) {
      report.bytes_reclaimed += container->used_bytes();
    }
    store_->erase(cid);
    container_version_.erase(cid);
    report.containers_erased++;
  }
  report.elapsed_ms = timer.elapsed_ms();
  metrics_.counter("versions_deleted").inc(report.versions_deleted);
  metrics_.counter("containers_erased").inc(report.containers_erased);
  metrics_.counter("bytes_reclaimed").inc(report.bytes_reclaimed);
  metrics_.counter("delete_chunks_scanned").inc(report.chunks_scanned);
  metrics_.histogram("delete_ms").observe(report.elapsed_ms);
  refresh_gauges();
  if (obs::log_enabled(obs::LogLevel::kInfo)) {
    obs::log_info("delete_versions",
                  {{"up_to", version},
                   {"versions_deleted", report.versions_deleted},
                   {"containers_erased", report.containers_erased},
                   {"bytes_reclaimed", report.bytes_reclaimed},
                   {"elapsed_ms", report.elapsed_ms}});
  }
  return report;
}

}  // namespace hds
