// WorkloadAdvisor — the paper's §4 deployment guidance, as code.
//
// "For the workloads that are not included in this paper, we simply trace
// the chunk distribution among versions and determine whether to use the
// proposed scheme, which produces low overhead since we only need to trace
// the metadata of the chunks."
//
// The advisor replays version streams at metadata cost (a tag per
// fingerprint, like the Figure 3 experiment) and measures where duplicate
// chunks come from: the immediately previous version (gap 1), two versions
// back (gap 2 — the macos pattern), or deeper history. From that it
// recommends the fingerprint-cache window, or advises against HiDeStore
// altogether when too much redundancy lives outside any small window
// (HiDeStore would re-store those chunks and lose dedup ratio).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/chunk.h"

namespace hds {

struct AdvisorReport {
  std::uint64_t versions_observed = 0;
  std::uint64_t duplicate_chunks = 0;
  // Duplicate chunks by the gap to their previous appearance.
  std::uint64_t dup_gap1 = 0;        // previous version (window 1 catches)
  std::uint64_t dup_gap2 = 0;        // skipped one version (window 2)
  std::uint64_t dup_gap_deeper = 0;  // older than any supported window

  [[nodiscard]] double gap1_fraction() const noexcept {
    return duplicate_chunks == 0
               ? 0.0
               : static_cast<double>(dup_gap1) /
                     static_cast<double>(duplicate_chunks);
  }
  [[nodiscard]] double gap2_fraction() const noexcept {
    return duplicate_chunks == 0
               ? 0.0
               : static_cast<double>(dup_gap2) /
                     static_cast<double>(duplicate_chunks);
  }
  [[nodiscard]] double deeper_fraction() const noexcept {
    return duplicate_chunks == 0
               ? 0.0
               : static_cast<double>(dup_gap_deeper) /
                     static_cast<double>(duplicate_chunks);
  }
};

enum class Recommendation {
  kWindowOne,      // kernel/gcc/fslhomes-like: T1+T2 suffice
  kWindowTwo,      // macos-like: add T0
  kNotRecommended  // deep-history redundancy: use a traditional index
};

class WorkloadAdvisor {
 public:
  // Loss HiDeStore may accept before the advisor recommends against it:
  // the fraction of duplicate chunks that fall outside the chosen window
  // (each would be re-stored, reducing the dedup ratio).
  explicit WorkloadAdvisor(double max_window_miss = 0.02)
      : max_window_miss_(max_window_miss) {}

  // Feed versions in backup order; metadata only, contents never touched.
  void observe(const VersionStream& stream);

  [[nodiscard]] const AdvisorReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] Recommendation recommend() const noexcept;

 private:
  double max_window_miss_;
  AdvisorReport report_;
  std::unordered_map<Fingerprint, std::uint64_t> last_seen_;
};

}  // namespace hds
