// Crash-recovery reporting for persistent repositories (DESIGN.md §9).
//
// HiDeStore::open() replays the commit protocol in reverse: the MANIFEST
// journal names the newest fully committed version, and everything on disk
// that no committed record vouches for — an uncommitted state snapshot, a
// sealed-but-untagged archival container, atomic-writer temp files — is
// moved into `<repo>/quarantine/` rather than deleted, so an operator can
// inspect an aborted transaction before discarding it. The RecoveryReport
// is the audit trail of that pass; `hds_tool recover` prints it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/container.h"
#include "storage/recipe.h"

namespace hds {

struct RecoveryReport {
  // A system was successfully reconstructed (false => unrecoverable repo;
  // the rest of the report says what was found).
  bool opened = false;
  // Any recovery action was taken (rollback, quarantine, rebuild, sweep).
  // false + opened means the repository was already clean.
  bool performed = false;

  std::uint64_t committed_epoch = 0;   // journal head after recovery
  VersionId committed_version = 0;     // latest restorable version
  // Versions present in an uncommitted state snapshot that were discarded
  // by rolling back to the journal head.
  std::uint32_t rolled_back_versions = 0;

  std::vector<std::string> quarantined;        // paths under quarantine/
  std::vector<ContainerId> orphan_containers;  // quarantined untagged IDs
  std::vector<ContainerId> missing_containers; // tagged but absent: loss
  std::vector<std::string> notes;              // human-readable detail

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
};

// Moves `file` into `<repo>/quarantine/` (suffixing on name collision) and
// records the action in `report`. Falls back to deleting the file if the
// rename fails, noting the loss. Returns the quarantine path.
std::filesystem::path quarantine_file(const std::filesystem::path& repo,
                                      const std::filesystem::path& file,
                                      RecoveryReport& report);

}  // namespace hds
