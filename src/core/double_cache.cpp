#include "core/double_cache.h"

#include <algorithm>
#include <stdexcept>

#include "common/units.h"
#include "verify/invariant.h"

namespace hds {

DoubleHashFingerprintCache::DoubleHashFingerprintCache(int window)
    : window_(window) {
  if (window != 1 && window != 2) {
    throw std::invalid_argument("cache window must be 1 or 2");
  }
}

const CacheEntry* DoubleHashFingerprintCache::lookup_and_promote(
    const Fingerprint& fp, CacheTier* tier) {
  // Case three (Figure 5): already seen in the current version.
  if (const auto it = t2_.find(fp); it != t2_.end()) {
    if (tier != nullptr) *tier = CacheTier::kT2;
    return &it->second;
  }

  // Case two: hot chunk from the previous version — migrate T1 → T2.
  if (const auto it = t1_.find(fp); it != t1_.end()) {
    const auto [t2_it, _] = t2_.emplace(fp, it->second);
    t1_.erase(it);
    if (tier != nullptr) *tier = CacheTier::kT1;
    return &t2_it->second;
  }

  // Extended window: chunk skipped one version (macos case) — T0 → T2.
  if (window_ == 2) {
    if (const auto it = t0_.find(fp); it != t0_.end()) {
      const auto [t2_it, _] = t2_.emplace(fp, it->second);
      t0_.erase(it);
      if (tier != nullptr) *tier = CacheTier::kT0;
      return &t2_it->second;
    }
  }

  return nullptr;  // Case one: unique chunk.
}

void DoubleHashFingerprintCache::insert_unique(const Fingerprint& fp,
                                               ContainerId active_cid,
                                               std::uint32_t size) {
  t2_.emplace(fp, CacheEntry{active_cid, size});
}

DoubleHashFingerprintCache::Table DoubleHashFingerprintCache::rotate() {
  Table cold;
  if (window_ == 1) {
    cold = std::move(t1_);
  } else {
    cold = std::move(t0_);
    t0_ = std::move(t1_);
  }
  t1_ = std::move(t2_);
  t2_ = Table{};
  // Version boundary (§4.1): the current table starts empty, and every
  // evicted entry must name a live active-container home — the eviction
  // pass relies on both.
  HDS_INVARIANT(t2_.empty());
  HDS_CHECK(std::all_of(cold.begin(), cold.end(),
                        [](const auto& kv) {
                          return kv.second.active_cid > 0 &&
                                 kv.second.size > 0;
                        }),
            "cold set entry without an active-container home");
  return cold;
}

void DoubleHashFingerprintCache::remap_active(
    const std::unordered_map<Fingerprint, ContainerId>& map) {
  for (auto* table : {&t0_, &t1_, &t2_}) {
    for (auto& [fp, entry] : *table) {
      if (const auto it = map.find(fp); it != map.end()) {
        entry.active_cid = it->second;
      }
    }
  }
}

}  // namespace hds
