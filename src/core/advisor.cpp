#include "core/advisor.h"

namespace hds {

void WorkloadAdvisor::observe(const VersionStream& stream) {
  const std::uint64_t version = ++report_.versions_observed;
  for (const auto& chunk : stream.chunks) {
    const auto [it, fresh] = last_seen_.try_emplace(chunk.fp, version);
    if (!fresh) {
      const std::uint64_t gap = version - it->second;
      it->second = version;
      if (gap == 0) continue;  // intra-version duplicate: any window hits
      report_.duplicate_chunks++;
      if (gap == 1) {
        report_.dup_gap1++;
      } else if (gap == 2) {
        report_.dup_gap2++;
      } else {
        report_.dup_gap_deeper++;
      }
    }
  }
}

Recommendation WorkloadAdvisor::recommend() const noexcept {
  if (report_.duplicate_chunks == 0) return Recommendation::kWindowOne;
  // Redundancy beyond any window would be re-stored by HiDeStore: if it
  // exceeds the tolerance, a traditional (full or sampled) index serves the
  // workload better.
  if (report_.deeper_fraction() > max_window_miss_) {
    return Recommendation::kNotRecommended;
  }
  // Window 2 costs a third table and a second unfinalized recipe; only
  // recommend it when gap-2 duplicates are material.
  if (report_.gap2_fraction() > max_window_miss_) {
    return Recommendation::kWindowTwo;
  }
  return Recommendation::kWindowOne;
}

}  // namespace hds
