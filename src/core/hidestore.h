// HiDeStore — the paper's contribution (§4): a deduplicating backup system
// that enhances the *physical locality of the newest versions* during the
// deduplication phase instead of patching the restore phase.
//
// Per backup version:
//   1. dedup against the double-hash fingerprint cache only — no on-disk
//      index, no Bloom filter, zero disk lookups (§4.1);
//   2. unique chunks go to mutable *active* containers (§4.2);
//   3. after the version, cold chunks (absent from the last `window`
//      versions) are evicted to append-only *archival* containers, active
//      containers are merged/compacted, and the recipe one window back is
//      finalized (§4.2-4.3);
//   4. restore resolves the three CID kinds (archival / active / chained)
//      and runs any standard restore cache on top (§4.4);
//   5. deleting the oldest versions erases whole archival containers —
//      no reference counting, no mark-and-sweep (§4.5).
#pragma once

#include <filesystem>
#include <memory>
#include <span>
#include <unordered_map>

#include "backup/backup_system.h"
#include "common/stats.h"
#include "core/active_pool.h"
#include "core/double_cache.h"
#include "core/recipe_chain.h"
#include "core/recovery.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "storage/container_store.h"

namespace hds {

struct HiDeStoreConfig {
  std::size_t container_size = kDefaultContainerSize;
  // Merge active containers whose live-byte utilization falls below this.
  double compaction_threshold = 0.5;
  // Redundancy window: 1 (kernel/gcc-like) or 2 (macos-like, adds T0).
  int cache_window = 1;
  // Store chunk payloads or account sizes only (see PipelineConfig).
  bool materialize_contents = true;
  // Run Algorithm 1 before every restore of a non-latest version instead of
  // walking the chain (D3 ablation).
  bool flatten_before_restore = false;
  // Non-empty: a persistent repository rooted here. Archival containers are
  // written as individual files under <storage_dir>/archival as they seal,
  // and save()/load() keep the manifest in the same directory (save() to a
  // different directory is rejected). Empty: everything stays in memory and
  // save() serializes archival containers inline.
  std::filesystem::path storage_dir;
  // Container I/O fast-path tuning (DESIGN.md §10): fd cache, block cache
  // and footer-index partial reads of the file-backed archival store. Only
  // meaningful with a storage_dir; not persisted (a process knob, not
  // repository state).
  FileStoreTuning io_tuning;
};

// Figure 12 view over the metrics registry. The registry is the single
// source of truth (`recipe_update_ms` / `move_and_merge_ms` histograms and
// the cold-eviction counters); overheads() materializes this legacy shape
// from it on demand.
struct HiDeStoreOverheads {
  // Figure 12: mean per-version latency of the two extra phases.
  MeanAccumulator recipe_update_ms;
  MeanAccumulator move_and_merge_ms;
  std::uint64_t cold_chunks_moved = 0;
  std::uint64_t cold_bytes_moved = 0;
  std::uint64_t containers_merged = 0;
};

struct DeletionReport {
  std::size_t versions_deleted = 0;
  std::size_t containers_erased = 0;
  std::uint64_t bytes_reclaimed = 0;
  // Chunks individually examined to decide reclamation — the paper's point
  // is that this stays 0 (no chunk detection, no garbage collection).
  std::uint64_t chunks_scanned = 0;
  double elapsed_ms = 0;
};

class HiDeStore final : public BackupSystem {
 public:
  explicit HiDeStore(const HiDeStoreConfig& config = {});

  // Multi-tenant mode (src/service/): this system's archival containers
  // live in `shared_store`, owned by the caller and shared with other
  // tenants. All per-tenant state (double cache, active pool, recipes,
  // deletion tags) stays private to this instance; the shared store is only
  // ever touched through its thread-safe surface (reserve_id/put/read/
  // erase). config.storage_dir should name the tenant's own state
  // directory (save()/open_shared() keep state.hds + MANIFEST there);
  // save() never serializes shared containers inline. The §4.5 deletion
  // tags double as the tenant's ownership set: delete_versions_up_to()
  // erases only containers this tenant tagged, so tenants cannot reclaim
  // each other's data.
  HiDeStore(const HiDeStoreConfig& config,
            std::shared_ptr<ContainerStore> shared_store);

  BackupReport backup(const VersionStream& stream) override;
  RestoreReport restore(VersionId version, const ChunkSink& sink) override;
  RestoreReport restore_with(VersionId version, RestorePolicy& policy,
                             const ChunkSink& sink);

  // Partial restore: only logical bytes [offset, offset+length) of the
  // version (single-file pulls via a FileCatalog). First/last chunks are
  // trimmed; container reads are counted normally.
  RestoreReport restore_range(VersionId version, std::uint64_t offset,
                              std::uint64_t length, RestorePolicy& policy,
                              const ChunkSink& sink);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "hidestore";
  }

  // Runs Algorithm 1 offline; returns entries rewritten.
  std::size_t flatten_recipes();

  // Enables restore read-ahead (read_ahead.h): `in_flight` prefetch workers
  // issue archival-container reads ahead of the restore policy into a
  // bounded buffer of `depth` containers, so up to min(in_flight, depth)
  // container reads overlap with chunk assembly. Active-pool containers are
  // never prefetched (the pool is consumer-thread-only). depth 0 disables.
  // Reported container-read counts exclude wasted prefetches, so Fig 11
  // numbers are unchanged; waste is exported as restore_prefetch_wasted.
  // Not persisted by save() — a runtime tuning knob, not repository state.
  void set_read_ahead(std::size_t depth, std::size_t in_flight = 1) noexcept {
    read_ahead_depth_ = depth;
    read_ahead_in_flight_ = in_flight == 0 ? 1 : in_flight;
  }
  [[nodiscard]] std::size_t read_ahead() const noexcept {
    return read_ahead_depth_;
  }
  [[nodiscard]] std::size_t read_ahead_in_flight() const noexcept {
    return read_ahead_in_flight_;
  }

  // Re-tunes the file-backed archival store's I/O fast path at runtime
  // (setup operation — not safe mid-restore). No effect on an in-memory
  // repository. Not persisted, like set_read_ahead().
  void set_io_tuning(const FileStoreTuning& tuning);

  // --- Repository lifecycle ---
  // Persists the complete system state (config, recipes, active pool,
  // archival containers, deletion tags) into `dir` as a single CRC-guarded
  // state file, then commits it by appending to the MANIFEST journal
  // (DESIGN.md §9). The whole sequence is crash-atomic: every file goes
  // through the atomic writer (temp + fsync + rename), the previous state
  // is kept aside until the journal rename — the commit point — lands, and
  // a crash at any step leaves either the old or the new version fully
  // recoverable by open(). On a non-crash write failure (e.g. disk full)
  // save() throws durable::WriteError after rolling the directory back to
  // the previously committed version; the in-memory system is unaffected.
  // The fingerprint cache is NOT stored: on load it is rebuilt by
  // prefetching the newest recipes through the active pool, exactly the
  // paper's §4.1 prefetch path.
  void save(const std::filesystem::path& dir);
  // Reconstructs a system from a save() directory, running crash recovery
  // first: rolls back to the newest version the MANIFEST vouches for,
  // quarantines anything an aborted commit left behind (uncommitted state,
  // orphan containers, temp files) and reports what it did through
  // `report` (optional). nullptr if nothing committed is recoverable — the
  // report still describes what was found.
  static std::unique_ptr<HiDeStore> open(const std::filesystem::path& dir,
                                         RecoveryReport* report = nullptr);
  // Equivalent to open(dir) discarding the report; kept as the historical
  // entry point.
  static std::unique_ptr<HiDeStore> load(const std::filesystem::path& dir);
  // open() for a tenant saved in shared-store mode: per-tenant state is
  // recovered from `dir` exactly like open(), but archival containers
  // resolve against `shared_store` (which must already index them). The
  // store's ID counter is bumped to at least this tenant's watermark,
  // never lowered — other tenants may have reserved past it. Orphan
  // reconciliation against the container directory is NOT run here (an
  // untagged container may belong to another tenant); the service layer
  // reconciles with the union of all tenants' tags instead.
  static std::unique_ptr<HiDeStore> open_shared(
      const std::filesystem::path& dir,
      std::shared_ptr<ContainerStore> shared_store,
      RecoveryReport* report = nullptr);
  // Journal epoch of the last committed save (0 = never saved).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  // Removes every version up to and including `version` (oldest-first
  // retirement). Cold chunks of expired versions live in archival
  // containers referenced by no newer version, so whole containers are
  // erased without scanning a single chunk.
  DeletionReport delete_versions_up_to(VersionId version);

  [[nodiscard]] HiDeStoreOverheads overheads() const;

  // --- Observability ---
  // Per-system metrics registry: dedup counters (t1_hits/t2_hits/
  // unique_chunks/chunks_processed, index_disk_lookups — permanently 0),
  // restore counters, phase-latency histograms, and repository gauges. See
  // README.md "Observability" for the full metric name list.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  // Attaches a phase tracer (nullptr detaches). While attached, every
  // backup/restore/delete records nested spans dumpable as Chrome
  // trace_event JSON; the archival store wraps its device reads in spans on
  // whichever thread issues them, and restores with read-ahead emit
  // cross-thread flow events (read_ahead.h).
  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    store_->set_tracer(tracer);
  }
  // Always-on per-operation profiles (phase wall/CPU, logical vs physical
  // bytes, cache economics, queue-depth samples). Every backup()/restore*()
  // call commits one OpProfile to this ring; hds_tool exports them.
  [[nodiscard]] obs::OpProfiler& profiler() noexcept { return profiler_; }
  [[nodiscard]] const obs::OpProfiler& profiler() const noexcept {
    return profiler_;
  }
  // Recomputes the repository-state gauges (cache memory, container counts,
  // retained versions, dedup ratio). Called after every mutating operation;
  // exposed so tools can refresh before exporting.
  void refresh_gauges();
  [[nodiscard]] const RecipeStore& recipes() const noexcept {
    return recipes_;
  }
  // Mutable recipe access — offline surgery and corruption-injection tests
  // (fsck). Normal operation never needs this.
  [[nodiscard]] RecipeStore& mutable_recipes() noexcept { return recipes_; }
  [[nodiscard]] ContainerStore& archival_store() noexcept { return *store_; }
  // True when the archival store is shared with other tenants (fsck relaxes
  // whole-store walks to this tenant's tagged containers).
  [[nodiscard]] bool shared_archival() const noexcept {
    return shared_store_;
  }
  [[nodiscard]] const ActiveContainerPool& active_pool() const noexcept {
    return pool_;
  }
  [[nodiscard]] const DoubleHashFingerprintCache& cache() const noexcept {
    return cache_;
  }
  [[nodiscard]] const HiDeStoreConfig& config() const noexcept {
    return config_;
  }
  // §4.5 deletion tags: archival container → version whose cold chunks it
  // holds. fsck checks this is a bijection with the store's container set.
  [[nodiscard]] const std::unordered_map<ContainerId, VersionId>&
  container_tags() const noexcept {
    return container_version_;
  }
  [[nodiscard]] VersionId oldest_version() const noexcept {
    return oldest_version_;
  }
  [[nodiscard]] VersionId latest_version() const noexcept {
    return next_version_ - 1;
  }
  // Transient fingerprint-cache footprint (the paper's "no index table"
  // claim: this is bounded by one-two versions of metadata, Figure 10).
  [[nodiscard]] std::uint64_t cache_memory_bytes() const noexcept {
    return cache_.memory_bytes();
  }

 private:
  // Deserializes one state snapshot into a fresh system; nullptr on any
  // corruption or format mismatch (including a shared-mode snapshot with no
  // `shared` store supplied, and vice versa). open()/open_shared() pick
  // which snapshot to trust.
  static std::unique_ptr<HiDeStore> parse_state(
      const std::filesystem::path& dir, std::span<const std::uint8_t> bytes,
      std::shared_ptr<ContainerStore> shared);

  // Common recovery walk behind open() and open_shared().
  static std::unique_ptr<HiDeStore> open_impl(
      const std::filesystem::path& dir,
      std::shared_ptr<ContainerStore> shared, RecoveryReport* report);

  // Pre-registers every metric name so exporters always show the complete
  // set (in particular `index_disk_lookups` at 0 — the §4.1 claim).
  void register_metrics();

  // Moves the cold set to archival containers; fills `cold_map` with their
  // archival homes and tags the new containers with `cold_version`.
  void evict_cold(DoubleHashFingerprintCache::Table cold, ColdMap& cold_map,
                  VersionId cold_version);

  // HDS_VERIFY-only end-of-backup audit: cache tables and pool index must
  // describe each other exactly (every cached entry names a pool container
  // that holds the fingerprint; every pooled chunk is cached). Compiled to
  // a no-op otherwise.
  void check_version_invariants() const;

  // Resolves a recipe entry to a concrete location, walking the chain.
  ChunkLoc resolve(const RecipeEntry& entry,
                   std::unordered_map<VersionId,
                                      std::unordered_map<Fingerprint,
                                                         ContainerId>>&
                       chain_cache,
                   std::size_t* hops) const;

  HiDeStoreConfig config_;
  // Archival containers. Uniquely owned in the classic single-tenant setup;
  // shared across tenants in service mode (shared_store_ == true).
  std::shared_ptr<ContainerStore> store_;
  bool shared_store_ = false;
  ActiveContainerPool pool_;
  DoubleHashFingerprintCache cache_;
  RecipeStore recipes_;
  VersionId next_version_ = 1;
  VersionId oldest_version_ = 1;
  // MANIFEST journal epoch of the last committed save (0 = never saved).
  std::uint64_t epoch_ = 0;
  std::size_t read_ahead_depth_ = 0;
  std::size_t read_ahead_in_flight_ = 1;
  // Process-wide chunk-CRC failure count at construction/load time; the
  // io_crc_failures counter mirrors growth past this baseline.
  std::uint64_t crc_failures_baseline_ = 0;
  // Archival container → version whose cold chunks it holds (deletion tag).
  std::unordered_map<ContainerId, VersionId> container_version_;
  obs::MetricsRegistry metrics_;
  obs::Tracer* tracer_ = nullptr;
  obs::OpProfiler profiler_;
};

}  // namespace hds
