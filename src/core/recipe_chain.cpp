#include "core/recipe_chain.h"

#include <algorithm>
#include <stdexcept>

#include "verify/invariant.h"

namespace hds {

std::size_t update_previous_recipe(
    Recipe& prev, const ColdMap& cold, VersionId current,
    const std::unordered_set<Fingerprint>* next_members) {
  std::size_t updated = 0;
  for (auto& entry : prev.entries()) {
    if (entry.cid != kCidActive) continue;  // already finalized
    if (const auto it = cold.find(entry.fp); it != cold.end()) {
      entry.cid = it->second;  // chunk went cold: archival home
    } else if (next_members != nullptr && next_members->contains(entry.fp)) {
      // Window == 2: the chunk lives on through the intermediate version.
      entry.cid = -static_cast<ContainerId>(current - 1);
    } else {
      // Chunk stayed hot: it is (at least) in the current version.
      entry.cid = -static_cast<ContainerId>(current);
    }
    ++updated;
  }
  // Finalization invariant (§4.3): the recipe one window back leaves this
  // function with every entry resolved — an archival home (>0) or a chain
  // link pointing forward in time (< 0, at most `current`).
  HDS_CHECK(std::all_of(prev.entries().begin(), prev.entries().end(),
                        [&](const RecipeEntry& e) {
                          return e.cid > 0 ||
                                 (e.cid < 0 &&
                                  static_cast<VersionId>(-e.cid) <= current);
                        }),
            "finalized recipe still holds active or out-of-range CIDs");
  return updated;
}

ContainerId resolve_chain(const RecipeStore& recipes, const Fingerprint& fp,
                          ContainerId cid, std::size_t* hops) {
  while (cid < 0) {
    const auto version = static_cast<VersionId>(-cid);
    const Recipe* recipe = recipes.get(version);
    if (recipe == nullptr) {
      throw std::runtime_error("recipe chain points at a missing recipe");
    }
    if (hops != nullptr) ++*hops;
    // Any entry for the fingerprint will do: within one recipe a
    // fingerprint always maps to a single location.
    const auto it =
        std::find_if(recipe->entries().begin(), recipe->entries().end(),
                     [&](const RecipeEntry& e) { return e.fp == fp; });
    if (it == recipe->entries().end()) {
      throw std::runtime_error("recipe chain broken: fingerprint not found");
    }
    cid = it->cid;
  }
  return cid;
}

std::size_t flatten_recipes(RecipeStore& recipes, int window) {
  const auto versions = recipes.versions();
  if (versions.size() < 2) return 0;
  const VersionId newest = versions.back();

  // Rolling table T of Algorithm 1, extended to span `window` newer recipes
  // so skip-chains (window == 2) still resolve. Each element maps the
  // fingerprints of one already-processed recipe to their archival homes.
  std::deque<std::unordered_map<Fingerprint, ContainerId>> tables;
  {
    std::unordered_map<Fingerprint, ContainerId> t;
    for (const auto& e : recipes.get(newest)->entries()) {
      if (e.cid > 0) t.emplace(e.fp, e.cid);
    }
    tables.push_front(std::move(t));
  }

  // Still-hot chunks must be chained to a recipe that *contains* them.
  // With window == 2 a hot chunk may live only in the second-newest recipe
  // (a T0/T1 leftover absent from the newest version); pointing it at the
  // newest recipe would orphan the entry once the chunk later goes cold
  // and only its own recipe learns the archival home. Map each hot
  // fingerprint to the newest recipe holding it.
  std::unordered_map<Fingerprint, VersionId> hot_home;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(window) && i < versions.size(); ++i) {
    const VersionId v = versions[versions.size() - 1 - i];
    for (const auto& e : recipes.get(v)->entries()) {
      hot_home.try_emplace(e.fp, v);  // newest-first: first insert wins
    }
  }

  std::size_t updated = 0;
  for (auto it = versions.rbegin() + 1; it != versions.rend(); ++it) {
    Recipe* recipe = recipes.get(*it);
    std::unordered_map<Fingerprint, ContainerId> next_table;
    for (auto& entry : recipe->entries()) {
      if (entry.cid > 0) {
        next_table.emplace(entry.fp, entry.cid);
        continue;
      }
      if (entry.cid == kCidActive) continue;  // newest recipe only
      ContainerId resolved = 0;
      bool found = false;
      for (const auto& table : tables) {
        if (const auto hit = table.find(entry.fp); hit != table.end()) {
          resolved = hit->second;
          found = true;
          break;
        }
      }
      // Lines 9-12 of Algorithm 1: archival home if known by a newer
      // recipe, otherwise the chunk is still hot — point at the newest
      // recipe containing it (which resolves through the active pool).
      if (found) {
        entry.cid = resolved;
        next_table.emplace(entry.fp, resolved);
      } else {
        const auto home = hot_home.find(entry.fp);
        entry.cid = -static_cast<ContainerId>(
            home != hot_home.end() ? home->second : newest);
      }
      ++updated;
    }
    tables.push_front(std::move(next_table));
    while (tables.size() > static_cast<std::size_t>(window)) {
      tables.pop_back();
    }
  }
  return updated;
}

}  // namespace hds
