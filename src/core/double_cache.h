// DoubleHashFingerprintCache — the paper's §4.1 fingerprint cache.
//
// Two hash tables: T1 holds the chunks of the previous backup version, T2
// accumulates the chunks of the current one. The three dedup cases of
// Figure 5:
//   * miss in both           → unique chunk, insert into T2;
//   * hit in T1              → duplicate; *migrate* the entry T1→T2 (the
//                              chunk is hot: it survived into this version);
//   * hit in T2              → duplicate; nothing to do.
// After a version completes, whatever is *left* in T1 was not referenced by
// the current version — those are the cold chunks, destined for archival
// containers. T2 becomes the next version's T1.
//
// The macos-style workloads (Figure 3d) need a redundancy window of two
// versions: chunks may skip one version and reappear. `window == 2` adds a
// third table T0 (version n-2 leftovers); chunks hitting T0 are promoted
// like T1 hits, and only T0's leftovers go cold.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/fingerprint.h"
#include "storage/container.h"

namespace hds {

struct CacheEntry {
  ContainerId active_cid = 0;  // active container currently holding the chunk
  std::uint32_t size = 0;
};

// Which table answered a duplicate probe — the dedup telemetry the metrics
// layer reports (T1/T2 hits must sum with unique chunks to chunks seen).
enum class CacheTier { kT2, kT1, kT0 };

class DoubleHashFingerprintCache {
 public:
  using Table = std::unordered_map<Fingerprint, CacheEntry>;

  // `window` = how many past versions a chunk may skip and still be
  // considered hot (1 for kernel/gcc-like workloads, 2 for macos-like).
  explicit DoubleHashFingerprintCache(int window = 1);

  // Duplicate probe implementing the three cases above. Returns the entry
  // if the chunk is a duplicate (already promoting it into T2). When `tier`
  // is non-null and the probe hits, it reports which table answered.
  [[nodiscard]] const CacheEntry* lookup_and_promote(
      const Fingerprint& fp, CacheTier* tier = nullptr);

  // Registers a freshly stored unique chunk in T2.
  void insert_unique(const Fingerprint& fp, ContainerId active_cid,
                     std::uint32_t size);

  // Ends the current version: returns the cold set (oldest table's
  // leftovers) and rotates tables (T0←T1 when window==2, T1←T2, T2 empty).
  [[nodiscard]] Table rotate();

  // Compaction moved chunks between active containers; fix the entries.
  void remap_active(const std::unordered_map<Fingerprint, ContainerId>& map);

  // Persistence support: reinstates T1/T0 after a reload. The tables are
  // rebuilt from the newest recipes + the active pool (the paper's "the
  // metadata of CV in the recipe is prefetched to T1"), so the cache itself
  // is never written to disk.
  void restore_tables(Table t1, Table t0) {
    t1_ = std::move(t1);
    t0_ = std::move(t0);
    t2_.clear();
  }

  [[nodiscard]] int window() const noexcept { return window_; }
  [[nodiscard]] const Table& current() const noexcept { return t2_; }
  [[nodiscard]] const Table& previous() const noexcept { return t1_; }
  // T0 (window == 2 only; always empty otherwise) — exposed for fsck's
  // cache/pool consistency check.
  [[nodiscard]] const Table& oldest() const noexcept { return t0_; }

  // Transient footprint: 28 bytes per entry (20B fingerprint + 4B CID +
  // 4B size), mirroring the paper's back-of-envelope (§4.1).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return (t0_.size() + t1_.size() + t2_.size()) * kRecipeEntrySize;
  }

 private:
  int window_;
  Table t0_;  // version n-2 leftovers (window == 2 only)
  Table t1_;  // previous version
  Table t2_;  // current version
};

}  // namespace hds
