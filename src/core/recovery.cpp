#include "core/recovery.h"

#include <sstream>
#include <system_error>

namespace hds {

namespace {

void json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
              << "0123456789abcdef"[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string RecoveryReport::to_text() const {
  std::ostringstream out;
  if (!opened) {
    out << "recovery: repository could not be opened\n";
  } else if (!performed) {
    out << "recovery: clean (nothing to do)\n";
  } else {
    out << "recovery: repaired\n";
  }
  out << "  committed epoch " << committed_epoch << " (latest version "
      << committed_version << ")\n";
  if (rolled_back_versions > 0) {
    out << "  rolled back " << rolled_back_versions
        << " uncommitted version(s)\n";
  }
  for (const auto& path : quarantined) {
    out << "  quarantined " << path << "\n";
  }
  if (!orphan_containers.empty()) {
    out << "  orphan containers:";
    for (const ContainerId id : orphan_containers) out << " " << id;
    out << "\n";
  }
  if (!missing_containers.empty()) {
    out << "  MISSING containers (data loss):";
    for (const ContainerId id : missing_containers) out << " " << id;
    out << "\n";
  }
  for (const auto& note : notes) {
    out << "  note: " << note << "\n";
  }
  return out.str();
}

std::string RecoveryReport::to_json() const {
  std::ostringstream out;
  out << "{\"opened\":" << (opened ? "true" : "false")
      << ",\"performed\":" << (performed ? "true" : "false")
      << ",\"committed_epoch\":" << committed_epoch
      << ",\"committed_version\":" << committed_version
      << ",\"rolled_back_versions\":" << rolled_back_versions;
  out << ",\"quarantined\":[";
  for (std::size_t i = 0; i < quarantined.size(); ++i) {
    if (i > 0) out << ",";
    json_string(out, quarantined[i]);
  }
  out << "],\"orphan_containers\":[";
  for (std::size_t i = 0; i < orphan_containers.size(); ++i) {
    if (i > 0) out << ",";
    out << orphan_containers[i];
  }
  out << "],\"missing_containers\":[";
  for (std::size_t i = 0; i < missing_containers.size(); ++i) {
    if (i > 0) out << ",";
    out << missing_containers[i];
  }
  out << "],\"notes\":[";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    if (i > 0) out << ",";
    json_string(out, notes[i]);
  }
  out << "]}";
  return out.str();
}

std::filesystem::path quarantine_file(const std::filesystem::path& repo,
                                      const std::filesystem::path& file,
                                      RecoveryReport& report) {
  const auto qdir = repo / "quarantine";
  std::error_code ec;
  std::filesystem::create_directories(qdir, ec);
  auto target = qdir / file.filename();
  for (int suffix = 1; std::filesystem::exists(target, ec); ++suffix) {
    target = qdir / (file.filename().string() + "." + std::to_string(suffix));
  }
  std::filesystem::rename(file, target, ec);
  if (ec) {
    // Cross-device or permission trouble: removing still leaves the repo
    // consistent, but say that the evidence is gone.
    std::filesystem::remove(file, ec);
    report.notes.push_back("could not quarantine " + file.string() +
                           "; removed instead");
  }
  report.quarantined.push_back(target.string());
  report.performed = true;
  return target;
}

}  // namespace hds
