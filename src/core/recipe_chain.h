// Recipe-chain maintenance (paper §4.3, Figure 7, Algorithm 1).
//
// When version v's backup finishes and the cold chunks move to archival
// containers, only the recipe one window back is touched (the paper's key
// overhead reduction): each of its still-active entries either receives its
// new archival CID (the chunk went cold) or the negative ID of the version
// that still holds it (the chunk stayed hot). Recipes thus form a chain;
// resolve_chain() walks it at restore time, and flatten() (Algorithm 1)
// periodically rewrites every recipe so no chain walk is longer than one
// hop.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "storage/recipe.h"

namespace hds {

// Archival destinations of the chunks that went cold this round.
using ColdMap = std::unordered_map<Fingerprint, ContainerId>;

// Finalizes `prev` (the recipe `window` versions back) after version
// `current` completed. `next_members` must contain the fingerprints of the
// recipe between prev and current when window == 2 (chunks may chain to it);
// pass nullptr for window == 1.
// Returns the number of entries rewritten.
std::size_t update_previous_recipe(
    Recipe& prev, const ColdMap& cold, VersionId current,
    const std::unordered_set<Fingerprint>* next_members);

// Resolution of one chunk at restore time: follows negative CIDs through
// the chain until an archival CID (>0) or the active pool (0) is reached.
// Returns the final CID and reports the number of recipes visited via
// `hops`. Returns 0 for active, >0 for archival; chains are guaranteed to
// terminate because negative CIDs always point forward in time.
ContainerId resolve_chain(const RecipeStore& recipes, const Fingerprint& fp,
                          ContainerId cid, std::size_t* hops);

// Algorithm 1: flattens every retained recipe so chain walks become single
// hops. `window` bounds how far a negative CID can skip (1 normally, 2 for
// macos-style caches); the rolling table spans that many newer recipes.
// Returns the number of entries rewritten.
std::size_t flatten_recipes(RecipeStore& recipes, int window);

}  // namespace hds
