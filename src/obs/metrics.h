// Metrics registry — the single source of truth for the quantitative story
// the paper tells: dedup counters (§4.1's "zero disk lookups" claim becomes
// the `index_disk_lookups` counter staying 0), restore container-read counts
// (Fig 11), and the recipe-update / move-and-merge latencies (Fig 12).
//
// Three instrument kinds, addressable by name:
//   * Counter   — monotonically increasing u64 (atomic, relaxed);
//   * Gauge     — settable double (atomic);
//   * Histogram — fixed-bucket latency histogram with exact count/sum/min/
//                 max and interpolated p50/p95/p99 extraction.
// Instruments are registered on first use and never move (stable
// references), so hot paths can hold a `Counter&` and increment it with a
// single relaxed atomic add — no locks, no allocation.
//
// Exporters: Prometheus text exposition format and a JSON snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace hds::obs {

namespace detail {
// Atomic accumulate on a double. With C++20 floating-point atomics
// (__cpp_lib_atomic_float) this is a single hardware RMW; otherwise it
// degrades to the classic CAS retry loop.
//
// Consistency contract: relaxed ordering in both paths, deliberately. A
// metric is a statistic read after the fact — its value must never be lost
// (hence the RMW), but it is never used to PUBLISH other memory, so
// readers must not infer happens-before from a metric's value. Anything
// that needs acquire/release semantics (queue hand-off, prefetch buffers)
// synchronizes through its own mutex/condvar, not through the registry.
inline void atomic_add(std::atomic<double>& target, double d) noexcept {
#if defined(__cpp_lib_atomic_float) && __cpp_lib_atomic_float >= 201711L
  target.fetch_add(d, std::memory_order_relaxed);
#else
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed)) {
  }
#endif
}
}  // namespace detail

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { detail::atomic_add(value_, d); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  // `bounds` are ascending bucket upper limits; an implicit +Inf overflow
  // bucket is appended. Defaults to latency_buckets_ms().
  explicit Histogram(std::vector<double> bounds = latency_buckets_ms());

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  // Interpolated quantile (q in [0,1]) from the bucket counts: exact at the
  // recorded min/max, linear within a bucket. 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  // Per-bucket (non-cumulative) counts; size() == bounds().size() + 1, the
  // last being the +Inf overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  void reset() noexcept;

  // 10µs .. 10s in a 1-2.5-5 progression — covers chunking through full
  // restores.
  static std::vector<double> latency_buckets_ms();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

class MetricsRegistry {
 public:
  // Create-if-missing accessors; the returned reference is stable for the
  // registry's lifetime. Registration takes a mutex, increments do not.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> bounds =
                           Histogram::latency_buckets_ms());

  // Lookup without registration; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  // Zeroes every registered instrument (names stay registered).
  void reset();

  // Prometheus text exposition format, instruments sorted by name.
  [[nodiscard]] std::string to_prometheus() const;
  // JSON snapshot: {"counters":{..},"gauges":{..},"histograms":{..}} where
  // each histogram carries count/sum/min/max/mean/p50/p95/p99 and its
  // bucket table.
  [[nodiscard]] std::string to_json() const;

 private:
  // Leaf lock: registration/export only — instrument updates are lock-free.
  mutable Mutex mu_{lockrank::kObsRegistry};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HDS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HDS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      HDS_GUARDED_BY(mu_);
};

}  // namespace hds::obs
