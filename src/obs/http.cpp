#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hds::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 400: return "Bad Request";
    default: return "Error";
  }
}

// Sends the whole buffer, tolerating partial writes; MSG_NOSIGNAL so a
// scraper that hangs up mid-response does not SIGPIPE the process.
void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer gone; nothing sensible to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port) : port_(port) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

bool HttpServer::start() {
  if (running()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // Resolve the ephemeral port before anyone asks for it.
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() unblocks the accept(); close() releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void HttpServer::serve_loop() {
  while (running()) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    // A stalled client must not wedge the scrape loop.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Read until the end of headers (or a sane cap): GET requests carry no
  // body, and only the request line matters to us.
  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }

  Response response;
  const auto line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (line.substr(0, sp1) != "GET") {
    response.status = 405;
    response.body = "only GET is served here\n";
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const auto q = path.find('?'); q != std::string::npos) {
      path.resize(q);  // routes ignore query strings
    }
    const auto it = routes_.find(path);
    if (it == routes_.end()) {
      response.status = 404;
      response.body = "no such route: " + path + "\n";
    } else {
      try {
        response = it->second();
      } catch (...) {
        response.status = 500;
        response.content_type = "text/plain; charset=utf-8";
        response.body = "handler failed\n";
      }
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  send_all(fd, out);
  served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hds::obs
