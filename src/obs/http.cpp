#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hds::obs {

namespace {

// Upper bound on accepted-but-unserved connections; beyond it new arrivals
// get a 503 and a close. Keeps a worker-pool stall from hoarding fds.
constexpr std::size_t kPendingCap = 32;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

// Sends the whole buffer, tolerating partial writes; MSG_NOSIGNAL so a
// scraper that hangs up mid-response does not SIGPIPE the process. A peer
// that stops reading trips SO_SNDTIMEO and surfaces as EAGAIN/EWOULDBLOCK
// — treated as peer-gone, exactly like a reset, so a stalled reader can
// hold a worker for at most one timeout.
void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer gone or stalled past the send timeout
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, std::size_t workers)
    : port_(port), worker_count_(workers == 0 ? 1 : workers) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

bool HttpServer::start() {
  if (running()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // Resolve the ephemeral port before anyone asks for it.
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  {
    MutexLock lock(mu_);
    closed_ = false;  // a stopped server may be started again
  }
  running_.store(true, std::memory_order_release);
  workers_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // shutdown() unblocks the accept(); close() releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;  // only after the join: the accept loop reads this field
  // Release the workers: close the queue, drop connections nobody served.
  std::deque<int> orphans;
  {
    MutexLock lock(mu_);
    closed_ = true;
    orphans.swap(pending_);
    queue_cv_.notify_all();
  }
  for (const int fd : orphans) ::close(fd);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void HttpServer::accept_loop() {
  while (running()) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    // A stalled client must hold a worker for at most one timeout in
    // either direction (read the request / drain the response).
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    bool queued = false;
    {
      MutexLock lock(mu_);
      if (!closed_ && pending_.size() < kPendingCap) {
        pending_.push_back(fd);
        queued = true;
        queue_cv_.notify_one();
      }
    }
    if (!queued) {
      send_all(fd,
               "HTTP/1.1 503 Service Unavailable\r\n"
               "Content-Type: text/plain; charset=utf-8\r\n"
               "Content-Length: 5\r\nConnection: close\r\n\r\nbusy\n");
      ::close(fd);
    }
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(mu_);
      while (!closed_ && pending_.empty()) queue_cv_.wait(mu_);
      if (pending_.empty()) return;  // closed and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Read until the end of headers (or a sane cap): GET requests carry no
  // body, and only the request line matters to us.
  constexpr std::size_t kRequestCap = 16 * 1024;
  std::string request;
  char buf[2048];
  while (request.size() < kRequestCap &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }

  Response response;
  const bool oversized = request.size() >= kRequestCap &&
                         request.find("\r\n\r\n") == std::string::npos &&
                         request.find("\n\n") == std::string::npos;
  const auto line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (oversized) {
    response.status = 400;
    response.body = "request too large\n";
  } else if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (line.substr(0, sp1) != "GET") {
    response.status = 405;
    response.body = "only GET is served here\n";
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const auto q = path.find('?'); q != std::string::npos) {
      path.resize(q);  // routes ignore query strings
    }
    const auto it = routes_.find(path);
    if (it == routes_.end()) {
      response.status = 404;
      response.body = "no such route: " + path + "\n";
    } else {
      try {
        response = it->second();
      } catch (...) {
        response.status = 500;
        response.content_type = "text/plain; charset=utf-8";
        response.body = "handler failed\n";
      }
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  send_all(fd, out);
  served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hds::obs
