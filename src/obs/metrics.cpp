#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hds::obs {

namespace {

void atomic_double_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_double_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

// Prometheus exposition-format metric names must match
// [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are free-form (callers may use
// dots or dashes), so the exporter maps every illegal character to '_' and
// prefixes names that start with a digit — a real scraper then accepts the
// whole page instead of rejecting it at the first bad family.
std::string sanitize_prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) return "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

}  // namespace

// --- Histogram ---

std::vector<double> Histogram::latency_buckets_ms() {
  return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,   5.0,
          10.0, 25.0,  50.0, 100., 250., 500., 1000.0, 2500., 5000.,
          10000.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  atomic_double_min(min_, v);
  atomic_double_max(max_, v);
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const noexcept {
  const auto total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);

  std::uint64_t cum = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) < target) {
      cum += in_bucket;
      continue;
    }
    // Interpolate inside bucket i. Clamp the bucket edges to the recorded
    // extrema so sparse distributions don't report impossible values.
    double lo = i == 0 ? min() : bounds_[i - 1];
    double hi = i == bounds_.size() ? max() : bounds_[i];
    lo = std::max(lo, min());
    hi = std::min(hi, max());
    if (hi <= lo) return lo;
    const double frac =
        (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// --- MetricsRegistry ---

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_prometheus() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [raw, c] : counters_) {
    const auto name = sanitize_prometheus_name(raw);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [raw, g] : gauges_) {
    const auto name = sanitize_prometheus_name(raw);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_double(g->value()) + "\n";
  }
  for (const auto& [raw, h] : histograms_) {
    // Exposition-format histogram family: cumulative `_bucket{le="..."}`
    // rows ending at the mandatory +Inf bucket (== _count), then _sum and
    // _count.
    const auto name = sanitize_prometheus_name(raw);
    out += "# TYPE " + name + " histogram\n";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->bounds();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      const std::string le =
          i < bounds.size() ? format_double(bounds[i]) : "+Inf";
      out += name + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) +
             "\n";
    }
    out += name + "_sum " + format_double(h->sum()) + "\n";
    out += name + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  MutexLock lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(c->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + format_double(g->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + format_double(h->sum()) +
           ", \"min\": " + format_double(h->min()) +
           ", \"max\": " + format_double(h->max()) +
           ", \"mean\": " + format_double(h->mean()) +
           ", \"p50\": " + format_double(h->quantile(0.50)) +
           ", \"p95\": " + format_double(h->quantile(0.95)) +
           ", \"p99\": " + format_double(h->quantile(0.99)) +
           ", \"buckets\": [";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out += ", ";
      const std::string le = i < bounds.size()
                                 ? format_double(bounds[i])
                                 : "\"+Inf\"";
      out += "{\"le\": " + le +
             ", \"count\": " + std::to_string(counts[i]) + "}";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace hds::obs
