// OpProfiler — the always-on, per-operation profile recorder behind
// `hds_tool profile` and the /profiles endpoint.
//
// Tracing (trace.h) answers "what happened when" for one explicitly traced
// run; metrics (metrics.h) answer "how much, ever, in aggregate". The
// profiler sits between the two: for EVERY backup/restore operation it
// records a compact report — phase wall/CPU time, logical vs physical
// bytes, cache hit/miss/waste counts, and a ring of queue-depth samples —
// into a bounded ring buffer of recent operations. Cost per op is a few
// hundred bytes and a handful of clock reads, so it is on unconditionally;
// nothing is persisted unless a caller exports it (hds_tool appends each
// finished op to <repo>/profiles.jsonl).
//
// Threading: an OpRecorder is owned and finished by the operation's thread;
// only sample_queue_depth() may be called concurrently (the restore
// read-ahead thread samples its buffer depth through it). The OpProfiler
// ring itself is mutex-guarded — begin()/commit()/recent() are thread-safe.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace hds::obs {

struct PhaseTiming {
  std::string name;
  double wall_ms = 0.0;
  // Process CPU time consumed while the phase was open — across ALL
  // threads, so an I/O-bound phase shows cpu << wall and a parallel phase
  // can show cpu > wall. That asymmetry is the point: it is the
  // I/O-wait/parallelism signal the self-tuning advisor consumes.
  double cpu_ms = 0.0;
};

struct OpProfile {
  std::uint64_t id = 0;   // monotonic per profiler
  std::string kind;       // "backup", "restore", ...
  std::uint32_t version = 0;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  std::vector<PhaseTiming> phases;
  // Read/ingest volume split (§5.3 accounting): `logical` is what the
  // operation moved in paper terms; `physical` is what actually crossed
  // the device (restore: bytes_read_physical delta; backup: bytes newly
  // stored).
  std::uint64_t bytes_logical = 0;
  std::uint64_t bytes_physical = 0;
  std::uint64_t chunks = 0;
  std::uint64_t container_reads = 0;
  // Cache economics. Restore: policy cache hits / fetches that reached the
  // store / wasted prefetches. Backup: dedup cache hits / unique chunks / 0.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_wasted = 0;
  // Most recent queue-depth samples (oldest first, bounded ring) and the
  // peak across the whole op.
  std::vector<double> queue_depth;
  double queue_depth_peak = 0.0;

  [[nodiscard]] std::string to_json() const;
};

class OpProfiler;

// Accumulates one operation's profile; commits it to the owning profiler on
// destruction (or finish()). Obtain via OpProfiler::begin().
class OpRecorder {
 public:
  // RAII phase scope; measures wall + process-CPU time.
  class Phase {
   public:
    Phase() = default;
    Phase(OpRecorder* recorder, std::string_view name);
    Phase(const Phase&) = delete;
    Phase& operator=(const Phase&) = delete;
    Phase(Phase&& other) noexcept;
    Phase& operator=(Phase&& other) noexcept;
    ~Phase() { end(); }
    void end() noexcept;

   private:
    OpRecorder* recorder_ = nullptr;
    std::size_t index_ = 0;
    double wall0_ms = 0.0;
    double cpu0_ms = 0.0;
  };

  ~OpRecorder() { finish(); }
  OpRecorder(const OpRecorder&) = delete;
  OpRecorder& operator=(const OpRecorder&) = delete;

  [[nodiscard]] Phase phase(std::string_view name);

  void set_version(std::uint32_t version) noexcept {
    profile_.version = version;
  }
  void add_bytes(std::uint64_t logical, std::uint64_t physical) noexcept {
    profile_.bytes_logical += logical;
    profile_.bytes_physical += physical;
  }
  void set_chunks(std::uint64_t chunks) noexcept { profile_.chunks = chunks; }
  void set_container_reads(std::uint64_t reads) noexcept {
    profile_.container_reads = reads;
  }
  void set_cache(std::uint64_t hits, std::uint64_t misses,
                 std::uint64_t wasted) noexcept {
    profile_.cache_hits = hits;
    profile_.cache_misses = misses;
    profile_.cache_wasted = wasted;
  }

  // Thread-safe depth sampling (called from the read-ahead prefetch thread
  // while the consumer thread owns the rest of the recorder). Keeps the
  // last kDepthSamples values; the consumer reads them only in finish(),
  // after the sampling thread has been joined.
  void sample_queue_depth(double depth) noexcept;

  // Commits the profile to the profiler; idempotent (the destructor calls
  // it too).
  void finish() noexcept;

  [[nodiscard]] std::uint64_t id() const noexcept { return profile_.id; }

  static constexpr std::size_t kDepthSamples = 256;

 private:
  friend class OpProfiler;
  OpRecorder(OpProfiler* profiler, std::string kind, std::uint64_t id);

  OpProfiler* profiler_ = nullptr;
  OpProfile profile_;
  double wall0_ms = 0.0;
  double cpu0_ms = 0.0;
  std::array<double, kDepthSamples> depth_ring_{};
  std::atomic<std::uint64_t> depth_count_{0};
  // Monotone max, updated only by the sampling thread; see the threading
  // note on sample_queue_depth().
  std::atomic<double> depth_peak_{0.0};
};

class OpProfiler {
 public:
  // `capacity` = completed operations retained (oldest evicted first).
  explicit OpProfiler(std::size_t capacity = 32);

  // Starts recording an operation. The recorder commits itself here when
  // it goes out of scope.
  [[nodiscard]] std::unique_ptr<OpRecorder> begin(std::string kind);

  // Completed profiles, oldest first.
  [[nodiscard]] std::vector<OpProfile> recent() const;
  // Profiles completed since construction (ring evictions included).
  [[nodiscard]] std::uint64_t completed() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  // {"ops":[<report>,...]} — each report as OpProfile::to_json().
  [[nodiscard]] std::string to_json() const;

 private:
  friend class OpRecorder;
  void commit(OpProfile&& profile);

  const std::size_t capacity_;
  mutable Mutex mu_{lockrank::kObsProfiler};
  // ring_[head_] is the oldest entry.
  std::vector<OpProfile> ring_ HDS_GUARDED_BY(mu_);
  std::size_t head_ HDS_GUARDED_BY(mu_) = 0;
  std::uint64_t next_id_ HDS_GUARDED_BY(mu_) = 1;
  std::uint64_t completed_ HDS_GUARDED_BY(mu_) = 0;
};

// Monotonic wall clock in ms (process-local epoch).
[[nodiscard]] double profiler_wall_ms() noexcept;
// Cumulative process CPU time in ms (all threads).
[[nodiscard]] double profiler_cpu_ms() noexcept;

}  // namespace hds::obs
