// Phase tracer — RAII spans recording nested begin/end timestamps of the
// backup/restore pipeline phases (dedup, cold-chunk eviction, recipe
// update, recipe resolution, policy restore, ...), plus the cross-thread
// machinery that makes a 4-thread restore readable as ONE timeline:
//
//   * spans ("X" complete events) with optional key/value args;
//   * flow events ("s"/"t"/"f") that visually connect a container's journey
//     from the read-ahead prefetch thread through the block cache to the
//     assembling restorer — same flow id on every hop;
//   * instant events ("i") for point occurrences (cache hits);
//   * thread-name metadata ("M") so the fetcher/restorer threads are
//     labeled instead of numbered.
//
// Spans are cheap when no tracer is attached: a Span constructed with a
// null Tracer* is a no-op, so instrumented code can unconditionally open
// spans and pay nothing unless tracing was requested (hds_tool
// --trace-out=<file>). The same null-check contract applies to the flow /
// instant / thread-name helpers.
//
// The recorded timeline dumps as Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace hds::obs {

class Tracer;

// RAII phase marker: records a complete event on destruction (or end()).
// Movable so it can be returned from helpers; copying is disabled.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string_view name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span() { end(); }

  // Attaches a key/value pair to the event's "args" object (shown in the
  // trace viewer's detail pane). No-op on a null span.
  void arg(std::string_view key, std::uint64_t value);
  void arg(std::string_view key, std::string_view value);

  // Finishes the span early; idempotent.
  void end() noexcept;

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string args_;  // pre-rendered JSON object body ("k":v,"k2":v2)
  double start_us_ = 0.0;
};

struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   // microseconds since the tracer's origin
  double dur_us = 0.0;  // duration in microseconds ("X" events only)
  std::uint64_t tid = 0;
  // Chrome trace_event phase: 'X' complete, 's'/'t'/'f' flow start/step/
  // finish, 'i' instant, 'M' metadata (thread names).
  char ph = 'X';
  // Flow binding id ('s'/'t'/'f'): events sharing an id draw as one arrow
  // chain across threads.
  std::uint64_t id = 0;
  std::string args;  // pre-rendered JSON object body; empty = no args
};

class Tracer {
 public:
  Tracer();

  [[nodiscard]] Span span(std::string_view name) { return {this, name}; }

  // Flow events — arrows across threads. A flow with id I starts at the
  // 's' event, passes every 't', and terminates at the 'f' event; each
  // event binds to the span enclosing it on its own thread. Use next_id()
  // (or any scheme that never collides) to pick ids.
  void flow_begin(std::string_view name, std::uint64_t id);
  void flow_step(std::string_view name, std::uint64_t id);
  void flow_end(std::string_view name, std::uint64_t id);

  // Thread-scoped instant event (a point marker on this thread's track).
  void instant(std::string_view name);

  // Names the calling thread's track in the viewer ("restore_prefetch",
  // "restore_main", ...). Safe to call repeatedly; last call wins.
  void set_thread_name(std::string_view name);

  // Process-unique id source for flows / operations.
  [[nodiscard]] std::uint64_t next_id() noexcept {
    return id_source_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Microseconds since this tracer was constructed.
  [[nodiscard]] double now_us() const noexcept;

  void record(std::string name, double ts_us, double dur_us);
  void record(TraceEvent event);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,"pid":1,
  //  "tid":...},...],"displayTimeUnit":"ms"}
  [[nodiscard]] std::string to_json() const;
  // Writes to_json() to `path`; false on I/O failure.
  bool dump(const std::filesystem::path& path) const;

 private:
  void record_marker(std::string_view name, char ph, std::uint64_t id,
                     std::string args);

  std::chrono::steady_clock::time_point origin_;
  std::atomic<std::uint64_t> id_source_{0};
  // Innermost lock in the tree: spans end (and record here) while queue /
  // prefetch locks are held, so every other rank must be below kObsTracer.
  mutable Mutex mu_{lockrank::kObsTracer};
  std::vector<TraceEvent> events_ HDS_GUARDED_BY(mu_);
};

// Renders a key/value pair onto an args body string (comma-separated
// "k":v list without the surrounding braces). Shared by Span::arg and
// call sites that build TraceEvent args directly.
void append_arg(std::string& args, std::string_view key, std::uint64_t value);
void append_arg(std::string& args, std::string_view key,
                std::string_view value);

}  // namespace hds::obs
