// Phase tracer — RAII spans recording nested begin/end timestamps of the
// backup/restore pipeline phases (dedup, cold-chunk eviction, recipe
// update, recipe resolution, policy restore, ...).
//
// Spans are cheap when no tracer is attached: a Span constructed with a
// null Tracer* is a no-op, so instrumented code can unconditionally open
// spans and pay nothing unless tracing was requested (hds_tool
// --trace-out=<file>).
//
// The recorded timeline dumps as Chrome trace_event JSON ("X" complete
// events, microsecond timestamps) loadable in chrome://tracing or Perfetto.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hds::obs {

class Tracer;

// RAII phase marker: records a complete event on destruction (or end()).
// Movable so it can be returned from helpers; copying is disabled.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string_view name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span() { end(); }

  // Finishes the span early; idempotent.
  void end() noexcept;

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  double start_us_ = 0.0;
};

struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   // microseconds since the tracer's origin
  double dur_us = 0.0;  // duration in microseconds
  std::uint64_t tid = 0;
};

class Tracer {
 public:
  Tracer();

  [[nodiscard]] Span span(std::string_view name) { return {this, name}; }

  // Microseconds since this tracer was constructed.
  [[nodiscard]] double now_us() const noexcept;

  void record(std::string name, double ts_us, double dur_us);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,"pid":1,
  //  "tid":...},...],"displayTimeUnit":"ms"}
  [[nodiscard]] std::string to_json() const;
  // Writes to_json() to `path`; false on I/O failure.
  bool dump(const std::filesystem::path& path) const;

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace hds::obs
