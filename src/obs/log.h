// Structured logger: leveled key=value events on stderr, controlled by the
// HDS_LOG environment variable and OFF by default — tier-1 test and bench
// output is byte-identical unless a user opts in:
//
//   HDS_LOG=info  ./hds_tool backup repo src
//   → [hds] level=info event=backup version=3 logical_bytes=1048576 ...
//
// Accepted HDS_LOG values: trace, debug, info, warn, error (threshold), or
// off / unset (silent). Call sites should guard with enabled() so field
// formatting costs nothing when logging is off.
#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>

namespace hds::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// "trace"/"debug"/"info"/"warn"/"error" (case-insensitive); anything else —
// including empty — means off.
[[nodiscard]] LogLevel parse_log_level(std::string_view text) noexcept;
[[nodiscard]] std::string_view log_level_name(LogLevel level) noexcept;

// One key=value pair; numeric values are formatted at construction, which
// is why call sites guard on enabled() first.
struct LogField {
  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  LogField(std::string_view k, T v) : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, double v);
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false") {}

  std::string key;
  std::string value;
};

class Logger {
 public:
  // Reads HDS_LOG; unset or unrecognized → off.
  Logger();
  explicit Logger(LogLevel level) : level_(static_cast<int>(level)) {}

  // Process-wide logger used by the instrumented pipeline.
  static Logger& global();

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= level_ &&
           level_ < static_cast<int>(LogLevel::kOff);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_);
  }
  void set_level(LogLevel level) noexcept {
    level_ = static_cast<int>(level);
  }
  // Redirect output (tests); default is stderr.
  void set_sink(std::FILE* sink) noexcept { sink_ = sink; }

  void log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields = {}) const;

 private:
  int level_ = static_cast<int>(LogLevel::kOff);
  std::FILE* sink_ = stderr;
};

// Convenience wrappers over the global logger.
[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return Logger::global().enabled(level);
}
inline void log_debug(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  Logger::global().log(LogLevel::kDebug, event, fields);
}
inline void log_info(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  Logger::global().log(LogLevel::kInfo, event, fields);
}
inline void log_warn(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  Logger::global().log(LogLevel::kWarn, event, fields);
}
inline void log_error(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  Logger::global().log(LogLevel::kError, event, fields);
}

}  // namespace hds::obs
