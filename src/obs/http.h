// Minimal embedded HTTP/1.1 listener — the live metrics surface behind
// `hds_tool serve-metrics` / `hds_tool serve` (ROADMAP item 1).
//
// Scope is deliberately tiny: GET-only, loopback-bound, one request per
// connection (Connection: close), fixed route table registered before
// start(). That is exactly what a Prometheus scraper or `curl
// localhost:PORT/metrics` needs and nothing more; request parsing stops at
// the first header line, so there is no header attack surface to speak of.
//
// Threading: start() spawns one accept thread plus a small worker pool.
// The accept thread only accepts and enqueues; workers serve connections,
// so one slow client cannot delay /healthz for everyone else. Both socket
// directions carry 2 s timeouts — a peer that stops reading mid-response is
// dropped, not waited on. When every worker is busy and the accept-side
// backlog is full, new connections get a best-effort 503 and are closed
// (backpressure, not queueing without bound). Handlers run on worker
// threads — they must be thread-safe against whatever else the process is
// doing (the metrics registry and profiler are; see their headers). stop()
// (or the destructor) shuts the listener down and joins every thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace hds::obs {

class HttpServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response()>;

  // `port` 0 binds an ephemeral port (see port() after start()). Listens on
  // 127.0.0.1 only — metrics are an operator surface, not a public one.
  // `workers` caps concurrent connection handling (min 1).
  explicit HttpServer(std::uint16_t port = 0, std::size_t workers = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers a handler for an exact path ("/metrics"). Must be called
  // before start(); the route table is immutable while serving.
  void route(std::string path, Handler handler);

  // Binds, listens, and spawns the accept thread + workers. False (with
  // the reason on stderr left to the caller via errno) if the socket could
  // not be set up — e.g. the port is taken.
  bool start();

  // Stops accepting, closes the listener and queued connections, joins
  // every thread. Connections already being served finish. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  // The bound port (resolves ephemeral requests after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);

  std::uint16_t port_;
  std::size_t worker_count_;
  int listen_fd_ = -1;
  std::map<std::string, Handler> routes_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  // Accepted-but-unserved connections. hds::Mutex + CondVar directly (not
  // parallel::BoundedQueue — obs must not depend on parallel).
  mutable Mutex mu_{lockrank::kHttpServer};
  CondVar queue_cv_;
  std::deque<int> pending_ HDS_GUARDED_BY(mu_);
  bool closed_ HDS_GUARDED_BY(mu_) = false;
};

}  // namespace hds::obs
