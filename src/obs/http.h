// Minimal embedded HTTP/1.1 listener — the live metrics surface behind
// `hds_tool serve-metrics` and the seed of the multi-tenant server mode
// (ROADMAP item 1).
//
// Scope is deliberately tiny: GET-only, loopback-bound, one request per
// connection (Connection: close), fixed route table registered before
// start(). That is exactly what a Prometheus scraper or `curl
// localhost:PORT/metrics` needs and nothing more; request parsing stops at
// the first header line, so there is no header attack surface to speak of.
//
// Threading: start() spawns one accept thread that serves requests
// serially. Handlers run on that thread — they must be thread-safe against
// whatever else the process is doing (the metrics registry and profiler
// are; see their headers). stop() (or the destructor) shuts the listener
// down and joins the thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace hds::obs {

class HttpServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response()>;

  // `port` 0 binds an ephemeral port (see port() after start()). Listens on
  // 127.0.0.1 only — metrics are an operator surface, not a public one.
  explicit HttpServer(std::uint16_t port = 0);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers a handler for an exact path ("/metrics"). Must be called
  // before start(); the route table is immutable while serving.
  void route(std::string path, Handler handler);

  // Binds, listens, and spawns the accept thread. False (with the reason
  // on stderr left to the caller via errno) if the socket could not be
  // set up — e.g. the port is taken.
  bool start();

  // Stops accepting, closes the listener, joins the thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  // The bound port (resolves ephemeral requests after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  std::uint16_t port_;
  int listen_fd_ = -1;
  std::map<std::string, Handler> routes_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace hds::obs
