#include "obs/log.h"

#include <cctype>
#include <cstdlib>

namespace hds::obs {

LogLevel parse_log_level(std::string_view text) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "off";
}

LogField::LogField(std::string_view k, double v) : key(k) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  value = buf;
}

Logger::Logger() {
  const char* env = std::getenv("HDS_LOG");
  level_ = static_cast<int>(env ? parse_log_level(env) : LogLevel::kOff);
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) const {
  if (!enabled(level)) return;
  std::string line = "[hds] level=";
  line += log_level_name(level);
  line += " event=";
  line += event;
  for (const auto& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    // Quote values with spaces so the line stays machine-splittable.
    if (field.value.find(' ') != std::string::npos) {
      line += '"';
      line += field.value;
      line += '"';
    } else {
      line += field.value;
    }
  }
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);
}

}  // namespace hds::obs
