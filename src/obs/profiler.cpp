#include "obs/profiler.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

namespace hds::obs {

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

double profiler_wall_ms() noexcept {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double profiler_cpu_ms() noexcept {
  struct timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

// --- OpProfile ---

std::string OpProfile::to_json() const {
  std::string out = "{";
  out += "\"id\": " + std::to_string(id);
  out += ", \"kind\": \"" + json_escape(kind) + "\"";
  out += ", \"version\": " + std::to_string(version);
  out += ", \"wall_ms\": " + json_number(wall_ms);
  out += ", \"cpu_ms\": " + json_number(cpu_ms);
  out += ", \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"name\": \"" + json_escape(phases[i].name) +
           "\", \"wall_ms\": " + json_number(phases[i].wall_ms) +
           ", \"cpu_ms\": " + json_number(phases[i].cpu_ms) + "}";
  }
  out += "]";
  out += ", \"bytes_logical\": " + std::to_string(bytes_logical);
  out += ", \"bytes_physical\": " + std::to_string(bytes_physical);
  out += ", \"chunks\": " + std::to_string(chunks);
  out += ", \"container_reads\": " + std::to_string(container_reads);
  out += ", \"cache\": {\"hits\": " + std::to_string(cache_hits) +
         ", \"misses\": " + std::to_string(cache_misses) +
         ", \"wasted\": " + std::to_string(cache_wasted) + "}";
  out += ", \"queue_depth\": {\"peak\": " + json_number(queue_depth_peak) +
         ", \"samples\": [";
  for (std::size_t i = 0; i < queue_depth.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_number(queue_depth[i]);
  }
  out += "]}}";
  return out;
}

// --- OpRecorder::Phase ---

OpRecorder::Phase::Phase(OpRecorder* recorder, std::string_view name)
    : recorder_(recorder),
      wall0_ms(profiler_wall_ms()),
      cpu0_ms(profiler_cpu_ms()) {
  index_ = recorder_->profile_.phases.size();
  recorder_->profile_.phases.push_back(PhaseTiming{std::string(name)});
}

OpRecorder::Phase::Phase(Phase&& other) noexcept
    : recorder_(std::exchange(other.recorder_, nullptr)),
      index_(other.index_),
      wall0_ms(other.wall0_ms),
      cpu0_ms(other.cpu0_ms) {}

OpRecorder::Phase& OpRecorder::Phase::operator=(Phase&& other) noexcept {
  if (this != &other) {
    end();
    recorder_ = std::exchange(other.recorder_, nullptr);
    index_ = other.index_;
    wall0_ms = other.wall0_ms;
    cpu0_ms = other.cpu0_ms;
  }
  return *this;
}

void OpRecorder::Phase::end() noexcept {
  if (recorder_ == nullptr) return;
  OpRecorder* recorder = std::exchange(recorder_, nullptr);
  auto& timing = recorder->profile_.phases[index_];
  timing.wall_ms = profiler_wall_ms() - wall0_ms;
  timing.cpu_ms = profiler_cpu_ms() - cpu0_ms;
}

// --- OpRecorder ---

OpRecorder::OpRecorder(OpProfiler* profiler, std::string kind,
                       std::uint64_t id)
    : profiler_(profiler),
      wall0_ms(profiler_wall_ms()),
      cpu0_ms(profiler_cpu_ms()) {
  profile_.id = id;
  profile_.kind = std::move(kind);
}

OpRecorder::Phase OpRecorder::phase(std::string_view name) {
  return {this, name};
}

void OpRecorder::sample_queue_depth(double depth) noexcept {
  const auto n = depth_count_.fetch_add(1, std::memory_order_relaxed);
  depth_ring_[static_cast<std::size_t>(n % kDepthSamples)] = depth;
  // Relaxed max: only the sampling thread writes, so load+store suffices.
  if (depth > depth_peak_.load(std::memory_order_relaxed)) {
    depth_peak_.store(depth, std::memory_order_relaxed);
  }
}

void OpRecorder::finish() noexcept {
  if (profiler_ == nullptr) return;
  OpProfiler* profiler = std::exchange(profiler_, nullptr);
  profile_.wall_ms = profiler_wall_ms() - wall0_ms;
  profile_.cpu_ms = profiler_cpu_ms() - cpu0_ms;
  const auto n = depth_count_.load(std::memory_order_relaxed);
  const auto kept = static_cast<std::size_t>(
      std::min<std::uint64_t>(n, kDepthSamples));
  profile_.queue_depth.reserve(kept);
  // Ring order: with fewer than kDepthSamples samples the ring is a plain
  // prefix; past that the oldest kept sample sits at n % kDepthSamples.
  const std::size_t start =
      n <= kDepthSamples ? 0 : static_cast<std::size_t>(n % kDepthSamples);
  for (std::size_t i = 0; i < kept; ++i) {
    profile_.queue_depth.push_back(
        depth_ring_[(start + i) % kDepthSamples]);
  }
  profile_.queue_depth_peak = depth_peak_.load(std::memory_order_relaxed);
  try {
    profiler->commit(std::move(profile_));
  } catch (...) {
    // Profiling must never take down the pipeline.
  }
}

// --- OpProfiler ---

OpProfiler::OpProfiler(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::unique_ptr<OpRecorder> OpProfiler::begin(std::string kind) {
  std::uint64_t id = 0;
  {
    MutexLock lock(mu_);
    id = next_id_++;
  }
  return std::unique_ptr<OpRecorder>(
      new OpRecorder(this, std::move(kind), id));
}

void OpProfiler::commit(OpProfile&& profile) {
  MutexLock lock(mu_);
  ++completed_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(profile));
    return;
  }
  ring_[head_] = std::move(profile);
  head_ = (head_ + 1) % capacity_;
}

std::vector<OpProfile> OpProfiler::recent() const {
  MutexLock lock(mu_);
  std::vector<OpProfile> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t OpProfiler::completed() const {
  MutexLock lock(mu_);
  return completed_;
}

std::string OpProfiler::to_json() const {
  const auto ops = recent();
  std::string out = "{\"ops\": [";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n" + ops[i].to_json();
  }
  out += ops.empty() ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace hds::obs
