#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>
#include <utility>

#include "storage/durable.h"

namespace hds::obs {

namespace {

std::uint64_t current_tid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 1000000;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

// --- Span ---

Span::Span(Tracer* tracer, std::string_view name) : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  name_ = name;
  start_us_ = tracer_->now_us();
}

Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      name_(std::move(other.name_)),
      start_us_(other.start_us_) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = std::exchange(other.tracer_, nullptr);
    name_ = std::move(other.name_);
    start_us_ = other.start_us_;
  }
  return *this;
}

void Span::end() noexcept {
  if (tracer_ == nullptr) return;
  Tracer* tracer = std::exchange(tracer_, nullptr);
  try {
    tracer->record(std::move(name_), start_us_,
                   tracer->now_us() - start_us_);
  } catch (...) {
    // Tracing must never take down the pipeline.
  }
}

// --- Tracer ---

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void Tracer::record(std::string name, double ts_us, double dur_us) {
  std::lock_guard lock(mu_);
  events_.push_back(
      TraceEvent{std::move(name), ts_us, dur_us, current_tid()});
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::string Tracer::to_json() const {
  std::lock_guard lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) out += ",";
    out += "\n{\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"hds\",\"ph\":\"X\",\"ts\":" + format_us(e.ts_us) +
           ",\"dur\":" + format_us(e.dur_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) + "}";
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::dump(const std::filesystem::path& path) const {
  // Atomic (temp + fsync + rename): a crashed or failed export never
  // leaves a torn trace file where a complete one used to be.
  try {
    durable::atomic_write_file(path, std::string_view(to_json()));
    return true;
  } catch (const durable::WriteError&) {
    return false;
  }
}

}  // namespace hds::obs
