#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>
#include <utility>

#include "storage/durable.h"

namespace hds::obs {

namespace {

std::uint64_t current_tid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 1000000;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

void append_arg(std::string& args, std::string_view key,
                std::uint64_t value) {
  if (!args.empty()) args += ",";
  args += "\"" + json_escape(key) + "\":" + std::to_string(value);
}

void append_arg(std::string& args, std::string_view key,
                std::string_view value) {
  if (!args.empty()) args += ",";
  args += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
}

// --- Span ---

Span::Span(Tracer* tracer, std::string_view name) : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  name_ = name;
  start_us_ = tracer_->now_us();
}

Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      name_(std::move(other.name_)),
      args_(std::move(other.args_)),
      start_us_(other.start_us_) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = std::exchange(other.tracer_, nullptr);
    name_ = std::move(other.name_);
    args_ = std::move(other.args_);
    start_us_ = other.start_us_;
  }
  return *this;
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  append_arg(args_, key, value);
}

void Span::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  append_arg(args_, key, value);
}

void Span::end() noexcept {
  if (tracer_ == nullptr) return;
  Tracer* tracer = std::exchange(tracer_, nullptr);
  try {
    TraceEvent event;
    event.name = std::move(name_);
    event.ts_us = start_us_;
    event.dur_us = tracer->now_us() - start_us_;
    event.args = std::move(args_);
    tracer->record(std::move(event));
  } catch (...) {
    // Tracing must never take down the pipeline.
  }
}

// --- Tracer ---

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void Tracer::record(std::string name, double ts_us, double dur_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  record(std::move(event));
}

void Tracer::record(TraceEvent event) {
  if (event.tid == 0) event.tid = current_tid();
  MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::record_marker(std::string_view name, char ph, std::uint64_t id,
                           std::string args) {
  TraceEvent event;
  event.name = std::string(name);
  event.ts_us = now_us();
  event.ph = ph;
  event.id = id;
  event.args = std::move(args);
  record(std::move(event));
}

void Tracer::flow_begin(std::string_view name, std::uint64_t id) {
  record_marker(name, 's', id, {});
}

void Tracer::flow_step(std::string_view name, std::uint64_t id) {
  record_marker(name, 't', id, {});
}

void Tracer::flow_end(std::string_view name, std::uint64_t id) {
  record_marker(name, 'f', id, {});
}

void Tracer::instant(std::string_view name) {
  record_marker(name, 'i', 0, {});
}

void Tracer::set_thread_name(std::string_view name) {
  std::string args;
  append_arg(args, "name", name);
  TraceEvent event;
  event.name = "thread_name";
  event.ts_us = 0.0;
  event.ph = 'M';
  event.args = std::move(args);
  record(std::move(event));
}

std::size_t Tracer::event_count() const {
  MutexLock lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  MutexLock lock(mu_);
  return events_;
}

std::string Tracer::to_json() const {
  MutexLock lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) out += ",";
    out += "\n{\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"hds\",\"ph\":\"" + e.ph +
           "\",\"ts\":" + format_us(e.ts_us);
    if (e.ph == 'X') out += ",\"dur\":" + format_us(e.dur_us);
    // Flow ids render in hex so they read as opaque tokens, not counts.
    if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
      char buf[32];
      std::snprintf(buf, sizeof buf, "0x%llx",
                    static_cast<unsigned long long>(e.id));
      out += ",\"id\":\"" + std::string(buf) + "\"";
    }
    // Bind the flow arrowhead to the enclosing slice, not the next one.
    if (e.ph == 'f') out += ",\"bp\":\"e\"";
    if (e.ph == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (!e.args.empty()) out += ",\"args\":{" + e.args + "}";
    out += "}";
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::dump(const std::filesystem::path& path) const {
  // Atomic (temp + fsync + rename): a crashed or failed export never
  // leaves a torn trace file where a complete one used to be.
  try {
    durable::atomic_write_file(path, std::string_view(to_json()));
    return true;
  } catch (const durable::WriteError&) {
    return false;
  }
}

}  // namespace hds::obs
