#include "rewrite/cfl.h"

#include <unordered_map>

namespace hds {

double CflRewrite::current_cfl() const noexcept {
  if (referenced_.empty()) return 1.0;
  const double optimal =
      static_cast<double>(stream_bytes_) /
      static_cast<double>(config_.container_size);
  const double cfl = optimal / static_cast<double>(referenced_.size());
  return cfl > 1.0 ? 1.0 : cfl;
}

std::vector<bool> CflRewrite::plan(
    std::span<const ChunkRecord> chunks,
    std::span<const std::optional<ContainerId>> locations) {
  std::vector<bool> decisions(chunks.size(), false);

  std::unordered_map<ContainerId, std::uint64_t> contribution;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (locations[i]) contribution[*locations[i]] += chunks[i].size;
  }

  const auto min_bytes = static_cast<std::uint64_t>(
      config_.cfl_min_contribution *
      static_cast<double>(config_.container_size));

  for (std::size_t i = 0; i < chunks.size(); ++i) {
    stream_bytes_ += chunks[i].size;
    if (!locations[i]) continue;  // unique: lands in a fresh container

    // Account the reference first, then test the fragmentation level.
    referenced_.insert(*locations[i]);
    if (current_cfl() >= config_.cfl_threshold) continue;
    if (contribution[*locations[i]] >= min_bytes) continue;
    mark(decisions, chunks, i);
  }
  return decisions;
}

}  // namespace hds
