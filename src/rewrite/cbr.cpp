#include "rewrite/cbr.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace hds {

std::vector<bool> CbrRewrite::plan(
    std::span<const ChunkRecord> chunks,
    std::span<const std::optional<ContainerId>> locations) {
  std::vector<bool> decisions(chunks.size(), false);

  // Stream-context contribution of each referenced container within this
  // segment; the disk context is the container capacity.
  std::unordered_map<ContainerId, std::uint64_t> useful;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    version_bytes_ += chunks[i].size;
    if (locations[i]) useful[*locations[i]] += chunks[i].size;
  }

  const auto budget = static_cast<std::uint64_t>(
      config_.cbr_budget_ratio * static_cast<double>(version_bytes_));

  // CBR's adaptive threshold: spend the budget on the *worst* containers
  // first (highest rewrite utility = smallest useful fraction), never going
  // below the configured minimal utility. This emulates the original
  // algorithm's "best-5%" utility quantile without a second stream pass.
  std::vector<std::pair<std::uint64_t, ContainerId>> ranked;
  ranked.reserve(useful.size());
  for (const auto& [cid, bytes] : useful) ranked.emplace_back(bytes, cid);
  std::sort(ranked.begin(), ranked.end());

  std::unordered_set<ContainerId> victims;
  std::uint64_t planned = version_rewritten_;
  for (const auto& [bytes, cid] : ranked) {
    const double utility = 1.0 - static_cast<double>(bytes) /
                                     static_cast<double>(
                                         config_.container_size);
    if (utility < config_.cbr_utility_threshold) break;
    if (planned + bytes > budget) break;
    planned += bytes;
    victims.insert(cid);
  }

  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (!locations[i] || !victims.contains(*locations[i])) continue;
    version_rewritten_ += chunks[i].size;
    mark(decisions, chunks, i);
  }
  return decisions;
}

}  // namespace hds
