// Capping (Lillibridge, Eshghi & Bhagwat, FAST'13).
//
// Bounds the number of distinct old containers a segment may reference to a
// fixed cap T. Containers are ranked by how many of the segment's chunks
// they supply; duplicates served by containers ranked past T are rewritten.
// The restore cost of a segment is then at most T + (new containers), at a
// dedup-ratio cost that grows as fragmentation worsens.
#pragma once

#include "rewrite/rewrite_filter.h"

namespace hds {

class CappingRewrite final : public RewriteFilter {
 public:
  explicit CappingRewrite(const RewriteConfig& config) : config_(config) {}

  std::vector<bool> plan(
      std::span<const ChunkRecord> chunks,
      std::span<const std::optional<ContainerId>> locations) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "capping";
  }

 private:
  RewriteConfig config_;
};

}  // namespace hds
