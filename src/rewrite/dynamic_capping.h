// Dynamic capping with a look-back window — the rewriting side of
// Cao et al. (FAST'19), called FBW in the HiDeStore paper.
//
// Two refinements over fixed capping:
//   * a sliding look-back window over recently written containers: a
//     duplicate referencing a container the restore cache will certainly
//     still hold is never worth rewriting, whatever its rank;
//   * the cap is not fixed but derived per segment from a rewrite *budget*:
//     out-of-window containers are sorted by ascending contribution and
//     rewritten smallest-first until the budget is spent, which adapts the
//     effective cap to how fragmented each workload region actually is.
#pragma once

#include <deque>
#include <unordered_set>

#include "rewrite/rewrite_filter.h"

namespace hds {

class DynamicCappingRewrite final : public RewriteFilter {
 public:
  explicit DynamicCappingRewrite(const RewriteConfig& config)
      : config_(config) {}

  std::vector<bool> plan(
      std::span<const ChunkRecord> chunks,
      std::span<const std::optional<ContainerId>> locations) override;

  void finish_segment(std::span<const RecipeEntry> entries) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fbw";
  }

 private:
  [[nodiscard]] bool in_window(ContainerId cid) const noexcept {
    return window_set_.contains(cid);
  }

  RewriteConfig config_;
  std::deque<ContainerId> window_;  // recently written containers, FIFO
  std::unordered_set<ContainerId> window_set_;
};

}  // namespace hds
