#include "rewrite/dynamic_capping.h"

#include <algorithm>
#include <unordered_map>

namespace hds {

std::vector<bool> DynamicCappingRewrite::plan(
    std::span<const ChunkRecord> chunks,
    std::span<const std::optional<ContainerId>> locations) {
  std::vector<bool> decisions(chunks.size(), false);

  std::uint64_t segment_bytes = 0;
  std::unordered_map<ContainerId, std::uint64_t> contribution;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    segment_bytes += chunks[i].size;
    if (locations[i] && !in_window(*locations[i])) {
      contribution[*locations[i]] += chunks[i].size;
    }
  }
  if (contribution.empty()) return decisions;

  // Budget-driven dynamic cap: rewrite the least-contributing out-of-window
  // containers first, until the per-segment budget is exhausted.
  std::vector<std::pair<ContainerId, std::uint64_t>> ranked(
      contribution.begin(), contribution.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  });

  const auto budget = static_cast<std::uint64_t>(
      config_.fbw_budget_ratio * static_cast<double>(segment_bytes));
  std::unordered_set<ContainerId> victims;
  std::uint64_t spent = 0;
  for (const auto& [cid, bytes] : ranked) {
    if (spent + bytes > budget) break;
    spent += bytes;
    victims.insert(cid);
  }

  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (locations[i] && victims.contains(*locations[i])) {
      mark(decisions, chunks, i);
    }
  }
  return decisions;
}

void DynamicCappingRewrite::finish_segment(
    std::span<const RecipeEntry> entries) {
  for (const auto& e : entries) {
    if (e.cid <= 0 || window_set_.contains(e.cid)) continue;
    window_.push_back(e.cid);
    window_set_.insert(e.cid);
    while (window_.size() > config_.lookback_containers) {
      window_set_.erase(window_.front());
      window_.pop_front();
    }
  }
}

}  // namespace hds
