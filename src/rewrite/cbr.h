// CBR — Context-Based Rewriting (Kaczmarczyk et al., SYSTOR'12).
//
// For each duplicate, compares its *stream context* (the bytes around it in
// the backup) with its *disk context* (the container holding it). The
// rewrite utility of a container is the fraction of it that is useless to
// the current stream; duplicates in high-utility (mostly useless) containers
// are rewritten, subject to a global rewrite budget (typically 5% of the
// stream) so the dedup-ratio loss stays bounded.
#pragma once

#include "rewrite/rewrite_filter.h"

namespace hds {

class CbrRewrite final : public RewriteFilter {
 public:
  explicit CbrRewrite(const RewriteConfig& config) : config_(config) {}

  void begin_version(VersionId version) override {
    RewriteFilter::begin_version(version);
    version_bytes_ = 0;
    version_rewritten_ = 0;
  }

  std::vector<bool> plan(
      std::span<const ChunkRecord> chunks,
      std::span<const std::optional<ContainerId>> locations) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "cbr";
  }

 private:
  RewriteConfig config_;
  std::uint64_t version_bytes_ = 0;
  std::uint64_t version_rewritten_ = 0;
};

}  // namespace hds
