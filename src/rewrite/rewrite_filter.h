// RewriteFilter: decides which *duplicate* chunks to store again.
//
// Rewriting trades capacity for restore locality (paper §2.3): a duplicate
// whose only copy sits in a far-away, sparsely useful container can be
// written again next to its stream neighbours, cutting restore container
// reads — at the cost of dedup ratio. Each scheme below is a published
// policy for choosing those chunks. The pipeline consults the filter per
// segment, after the index has produced dedup decisions.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/chunk.h"
#include "storage/recipe.h"

namespace hds {

struct RewriteStats {
  std::uint64_t rewritten_chunks = 0;
  std::uint64_t rewritten_bytes = 0;

  void reset() noexcept { *this = RewriteStats{}; }
};

class RewriteFilter {
 public:
  virtual ~RewriteFilter() = default;

  virtual void begin_version(VersionId version) { (void)version; }
  virtual void end_version() {}

  // For each chunk: true = store a fresh copy even though `locations[i]`
  // holds an existing one. Entries with locations[i] == nullopt are unique
  // chunks and are ignored (they are stored regardless).
  virtual std::vector<bool> plan(
      std::span<const ChunkRecord> chunks,
      std::span<const std::optional<ContainerId>> locations) = 0;

  // Reports where the segment's chunks finally landed, so history-aware
  // schemes (look-back windows) can track recently written containers.
  virtual void finish_segment(std::span<const RecipeEntry> entries) {
    (void)entries;
  }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] const RewriteStats& stats() const noexcept { return stats_; }

 protected:
  // Marks chunk i for rewrite and updates accounting.
  void mark(std::vector<bool>& decisions, std::span<const ChunkRecord> chunks,
            std::size_t i) {
    if (!decisions[i]) {
      decisions[i] = true;
      stats_.rewritten_chunks++;
      stats_.rewritten_bytes += chunks[i].size;
    }
  }

  RewriteStats stats_;
};

// Baseline: never rewrite (maximum dedup ratio, worst fragmentation).
class NoRewrite final : public RewriteFilter {
 public:
  std::vector<bool> plan(
      std::span<const ChunkRecord> chunks,
      std::span<const std::optional<ContainerId>> locations) override {
    (void)locations;
    return std::vector<bool>(chunks.size(), false);
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "none";
  }
};

enum class RewriteKind { kNone, kCapping, kCbr, kCfl, kDynamicCapping };

struct RewriteConfig {
  // Capping: max old containers referenced per segment (Lillibridge'13:
  // T≈8-20 per 20 MB segment; scaled to our 2 MiB segments).
  std::size_t cap = 6;
  // CBR: rewrite-utility threshold and rewrite budget (Kaczmarczyk'12).
  double cbr_utility_threshold = 0.5;
  double cbr_budget_ratio = 0.10;
  // CFL: fragmentation threshold enabling selective rewrite (Nam'12).
  double cfl_threshold = 0.6;
  double cfl_min_contribution = 0.10;  // of container capacity
  // Dynamic capping / FBW: look-back window (containers) + budget.
  std::size_t lookback_containers = 16;
  double fbw_budget_ratio = 0.05;
  std::size_t container_size = 4 * 1024 * 1024;
};

[[nodiscard]] std::unique_ptr<RewriteFilter> make_rewrite_filter(
    RewriteKind kind, const RewriteConfig& config = {});

}  // namespace hds
