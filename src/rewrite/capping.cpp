#include "rewrite/capping.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace hds {

std::vector<bool> CappingRewrite::plan(
    std::span<const ChunkRecord> chunks,
    std::span<const std::optional<ContainerId>> locations) {
  std::vector<bool> decisions(chunks.size(), false);

  // Rank referenced old containers by the bytes they contribute.
  std::unordered_map<ContainerId, std::uint64_t> contribution;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (locations[i]) contribution[*locations[i]] += chunks[i].size;
  }
  if (contribution.size() <= config_.cap) return decisions;

  std::vector<std::pair<ContainerId, std::uint64_t>> ranked(
      contribution.begin(), contribution.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first > b.first;
  });

  std::unordered_set<ContainerId> kept;
  for (std::size_t i = 0; i < config_.cap; ++i) kept.insert(ranked[i].first);

  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (locations[i] && !kept.contains(*locations[i])) {
      mark(decisions, chunks, i);
    }
  }
  return decisions;
}

}  // namespace hds
