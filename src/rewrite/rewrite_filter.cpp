#include "rewrite/rewrite_filter.h"

#include <stdexcept>

#include "rewrite/capping.h"
#include "rewrite/cbr.h"
#include "rewrite/cfl.h"
#include "rewrite/dynamic_capping.h"

namespace hds {

std::unique_ptr<RewriteFilter> make_rewrite_filter(
    RewriteKind kind, const RewriteConfig& config) {
  switch (kind) {
    case RewriteKind::kNone:
      return std::make_unique<NoRewrite>();
    case RewriteKind::kCapping:
      return std::make_unique<CappingRewrite>(config);
    case RewriteKind::kCbr:
      return std::make_unique<CbrRewrite>(config);
    case RewriteKind::kCfl:
      return std::make_unique<CflRewrite>(config);
    case RewriteKind::kDynamicCapping:
      return std::make_unique<DynamicCappingRewrite>(config);
  }
  throw std::invalid_argument("unknown RewriteKind");
}

}  // namespace hds
