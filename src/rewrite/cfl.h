// CFL-SD — Chunk Fragmentation Level with Selective Duplication
// (Nam, Park & Du, MASCOTS'12).
//
// CFL quantifies fragmentation as (optimal container count for the stream
// so far) / (containers actually referenced). While CFL stays above a
// threshold the stream restores fine and nothing is rewritten; once it
// drops below, selective duplication kicks in: duplicates served by
// containers contributing only a sliver of their capacity to the current
// stream are rewritten until CFL recovers.
#pragma once

#include <unordered_set>

#include "rewrite/rewrite_filter.h"

namespace hds {

class CflRewrite final : public RewriteFilter {
 public:
  explicit CflRewrite(const RewriteConfig& config) : config_(config) {}

  void begin_version(VersionId version) override {
    RewriteFilter::begin_version(version);
    stream_bytes_ = 0;
    referenced_.clear();
  }

  std::vector<bool> plan(
      std::span<const ChunkRecord> chunks,
      std::span<const std::optional<ContainerId>> locations) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "cfl";
  }

  // Current-version CFL (1.0 = perfectly sequential, lower = fragmented).
  [[nodiscard]] double current_cfl() const noexcept;

 private:
  RewriteConfig config_;
  std::uint64_t stream_bytes_ = 0;
  std::unordered_set<ContainerId> referenced_;
};

}  // namespace hds
