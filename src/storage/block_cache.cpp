#include "storage/block_cache.h"

#include <algorithm>

namespace hds {

BlockCache::BlockCache(std::size_t budget_bytes, std::size_t shards)
    : budget_(budget_bytes), shards_(std::max<std::size_t>(shards, 1)) {}

std::size_t BlockCache::charge_of(const Container& container) noexcept {
  // Payload bytes plus a per-entry overhead estimate for the table/map.
  return container.data_size() + container.chunk_count() * 64;
}

std::optional<BlockCache::Hit> BlockCache::find_full(ContainerId id) {
  if (budget_ == 0) return std::nullopt;
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mu);
  const auto it = shard.index.find(id);
  if (it == shard.index.end() || !it->second->complete) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return Hit{it->second->container, it->second->full_data_size};
}

std::optional<BlockCache::Hit> BlockCache::find_chunks(
    ContainerId id, std::span<const Fingerprint> fps) {
  if (budget_ == 0) return std::nullopt;
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mu);
  const auto it = shard.index.find(id);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const Entry& entry = *it->second;
  if (!entry.complete) {
    // A partial entry serves the request only if it holds everything asked
    // for — a fingerprint genuinely absent from the container is settled by
    // a complete entry or a disk read, not by a partial one.
    const bool covered =
        std::all_of(fps.begin(), fps.end(), [&](const Fingerprint& fp) {
          return entry.container->contains(fp);
        });
    if (!covered) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return Hit{entry.container, entry.full_data_size};
}

void BlockCache::insert(ContainerId id,
                        std::shared_ptr<const Container> container,
                        std::uint64_t full_data_size, bool complete) {
  if (budget_ == 0 || container == nullptr) return;
  const std::size_t charge = charge_of(*container);
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mu);
  if (charge > shard_budget()) return;  // would evict the whole shard
  if (const auto it = shard.index.find(id); it != shard.index.end()) {
    // Never downgrade a complete entry to a partial one.
    if (it->second->complete && !complete) return;
    shard.bytes -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(
      Entry{id, std::move(container), full_data_size, complete, charge});
  shard.index[id] = shard.lru.begin();
  shard.bytes += charge;
  evict_over_budget(shard);
}

void BlockCache::evict_over_budget(Shard& shard) {
  while (shard.bytes > shard_budget() && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.charge;
    shard.index.erase(victim.id);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BlockCache::invalidate(ContainerId id) {
  if (budget_ == 0) return;
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mu);
  if (const auto it = shard.index.find(id); it != shard.index.end()) {
    shard.bytes -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
}

void BlockCache::reconfigure(std::size_t budget_bytes, std::size_t shards) {
  budget_ = budget_bytes;
  shards_ = std::vector<Shard>(std::max<std::size_t>(shards, 1));
}

void BlockCache::clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

std::uint64_t BlockCache::bytes() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

}  // namespace hds
