// Recipe: the ordered chunk list that reconstructs one backup version
// (paper §2.1). Each 28-byte entry is (fingerprint, container ID, size).
//
// HiDeStore (§4.3) overloads the container-ID field with three meanings:
//   cid > 0  — chunk lives in archival container `cid`;
//   cid == 0 — chunk lives in the active containers (resolve through the
//              fingerprint cache / active pool index);
//   cid < 0  — chunk moved on; look it up in recipe |cid| (recipe chain).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/fingerprint.h"
#include "storage/container.h"

namespace hds {

using VersionId = std::uint32_t;

struct RecipeEntry {
  Fingerprint fp;
  ContainerId cid = kCidActive;
  std::uint32_t size = 0;
};

class Recipe {
 public:
  Recipe() = default;
  explicit Recipe(VersionId version) : version_(version) {}

  [[nodiscard]] VersionId version() const noexcept { return version_; }

  void add(const Fingerprint& fp, ContainerId cid, std::uint32_t size) {
    entries_.push_back({fp, cid, size});
  }

  [[nodiscard]] std::vector<RecipeEntry>& entries() noexcept {
    return entries_;
  }
  [[nodiscard]] const std::vector<RecipeEntry>& entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t logical_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& e : entries_) total += e.size;
    return total;
  }
  // On-disk footprint: 28 bytes per entry (paper §2.1).
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return entries_.size() * kRecipeEntrySize;
  }

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<Recipe> deserialize(std::span<const std::uint8_t> b);

 private:
  VersionId version_ = 0;
  std::vector<RecipeEntry> entries_;
};

// RecipeStore: in-memory catalog of recipes keyed by version. Recipes are
// small (28 B/chunk) and mutated by the recipe-chain update (§4.3), so they
// are kept as live objects; serialization covers persistence needs.
class RecipeStore {
 public:
  void put(Recipe recipe);
  [[nodiscard]] Recipe* get(VersionId version) noexcept;
  [[nodiscard]] const Recipe* get(VersionId version) const noexcept;
  bool erase(VersionId version);

  [[nodiscard]] std::size_t size() const noexcept { return recipes_.size(); }
  [[nodiscard]] std::vector<VersionId> versions() const;

 private:
  std::unordered_map<VersionId, Recipe> recipes_;
};

}  // namespace hds
