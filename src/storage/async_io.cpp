#include "storage/async_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "common/thread_annotations.h"
#include "obs/log.h"
#include "parallel/thread_pool.h"
#include "storage/durable.h"

// io_uring is Linux-only and optional: HDS_WITH_URING is set by CMake when
// <linux/io_uring.h> is available (no liburing dependency — the backend
// speaks the raw syscall ABI). Builds without it keep the full interface;
// uring_supported() just answers false and kUring degrades to threads.
#if defined(HDS_WITH_URING) && HDS_WITH_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>

#include <atomic>
#endif

namespace hds::aio {

namespace {

// --- Fault injection (process-global, tests only) ---

struct FaultState {
  Mutex mu{lockrank::kIoFault};
  FaultPlan plan HDS_GUARDED_BY(mu);
  std::uint64_t short_count HDS_GUARDED_BY(mu) = 0;
  std::uint64_t eintr_count HDS_GUARDED_BY(mu) = 0;
  std::atomic<bool> armed{false};  // fast path: one relaxed load when off
};

FaultState& fault_state() {
  static FaultState state;
  return state;
}

// Which fault (if any) the next attempt of an op should suffer. Checked at
// most once per op (first attempt), so every injected fault exercises one
// resubmission.
enum class Fault { kNone, kShort, kEintr };

Fault take_fault() {
  FaultState& state = fault_state();
  if (!state.armed.load(std::memory_order_relaxed)) return Fault::kNone;
  MutexLock lock(state.mu);
  if (state.plan.short_read_every_n != 0 &&
      ++state.short_count % state.plan.short_read_every_n == 0) {
    return Fault::kShort;
  }
  if (state.plan.eintr_every_n != 0 &&
      ++state.eintr_count % state.plan.eintr_every_n == 0) {
    return Fault::kEintr;
  }
  return Fault::kNone;
}

// --- Shared counter block (outlives per-thread rings; see UringBackend) ---

struct Counters {
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> submits{0};
  std::atomic<std::uint64_t> short_retries{0};
  std::atomic<std::uint64_t> eintr_retries{0};
  std::atomic<std::uint64_t> registered{0};

  [[nodiscard]] BackendStats snapshot() const {
    BackendStats out;
    out.batches = batches.load(std::memory_order_relaxed);
    out.reads = reads.load(std::memory_order_relaxed);
    out.submits = submits.load(std::memory_order_relaxed);
    out.short_retries = short_retries.load(std::memory_order_relaxed);
    out.eintr_retries = eintr_retries.load(std::memory_order_relaxed);
    out.registered_files = registered.load(std::memory_order_relaxed);
    return out;
  }
};

// The crash point every backend passes per batch. A kFail-armed
// CrashInjector throws WriteError here — modeled as the whole batch failing
// with EIO, the same verdict a dying device would render. Returns false
// when the batch must not run.
bool pass_crash_point(std::span<ReadOp> ops) {
  try {
    durable::CrashInjector::crash_point("async_io_read");
    return true;
  } catch (const durable::WriteError&) {
    for (ReadOp& op : ops) {
      op.error = EIO;
      op.filled = 0;
    }
    return false;
  }
}

// One blocking pread-until-done for `op`, with EINTR retry, short-read
// continuation and fault injection. The workhorse of the sync and threads
// backends; also the per-op fallback when a uring ring cannot be created.
void run_sync_op(ReadOp& op, Counters& counters) {
  op.error = 0;
  op.filled = 0;
  Fault fault = take_fault();
  while (op.filled < op.len) {
    std::size_t want = op.len - op.filled;
    if (fault == Fault::kEintr) {
      fault = Fault::kNone;
      counters.eintr_retries.fetch_add(1, std::memory_order_relaxed);
      continue;  // modeled EINTR: retry without having read anything
    }
    if (fault == Fault::kShort && want > 1) {
      want /= 2;  // force a genuine short completion + resubmission
    }
    const ssize_t n =
        ::pread(op.fd, op.dst + op.filled, want,
                static_cast<off_t>(op.offset + op.filled));
    counters.submits.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) {
        counters.eintr_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      op.error = errno;
      return;
    }
    if (n == 0) return;  // EOF inside the range: filled < len, error == 0
    op.filled += static_cast<std::size_t>(n);
    if (fault == Fault::kShort) {
      fault = Fault::kNone;
      counters.short_retries.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

// --- Sync backend: the pre-async baseline, sequential preads ---

class SyncBackend final : public AsyncIoBackend {
 public:
  void read_batch(std::span<ReadOp> ops) override {
    if (!pass_crash_point(ops)) return;
    counters_.batches.fetch_add(1, std::memory_order_relaxed);
    counters_.reads.fetch_add(ops.size(), std::memory_order_relaxed);
    for (ReadOp& op : ops) run_sync_op(op, counters_);
  }
  [[nodiscard]] Backend kind() const noexcept override {
    return Backend::kSync;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sync";
  }
  [[nodiscard]] BackendStats stats() const override {
    return counters_.snapshot();
  }

 private:
  Counters counters_;
};

// --- Threads backend: the batch fans out over a small pread worker pool ---

class ThreadsBackend final : public AsyncIoBackend {
 public:
  explicit ThreadsBackend(std::size_t depth)
      : pool_(std::clamp<std::size_t>(depth, 2, 16)) {}

  void read_batch(std::span<ReadOp> ops) override {
    if (!pass_crash_point(ops)) return;
    counters_.batches.fetch_add(1, std::memory_order_relaxed);
    counters_.reads.fetch_add(ops.size(), std::memory_order_relaxed);
    if (ops.size() == 1) {  // no handoff for the trivial batch
      run_sync_op(ops.front(), counters_);
      return;
    }
    // Completion is counted per batch, not via wait_idle(): concurrent
    // streams share the pool, and each must wake when *its* ops finish.
    Mutex mu{lockrank::kIoLatch};
    CondVar done;
    std::size_t remaining = ops.size();
    for (ReadOp& op : ops) {
      pool_.submit([this, &op, &mu, &done, &remaining] {
        run_sync_op(op, counters_);
        MutexLock lock(mu);
        if (--remaining == 0) done.notify_one();
      });
    }
    MutexLock lock(mu);
    while (remaining != 0) done.wait(mu);
  }
  [[nodiscard]] Backend kind() const noexcept override {
    return Backend::kThreads;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "threads";
  }
  [[nodiscard]] BackendStats stats() const override {
    return counters_.snapshot();
  }

 private:
  parallel::ThreadPool pool_;
  Counters counters_;
};

#if defined(HDS_WITH_URING) && HDS_WITH_URING

// --- io_uring backend (raw syscalls; no liburing) ---

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}
int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}
int sys_io_uring_register(int fd, unsigned opcode, const void* arg,
                          unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// One io_uring instance, owned by exactly one thread (rings live in
// thread-local storage — submission and completion need no locks). Fixed
// files: a sparse table of kFixedSlots descriptors registered at setup;
// reg_keys map onto slots round-robin, so the FdCache's long-lived
// descriptors skip the per-op fget/fput. Registration is best-effort — any
// failure just falls back to plain fds.
struct Ring {
  static constexpr unsigned kFixedSlots = 64;

  int fd = -1;
  unsigned sq_entries = 0;
  std::uint8_t* sq_ptr = nullptr;
  std::size_t sq_size = 0;
  std::uint8_t* cq_ptr = nullptr;
  std::size_t cq_size = 0;  // 0 when IORING_FEAT_SINGLE_MMAP shares sq_ptr
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_size = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  bool fixed_files = false;
  struct Slot {
    std::uint64_t key = 0;
    int fd = -1;
  };
  std::vector<Slot> slots;
  std::unordered_map<std::uint64_t, unsigned> slot_of;
  unsigned next_slot = 0;
  std::uint64_t seen_epoch = 0;

  Ring() = default;
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;
  ~Ring() {
    if (sqes != nullptr) ::munmap(sqes, sqes_size);
    if (cq_ptr != nullptr && cq_size != 0) ::munmap(cq_ptr, cq_size);
    if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_size);
    if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] bool init(unsigned entries) {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    fd = sys_io_uring_setup(entries, &params);
    if (fd < 0) return false;
    sq_entries = params.sq_entries;

    std::size_t sq_bytes =
        params.sq_off.array + params.sq_entries * sizeof(unsigned);
    std::size_t cq_bytes =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);

    sq_size = sq_bytes;
    sq_ptr = static_cast<std::uint8_t*>(
        ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING));
    if (sq_ptr == MAP_FAILED) {
      sq_ptr = nullptr;
      return false;
    }
    if (single_mmap) {
      cq_ptr = sq_ptr;
      cq_size = 0;  // shared mapping; do not munmap twice
    } else {
      cq_size = cq_bytes;
      cq_ptr = static_cast<std::uint8_t*>(
          ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING));
      if (cq_ptr == MAP_FAILED) {
        cq_ptr = nullptr;
        return false;
      }
    }
    sqes_size = params.sq_entries * sizeof(io_uring_sqe);
    sqes = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_size, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES));
    if (sqes == MAP_FAILED) {
      sqes = nullptr;
      return false;
    }

    const auto at = [&](std::uint8_t* base, std::uint32_t off) {
      return reinterpret_cast<unsigned*>(base + off);
    };
    sq_head = at(sq_ptr, params.sq_off.head);
    sq_tail = at(sq_ptr, params.sq_off.tail);
    sq_mask = *at(sq_ptr, params.sq_off.ring_mask);
    sq_array = at(sq_ptr, params.sq_off.array);
    cq_head = at(cq_ptr, params.cq_off.head);
    cq_tail = at(cq_ptr, params.cq_off.tail);
    cq_mask = *at(cq_ptr, params.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq_ptr + params.cq_off.cqes);

    // Sparse fixed-file table (entries filled later via *_UPDATE). Older
    // kernels reject sparse tables; fixed files are then simply off.
    std::vector<int> sparse(kFixedSlots, -1);
    if (sys_io_uring_register(fd, IORING_REGISTER_FILES, sparse.data(),
                              kFixedSlots) == 0) {
      fixed_files = true;
      slots.resize(kFixedSlots);
    }
    return true;
  }

  // Returns the fixed slot for (key, fd), installing or refreshing the
  // registration as needed; -1 = use the plain fd.
  int fixed_slot(std::uint64_t key, int op_fd, Counters& counters) {
    if (!fixed_files || key == 0) return -1;
    const auto it = slot_of.find(key);
    if (it != slot_of.end() && slots[it->second].fd == op_fd) {
      return static_cast<int>(it->second);
    }
    const unsigned slot = next_slot++ % kFixedSlots;
    io_uring_files_update update;
    std::memset(&update, 0, sizeof(update));
    update.offset = slot;
    update.fds = reinterpret_cast<std::uint64_t>(&op_fd);
    if (sys_io_uring_register(fd, IORING_REGISTER_FILES_UPDATE, &update,
                              1) != 1) {
      fixed_files = false;  // kernel said no; stop trying on this ring
      return -1;
    }
    // Drop the evicted occupant's mapping and any stale mapping of `key`
    // under another slot. Both by key, never via the iterator above: when
    // the evicted occupant IS `key` (fd refresh landing on its own slot),
    // the first erase already freed the node `it` points to.
    if (slots[slot].key != 0) slot_of.erase(slots[slot].key);
    slot_of.erase(key);
    slots[slot] = {key, op_fd};
    slot_of[key] = slot;
    counters.registered.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int>(slot);
  }

  void drop_registrations() {
    // The kernel-side slots stay populated but are never used again until
    // re-installed: every lookup goes through slot_of, which is now empty.
    slot_of.clear();
    for (Slot& slot : slots) slot = {};
  }
};

struct UringShared {
  Counters counters;
  std::atomic<std::uint64_t> reg_epoch{1};
  unsigned depth = 32;
};

// Per-thread rings, keyed by the owning backend's shared block. Entries
// whose backend died are swept on the next lookup (a ring is one fd plus
// three mmaps — cheap, but not free across hundreds of stores).
struct RingEntry {
  std::weak_ptr<UringShared> owner;
  std::unique_ptr<Ring> ring;
};

Ring* local_ring(const std::shared_ptr<UringShared>& shared) {
  thread_local std::unordered_map<const UringShared*, RingEntry> rings;
  for (auto it = rings.begin(); it != rings.end();) {
    it = it->second.owner.expired() ? rings.erase(it) : std::next(it);
  }
  auto [it, fresh] = rings.try_emplace(shared.get());
  if (fresh) {
    it->second.owner = shared;
    auto ring = std::make_unique<Ring>();
    if (ring->init(shared->depth)) it->second.ring = std::move(ring);
    // A failed init leaves ring == nullptr cached: the thread falls back
    // to sync preads without re-probing every batch.
  }
  return it->second.ring.get();
}

class UringBackend final : public AsyncIoBackend {
 public:
  explicit UringBackend(std::size_t depth)
      : shared_(std::make_shared<UringShared>()) {
    shared_->depth = static_cast<unsigned>(depth);
  }

  void read_batch(std::span<ReadOp> ops) override {
    if (!pass_crash_point(ops)) return;
    Counters& counters = shared_->counters;
    counters.batches.fetch_add(1, std::memory_order_relaxed);
    counters.reads.fetch_add(ops.size(), std::memory_order_relaxed);
    Ring* ring = local_ring(shared_);
    if (ring == nullptr) {  // setup failed on this thread: degrade per-op
      for (ReadOp& op : ops) run_sync_op(op, counters);
      return;
    }
    const std::uint64_t epoch =
        shared_->reg_epoch.load(std::memory_order_acquire);
    if (ring->seen_epoch != epoch) {
      ring->drop_registrations();
      ring->seen_epoch = epoch;
    }
    run_on_ring(*ring, ops, counters);
  }

  void invalidate(std::uint64_t reg_key) override {
    (void)reg_key;
    // Conservative: bump the epoch so every ring drops all registrations
    // before its next batch. Invalidation is rare (container rewrite or
    // erase); re-registering a handful of hot descriptors is cheap next to
    // reading stale file references through a reused slot.
    shared_->reg_epoch.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] Backend kind() const noexcept override {
    return Backend::kUring;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "uring";
  }
  [[nodiscard]] BackendStats stats() const override {
    return shared_->counters.snapshot();
  }

 private:
  // Submits every op, reaping completions and resubmitting EINTR/short
  // reads until the batch settles. user_data = index into `ops`.
  static void run_on_ring(Ring& ring, std::span<ReadOp> ops,
                          Counters& counters) {
    std::vector<std::uint32_t> pending;  // indices not yet submitted
    pending.reserve(ops.size());
    for (std::uint32_t i = 0; i < ops.size(); ++i) {
      ops[i].error = 0;
      ops[i].filled = 0;
      pending.push_back(i);
    }
    // First-attempt fault decisions, consumed at completion time.
    std::vector<Fault> faults(ops.size(), Fault::kNone);
    std::vector<bool> attempted(ops.size(), false);

    std::size_t done = 0;
    unsigned in_flight = 0;
    while (done < ops.size()) {
      // Fill the submission window.
      unsigned queued = 0;
      while (!pending.empty() && in_flight + queued < ring.sq_entries) {
        const std::uint32_t index = pending.back();
        pending.pop_back();
        ReadOp& op = ops[index];
        if (!attempted[index]) {
          attempted[index] = true;
          faults[index] = take_fault();
        }
        const unsigned tail =
            std::atomic_ref<unsigned>(*ring.sq_tail)
                .load(std::memory_order_relaxed);
        const unsigned slot = (tail + queued) & ring.sq_mask;
        io_uring_sqe& sqe = ring.sqes[slot];
        std::memset(&sqe, 0, sizeof(sqe));
        sqe.opcode = IORING_OP_READ;
        const int fixed =
            ring.fixed_slot(op.reg_key, op.fd, counters);
        if (fixed >= 0) {
          sqe.fd = fixed;
          sqe.flags = IOSQE_FIXED_FILE;
        } else {
          sqe.fd = op.fd;
        }
        sqe.addr = reinterpret_cast<std::uint64_t>(op.dst + op.filled);
        sqe.len = static_cast<std::uint32_t>(op.len - op.filled);
        sqe.off = op.offset + op.filled;
        sqe.user_data = index;
        ring.sq_array[slot] = slot;
        ++queued;
      }
      if (queued > 0) {
        std::atomic_ref<unsigned>(*ring.sq_tail)
            .fetch_add(queued, std::memory_order_release);
      }

      // Submit what we queued and wait for at least one completion.
      const unsigned wait_for = in_flight + queued > 0 ? 1 : 0;
      // EINTR retries pass the same to_submit: the kernel consumes SQEs up
      // to the published tail at most once, so a re-entered call submits
      // whatever the interrupted one did not and then just waits.
      int submitted;
      do {
        submitted = sys_io_uring_enter(ring.fd, queued, wait_for,
                                       IORING_ENTER_GETEVENTS);
        counters.submits.fetch_add(1, std::memory_order_relaxed);
      } while (submitted < 0 && errno == EINTR);
      if (submitted < 0) {
        // Ring-level failure. Unreachable with our submission discipline
        // (in-flight is bounded by sq_entries, so the CQ cannot overflow),
        // but if it ever fires we must not return while kernel-owned ops
        // could still write our buffers: drain what was already submitted,
        // then fail everything that never completed.
        while (in_flight > 0 &&
               sys_io_uring_enter(ring.fd, 0, 1, IORING_ENTER_GETEVENTS) >=
                   0) {
          std::atomic_ref<unsigned> drain_head(*ring.cq_head);
          const unsigned drain_tail =
              std::atomic_ref<unsigned>(*ring.cq_tail)
                  .load(std::memory_order_acquire);
          unsigned head = drain_head.load(std::memory_order_relaxed);
          while (head != drain_tail && in_flight > 0) {
            ++head;
            --in_flight;
          }
          drain_head.store(head, std::memory_order_release);
        }
        const int ring_errno = errno != 0 ? errno : EIO;
        for (ReadOp& op : ops) {
          if (op.error == 0 && op.filled < op.len) op.error = ring_errno;
        }
        return;
      }
      in_flight += queued;

      // Drain the completion ring.
      std::atomic_ref<unsigned> cq_head(*ring.cq_head);
      std::atomic_ref<unsigned> cq_tail(*ring.cq_tail);
      unsigned head = cq_head.load(std::memory_order_relaxed);
      const unsigned tail = cq_tail.load(std::memory_order_acquire);
      while (head != tail) {
        const io_uring_cqe& cqe = ring.cqes[head & ring.cq_mask];
        const auto index = static_cast<std::uint32_t>(cqe.user_data);
        ReadOp& op = ops[index];
        std::int32_t res = cqe.res;
        ++head;
        --in_flight;
        // Injected faults are applied to the completion, so the injected
        // short read / EINTR flows through the real resubmission path.
        if (faults[index] == Fault::kShort && res > 1) {
          res /= 2;
          faults[index] = Fault::kNone;
          counters.short_retries.fetch_add(1, std::memory_order_relaxed);
        } else if (faults[index] == Fault::kEintr) {
          res = -EINTR;
          faults[index] = Fault::kNone;
        }
        if (res < 0) {
          if (res == -EINTR || res == -EAGAIN) {
            counters.eintr_retries.fetch_add(1, std::memory_order_relaxed);
            pending.push_back(index);
          } else {
            op.error = -res;
            ++done;
          }
        } else if (res == 0) {
          ++done;  // EOF inside the range
        } else {
          op.filled += static_cast<std::size_t>(res);
          if (op.filled < op.len) {
            counters.short_retries.fetch_add(1, std::memory_order_relaxed);
            pending.push_back(index);
          } else {
            ++done;
          }
        }
      }
      cq_head.store(head, std::memory_order_release);
    }
  }

  std::shared_ptr<UringShared> shared_;
};

bool probe_uring() {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const int fd = sys_io_uring_setup(4, &params);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

#else  // !HDS_WITH_URING

bool probe_uring() { return false; }

#endif

}  // namespace

bool uring_supported() noexcept {
  static const bool supported = probe_uring();
  return supported;
}

std::optional<Backend> parse_backend(std::string_view name) noexcept {
  if (name == "sync") return Backend::kSync;
  if (name == "threads") return Backend::kThreads;
  if (name == "uring") return Backend::kUring;
  if (name == "auto") return Backend::kAuto;
  return std::nullopt;
}

std::string_view backend_name(Backend kind) noexcept {
  switch (kind) {
    case Backend::kSync:
      return "sync";
    case Backend::kThreads:
      return "threads";
    case Backend::kUring:
      return "uring";
    case Backend::kAuto:
      return "auto";
  }
  return "unknown";
}

std::unique_ptr<AsyncIoBackend> make_backend(Backend kind,
                                             std::size_t queue_depth) {
  if (queue_depth == 0) queue_depth = 32;
  queue_depth = std::clamp<std::size_t>(queue_depth, 1, 512);
  if (kind == Backend::kAuto) {
    kind = uring_supported() ? Backend::kUring : Backend::kThreads;
    if (const char* env = std::getenv("HDS_IO_BACKEND")) {
      if (const auto forced = parse_backend(env);
          forced && *forced != Backend::kAuto) {
        kind = *forced;
      } else if (obs::log_enabled(obs::LogLevel::kWarn)) {
        obs::log_warn("io_backend_env_ignored", {{"value", env}});
      }
    }
  }
#if defined(HDS_WITH_URING) && HDS_WITH_URING
  if (kind == Backend::kUring && uring_supported()) {
    return std::make_unique<UringBackend>(queue_depth);
  }
#endif
  if (kind == Backend::kSync) return std::make_unique<SyncBackend>();
  // kThreads, or kUring on a kernel/build without io_uring.
  return std::make_unique<ThreadsBackend>(queue_depth);
}

void set_fault_plan(const FaultPlan& plan) noexcept {
  FaultState& state = fault_state();
  MutexLock lock(state.mu);
  state.plan = plan;
  state.short_count = 0;
  state.eintr_count = 0;
  state.armed.store(
      plan.short_read_every_n != 0 || plan.eintr_every_n != 0,
      std::memory_order_relaxed);
}

void clear_fault_plan() noexcept { set_fault_plan({}); }

}  // namespace hds::aio
