// Asynchronous read backends for the restore data plane (DESIGN.md §13).
//
// The container I/O fast path (DESIGN.md §10) reads exactly the extents a
// restore needs — but it used to issue them as sequential pread(2) calls
// from whichever thread asked. A fragmented partial read of 100 chunks is
// 100 synchronous syscalls; a multi-stream restore serializes on them. This
// header abstracts "execute a batch of reads" behind AsyncIoBackend so the
// store can keep many extents — and many containers — in flight at once:
//
//   * UringIoBackend   — io_uring via raw syscalls (no liburing needed):
//                        one submission batch per read_batch() call,
//                        per-thread rings (no cross-thread locking on the
//                        hot path), optional fixed-file registration of the
//                        FdCache's long-lived descriptors;
//   * ThreadsIoBackend — portable fallback: the batch fans out over a small
//                        ThreadPool of preading workers;
//   * SyncIoBackend    — the pre-PR behavior (sequential preads), kept as
//                        the accounting/debugging baseline.
//
// Selection is runtime (`--io-backend=uring|threads|sync`, default auto):
// auto probes io_uring support once and falls back to threads. The
// HDS_IO_BACKEND environment variable overrides auto-detection — the
// forced-fallback hook tests and operators use.
//
// Semantics shared by every backend:
//   * read_batch() blocks until every op completes; ops may complete in any
//     order and are retried internally on EINTR/EAGAIN and short reads;
//   * `filled < len` with `error == 0` means EOF — the file ended inside
//     the requested range (legal for O_DIRECT tail reads, an error for
//     exact reads; callers decide);
//   * thread-safe: concurrent read_batch() calls from restore streams and
//     prefetch workers proceed in parallel (the sync backend simply runs on
//     the calling thread).
//
// Fault injection: every batch passes a durable::CrashInjector crash point
// ("async_io_read" — kFail mode turns reads into EIO just like a dying
// device), and set_fault_plan() can force periodic short reads / EINTRs to
// exercise the resubmission paths deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

namespace hds::aio {

enum class Backend {
  kSync = 0,
  kThreads = 1,
  kUring = 2,
  kAuto = 3,  // resolve at make_backend() time; never the name of a backend
};

// One pread-shaped operation. `reg_key` is a stable identity for fixed-file
// registration (the container ID when the fd comes from the FdCache); 0
// means "never register". Results land in `error` (errno, 0 on success) and
// `filled` (bytes actually read — equal to len unless EOF or error).
struct ReadOp {
  int fd = -1;
  std::uint64_t offset = 0;
  std::uint8_t* dst = nullptr;
  std::size_t len = 0;
  std::uint64_t reg_key = 0;

  int error = 0;
  std::size_t filled = 0;

  [[nodiscard]] bool ok() const noexcept { return error == 0; }
  [[nodiscard]] bool complete() const noexcept {
    return error == 0 && filled == len;
  }
};

// Cumulative backend counters (relaxed atomics underneath; a snapshot).
struct BackendStats {
  std::uint64_t batches = 0;       // read_batch() calls
  std::uint64_t reads = 0;         // ops completed (any outcome)
  std::uint64_t submits = 0;       // syscalls issued (enter/pread/task runs)
  std::uint64_t short_retries = 0; // resubmissions after a short read
  std::uint64_t eintr_retries = 0; // EINTR/EAGAIN resubmissions
  std::uint64_t registered_files = 0;  // fixed-file slots installed (uring)
};

class AsyncIoBackend {
 public:
  virtual ~AsyncIoBackend() = default;

  // Executes every op in `ops`, blocking until all complete. Per-op results
  // are written back into the ops. Never throws for I/O outcomes — errors
  // are reported per op so one bad extent fails one chunk, not the batch.
  virtual void read_batch(std::span<ReadOp> ops) = 0;

  // Drops any fixed-file registration derived from `reg_key` (the owning
  // store calls this wherever it invalidates its fd cache: container
  // rewrite, erase, forget). No-op for backends without registration.
  virtual void invalidate(std::uint64_t reg_key) { (void)reg_key; }

  [[nodiscard]] virtual Backend kind() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual BackendStats stats() const = 0;
};

// True when this kernel accepts io_uring_setup (probed once, cached).
// Compile-time gating (HDS_WITH_URING / <linux/io_uring.h>) folds into the
// same answer: a build without uring support reports false.
[[nodiscard]] bool uring_supported() noexcept;

// "sync" | "threads" | "uring" | "auto" → Backend; nullopt otherwise.
[[nodiscard]] std::optional<Backend> parse_backend(
    std::string_view name) noexcept;
[[nodiscard]] std::string_view backend_name(Backend kind) noexcept;

// Resolves `kind` to a concrete backend:
//   * kAuto honors HDS_IO_BACKEND (sync|threads|uring) when set, otherwise
//     picks uring when supported, else threads;
//   * kUring on a kernel/build without io_uring silently degrades to
//     threads (the returned backend's name() tells the truth);
//   * `queue_depth` bounds in-flight ops per batch (uring SQ size, thread
//     count for the pool; clamped to [1, 512], 0 = default 32).
[[nodiscard]] std::unique_ptr<AsyncIoBackend> make_backend(
    Backend kind, std::size_t queue_depth = 0);

// Deterministic fault injection for tests (process-global, like
// CrashInjector). every_n == 0 disables that fault. Short reads truncate
// an op's first attempt to half its length; EINTR faults fail the first
// attempt with EINTR. Both must be healed transparently by resubmission.
struct FaultPlan {
  std::uint32_t short_read_every_n = 0;
  std::uint32_t eintr_every_n = 0;
};
void set_fault_plan(const FaultPlan& plan) noexcept;
void clear_fault_plan() noexcept;

}  // namespace hds::aio
