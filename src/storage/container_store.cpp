#include "storage/container_store.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "storage/durable.h"
#include "verify/invariant.h"

namespace hds {

ContainerId ContainerStore::write(Container container) {
  const ContainerId id = reserve_id();
  container.set_id(id);
  put(std::move(container));
  return id;
}

void ContainerStore::put(Container container) {
  const ContainerId id = container.id();
  // Sealing invariants: archival IDs are strictly positive (0 is the active
  // class, negatives are chain links) and containers never overflow.
  HDS_CHECK(id > 0, "archival container sealed with a non-archival ID");
  HDS_CHECK(container.data_size() <= container.capacity(),
            "archival container sealed beyond its capacity");
  const std::uint64_t size = container.data_size();
  // Count only after do_write returns: a partial or failed write must not
  // show up as a successful container_write (it previously did).
  do_write(id, std::move(container));
  stats_.container_writes++;
  stats_.bytes_written += size;
  if (m_writes_ != nullptr) {
    m_writes_->inc();
    m_bytes_written_->inc(size);
  }
}

std::shared_ptr<const Container> ContainerStore::read(ContainerId id) {
  auto container = do_read(id);
  if (container) {
    stats_.container_reads++;
    stats_.bytes_read += container->data_size();
    if (m_reads_ != nullptr) {
      m_reads_->inc();
      m_bytes_read_->inc(container->data_size());
    }
  }
  return container;
}

bool ContainerStore::erase(ContainerId id) {
  const bool erased = do_erase(id);
  if (erased && m_erases_ != nullptr) m_erases_->inc();
  return erased;
}

void ContainerStore::attach_metrics(obs::MetricsRegistry& registry,
                                    std::string_view prefix) {
  const std::string p(prefix);
  m_writes_ = &registry.counter(p + "_container_writes");
  m_reads_ = &registry.counter(p + "_container_reads");
  m_erases_ = &registry.counter(p + "_container_erases");
  m_bytes_written_ = &registry.counter(p + "_bytes_written");
  m_bytes_read_ = &registry.counter(p + "_bytes_read");
}

// --- MemoryContainerStore ---

std::vector<ContainerId> MemoryContainerStore::ids() const {
  std::lock_guard lock(mu_);
  std::vector<ContainerId> out;
  out.reserve(containers_.size());
  for (const auto& [id, _] : containers_) out.push_back(id);
  return out;
}

void MemoryContainerStore::do_write(ContainerId id, Container&& container) {
  auto stored = std::make_shared<const Container>(std::move(container));
  std::lock_guard lock(mu_);
  containers_[id] = std::move(stored);
}

std::shared_ptr<const Container> MemoryContainerStore::do_read(
    ContainerId id) {
  std::lock_guard lock(mu_);
  const auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : it->second;
}

bool MemoryContainerStore::do_erase(ContainerId id) {
  std::lock_guard lock(mu_);
  return containers_.erase(id) > 0;
}

// --- FileContainerStore ---

FileContainerStore::FileContainerStore(std::filesystem::path dir,
                                       bool index_existing)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  if (!index_existing) return;
  ContainerId max_id = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const auto name = entry.path().filename().string();
    // container_<id>.hdsc
    if (name.rfind("container_", 0) != 0 || !entry.is_regular_file()) {
      continue;
    }
    const auto id_str = name.substr(10, name.size() - 10 - 5);
    char* end = nullptr;
    const long id = std::strtol(id_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || id <= 0) continue;
    known_[static_cast<ContainerId>(id)] = true;
    max_id = std::max(max_id, static_cast<ContainerId>(id));
  }
  restore_next_id(max_id + 1);
}

std::filesystem::path FileContainerStore::path_for(ContainerId id) const {
  return dir_ / ("container_" + std::to_string(id) + ".hdsc");
}

std::vector<ContainerId> FileContainerStore::ids() const {
  std::lock_guard lock(mu_);
  std::vector<ContainerId> out;
  out.reserve(known_.size());
  for (const auto& [id, _] : known_) out.push_back(id);
  return out;
}

void FileContainerStore::do_write(ContainerId id, Container&& container) {
  // Atomic (temp + fsync + rename): a crash mid-write leaves at worst a
  // *.tmp file that recovery sweeps, never a torn container at the final
  // path. Throws durable::WriteError on any failure, before the container
  // becomes visible in known_.
  durable::atomic_write_file(path_for(id), container.serialize());
  std::lock_guard lock(mu_);
  known_[id] = true;
}

std::shared_ptr<const Container> FileContainerStore::do_read(ContainerId id) {
  {
    std::lock_guard lock(mu_);
    if (!known_.contains(id)) return nullptr;
  }
  std::ifstream in(path_for(id), std::ios::binary | std::ios::ate);
  if (!in) return nullptr;
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::uint8_t> bytes(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!in) return nullptr;
  auto container = Container::deserialize(bytes);
  if (!container) return nullptr;
  return std::make_shared<const Container>(std::move(*container));
}

bool FileContainerStore::do_erase(ContainerId id) {
  {
    std::lock_guard lock(mu_);
    if (known_.erase(id) == 0) return false;
  }
  std::error_code ec;
  std::filesystem::remove(path_for(id), ec);
  return !ec;
}

}  // namespace hds
