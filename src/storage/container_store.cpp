#include "storage/container_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "obs/log.h"
#include "storage/durable.h"
#include "verify/invariant.h"

namespace hds {

ContainerId ContainerStore::write(Container container) {
  const ContainerId id = reserve_id();
  container.set_id(id);
  put(std::move(container));
  return id;
}

void ContainerStore::put(Container container) {
  const ContainerId id = container.id();
  // Sealing invariants: archival IDs are strictly positive (0 is the active
  // class, negatives are chain links) and containers never overflow.
  HDS_CHECK(id > 0, "archival container sealed with a non-archival ID");
  HDS_CHECK(container.data_size() <= container.capacity(),
            "archival container sealed beyond its capacity");
  const std::uint64_t size = container.data_size();
  // Count only after do_write returns: a partial or failed write must not
  // show up as a successful container_write (it previously did).
  do_write(id, std::move(container));
  stats_.container_writes++;
  stats_.bytes_written += size;
  if (m_writes_ != nullptr) {
    m_writes_->inc();
    m_bytes_written_->inc(size);
  }
}

std::shared_ptr<const Container> ContainerStore::account_read(
    ReadResult&& result, ReadMeter* meter) {
  if (!result.container) return nullptr;
  stats_.container_reads++;
  stats_.bytes_read += result.logical_bytes;
  stats_.bytes_read_physical += result.physical_bytes;
  if (meter != nullptr) {
    meter->add(result.logical_bytes, result.physical_bytes);
  }
  if (m_reads_ != nullptr) {
    m_reads_->inc();
    m_bytes_read_->inc(result.logical_bytes);
    m_bytes_read_physical_->inc(result.physical_bytes);
  }
  return std::move(result.container);
}

std::shared_ptr<const Container> ContainerStore::read(ContainerId id,
                                                      ReadMeter* meter) {
  return account_read(do_read(id), meter);
}

std::shared_ptr<const Container> ContainerStore::read_chunks(
    ContainerId id, std::span<const Fingerprint> fps, ReadMeter* meter) {
  if (fps.empty()) return read(id, meter);
  return account_read(do_read_chunks(id, fps), meter);
}

std::shared_ptr<const Container> ContainerStore::read_verified(
    ContainerId id, ReadMeter* meter) {
  return account_read(do_read_verified(id), meter);
}

bool ContainerStore::erase(ContainerId id) {
  const bool erased = do_erase(id);
  if (erased && m_erases_ != nullptr) m_erases_->inc();
  return erased;
}

void ContainerStore::attach_metrics(obs::MetricsRegistry& registry,
                                    std::string_view prefix) {
  const std::string p(prefix);
  m_writes_ = &registry.counter(p + "_container_writes");
  m_reads_ = &registry.counter(p + "_container_reads");
  m_erases_ = &registry.counter(p + "_container_erases");
  m_bytes_written_ = &registry.counter(p + "_bytes_written");
  m_bytes_read_ = &registry.counter(p + "_bytes_read");
  m_bytes_read_physical_ = &registry.counter(p + "_bytes_read_physical");
}

// --- MemoryContainerStore ---

std::vector<ContainerId> MemoryContainerStore::ids() const {
  MutexLock lock(mu_);
  std::vector<ContainerId> out;
  out.reserve(containers_.size());
  for (const auto& [id, _] : containers_) out.push_back(id);
  return out;
}

void MemoryContainerStore::do_write(ContainerId id, Container&& container) {
  auto stored = std::make_shared<const Container>(std::move(container));
  MutexLock lock(mu_);
  containers_[id] = std::move(stored);
}

ContainerStore::ReadResult MemoryContainerStore::do_read(ContainerId id) {
  MutexLock lock(mu_);
  const auto it = containers_.find(id);
  if (it == containers_.end()) return {};
  // RAM is the modeled disk: physical == logical, so every §5.3 experiment
  // on the memory backend is bit-identical with or without the fast path.
  const std::uint64_t size = it->second->data_size();
  return {it->second, size, size};
}

bool MemoryContainerStore::do_erase(ContainerId id) {
  MutexLock lock(mu_);
  return containers_.erase(id) > 0;
}

// --- FileContainerStore ---

namespace {

// pread(2) exactly [offset, offset + len); throws ReadError on failure or
// unexpected EOF so callers never decode a partially filled buffer.
void pread_exact(int fd, std::uint8_t* dst, std::size_t len,
                 std::uint64_t offset, ContainerId id) {
  while (len > 0) {
    const ssize_t n = ::pread(fd, dst, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ReadError(id, std::string("pread failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) throw ReadError(id, "unexpected EOF");
    dst += n;
    len -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void log_read_error(const ReadError& err) {
  if (obs::log_enabled(obs::LogLevel::kWarn)) {
    obs::log_warn("container_read_error", {{"error", err.what()}});
  }
}

}  // namespace

FileContainerStore::FileContainerStore(std::filesystem::path dir,
                                       bool index_existing,
                                       const FileStoreTuning& tuning)
    : dir_(std::move(dir)),
      tuning_(tuning),
      fd_cache_(tuning.fd_cache_slots),
      block_cache_(tuning.block_cache_bytes, tuning.block_cache_shards),
      io_(aio::make_backend(tuning.io_backend, tuning.io_depth)) {
  fd_cache_.set_direct(tuning.direct_io);
  std::filesystem::create_directories(dir_);
  if (!index_existing) return;
  ContainerId max_id = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const auto name = entry.path().filename().string();
    // container_<id>.hdsc
    if (name.rfind("container_", 0) != 0 || !entry.is_regular_file()) {
      continue;
    }
    const auto id_str = name.substr(10, name.size() - 10 - 5);
    char* end = nullptr;
    const long id = std::strtol(id_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || id <= 0) continue;
    known_[static_cast<ContainerId>(id)] = true;
    max_id = std::max(max_id, static_cast<ContainerId>(id));
  }
  restore_next_id(max_id + 1);
}

void FileContainerStore::set_tuning(const FileStoreTuning& tuning) {
  const bool backend_changed = tuning.io_backend != tuning_.io_backend ||
                               tuning.io_depth != tuning_.io_depth;
  tuning_ = tuning;
  fd_cache_.clear();
  fd_cache_.set_capacity(tuning.fd_cache_slots);
  fd_cache_.set_direct(tuning.direct_io);
  block_cache_.reconfigure(tuning.block_cache_bytes,
                           tuning.block_cache_shards);
  if (backend_changed) {
    io_ = aio::make_backend(tuning.io_backend, tuning.io_depth);
  }
}

FileContainerStore::IoPathStats FileContainerStore::io_stats() const {
  IoPathStats out;
  out.fd_cache_hits = fd_cache_.hits();
  out.fd_cache_opens = fd_cache_.opens();
  out.open_fds = fd_cache_.open_fds();
  out.block_cache_hits = block_cache_.hits();
  out.block_cache_misses = block_cache_.misses();
  out.block_cache_evictions = block_cache_.evictions();
  out.block_cache_bytes = block_cache_.bytes();
  out.partial_reads = partial_reads_.load(std::memory_order_relaxed);
  out.read_errors = read_errors_.load(std::memory_order_relaxed);
  const aio::BackendStats io = io_->stats();
  out.io_batches = io.batches;
  out.io_reads = io.reads;
  out.io_submits = io.submits;
  out.io_short_retries = io.short_retries;
  out.io_eintr_retries = io.eintr_retries;
  out.io_registered_files = io.registered_files;
  return out;
}

std::filesystem::path FileContainerStore::path_for(ContainerId id) const {
  return dir_ / ("container_" + std::to_string(id) + ".hdsc");
}

std::vector<ContainerId> FileContainerStore::ids() const {
  MutexLock lock(mu_);
  std::vector<ContainerId> out;
  out.reserve(known_.size());
  for (const auto& [id, _] : known_) out.push_back(id);
  return out;
}

void FileContainerStore::do_write(ContainerId id, Container&& container) {
  // Atomic (temp + fsync + rename): a crash mid-write leaves at worst a
  // *.tmp file that recovery sweeps, never a torn container at the final
  // path. Throws durable::WriteError on any failure, before the container
  // becomes visible in known_.
  durable::atomic_write_file(path_for(id), container.serialize());
  // The rename replaced the inode: drop any descriptor, cached image, or
  // backend fixed-file registration of a previous container under this ID
  // so later reads see the new content. (Caches are never populated on
  // write — see BlockCache's policy.)
  fd_cache_.invalidate(id);
  block_cache_.invalidate(id);
  io_->invalidate(static_cast<std::uint64_t>(id));
  MutexLock lock(mu_);
  known_[id] = true;
}

std::uint64_t FileContainerStore::read_extents(const FdCache::Handle& handle,
                                               ContainerId id,
                                               std::span<ExtentRead> reads) {
  if (reads.empty()) return 0;
  std::vector<aio::ReadOp> ops;
  ops.reserve(reads.size());
  std::uint64_t physical = 0;

  if (!handle.direct()) {
    for (const ExtentRead& read : reads) {
      ops.push_back({handle.fd(), read.offset, read.dst, read.len,
                     static_cast<std::uint64_t>(id)});
    }
    io_->read_batch(ops);
    for (const aio::ReadOp& op : ops) {
      if (!op.ok()) {
        throw ReadError(id, std::string("read failed: ") +
                                std::strerror(op.error));
      }
      // The store always reads ranges its header/footer vouch exist, so a
      // backend EOF (filled < len, error == 0) means truncation.
      if (op.filled < op.len) throw ReadError(id, "unexpected EOF");
      physical += op.filled;
    }
    return physical;
  }

  // O_DIRECT: offset, length and buffer must all be kDirectAlign-aligned.
  // Each extent widens to its aligned hull inside one shared scratch arena;
  // completed hulls are memcpy'd back to the callers' buffers. The arena
  // total stays aligned because every hull is a multiple of the alignment.
  constexpr std::uint64_t kAlign = FdCache::kDirectAlign;
  struct Hull {
    std::uint64_t offset = 0;   // aligned-down file offset
    std::size_t len = 0;        // aligned-up length
    std::size_t scratch = 0;    // offset of this hull in the arena
  };
  std::vector<Hull> hulls;
  hulls.reserve(reads.size());
  std::size_t arena_size = 0;
  for (const ExtentRead& read : reads) {
    const std::uint64_t begin = read.offset / kAlign * kAlign;
    const std::uint64_t end =
        (read.offset + read.len + kAlign - 1) / kAlign * kAlign;
    hulls.push_back({begin, static_cast<std::size_t>(end - begin),
                     arena_size});
    arena_size += static_cast<std::size_t>(end - begin);
  }
  struct FreeDeleter {
    void operator()(void* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<std::uint8_t, FreeDeleter> arena(
      static_cast<std::uint8_t*>(std::aligned_alloc(
          static_cast<std::size_t>(kAlign), arena_size)));
  if (arena == nullptr) throw std::bad_alloc();
  for (const Hull& hull : hulls) {
    ops.push_back({handle.fd(), hull.offset, arena.get() + hull.scratch,
                   hull.len, static_cast<std::uint64_t>(id)});
  }
  io_->read_batch(ops);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const aio::ReadOp& op = ops[i];
    const ExtentRead& read = reads[i];
    const Hull& hull = hulls[i];
    if (!op.ok()) {
      throw ReadError(id, std::string("read failed: ") +
                              std::strerror(op.error));
    }
    // An aligned hull may legitimately end past EOF (file tail); the
    // requested range itself must be fully covered.
    const std::size_t need =
        static_cast<std::size_t>(read.offset - hull.offset) + read.len;
    if (op.filled < need) throw ReadError(id, "unexpected EOF");
    std::memcpy(read.dst,
                arena.get() + hull.scratch + (read.offset - hull.offset),
                read.len);
    physical += op.filled;
  }
  return physical;
}

ContainerStore::ReadResult FileContainerStore::slurp(ContainerId id) {
  FdCache::Handle handle = fd_cache_.acquire(id, path_for(id));
  if (!handle.valid()) {
    throw ReadError(id, std::string("open failed: ") + std::strerror(errno));
  }
  // I/O-wait span on the issuing thread: the whole-file read is the
  // disk time a cache miss costs here.
  obs::Span io_span(tracer(), "store_slurp");
  io_span.arg("cid", static_cast<std::uint64_t>(id));
  io_span.arg("bytes", static_cast<std::uint64_t>(handle.size()));
  std::vector<std::uint8_t> bytes(handle.size());
  ExtentRead whole{0, bytes.data(), bytes.size()};
  const std::uint64_t physical =
      read_extents(handle, id, std::span(&whole, 1));
  io_span.end();
  auto container = Container::deserialize(bytes);
  // Corrupt (CRC/framing) is not an I/O error: nullptr, nothing cached.
  if (!container) return {};
  const std::uint64_t data_size = container->data_size();
  auto shared = std::make_shared<const Container>(std::move(*container));
  block_cache_.insert(id, shared, data_size, /*complete=*/true);
  return {std::move(shared), data_size, physical};
}

ContainerStore::ReadResult FileContainerStore::do_read(ContainerId id) {
  if (!is_known(id)) return {};
  if (auto hit = block_cache_.find_full(id)) {
    return {std::move(hit->container), hit->full_data_size, 0};
  }
  try {
    return slurp(id);
  } catch (const ReadError& err) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    log_read_error(err);
    return {};
  }
}

std::optional<ContainerStore::ReadResult> FileContainerStore::try_partial_read(
    ContainerId id, std::span<const Fingerprint> fps) {
  FdCache::Handle handle = fd_cache_.acquire(id, path_for(id));
  if (!handle.valid()) {
    throw ReadError(id, std::string("open failed: ") + std::strerror(errno));
  }
  // Covers header + footer + extent preads; a short span that ends in a
  // nullopt return is a fallback-to-slurp probe, also worth seeing.
  obs::Span io_span(tracer(), "store_partial_read");
  io_span.arg("cid", static_cast<std::uint64_t>(id));
  if (handle.size() < Container::kHeaderSize) return std::nullopt;
  std::array<std::uint8_t, Container::kHeaderSize> header{};
  ExtentRead header_read{0, header.data(), header.size()};
  std::uint64_t physical =
      read_extents(handle, id, std::span(&header_read, 1));
  const auto info = Container::parse_header(header);
  // Legacy format, unknown magic, or a size that does not match the header
  // (truncation, header damage): let the slurp path render the verdict
  // against the whole-file CRC.
  if (!info || !info->footer_indexed) return std::nullopt;
  if (info->expected_file_size() != handle.size()) return std::nullopt;

  std::vector<std::uint8_t> footer(info->footer_size());
  ExtentRead footer_read{info->footer_offset(), footer.data(), footer.size()};
  physical += read_extents(handle, id, std::span(&footer_read, 1));
  const auto parsed = Container::parse_footer(header, footer);
  if (!parsed) return std::nullopt;

  std::unordered_map<Fingerprint, ContainerEntry> table;
  table.reserve(parsed->size());
  // Logical size must match what a full read would charge: data region plus
  // the accounted size of virtual (metadata-only) chunks.
  std::uint64_t logical = info->data_size;
  for (const auto& [fp, entry] : *parsed) {
    if (entry.offset == Container::kVirtualOffset) logical += entry.size;
    table.emplace(fp, entry);
  }
  const std::size_t total_entries = table.size();

  // Requested entries actually present, physical ones sorted by offset so
  // adjacent extents coalesce into sequential preads. Entries are consumed
  // from `table` so a fingerprint repeated in `fps` is fetched once.
  Container out(info->id, info->capacity);
  std::vector<std::pair<Fingerprint, ContainerEntry>> wanted;
  wanted.reserve(fps.size());
  for (const Fingerprint& fp : fps) {
    const auto it = table.find(fp);
    if (it == table.end()) continue;  // absent here, as a full read would show
    if (it->second.offset == Container::kVirtualOffset) {
      // Metadata-only chunk: installed without touching the data region.
      const bool ok = out.add_verified(fp, it->second, {});
      HDS_CHECK(ok, "virtual chunk failed to install from footer index");
      (void)ok;
    } else {
      wanted.emplace_back(fp, it->second);
    }
    table.erase(it);
  }
  std::sort(wanted.begin(), wanted.end(), [](const auto& a, const auto& b) {
    return a.second.offset < b.second.offset;
  });

  // Coalesce extents whose gap is at most one page: one seek amortized
  // beats re-reading a few KiB of unwanted bytes. All runs are planned
  // first and issued as ONE backend batch — with io_uring, a 100-extent
  // fragmented read is a couple of io_uring_enter calls instead of 100
  // sequential preads, and runs complete in parallel.
  constexpr std::uint64_t kCoalesceGap = 4096;
  struct Run {
    std::uint64_t begin = 0;   // data-region offset of the run
    std::size_t first = 0;     // first index in `wanted`
    std::size_t last = 0;      // one past the last index
    std::size_t arena = 0;     // offset of the run's bytes in the arena
  };
  std::vector<Run> runs;
  std::size_t arena_size = 0;
  std::size_t i = 0;
  while (i < wanted.size()) {
    const std::uint64_t run_begin = wanted[i].second.offset;
    std::uint64_t run_end = run_begin + wanted[i].second.size;
    std::size_t j = i + 1;
    while (j < wanted.size() &&
           wanted[j].second.offset <= run_end + kCoalesceGap) {
      run_end = std::max(run_end, std::uint64_t{wanted[j].second.offset} +
                                      wanted[j].second.size);
      ++j;
    }
    runs.push_back({run_begin, i, j, arena_size});
    arena_size += static_cast<std::size_t>(run_end - run_begin);
    i = j;
  }
  std::vector<std::uint8_t> arena(arena_size);
  std::vector<ExtentRead> extents;
  extents.reserve(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const Run& run = runs[r];
    const std::size_t run_len =
        (r + 1 < runs.size() ? runs[r + 1].arena : arena_size) - run.arena;
    extents.push_back({Container::kHeaderSize + run.begin,
                       arena.data() + run.arena, run_len});
  }
  physical += read_extents(handle, id, extents);
  for (const Run& run : runs) {
    for (std::size_t k = run.first; k < run.last; ++k) {
      const auto& [fp, entry] = wanted[k];
      const std::span<const std::uint8_t> payload(
          arena.data() + run.arena + (entry.offset - run.begin), entry.size);
      // A CRC mismatch drops just this chunk (counted in
      // chunk_crc_failures); the restore fails that chunk and no other —
      // same bounded-damage contract as a full read with a bad payload.
      (void)out.add_verified(fp, entry, payload);
    }
  }

  io_span.arg("physical_bytes", physical);
  io_span.end();
  partial_reads_.fetch_add(1, std::memory_order_relaxed);
  const bool complete = out.chunk_count() == total_entries;
  auto shared = std::make_shared<const Container>(std::move(out));
  block_cache_.insert(id, shared, logical, complete);
  return ReadResult{std::move(shared), logical, physical};
}

ContainerStore::ReadResult FileContainerStore::do_read_chunks(
    ContainerId id, std::span<const Fingerprint> fps) {
  if (!is_known(id)) return {};
  if (auto hit = block_cache_.find_chunks(id, fps)) {
    return {std::move(hit->container), hit->full_data_size, 0};
  }
  try {
    if (tuning_.partial_reads) {
      if (auto partial = try_partial_read(id, fps)) return std::move(*partial);
    }
    return slurp(id);
  } catch (const ReadError& err) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    log_read_error(err);
    return {};
  }
}

ContainerStore::ReadResult FileContainerStore::do_read_verified(
    ContainerId id) {
  if (!is_known(id)) return {};
  // fsck path: straight from the medium, no cache lookups, no cache
  // population — a verified read must observe post-write corruption even
  // when a pristine image of the container is sitting in memory.
  const int fd = ::open(path_for(id).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    log_read_error(ReadError(id, std::string("open failed: ") +
                                     std::strerror(errno)));
    return {};
  }
  try {
    struct ::stat st{};
    if (::fstat(fd, &st) != 0) {
      throw ReadError(id, std::string("fstat failed: ") +
                              std::strerror(errno));
    }
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
    pread_exact(fd, bytes.data(), bytes.size(), 0, id);
    ::close(fd);
    auto container = Container::deserialize(bytes);
    if (!container) return {};
    const std::uint64_t data_size = container->data_size();
    return {std::make_shared<const Container>(std::move(*container)),
            data_size, bytes.size()};
  } catch (const ReadError& err) {
    ::close(fd);
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    log_read_error(err);
    return {};
  }
}

bool FileContainerStore::do_erase(ContainerId id) {
  {
    MutexLock lock(mu_);
    if (known_.erase(id) == 0) return false;
  }
  fd_cache_.invalidate(id);
  block_cache_.invalidate(id);
  io_->invalidate(static_cast<std::uint64_t>(id));
  std::error_code ec;
  std::filesystem::remove(path_for(id), ec);
  return !ec;
}

}  // namespace hds
