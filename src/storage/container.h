// Container: the 4 MiB on-disk unit that holds chunk contents (paper §2.1,
// Figure 6).
//
// A container carries its ID, the used data size, and a fingerprint table
// mapping each stored chunk to its offset/length — exactly the structure the
// paper draws: restore reads whole containers and then picks chunks out of
// them via this table. Containers are the unit of disk I/O everywhere in
// this codebase; all restore-performance metrics count container reads.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/chunk.h"
#include "common/fingerprint.h"
#include "common/units.h"

namespace hds {

// Signed on purpose: recipes reuse the container-ID field to encode the
// three location kinds of §4.3 (positive = archival container, zero =
// active containers, negative = "look in recipe |CID|").
using ContainerId = std::int32_t;

inline constexpr ContainerId kCidActive = 0;

struct ContainerEntry {
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
  // CRC-32 of the chunk payload, computed at add() time and re-checked on
  // every read() — corruption is caught at chunk granularity, not only when
  // a whole serialized container fails its trailer CRC. 0 for
  // metadata-only (virtual) chunks, which carry no payload.
  std::uint32_t crc = 0;
};

// Process-wide count of chunk reads whose payload CRC did not match the
// recorded one (mirrored into each system's metrics registry as
// `io_crc_failures`). Monotonic; never reset.
[[nodiscard]] std::uint64_t chunk_crc_failures() noexcept;

class Container {
 public:
  explicit Container(ContainerId id = kCidActive,
                     std::size_t capacity = kDefaultContainerSize)
      : id_(id), capacity_(capacity) {
    data_.reserve(0);  // grown on demand; capacity_ bounds used bytes
  }

  [[nodiscard]] ContainerId id() const noexcept { return id_; }
  void set_id(ContainerId id) noexcept { id_ = id; }

  // True if a chunk of `size` bytes still fits (contiguously at the tail).
  [[nodiscard]] bool fits(std::size_t size) const noexcept {
    return data_size() + size <= capacity_;
  }

  // Adds a chunk; returns false when it does not fit or the fingerprint is
  // already present (containers never hold duplicates).
  bool add(const Fingerprint& fp, std::span<const std::uint8_t> bytes);

  // Adds a chunk whose payload CRC-32 is already known — the batched
  // eviction/compaction paths stage CRC-verified spans straight out of
  // another container's entry table without recomputing the checksum.
  bool add_with_crc(const Fingerprint& fp, std::span<const std::uint8_t> bytes,
                    std::uint32_t crc);

  // Partial-read support: verifies `payload` against `entry.crc` and
  // installs the chunk at the container's tail (entry.offset is the source
  // container's layout and is ignored here). Virtual entries install
  // metadata-only, no payload required. Returns false on a CRC mismatch,
  // counting the failure in chunk_crc_failures().
  bool add_verified(const Fingerprint& fp, const ContainerEntry& entry,
                    std::span<const std::uint8_t> payload);

  // Adds a chunk without materialized bytes (trace/simulated mode): space is
  // fully accounted but no payload is allocated; read() serves such chunks
  // from a shared zero page. Keeps metadata-only experiments allocation-free
  // while every size/offset/I-O count stays identical to real mode.
  bool add_meta(const Fingerprint& fp, std::uint32_t size);

  [[nodiscard]] bool contains(const Fingerprint& fp) const noexcept {
    return entries_.contains(fp);
  }

  // Returns the chunk bytes, or nullopt if absent OR if the payload fails
  // its per-chunk CRC (the failure is counted in chunk_crc_failures()).
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> read(
      const Fingerprint& fp) const noexcept;

  // fsck support: recomputes every stored payload's CRC against its entry.
  // Returns the fingerprints that fail; does not touch the failure counter.
  [[nodiscard]] std::vector<Fingerprint> corrupt_chunks() const;

  [[nodiscard]] std::optional<ContainerEntry> find(
      const Fingerprint& fp) const noexcept;

  // Logically removes a chunk. The freed bytes are NOT reusable until
  // compaction (paper Figure 6: variable-size holes cannot be refilled) —
  // used_bytes() drops but data_size() stays, modeling the hole.
  bool remove(const Fingerprint& fp);

  // Rewrites the container in place, squeezing out removed chunks.
  void compact();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  // Tail position: bytes consumed in the container, holes and virtual
  // (metadata-only) payloads included.
  [[nodiscard]] std::size_t data_size() const noexcept {
    return data_.size() + virtual_bytes_;
  }
  // Live bytes: sum of sizes of chunks still present.
  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return entries_.size();
  }
  // Paper's container utilization: live bytes / capacity.
  [[nodiscard]] double utilization() const noexcept {
    return static_cast<double>(used_) / static_cast<double>(capacity_);
  }

  [[nodiscard]] const std::unordered_map<Fingerprint, ContainerEntry>&
  entries() const noexcept {
    return entries_;
  }

  // --- On-disk layout ---
  // Format 3 ("HDSF"): header(20) | chunk data | entry table (32 B/chunk) |
  // footer CRC | file CRC. The header keeps the format-2 field offsets
  // (chunk count at byte 12, data size at byte 16), but the entry table
  // moved behind the data region so that header + table — the *footer
  // index* — can be fetched with two small preads and the needed chunk
  // extents read individually, instead of slurping the whole file. The
  // footer CRC covers header + table, so a partial read validates every
  // byte it touches (per-chunk payload CRCs cover the extents) without
  // reading the data region; the trailing file CRC covers the whole image
  // for the slurp path. Format 2 ("HDSE": table before data, single
  // trailing CRC) is still accepted by deserialize() and served by the
  // slurp path.
  static constexpr std::size_t kHeaderSize = 20;
  static constexpr std::size_t kEntrySize = 32;
  // Footer CRC + file CRC behind the entry table (format 3 only).
  static constexpr std::size_t kTrailerSize = 8;
  // Offset marker for metadata-only chunks (no stored payload).
  static constexpr std::uint32_t kVirtualOffset = 0xFFFFFFFFu;

  struct HeaderInfo {
    ContainerId id = 0;
    std::uint32_t capacity = 0;
    std::uint32_t count = 0;
    std::uint32_t data_size = 0;
    bool footer_indexed = false;  // true for format 3

    // Exact serialized size of a format-3 container with this header.
    [[nodiscard]] std::uint64_t expected_file_size() const noexcept {
      return kHeaderSize + std::uint64_t{data_size} +
             std::uint64_t{count} * kEntrySize + kTrailerSize;
    }
    // Byte offset of the entry table + footer CRC region (format 3).
    [[nodiscard]] std::uint64_t footer_offset() const noexcept {
      return kHeaderSize + std::uint64_t{data_size};
    }
    [[nodiscard]] std::uint64_t footer_size() const noexcept {
      return std::uint64_t{count} * kEntrySize + 4;
    }
  };

  // Parses the 20-byte fixed header shared by both formats; nullopt on a
  // short span or unknown magic. Performs no CRC validation.
  static std::optional<HeaderInfo> parse_header(
      std::span<const std::uint8_t> bytes);

  // Parses a format-3 footer index: `footer_bytes` is the entry table plus
  // its CRC word (header.footer_size() bytes at header.footer_offset()) and
  // `header_bytes` the same 20-byte prefix given to parse_header — the
  // footer CRC covers header + table, so header corruption is detected
  // without touching the data region. nullopt on CRC or framing mismatch.
  static std::optional<std::vector<std::pair<Fingerprint, ContainerEntry>>>
  parse_footer(std::span<const std::uint8_t> header_bytes,
               std::span<const std::uint8_t> footer_bytes);

  // Binary serialization (format 3, see layout above). Round-trips through
  // deserialize().
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  // Format-2 image (entry table before the data, no footer index) — kept so
  // compatibility tests can produce legacy containers.
  [[nodiscard]] std::vector<std::uint8_t> serialize_legacy() const;
  static std::optional<Container> deserialize(
      std::span<const std::uint8_t> bytes);

 private:
  ContainerId id_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t virtual_bytes_ = 0;  // space consumed by metadata-only chunks
  std::vector<std::uint8_t> data_;
  std::unordered_map<Fingerprint, ContainerEntry> entries_;
};

}  // namespace hds
