// Container: the 4 MiB on-disk unit that holds chunk contents (paper §2.1,
// Figure 6).
//
// A container carries its ID, the used data size, and a fingerprint table
// mapping each stored chunk to its offset/length — exactly the structure the
// paper draws: restore reads whole containers and then picks chunks out of
// them via this table. Containers are the unit of disk I/O everywhere in
// this codebase; all restore-performance metrics count container reads.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/chunk.h"
#include "common/fingerprint.h"
#include "common/units.h"

namespace hds {

// Signed on purpose: recipes reuse the container-ID field to encode the
// three location kinds of §4.3 (positive = archival container, zero =
// active containers, negative = "look in recipe |CID|").
using ContainerId = std::int32_t;

inline constexpr ContainerId kCidActive = 0;

struct ContainerEntry {
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
  // CRC-32 of the chunk payload, computed at add() time and re-checked on
  // every read() — corruption is caught at chunk granularity, not only when
  // a whole serialized container fails its trailer CRC. 0 for
  // metadata-only (virtual) chunks, which carry no payload.
  std::uint32_t crc = 0;
};

// Process-wide count of chunk reads whose payload CRC did not match the
// recorded one (mirrored into each system's metrics registry as
// `io_crc_failures`). Monotonic; never reset.
[[nodiscard]] std::uint64_t chunk_crc_failures() noexcept;

class Container {
 public:
  explicit Container(ContainerId id = kCidActive,
                     std::size_t capacity = kDefaultContainerSize)
      : id_(id), capacity_(capacity) {
    data_.reserve(0);  // grown on demand; capacity_ bounds used bytes
  }

  [[nodiscard]] ContainerId id() const noexcept { return id_; }
  void set_id(ContainerId id) noexcept { id_ = id; }

  // True if a chunk of `size` bytes still fits (contiguously at the tail).
  [[nodiscard]] bool fits(std::size_t size) const noexcept {
    return data_size() + size <= capacity_;
  }

  // Adds a chunk; returns false when it does not fit or the fingerprint is
  // already present (containers never hold duplicates).
  bool add(const Fingerprint& fp, std::span<const std::uint8_t> bytes);

  // Adds a chunk without materialized bytes (trace/simulated mode): space is
  // fully accounted but no payload is allocated; read() serves such chunks
  // from a shared zero page. Keeps metadata-only experiments allocation-free
  // while every size/offset/I-O count stays identical to real mode.
  bool add_meta(const Fingerprint& fp, std::uint32_t size);

  [[nodiscard]] bool contains(const Fingerprint& fp) const noexcept {
    return entries_.contains(fp);
  }

  // Returns the chunk bytes, or nullopt if absent OR if the payload fails
  // its per-chunk CRC (the failure is counted in chunk_crc_failures()).
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> read(
      const Fingerprint& fp) const noexcept;

  // fsck support: recomputes every stored payload's CRC against its entry.
  // Returns the fingerprints that fail; does not touch the failure counter.
  [[nodiscard]] std::vector<Fingerprint> corrupt_chunks() const;

  [[nodiscard]] std::optional<ContainerEntry> find(
      const Fingerprint& fp) const noexcept;

  // Logically removes a chunk. The freed bytes are NOT reusable until
  // compaction (paper Figure 6: variable-size holes cannot be refilled) —
  // used_bytes() drops but data_size() stays, modeling the hole.
  bool remove(const Fingerprint& fp);

  // Rewrites the container in place, squeezing out removed chunks.
  void compact();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  // Tail position: bytes consumed in the container, holes and virtual
  // (metadata-only) payloads included.
  [[nodiscard]] std::size_t data_size() const noexcept {
    return data_.size() + virtual_bytes_;
  }
  // Live bytes: sum of sizes of chunks still present.
  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return entries_.size();
  }
  // Paper's container utilization: live bytes / capacity.
  [[nodiscard]] double utilization() const noexcept {
    return static_cast<double>(used_) / static_cast<double>(capacity_);
  }

  [[nodiscard]] const std::unordered_map<Fingerprint, ContainerEntry>&
  entries() const noexcept {
    return entries_;
  }

  // Binary serialization (header + fingerprint table + data) with a CRC-32
  // trailer. Round-trips through deserialize().
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<Container> deserialize(
      std::span<const std::uint8_t> bytes);

 private:
  // Offset marker for metadata-only chunks (no stored payload).
  static constexpr std::uint32_t kVirtualOffset = 0xFFFFFFFFu;

  ContainerId id_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t virtual_bytes_ = 0;  // space consumed by metadata-only chunks
  std::vector<std::uint8_t> data_;
  std::unordered_map<Fingerprint, ContainerEntry> entries_;
};

}  // namespace hds
