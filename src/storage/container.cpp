#include "storage/container.h"

#include <atomic>
#include <cstring>

#include "common/crc32.h"
#include "verify/invariant.h"

namespace hds {

namespace {
// "HDSC" + 2: format 2 adds the per-chunk CRC column to the entry table.
constexpr std::uint32_t kMagic = 0x48445345;

std::atomic<std::uint64_t> g_chunk_crc_failures{0};
}  // namespace

std::uint64_t chunk_crc_failures() noexcept {
  return g_chunk_crc_failures.load(std::memory_order_relaxed);
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}
}  // namespace

bool Container::add(const Fingerprint& fp,
                    std::span<const std::uint8_t> bytes) {
  if (!fits(bytes.size()) || entries_.contains(fp)) return false;
  const ContainerEntry entry{static_cast<std::uint32_t>(data_.size()),
                             static_cast<std::uint32_t>(bytes.size()),
                             crc32(bytes)};
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  entries_.emplace(fp, entry);
  used_ += bytes.size();
  HDS_INVARIANT(data_size() <= capacity_);
  return true;
}

namespace {
// Shared zero page serving reads of metadata-only chunks; sized for the
// largest chunk any configuration produces.
std::span<const std::uint8_t> zero_page(std::uint32_t size) {
  static const std::vector<std::uint8_t> page(256 * 1024, 0);
  return {page.data(), std::min<std::size_t>(size, page.size())};
}
}  // namespace

bool Container::add_meta(const Fingerprint& fp, std::uint32_t size) {
  if (!fits(size) || entries_.contains(fp)) return false;
  entries_.emplace(fp, ContainerEntry{kVirtualOffset, size, 0});
  virtual_bytes_ += size;
  used_ += size;
  return true;
}

std::optional<std::span<const std::uint8_t>> Container::read(
    const Fingerprint& fp) const noexcept {
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.offset == kVirtualOffset) {
    return zero_page(it->second.size);
  }
  const std::span payload(data_.data() + it->second.offset, it->second.size);
  if (crc32(payload) != it->second.crc) {
    g_chunk_crc_failures.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return payload;
}

std::vector<Fingerprint> Container::corrupt_chunks() const {
  std::vector<Fingerprint> bad;
  for (const auto& [fp, entry] : entries_) {
    if (entry.offset == kVirtualOffset) continue;
    const std::span payload(data_.data() + entry.offset, entry.size);
    if (crc32(payload) != entry.crc) bad.push_back(fp);
  }
  return bad;
}

std::optional<ContainerEntry> Container::find(
    const Fingerprint& fp) const noexcept {
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool Container::remove(const Fingerprint& fp) {
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return false;
  used_ -= it->second.size;
  entries_.erase(it);
  return true;
}

void Container::compact() {
  std::vector<std::uint8_t> packed;
  packed.reserve(used_);
  std::size_t live_virtual = 0;
  for (auto& [fp, entry] : entries_) {
    if (entry.offset == kVirtualOffset) {
      live_virtual += entry.size;
      continue;
    }
    const auto new_offset = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), data_.begin() + entry.offset,
                  data_.begin() + entry.offset + entry.size);
    entry.offset = new_offset;
  }
  data_ = std::move(packed);
  virtual_bytes_ = live_virtual;
}

std::vector<std::uint8_t> Container::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(data_.size() + entries_.size() * 32 + 64);
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(id_));
  put_u32(out, static_cast<std::uint32_t>(capacity_));
  put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  put_u32(out, static_cast<std::uint32_t>(data_.size()));
  for (const auto& [fp, entry] : entries_) {
    out.insert(out.end(), fp.bytes.begin(), fp.bytes.end());
    put_u32(out, entry.offset);
    put_u32(out, entry.size);
    put_u32(out, entry.crc);
  }
  out.insert(out.end(), data_.begin(), data_.end());
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

std::optional<Container> Container::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 24) return std::nullopt;
  const std::uint32_t stored_crc = get_u32(bytes.data() + bytes.size() - 4);
  if (crc32(bytes.data(), bytes.size() - 4) != stored_crc) return std::nullopt;
  if (get_u32(bytes.data()) != kMagic) return std::nullopt;

  const auto id = static_cast<ContainerId>(get_u32(bytes.data() + 4));
  const std::uint32_t capacity = get_u32(bytes.data() + 8);
  const std::uint32_t count = get_u32(bytes.data() + 12);
  const std::uint32_t data_size = get_u32(bytes.data() + 16);
  const std::size_t table_bytes = std::size_t{count} * 32;
  if (bytes.size() != 20 + table_bytes + data_size + 4) return std::nullopt;

  Container c(id, capacity);
  const std::uint8_t* p = bytes.data() + 20;
  c.data_.assign(p + table_bytes, p + table_bytes + data_size);
  for (std::uint32_t i = 0; i < count; ++i) {
    Fingerprint fp;
    std::memcpy(fp.bytes.data(), p, kFingerprintSize);
    p += kFingerprintSize;
    ContainerEntry entry{get_u32(p), get_u32(p + 4), get_u32(p + 8)};
    p += 12;
    if (entry.offset == kVirtualOffset) {
      c.virtual_bytes_ += entry.size;
    } else if (std::size_t{entry.offset} + entry.size > c.data_.size()) {
      return std::nullopt;
    }
    c.entries_.emplace(fp, entry);
    c.used_ += entry.size;
  }
  return c;
}

}  // namespace hds
