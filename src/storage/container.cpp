#include "storage/container.h"

#include <atomic>
#include <cstring>

#include "common/crc32.h"
#include "verify/invariant.h"

namespace hds {

namespace {
// "HDSE": format 2 — entry table before the data, per-chunk CRC column.
constexpr std::uint32_t kMagicV2 = 0x48445345;
// "HDSF": format 3 — data first, entry table as a footer index (see the
// layout comment in container.h).
constexpr std::uint32_t kMagicV3 = 0x48445346;

std::atomic<std::uint64_t> g_chunk_crc_failures{0};
}  // namespace

std::uint64_t chunk_crc_failures() noexcept {
  return g_chunk_crc_failures.load(std::memory_order_relaxed);
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}
}  // namespace

bool Container::add(const Fingerprint& fp,
                    std::span<const std::uint8_t> bytes) {
  return add_with_crc(fp, bytes, crc32(bytes));
}

bool Container::add_with_crc(const Fingerprint& fp,
                             std::span<const std::uint8_t> bytes,
                             std::uint32_t crc) {
  if (!fits(bytes.size()) || entries_.contains(fp)) return false;
  const ContainerEntry entry{static_cast<std::uint32_t>(data_.size()),
                             static_cast<std::uint32_t>(bytes.size()), crc};
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  entries_.emplace(fp, entry);
  used_ += bytes.size();
  HDS_INVARIANT(data_size() <= capacity_);
  return true;
}

bool Container::add_verified(const Fingerprint& fp,
                             const ContainerEntry& entry,
                             std::span<const std::uint8_t> payload) {
  if (entry.offset == kVirtualOffset) return add_meta(fp, entry.size);
  if (payload.size() != entry.size || crc32(payload) != entry.crc) {
    g_chunk_crc_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return add_with_crc(fp, payload, entry.crc);
}

namespace {
// Shared zero page serving reads of metadata-only chunks; sized for the
// largest chunk any configuration produces.
std::span<const std::uint8_t> zero_page(std::uint32_t size) {
  static const std::vector<std::uint8_t> page(256 * 1024, 0);
  return {page.data(), std::min<std::size_t>(size, page.size())};
}
}  // namespace

bool Container::add_meta(const Fingerprint& fp, std::uint32_t size) {
  if (!fits(size) || entries_.contains(fp)) return false;
  entries_.emplace(fp, ContainerEntry{kVirtualOffset, size, 0});
  virtual_bytes_ += size;
  used_ += size;
  return true;
}

std::optional<std::span<const std::uint8_t>> Container::read(
    const Fingerprint& fp) const noexcept {
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.offset == kVirtualOffset) {
    return zero_page(it->second.size);
  }
  const std::span payload(data_.data() + it->second.offset, it->second.size);
  if (crc32(payload) != it->second.crc) {
    g_chunk_crc_failures.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return payload;
}

std::vector<Fingerprint> Container::corrupt_chunks() const {
  std::vector<Fingerprint> bad;
  for (const auto& [fp, entry] : entries_) {
    if (entry.offset == kVirtualOffset) continue;
    const std::span payload(data_.data() + entry.offset, entry.size);
    if (crc32(payload) != entry.crc) bad.push_back(fp);
  }
  return bad;
}

std::optional<ContainerEntry> Container::find(
    const Fingerprint& fp) const noexcept {
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool Container::remove(const Fingerprint& fp) {
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return false;
  used_ -= it->second.size;
  entries_.erase(it);
  return true;
}

void Container::compact() {
  std::vector<std::uint8_t> packed;
  packed.reserve(used_);
  std::size_t live_virtual = 0;
  for (auto& [fp, entry] : entries_) {
    if (entry.offset == kVirtualOffset) {
      live_virtual += entry.size;
      continue;
    }
    const auto new_offset = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), data_.begin() + entry.offset,
                  data_.begin() + entry.offset + entry.size);
    entry.offset = new_offset;
  }
  data_ = std::move(packed);
  virtual_bytes_ = live_virtual;
}

std::vector<std::uint8_t> Container::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + data_.size() + entries_.size() * kEntrySize +
              kTrailerSize);
  put_u32(out, kMagicV3);
  put_u32(out, static_cast<std::uint32_t>(id_));
  put_u32(out, static_cast<std::uint32_t>(capacity_));
  put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  put_u32(out, static_cast<std::uint32_t>(data_.size()));
  out.insert(out.end(), data_.begin(), data_.end());
  const std::size_t table_at = out.size();
  for (const auto& [fp, entry] : entries_) {
    out.insert(out.end(), fp.bytes.begin(), fp.bytes.end());
    put_u32(out, entry.offset);
    put_u32(out, entry.size);
    put_u32(out, entry.crc);
  }
  // Footer CRC over header + table (skipping the data region in between),
  // so a partial read validates the index without slurping payloads.
  const std::uint32_t footer_crc =
      crc32(out.data() + table_at, out.size() - table_at,
            crc32(out.data(), kHeaderSize));
  put_u32(out, footer_crc);
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

std::vector<std::uint8_t> Container::serialize_legacy() const {
  std::vector<std::uint8_t> out;
  out.reserve(data_.size() + entries_.size() * kEntrySize + 64);
  put_u32(out, kMagicV2);
  put_u32(out, static_cast<std::uint32_t>(id_));
  put_u32(out, static_cast<std::uint32_t>(capacity_));
  put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  put_u32(out, static_cast<std::uint32_t>(data_.size()));
  for (const auto& [fp, entry] : entries_) {
    out.insert(out.end(), fp.bytes.begin(), fp.bytes.end());
    put_u32(out, entry.offset);
    put_u32(out, entry.size);
    put_u32(out, entry.crc);
  }
  out.insert(out.end(), data_.begin(), data_.end());
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

std::optional<Container::HeaderInfo> Container::parse_header(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return std::nullopt;
  const std::uint32_t magic = get_u32(bytes.data());
  if (magic != kMagicV2 && magic != kMagicV3) return std::nullopt;
  HeaderInfo info;
  info.id = static_cast<ContainerId>(get_u32(bytes.data() + 4));
  info.capacity = get_u32(bytes.data() + 8);
  info.count = get_u32(bytes.data() + 12);
  info.data_size = get_u32(bytes.data() + 16);
  info.footer_indexed = magic == kMagicV3;
  return info;
}

std::optional<std::vector<std::pair<Fingerprint, ContainerEntry>>>
Container::parse_footer(std::span<const std::uint8_t> header_bytes,
                        std::span<const std::uint8_t> footer_bytes) {
  const auto header = parse_header(header_bytes);
  if (!header || !header->footer_indexed) return std::nullopt;
  if (footer_bytes.size() != header->footer_size()) return std::nullopt;
  const std::size_t table_bytes = footer_bytes.size() - 4;
  const std::uint32_t stored = get_u32(footer_bytes.data() + table_bytes);
  if (crc32(footer_bytes.data(), table_bytes,
            crc32(header_bytes.data(), kHeaderSize)) != stored) {
    return std::nullopt;
  }
  std::vector<std::pair<Fingerprint, ContainerEntry>> entries;
  entries.reserve(header->count);
  const std::uint8_t* p = footer_bytes.data();
  for (std::uint32_t i = 0; i < header->count; ++i) {
    Fingerprint fp;
    std::memcpy(fp.bytes.data(), p, kFingerprintSize);
    p += kFingerprintSize;
    ContainerEntry entry{get_u32(p), get_u32(p + 4), get_u32(p + 8)};
    p += 12;
    if (entry.offset != kVirtualOffset &&
        std::uint64_t{entry.offset} + entry.size > header->data_size) {
      return std::nullopt;
    }
    entries.emplace_back(fp, entry);
  }
  return entries;
}

std::optional<Container> Container::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize + 4) return std::nullopt;
  const std::uint32_t stored_crc = get_u32(bytes.data() + bytes.size() - 4);
  if (crc32(bytes.data(), bytes.size() - 4) != stored_crc) return std::nullopt;
  const auto header = parse_header(bytes);
  if (!header) return std::nullopt;

  const std::size_t table_bytes = std::size_t{header->count} * kEntrySize;
  const std::uint8_t* table = nullptr;
  const std::uint8_t* data = nullptr;
  if (header->footer_indexed) {
    if (bytes.size() != header->expected_file_size()) return std::nullopt;
    data = bytes.data() + kHeaderSize;
    table = data + header->data_size;
    // The footer CRC is redundant under a valid file CRC but checked anyway
    // so the two can never silently disagree.
    const std::uint32_t footer_crc = get_u32(table + table_bytes);
    if (crc32(table, table_bytes, crc32(bytes.data(), kHeaderSize)) !=
        footer_crc) {
      return std::nullopt;
    }
  } else {
    if (bytes.size() != kHeaderSize + table_bytes + header->data_size + 4) {
      return std::nullopt;
    }
    table = bytes.data() + kHeaderSize;
    data = table + table_bytes;
  }

  Container c(header->id, header->capacity);
  c.data_.assign(data, data + header->data_size);
  const std::uint8_t* p = table;
  for (std::uint32_t i = 0; i < header->count; ++i) {
    Fingerprint fp;
    std::memcpy(fp.bytes.data(), p, kFingerprintSize);
    p += kFingerprintSize;
    ContainerEntry entry{get_u32(p), get_u32(p + 4), get_u32(p + 8)};
    p += 12;
    if (entry.offset == kVirtualOffset) {
      c.virtual_bytes_ += entry.size;
    } else if (std::size_t{entry.offset} + entry.size > c.data_.size()) {
      return std::nullopt;
    }
    c.entries_.emplace(fp, entry);
    c.used_ += entry.size;
  }
  return c;
}

}  // namespace hds
