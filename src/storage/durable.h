// Crash-consistent file persistence (DESIGN.md §9).
//
// Every on-disk artifact of a repository — container files, the state
// snapshot, the MANIFEST commit journal, the catalog, even trace/metrics
// exports — goes through AtomicFileWriter: bytes land in `<name>.tmp` with
// every operation checked, the temp file is fsynced, renamed over the
// target, and the parent directory is fsynced. A crash at any point leaves
// either the old file or the new file, never a torn mixture; an I/O error
// (ENOSPC, EIO) surfaces as WriteError with the original file untouched.
//
// CrashInjector is the proving ground: a process-global hook the durable
// writer calls at every write/fsync/rename site ("crash points"). Tests arm
// it to throw (in-process crash simulation, partial files intentionally
// left behind), abort the process (out-of-process kill for shell tests), or
// fail persistently (full-disk / dying-device simulation through the normal
// error path). Unarmed, a crash point is a single relaxed atomic load.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string_view>

namespace hds::durable {

// Thrown when a durable write cannot be completed. The failure contract for
// every writer in this header: on throw, the destination file still holds
// its previous content (or is still absent) and no store bookkeeping has
// been updated by the caller yet.
class WriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by an armed CrashInjector in kThrow mode. Derives from WriteError
// so production call sites need no special handling, but AtomicFileWriter
// recognizes it and skips temp-file cleanup — a crashed process would not
// have cleaned up either, and recovery must cope with the debris.
class InjectedCrash : public WriteError {
 public:
  using WriteError::WriteError;
};

enum class FaultMode : int {
  kNone = 0,
  kThrow,  // the N-th crash point throws InjectedCrash (leaves debris)
  kAbort,  // the N-th crash point terminates the process immediately
  kFail,   // every crash point from the N-th on throws WriteError (ENOSPC)
};

// Process-global crash/fault injection (CrashPoint hook). Thread-safe.
// Also armed from the environment on first use: HDS_CRASH_STEP=<n> with
// HDS_CRASH_MODE=abort|throw|fail (abort by default), which is how the
// shell-level smoke test kills hds_tool mid-backup.
class CrashInjector {
 public:
  // Arms the injector: crash points are counted from 1, and the `step`-th
  // one triggers `mode`. Resets the step counter.
  static void arm(std::uint64_t step, FaultMode mode) noexcept;
  static void disarm() noexcept;
  [[nodiscard]] static bool armed() noexcept;
  // Crash points passed since the last arm().
  [[nodiscard]] static std::uint64_t steps() noexcept;

  // Called by the durable writer at every write/fsync/rename site.
  static void crash_point(const char* site);
};

// Writes a file atomically. Typical use:
//   AtomicFileWriter out(path);
//   out.write(bytes);
//   out.commit();
// Destruction without commit() (including during exception unwind) removes
// the temp file, except after an InjectedCrash — see above.
class AtomicFileWriter {
 public:
  // Creates `<path>.tmp` for writing. Throws WriteError on failure.
  explicit AtomicFileWriter(std::filesystem::path path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // Appends bytes to the temp file, checking the result. Throws WriteError.
  void write(const void* data, std::size_t size);
  void write(std::span<const std::uint8_t> bytes) {
    write(bytes.data(), bytes.size());
  }
  void write(std::string_view text) { write(text.data(), text.size()); }

  // Durably publishes the file: flush + fsync + close + rename over the
  // target + fsync of the parent directory. Throws WriteError; on throw the
  // target file is untouched.
  void commit();

  // Abandons the write and removes the temp file. Idempotent.
  void abort() noexcept;

 private:
  void site(const char* name);  // crash point that tags InjectedCrash

  std::filesystem::path path_;
  std::filesystem::path tmp_;
  int fd_ = -1;
  bool committed_ = false;
  bool crashed_ = false;  // InjectedCrash in flight: leave debris behind
};

// One-shot helpers over AtomicFileWriter. All throw WriteError.
void atomic_write_file(const std::filesystem::path& path,
                       std::span<const std::uint8_t> bytes);
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view text);

// Durable rename: rename + fsync of the parent directory, with crash
// points. Used to set the current state file aside before a new commit.
void atomic_rename(const std::filesystem::path& from,
                   const std::filesystem::path& to);

// fsyncs a directory so a just-renamed entry survives power loss. Throws
// WriteError.
void fsync_directory(const std::filesystem::path& dir);

}  // namespace hds::durable
