#include "storage/recipe.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace hds {

namespace {
constexpr std::uint32_t kMagic = 0x48445352;  // "HDSR"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}
}  // namespace

std::vector<std::uint8_t> Recipe::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(16 + entries_.size() * kRecipeEntrySize);
  put_u32(out, kMagic);
  put_u32(out, version_);
  put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    out.insert(out.end(), e.fp.bytes.begin(), e.fp.bytes.end());
    put_u32(out, static_cast<std::uint32_t>(e.cid));
    put_u32(out, e.size);
  }
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

std::optional<Recipe> Recipe::deserialize(std::span<const std::uint8_t> b) {
  if (b.size() < 16) return std::nullopt;
  if (crc32(b.data(), b.size() - 4) != get_u32(b.data() + b.size() - 4)) {
    return std::nullopt;
  }
  if (get_u32(b.data()) != kMagic) return std::nullopt;
  const VersionId version = get_u32(b.data() + 4);
  const std::uint32_t count = get_u32(b.data() + 8);
  if (b.size() != 12 + std::size_t{count} * kRecipeEntrySize + 4) {
    return std::nullopt;
  }
  Recipe r(version);
  const std::uint8_t* p = b.data() + 12;
  for (std::uint32_t i = 0; i < count; ++i) {
    RecipeEntry e;
    std::memcpy(e.fp.bytes.data(), p, kFingerprintSize);
    p += kFingerprintSize;
    e.cid = static_cast<ContainerId>(get_u32(p));
    e.size = get_u32(p + 4);
    p += 8;
    r.entries_.push_back(e);
  }
  return r;
}

void RecipeStore::put(Recipe recipe) {
  const VersionId v = recipe.version();
  recipes_.insert_or_assign(v, std::move(recipe));
}

Recipe* RecipeStore::get(VersionId version) noexcept {
  const auto it = recipes_.find(version);
  return it == recipes_.end() ? nullptr : &it->second;
}

const Recipe* RecipeStore::get(VersionId version) const noexcept {
  const auto it = recipes_.find(version);
  return it == recipes_.end() ? nullptr : &it->second;
}

bool RecipeStore::erase(VersionId version) {
  return recipes_.erase(version) > 0;
}

std::vector<VersionId> RecipeStore::versions() const {
  std::vector<VersionId> out;
  out.reserve(recipes_.size());
  for (const auto& [v, _] : recipes_) out.push_back(v);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hds
