// ContainerStore: the persistent pool of archival containers — the "disk".
//
// Every read is counted: the paper's restore metric (speed factor = MB
// restored per container read) and its deletion/GC arguments are all
// expressed in container I/Os, which deliberately abstracts away device
// speed (§5.3). Two backends share the interface:
//   * MemoryContainerStore — containers held in RAM; the default for
//     experiments (I/O counts are what matter, not device latency);
//   * FileContainerStore — each container serialized to its own file under
//     a directory; proves the format round-trips through a real filesystem
//     and carries the container I/O fast path (footer-indexed partial
//     reads, fd cache, sharded block cache — DESIGN.md §10).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/async_io.h"
#include "storage/block_cache.h"
#include "storage/container.h"
#include "storage/fd_cache.h"

namespace hds {

// I/O counters shared between the consumer thread and the restore
// read-ahead prefetcher: each field is a relaxed atomic (counts must not be
// lost; cross-field consistency is not needed). Copying takes a relaxed
// snapshot, so existing `stats().container_reads` call sites read naturally.
//
// Accounting rules (§5.3 + DESIGN.md §10): `container_reads` and
// `bytes_read` keep their paper meaning — every read() / read_chunks() call
// counts one container read and the FULL container's data size, whether the
// bytes came from disk, a cache, or a partial read. `bytes_read_physical`
// is the device-side truth: bytes actually transferred from the backing
// medium (0 on a block-cache hit; header + footer + coalesced extents on a
// partial read; the whole file on a slurp). For MemoryContainerStore the
// two are equal by definition — RAM is the modeled disk.
struct IoStats {
  std::atomic<std::uint64_t> container_reads{0};
  std::atomic<std::uint64_t> container_writes{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> bytes_read_physical{0};

  IoStats() = default;
  IoStats(const IoStats& other) { *this = other; }
  IoStats& operator=(const IoStats& other) {
    container_reads = other.container_reads.load(std::memory_order_relaxed);
    container_writes = other.container_writes.load(std::memory_order_relaxed);
    bytes_read = other.bytes_read.load(std::memory_order_relaxed);
    bytes_written = other.bytes_written.load(std::memory_order_relaxed);
    bytes_read_physical =
        other.bytes_read_physical.load(std::memory_order_relaxed);
    return *this;
  }

  void reset() noexcept {
    container_reads.store(0, std::memory_order_relaxed);
    container_writes.store(0, std::memory_order_relaxed);
    bytes_read.store(0, std::memory_order_relaxed);
    bytes_written.store(0, std::memory_order_relaxed);
    bytes_read_physical.store(0, std::memory_order_relaxed);
  }
};

// Per-call read accounting. The global IoStats counters aggregate every
// caller; when several restore streams share one store, per-stream profiles
// built from global counter deltas cross-pollute (stream A's delta includes
// stream B's reads). A caller that passes a ReadMeter gets the exact
// logical/physical charge of its own calls, attributable to its own
// OpProfile. Not thread-safe by itself — each stream owns its meter and the
// stream's threads (consumer + its prefetch workers) add through relaxed
// atomics.
struct ReadMeter {
  std::atomic<std::uint64_t> container_reads{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_read_physical{0};

  void add(std::uint64_t logical, std::uint64_t physical) noexcept {
    container_reads.fetch_add(1, std::memory_order_relaxed);
    bytes_read.fetch_add(logical, std::memory_order_relaxed);
    bytes_read_physical.fetch_add(physical, std::memory_order_relaxed);
  }
};

// Typed I/O failure: a container the store's index says exists could not be
// opened or read from the backing medium — distinct from corruption, which
// the read paths report by returning nullptr after a failed deserialize.
// FileContainerStore's read paths catch this at their boundary, count it
// (io_read_errors) and fall back to the nullptr contract so a restore stays
// bounded-damage; the type exists so internal layers never decode garbage
// from a failed read.
class ReadError : public std::runtime_error {
 public:
  ReadError(ContainerId id, const std::string& what)
      : std::runtime_error("container " + std::to_string(id) + ": " + what),
        id_(id) {}
  [[nodiscard]] ContainerId id() const noexcept { return id_; }

 private:
  ContainerId id_;
};

// Runtime tuning of the FileContainerStore fast path. Not persisted — a
// knob of the process, not of the repository.
struct FileStoreTuning {
  // Open descriptors retained by the fd cache (0 disables retention).
  std::size_t fd_cache_slots = 64;
  // Byte budget of the deserialized-container block cache (0 disables).
  std::size_t block_cache_bytes = 32 * 1024 * 1024;
  std::size_t block_cache_shards = 8;
  // Serve read_chunks() via the format-3 footer index (pread of exactly the
  // needed extents) instead of slurping the file. Format-2 containers and
  // any footer validation failure fall back to the slurp path either way.
  bool partial_reads = true;
  // Async read backend for device reads (DESIGN.md §13): kAuto probes for
  // io_uring and falls back to the thread-pool backend; kSync is the pre-PR
  // sequential-pread behavior.
  aio::Backend io_backend = aio::Backend::kAuto;
  // In-flight ops per batch (uring SQ depth / pool width); 0 = default.
  std::size_t io_depth = 0;
  // Open container descriptors O_DIRECT and bounce through aligned buffers
  // (FdCache::kDirectAlign): bypasses the page cache so the BlockCache is
  // the only cache — measurement mode, off by default.
  bool direct_io = false;
};

// Thread-safety contract: read(), read_chunks(), read_verified(), put(),
// write(), erase(), reserve_id() and stats() are safe to call from multiple
// threads concurrently — counters are atomic, ID reservation is atomic, and
// both backends guard their container maps (and the file backend its
// caches) with mutexes. This is what lets the restore read-ahead thread
// issue reads while the consumer thread reads and the backup path writes.
// NOT thread-safe: attach_metrics(), reset_stats(), restore_next_id(),
// set_tuning() and construction/destruction, which must be serialized
// externally (they are setup/teardown operations).
class ContainerStore {
 public:
  virtual ~ContainerStore() = default;

  // Persists `container` and returns its assigned ID (always > 0).
  //
  // Failure contract: throws (durable::WriteError from the file backend, or
  // whatever the backend raises) if the container could not be fully
  // persisted. On throw, NOTHING is counted — stats(), metrics and the
  // store's visible container set are exactly as they were before the call;
  // the reserved ID is consumed but refers to nothing. The file backend
  // writes atomically (temp + fsync + rename), so a failed or crashed write
  // never leaves a torn container file at the final path.
  ContainerId write(Container container);

  // Reserves the next container ID without writing. Pipelines that fill a
  // container incrementally need its ID up front so recipes can reference
  // chunks before the container is sealed; the reserved container must
  // eventually be stored via put().
  [[nodiscard]] ContainerId reserve_id() noexcept { return next_id_++; }

  // Persists a container that already carries a reserved ID. Same failure
  // contract as write(): throws on failure and counts only on success.
  void put(Container container);

  // Fetches a container, counting one container read. When `meter` is
  // non-null the call's logical/physical charge is also added to it
  // (per-stream accounting — see ReadMeter).
  [[nodiscard]] std::shared_ptr<const Container> read(
      ContainerId id, ReadMeter* meter = nullptr);

  // Fetches at least the chunks in `fps` of a container, counting one
  // container read with the FULL container's logical size (§5.3 accounting
  // — see IoStats). The returned container may hold only the requested
  // chunks (file backend partial path) or the whole container (memory
  // backend, caches, fallback): callers must not assume other chunks are
  // present. nullptr exactly when read() would return nullptr.
  [[nodiscard]] std::shared_ptr<const Container> read_chunks(
      ContainerId id, std::span<const Fingerprint> fps,
      ReadMeter* meter = nullptr);

  // Integrity path (fsck): re-reads the container from the backing medium,
  // bypassing every cache, so post-write corruption is seen — counted like
  // a normal read.
  [[nodiscard]] std::shared_ptr<const Container> read_verified(
      ContainerId id, ReadMeter* meter = nullptr);

  // Removes a container (expired-version deletion). Returns false if absent.
  bool erase(ContainerId id);

  [[nodiscard]] virtual std::size_t container_count() const = 0;
  [[nodiscard]] virtual std::vector<ContainerId> ids() const = 0;

  [[nodiscard]] const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  // Mirrors every I/O into `<prefix>_container_{writes,reads,erases}`,
  // `<prefix>_bytes_{written,read}` and `<prefix>_bytes_read_physical`
  // counters of `registry`. The registry must outlive this store.
  void attach_metrics(obs::MetricsRegistry& registry,
                      std::string_view prefix);

  // Wraps device reads in "store_slurp" / "store_partial_read" I/O-wait
  // spans on whichever thread issues them — the restore timeline's
  // disk-time signal. Setup operation (see thread-safety contract); the
  // tracer must outlive the store; nullptr detaches.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  [[nodiscard]] ContainerId next_id() const noexcept { return next_id_; }

  // Persistence support: restores the ID counter of a reloaded store so
  // future reservations never collide with existing containers.
  void restore_next_id(ContainerId next) noexcept { next_id_ = next; }

  // Shared-store variant of restore_next_id(): raises the counter to at
  // least `next`, never lowering it. Safe to race — several tenants
  // reopening over one shared store each replay their saved watermark, and
  // only the highest may win (a lower one would recycle live IDs).
  void bump_next_id(ContainerId next) noexcept {
    ContainerId cur = next_id_.load(std::memory_order_relaxed);
    while (cur < next && !next_id_.compare_exchange_weak(
                             cur, next, std::memory_order_relaxed)) {
    }
  }

 protected:
  // What a backend read produced: the container plus the logical/physical
  // byte split the public wrappers account (see IoStats).
  struct ReadResult {
    std::shared_ptr<const Container> container;
    std::uint64_t logical_bytes = 0;
    std::uint64_t physical_bytes = 0;
  };

  virtual void do_write(ContainerId id, Container&& container) = 0;
  virtual ReadResult do_read(ContainerId id) = 0;
  // Default: partial reads degrade to a full read (memory backend — keeps
  // every experiment on MemoryContainerStore bit-identical).
  virtual ReadResult do_read_chunks(ContainerId id,
                                    std::span<const Fingerprint> fps) {
    (void)fps;
    return do_read(id);
  }
  // Default: backends without caches read the medium directly anyway.
  virtual ReadResult do_read_verified(ContainerId id) { return do_read(id); }
  virtual bool do_erase(ContainerId id) = 0;

  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  [[nodiscard]] std::shared_ptr<const Container> account_read(
      ReadResult&& result, ReadMeter* meter);

  // 0 is reserved for "active" in recipes
  std::atomic<ContainerId> next_id_{1};
  IoStats stats_;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_erases_ = nullptr;
  obs::Counter* m_bytes_written_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
  obs::Counter* m_bytes_read_physical_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

class MemoryContainerStore final : public ContainerStore {
 public:
  [[nodiscard]] std::size_t container_count() const override {
    MutexLock lock(mu_);
    return containers_.size();
  }
  [[nodiscard]] std::vector<ContainerId> ids() const override;

 protected:
  void do_write(ContainerId id, Container&& container) override;
  ReadResult do_read(ContainerId id) override;
  bool do_erase(ContainerId id) override;

 private:
  // See the class-level thread-safety contract.
  mutable Mutex mu_{lockrank::kStoreIndex};
  std::unordered_map<ContainerId, std::shared_ptr<const Container>>
      containers_ HDS_GUARDED_BY(mu_);
};

class FileContainerStore final : public ContainerStore {
 public:
  // Creates `dir` if needed. With `index_existing`, container files already
  // present are registered (by filename) and the ID counter resumes past
  // the highest one — reopening a persistent repository; otherwise existing
  // files are ignored (fresh runs, round-trip validation).
  explicit FileContainerStore(std::filesystem::path dir,
                              bool index_existing = false,
                              const FileStoreTuning& tuning = {});

  [[nodiscard]] std::size_t container_count() const override {
    MutexLock lock(mu_);
    return known_.size();
  }
  [[nodiscard]] std::vector<ContainerId> ids() const override;

  // Recovery support: the on-disk path of a container file, and removal of
  // an ID from the in-memory index without deleting the file — used when
  // recovery quarantines an orphan (the file is moved aside, not erased).
  [[nodiscard]] std::filesystem::path container_path(ContainerId id) const {
    return path_for(id);
  }
  bool forget(ContainerId id) {
    fd_cache_.invalidate(id);
    block_cache_.invalidate(id);
    io_->invalidate(static_cast<std::uint64_t>(id));
    MutexLock lock(mu_);
    return known_.erase(id) > 0;
  }

  // Replaces the fast-path caches with freshly sized ones (a setup
  // operation — see the thread-safety contract).
  void set_tuning(const FileStoreTuning& tuning);
  [[nodiscard]] const FileStoreTuning& tuning() const noexcept {
    return tuning_;
  }

  // Fast-path observability snapshot, mirrored into io_* metrics by the
  // owning system (README "Observability").
  struct IoPathStats {
    std::uint64_t fd_cache_hits = 0;
    std::uint64_t fd_cache_opens = 0;
    std::uint64_t open_fds = 0;
    std::uint64_t block_cache_hits = 0;
    std::uint64_t block_cache_misses = 0;
    std::uint64_t block_cache_evictions = 0;
    std::uint64_t block_cache_bytes = 0;
    std::uint64_t partial_reads = 0;  // reads served via the footer index
    std::uint64_t read_errors = 0;    // ReadError caught at the boundary
    // Async backend counters (aio::BackendStats, DESIGN.md §13).
    std::uint64_t io_batches = 0;
    std::uint64_t io_reads = 0;
    std::uint64_t io_submits = 0;
    std::uint64_t io_short_retries = 0;
    std::uint64_t io_eintr_retries = 0;
    std::uint64_t io_registered_files = 0;
  };
  [[nodiscard]] IoPathStats io_stats() const;

  // The resolved read backend ("sync" | "threads" | "uring" — what kAuto
  // actually picked, not what was asked for).
  [[nodiscard]] std::string_view io_backend_name() const noexcept {
    return io_->name();
  }
  [[nodiscard]] aio::Backend io_backend() const noexcept {
    return io_->kind();
  }

 protected:
  void do_write(ContainerId id, Container&& container) override;
  ReadResult do_read(ContainerId id) override;
  ReadResult do_read_chunks(ContainerId id,
                            std::span<const Fingerprint> fps) override;
  ReadResult do_read_verified(ContainerId id) override;
  bool do_erase(ContainerId id) override;

 private:
  // One extent of a batched device read (offset is file-absolute).
  struct ExtentRead {
    std::uint64_t offset = 0;
    std::uint8_t* dst = nullptr;
    std::size_t len = 0;
  };

  [[nodiscard]] std::filesystem::path path_for(ContainerId id) const;
  [[nodiscard]] bool is_known(ContainerId id) const {
    MutexLock lock(mu_);
    return known_.contains(id);
  }
  // Executes `reads` as one backend batch through `handle` (bouncing via
  // aligned scratch when the descriptor is O_DIRECT). Throws ReadError on
  // any per-op failure or EOF inside a requested range; returns the bytes
  // physically transferred (≥ requested in direct mode — alignment pad).
  std::uint64_t read_extents(const FdCache::Handle& handle, ContainerId id,
                             std::span<ExtentRead> reads);
  // Whole-file read through the fd cache; throws ReadError on I/O failure.
  ReadResult slurp(ContainerId id);
  // Footer-index partial read; nullopt when the file is not format 3 or the
  // footer does not validate (caller falls back to slurp).
  std::optional<ReadResult> try_partial_read(
      ContainerId id, std::span<const Fingerprint> fps);

  std::filesystem::path dir_;
  FileStoreTuning tuning_;
  // Guards only the index map; the caches and io backend synchronize
  // internally and are never acquired with mu_ held (kStoreIndex < kFdCache
  // < kBlockCacheShard documents the would-be order regardless).
  mutable Mutex mu_{lockrank::kStoreIndex};
  std::unordered_map<ContainerId, bool> known_ HDS_GUARDED_BY(mu_);
  FdCache fd_cache_;
  BlockCache block_cache_;
  std::unique_ptr<aio::AsyncIoBackend> io_;
  std::atomic<std::uint64_t> partial_reads_{0};
  std::atomic<std::uint64_t> read_errors_{0};
};

}  // namespace hds
