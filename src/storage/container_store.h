// ContainerStore: the persistent pool of archival containers — the "disk".
//
// Every read is counted: the paper's restore metric (speed factor = MB
// restored per container read) and its deletion/GC arguments are all
// expressed in container I/Os, which deliberately abstracts away device
// speed (§5.3). Two backends share the interface:
//   * MemoryContainerStore — containers held in RAM; the default for
//     experiments (I/O counts are what matter, not device latency);
//   * FileContainerStore — each container serialized to its own file under
//     a directory; proves the format round-trips through a real filesystem.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/container.h"

namespace hds {

struct IoStats {
  std::uint64_t container_reads = 0;
  std::uint64_t container_writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  void reset() noexcept { *this = IoStats{}; }
};

class ContainerStore {
 public:
  virtual ~ContainerStore() = default;

  // Persists `container` and returns its assigned ID (always > 0).
  ContainerId write(Container container);

  // Reserves the next container ID without writing. Pipelines that fill a
  // container incrementally need its ID up front so recipes can reference
  // chunks before the container is sealed; the reserved container must
  // eventually be stored via put().
  [[nodiscard]] ContainerId reserve_id() noexcept { return next_id_++; }

  // Persists a container that already carries a reserved ID.
  void put(Container container);

  // Fetches a container, counting one container read.
  [[nodiscard]] std::shared_ptr<const Container> read(ContainerId id);

  // Removes a container (expired-version deletion). Returns false if absent.
  bool erase(ContainerId id);

  [[nodiscard]] virtual std::size_t container_count() const = 0;
  [[nodiscard]] virtual std::vector<ContainerId> ids() const = 0;

  [[nodiscard]] const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  // Mirrors every I/O into `<prefix>_container_{writes,reads,erases}` and
  // `<prefix>_bytes_{written,read}` counters of `registry`. The registry
  // must outlive this store.
  void attach_metrics(obs::MetricsRegistry& registry,
                      std::string_view prefix);

  [[nodiscard]] ContainerId next_id() const noexcept { return next_id_; }

  // Persistence support: restores the ID counter of a reloaded store so
  // future reservations never collide with existing containers.
  void restore_next_id(ContainerId next) noexcept { next_id_ = next; }

 protected:
  virtual void do_write(ContainerId id, Container&& container) = 0;
  virtual std::shared_ptr<const Container> do_read(ContainerId id) = 0;
  virtual bool do_erase(ContainerId id) = 0;

 private:
  ContainerId next_id_ = 1;  // 0 is reserved for "active" in recipes
  IoStats stats_;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_erases_ = nullptr;
  obs::Counter* m_bytes_written_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
};

class MemoryContainerStore final : public ContainerStore {
 public:
  [[nodiscard]] std::size_t container_count() const override {
    return containers_.size();
  }
  [[nodiscard]] std::vector<ContainerId> ids() const override;

 protected:
  void do_write(ContainerId id, Container&& container) override;
  std::shared_ptr<const Container> do_read(ContainerId id) override;
  bool do_erase(ContainerId id) override;

 private:
  std::unordered_map<ContainerId, std::shared_ptr<const Container>>
      containers_;
};

class FileContainerStore final : public ContainerStore {
 public:
  // Creates `dir` if needed. With `index_existing`, container files already
  // present are registered (by filename) and the ID counter resumes past
  // the highest one — reopening a persistent repository; otherwise existing
  // files are ignored (fresh runs, round-trip validation).
  explicit FileContainerStore(std::filesystem::path dir,
                              bool index_existing = false);

  [[nodiscard]] std::size_t container_count() const override {
    return known_.size();
  }
  [[nodiscard]] std::vector<ContainerId> ids() const override;

 protected:
  void do_write(ContainerId id, Container&& container) override;
  std::shared_ptr<const Container> do_read(ContainerId id) override;
  bool do_erase(ContainerId id) override;

 private:
  [[nodiscard]] std::filesystem::path path_for(ContainerId id) const;

  std::filesystem::path dir_;
  std::unordered_map<ContainerId, bool> known_;
};

}  // namespace hds
