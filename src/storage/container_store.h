// ContainerStore: the persistent pool of archival containers — the "disk".
//
// Every read is counted: the paper's restore metric (speed factor = MB
// restored per container read) and its deletion/GC arguments are all
// expressed in container I/Os, which deliberately abstracts away device
// speed (§5.3). Two backends share the interface:
//   * MemoryContainerStore — containers held in RAM; the default for
//     experiments (I/O counts are what matter, not device latency);
//   * FileContainerStore — each container serialized to its own file under
//     a directory; proves the format round-trips through a real filesystem.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/container.h"

namespace hds {

// I/O counters shared between the consumer thread and the restore
// read-ahead prefetcher: each field is a relaxed atomic (counts must not be
// lost; cross-field consistency is not needed). Copying takes a relaxed
// snapshot, so existing `stats().container_reads` call sites read naturally.
struct IoStats {
  std::atomic<std::uint64_t> container_reads{0};
  std::atomic<std::uint64_t> container_writes{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};

  IoStats() = default;
  IoStats(const IoStats& other) { *this = other; }
  IoStats& operator=(const IoStats& other) {
    container_reads = other.container_reads.load(std::memory_order_relaxed);
    container_writes = other.container_writes.load(std::memory_order_relaxed);
    bytes_read = other.bytes_read.load(std::memory_order_relaxed);
    bytes_written = other.bytes_written.load(std::memory_order_relaxed);
    return *this;
  }

  void reset() noexcept {
    container_reads.store(0, std::memory_order_relaxed);
    container_writes.store(0, std::memory_order_relaxed);
    bytes_read.store(0, std::memory_order_relaxed);
    bytes_written.store(0, std::memory_order_relaxed);
  }
};

// Thread-safety contract: read(), put(), write(), erase(), reserve_id() and
// stats() are safe to call from multiple threads concurrently — counters are
// atomic, ID reservation is atomic, and both backends guard their container
// maps with a mutex. This is what lets the restore read-ahead thread issue
// read()s while the consumer thread reads and the backup path writes.
// NOT thread-safe: attach_metrics(), reset_stats(), restore_next_id() and
// construction/destruction, which must be serialized externally (they are
// setup/teardown operations).
class ContainerStore {
 public:
  virtual ~ContainerStore() = default;

  // Persists `container` and returns its assigned ID (always > 0).
  //
  // Failure contract: throws (durable::WriteError from the file backend, or
  // whatever the backend raises) if the container could not be fully
  // persisted. On throw, NOTHING is counted — stats(), metrics and the
  // store's visible container set are exactly as they were before the call;
  // the reserved ID is consumed but refers to nothing. The file backend
  // writes atomically (temp + fsync + rename), so a failed or crashed write
  // never leaves a torn container file at the final path.
  ContainerId write(Container container);

  // Reserves the next container ID without writing. Pipelines that fill a
  // container incrementally need its ID up front so recipes can reference
  // chunks before the container is sealed; the reserved container must
  // eventually be stored via put().
  [[nodiscard]] ContainerId reserve_id() noexcept { return next_id_++; }

  // Persists a container that already carries a reserved ID. Same failure
  // contract as write(): throws on failure and counts only on success.
  void put(Container container);

  // Fetches a container, counting one container read.
  [[nodiscard]] std::shared_ptr<const Container> read(ContainerId id);

  // Removes a container (expired-version deletion). Returns false if absent.
  bool erase(ContainerId id);

  [[nodiscard]] virtual std::size_t container_count() const = 0;
  [[nodiscard]] virtual std::vector<ContainerId> ids() const = 0;

  [[nodiscard]] const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  // Mirrors every I/O into `<prefix>_container_{writes,reads,erases}` and
  // `<prefix>_bytes_{written,read}` counters of `registry`. The registry
  // must outlive this store.
  void attach_metrics(obs::MetricsRegistry& registry,
                      std::string_view prefix);

  [[nodiscard]] ContainerId next_id() const noexcept { return next_id_; }

  // Persistence support: restores the ID counter of a reloaded store so
  // future reservations never collide with existing containers.
  void restore_next_id(ContainerId next) noexcept { next_id_ = next; }

 protected:
  virtual void do_write(ContainerId id, Container&& container) = 0;
  virtual std::shared_ptr<const Container> do_read(ContainerId id) = 0;
  virtual bool do_erase(ContainerId id) = 0;

 private:
  // 0 is reserved for "active" in recipes
  std::atomic<ContainerId> next_id_{1};
  IoStats stats_;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_erases_ = nullptr;
  obs::Counter* m_bytes_written_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
};

class MemoryContainerStore final : public ContainerStore {
 public:
  [[nodiscard]] std::size_t container_count() const override {
    std::lock_guard lock(mu_);
    return containers_.size();
  }
  [[nodiscard]] std::vector<ContainerId> ids() const override;

 protected:
  void do_write(ContainerId id, Container&& container) override;
  std::shared_ptr<const Container> do_read(ContainerId id) override;
  bool do_erase(ContainerId id) override;

 private:
  mutable std::mutex mu_;  // guards containers_ (see thread-safety contract)
  std::unordered_map<ContainerId, std::shared_ptr<const Container>>
      containers_;
};

class FileContainerStore final : public ContainerStore {
 public:
  // Creates `dir` if needed. With `index_existing`, container files already
  // present are registered (by filename) and the ID counter resumes past
  // the highest one — reopening a persistent repository; otherwise existing
  // files are ignored (fresh runs, round-trip validation).
  explicit FileContainerStore(std::filesystem::path dir,
                              bool index_existing = false);

  [[nodiscard]] std::size_t container_count() const override {
    std::lock_guard lock(mu_);
    return known_.size();
  }
  [[nodiscard]] std::vector<ContainerId> ids() const override;

  // Recovery support: the on-disk path of a container file, and removal of
  // an ID from the in-memory index without deleting the file — used when
  // recovery quarantines an orphan (the file is moved aside, not erased).
  [[nodiscard]] std::filesystem::path container_path(ContainerId id) const {
    return path_for(id);
  }
  bool forget(ContainerId id) {
    std::lock_guard lock(mu_);
    return known_.erase(id) > 0;
  }

 protected:
  void do_write(ContainerId id, Container&& container) override;
  std::shared_ptr<const Container> do_read(ContainerId id) override;
  bool do_erase(ContainerId id) override;

 private:
  [[nodiscard]] std::filesystem::path path_for(ContainerId id) const;

  std::filesystem::path dir_;
  mutable std::mutex mu_;  // guards known_ (see thread-safety contract)
  std::unordered_map<ContainerId, bool> known_;
};

}  // namespace hds
