#include "storage/fd_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace hds {

struct FdCache::Handle::Holder {
  int fd = -1;
  std::uint64_t size = 0;
  bool direct = false;

  Holder(int fd_in, std::uint64_t size_in, bool direct_in)
      : fd(fd_in), size(size_in), direct(direct_in) {}
  ~Holder() {
    if (fd >= 0) ::close(fd);
  }
  Holder(const Holder&) = delete;
  Holder& operator=(const Holder&) = delete;
};

int FdCache::Handle::fd() const noexcept { return holder_->fd; }

std::uint64_t FdCache::Handle::size() const noexcept { return holder_->size; }

bool FdCache::Handle::direct() const noexcept { return holder_->direct; }

FdCache::Handle FdCache::acquire(ContainerId id,
                                 const std::filesystem::path& path) {
  {
    MutexLock lock(mu_);
    if (const auto it = index_.find(id); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Handle(it->second->second);
    }
  }
  bool direct = direct_.load(std::memory_order_relaxed);
  int fd = -1;
  if (direct) {
#ifdef O_DIRECT
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC | O_DIRECT);
#endif
    if (fd < 0) direct = false;  // EINVAL etc.: buffered fallback
  }
  if (fd < 0) fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Handle();
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Handle();
  }
  opens_.fetch_add(1, std::memory_order_relaxed);
  auto holder = std::make_shared<Handle::Holder>(
      fd, static_cast<std::uint64_t>(st.st_size), direct);
  {
    MutexLock lock(mu_);
    // A racing acquire may have inserted the same ID; prefer the existing
    // entry (ours closes when the returned handle drops). The capacity
    // check belongs under mu_ too: set_capacity may race this insert.
    if (capacity_ > 0 && !index_.contains(id)) {
      lru_.emplace_front(id, holder);
      index_[id] = lru_.begin();
      while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return Handle(std::move(holder));
}

void FdCache::invalidate(ContainerId id) {
  MutexLock lock(mu_);
  if (const auto it = index_.find(id); it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
}

void FdCache::clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
}

void FdCache::set_capacity(std::size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void FdCache::set_direct(bool direct) {
  if (direct_.exchange(direct, std::memory_order_relaxed) != direct) {
    clear();
  }
}

std::size_t FdCache::open_fds() const {
  MutexLock lock(mu_);
  return lru_.size();
}

}  // namespace hds
