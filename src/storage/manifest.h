// MANIFEST — the repository's version-commit journal (DESIGN.md §9).
//
// Every HiDeStore::save() appends one CommitRecord and rewrites the
// MANIFEST through the atomic writer as the LAST step of the commit
// protocol: the rename that publishes the new MANIFEST is the commit
// point. Anything on disk that a committed record does not vouch for —
// a state snapshot with a newer epoch, archival containers past the
// committed ID watermark, stray temp files — is an aborted transaction
// that recovery quarantines on open.
//
// Records are kept newest-last and capped, so the journal stays a few
// hundred bytes while still recording recent commit history for
// `hds_tool recover` and the fsck `manifest_commit` invariant.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <vector>

#include "storage/container.h"
#include "storage/recipe.h"

namespace hds {

// One committed repository version. `epoch` increases by exactly one per
// commit; `store_next` is the archival container ID watermark (every
// committed container has a smaller ID); `state_size`/`state_crc` identify
// the committed state snapshot byte-for-byte.
struct CommitRecord {
  std::uint64_t epoch = 0;
  VersionId next_version = 1;
  VersionId oldest_version = 1;
  ContainerId store_next = 1;
  std::uint64_t state_size = 0;
  std::uint32_t state_crc = 0;  // CRC-32 of the whole state file
};

struct Manifest {
  static constexpr const char* kFileName = "MANIFEST";
  static constexpr std::size_t kMaxRecords = 8;

  std::vector<CommitRecord> records;  // oldest first; back() is the head

  [[nodiscard]] const CommitRecord* head() const noexcept {
    return records.empty() ? nullptr : &records.back();
  }

  // Appends a record, pruning the oldest past kMaxRecords.
  void append(const CommitRecord& record);

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  // nullopt on any truncation, CRC mismatch, or non-monotonic epochs.
  static std::optional<Manifest> deserialize(
      std::span<const std::uint8_t> bytes);
};

// kIoError: the file exists but the OS refused to hand over its bytes
// (open-after-stat race, EIO, permission change). Distinct from kCorrupt,
// which means the bytes were read fine but fail CRC/format validation —
// callers that quarantine corrupt journals should treat both as fatal, but
// the operator remedy differs (check the disk vs. restore the journal).
enum class ManifestStatus { kOk, kMissing, kIoError, kCorrupt };

// Reads `<dir>/MANIFEST`. On kOk, `out` holds the journal; otherwise `out`
// is left empty.
ManifestStatus load_manifest(const std::filesystem::path& dir, Manifest& out);

// Atomically rewrites `<dir>/MANIFEST`. Throws durable::WriteError.
void store_manifest(const std::filesystem::path& dir,
                    const Manifest& manifest);

}  // namespace hds
