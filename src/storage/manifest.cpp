#include "storage/manifest.h"

#include <fstream>
#include <system_error>

#include "common/byte_io.h"
#include "common/crc32.h"
#include "storage/durable.h"

namespace hds {

namespace {
constexpr std::uint32_t kManifestMagic = 0x4844534D;  // "HDSM"
constexpr std::uint32_t kManifestFormat = 1;
}  // namespace

void Manifest::append(const CommitRecord& record) {
  records.push_back(record);
  if (records.size() > kMaxRecords) {
    records.erase(records.begin(),
                  records.begin() +
                      static_cast<std::ptrdiff_t>(records.size() -
                                                  kMaxRecords));
  }
}

std::vector<std::uint8_t> Manifest::serialize() const {
  ByteWriter writer;
  writer.u32(kManifestMagic);
  writer.u32(kManifestFormat);
  writer.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& r : records) {
    writer.u64(r.epoch);
    writer.u32(r.next_version);
    writer.u32(r.oldest_version);
    writer.u32(static_cast<std::uint32_t>(r.store_next));
    writer.u64(r.state_size);
    writer.u32(r.state_crc);
  }
  auto bytes = writer.take();
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  ByteWriter trailer;
  trailer.u32(crc);
  bytes.insert(bytes.end(), trailer.bytes().begin(),
               trailer.bytes().end());
  return bytes;
}

std::optional<Manifest> Manifest::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 16) return std::nullopt;
  std::uint32_t stored_crc = 0;
  for (int i = 3; i >= 0; --i) {
    stored_crc = (stored_crc << 8) | bytes[bytes.size() - 4 +
                                           static_cast<std::size_t>(i)];
  }
  if (crc32(bytes.data(), bytes.size() - 4) != stored_crc) {
    return std::nullopt;
  }
  ByteReader reader(bytes.subspan(0, bytes.size() - 4));
  std::uint32_t magic, format, count;
  if (!reader.u32(magic) || magic != kManifestMagic) return std::nullopt;
  if (!reader.u32(format) || format != kManifestFormat) return std::nullopt;
  if (!reader.u32(count)) return std::nullopt;

  Manifest manifest;
  manifest.records.reserve(count);
  std::uint64_t prev_epoch = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    CommitRecord r;
    std::uint32_t store_next;
    if (!reader.u64(r.epoch) || !reader.u32(r.next_version) ||
        !reader.u32(r.oldest_version) || !reader.u32(store_next) ||
        !reader.u64(r.state_size) || !reader.u32(r.state_crc)) {
      return std::nullopt;
    }
    r.store_next = static_cast<ContainerId>(store_next);
    if (r.epoch == 0 || r.epoch <= prev_epoch) return std::nullopt;
    prev_epoch = r.epoch;
    manifest.records.push_back(r);
  }
  if (!reader.exhausted()) return std::nullopt;
  return manifest;
}

ManifestStatus load_manifest(const std::filesystem::path& dir,
                             Manifest& out) {
  out.records.clear();
  const auto path = dir / Manifest::kFileName;
  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec);
  if (!ec && !exists) return ManifestStatus::kMissing;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return ManifestStatus::kIoError;
  const auto end = in.tellg();
  if (end < 0) return ManifestStatus::kIoError;
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(end));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in && !bytes.empty()) return ManifestStatus::kIoError;
  auto manifest = Manifest::deserialize(bytes);
  if (!manifest) return ManifestStatus::kCorrupt;
  out = std::move(*manifest);
  return ManifestStatus::kOk;
}

void store_manifest(const std::filesystem::path& dir,
                    const Manifest& manifest) {
  durable::atomic_write_file(dir / Manifest::kFileName,
                             manifest.serialize());
}

}  // namespace hds
