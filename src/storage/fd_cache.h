// FdCache — bounded LRU of open container-file descriptors.
//
// FileContainerStore used to open a fresh stream for every read; under a
// restore that revisits containers (FAA re-fetches, read-ahead, fsck) the
// open/close pair dominates small reads. The cache keeps up to `capacity`
// descriptors open, keyed by container ID, and hands out pinning handles:
// a handle holds a shared reference to the descriptor, so an entry evicted
// or invalidated while a pread is in flight stays open until the last
// handle drops.
//
// Thread-safety: all methods are safe to call concurrently. Invalidation
// (on container rewrite or erase) removes the entry immediately; in-flight
// handles keep reading the *old* inode, which is exactly the pre-rename
// content — never a torn mix.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "storage/container.h"

namespace hds {

class FdCache {
 public:
  // capacity == 0 disables caching: acquire() still opens and returns a
  // usable handle, it just is not retained.
  explicit FdCache(std::size_t capacity) : capacity_(capacity) {}

  class Handle {
   public:
    Handle() = default;
    [[nodiscard]] bool valid() const noexcept { return holder_ != nullptr; }
    [[nodiscard]] int fd() const noexcept;
    // File size at open time (fstat). The store's writes replace the file
    // wholesale (atomic rename) and invalidate the entry, so the size stays
    // true for the descriptor's inode.
    [[nodiscard]] std::uint64_t size() const noexcept;
    // True when the descriptor was opened O_DIRECT: reads through it must
    // obey the alignment rules (offset, length and buffer all aligned to
    // kDirectAlign; see DESIGN.md §13).
    [[nodiscard]] bool direct() const noexcept;

   private:
    friend class FdCache;
    struct Holder;
    explicit Handle(std::shared_ptr<Holder> holder)
        : holder_(std::move(holder)) {}
    std::shared_ptr<Holder> holder_;
  };

  // Opens (or reuses) a read-only descriptor for `path`. Invalid handle if
  // the file cannot be opened or stat'ed.
  [[nodiscard]] Handle acquire(ContainerId id,
                               const std::filesystem::path& path);

  // Drops the cached descriptor for `id` (container rewritten or erased).
  void invalidate(ContainerId id);
  void clear();

  // Resizes the cache, evicting down to the new capacity (setup operation;
  // in-flight handles keep their descriptors pinned as usual).
  void set_capacity(std::size_t capacity);

  // Alignment contract for O_DIRECT descriptors: 4096 covers every current
  // filesystem/device combination (logical block size ≤ 4K, page size 4K).
  static constexpr std::size_t kDirectAlign = 4096;

  // Open subsequent descriptors with O_DIRECT (setup operation: clears the
  // cache so cached buffered descriptors don't masquerade as direct ones).
  // Per-open EINVAL — a filesystem that refuses O_DIRECT — falls back to a
  // buffered descriptor, reported through Handle::direct().
  void set_direct(bool direct);
  [[nodiscard]] bool direct_mode() const noexcept {
    return direct_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  // Every miss is an open(2); hits + opens = acquires that succeeded.
  [[nodiscard]] std::uint64_t opens() const noexcept {
    return opens_.load(std::memory_order_relaxed);
  }
  // Descriptors currently held by the cache (fd pressure; excludes pinned
  // handles in flight).
  [[nodiscard]] std::size_t open_fds() const;

 private:
  mutable Mutex mu_{lockrank::kFdCache};
  std::size_t capacity_ HDS_GUARDED_BY(mu_);
  // Front = most recently used.
  std::list<std::pair<ContainerId, std::shared_ptr<Handle::Holder>>> lru_
      HDS_GUARDED_BY(mu_);
  std::unordered_map<
      ContainerId,
      std::list<std::pair<ContainerId,
                          std::shared_ptr<Handle::Holder>>>::iterator>
      index_ HDS_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> opens_{0};
  std::atomic<bool> direct_{false};
};

}  // namespace hds
