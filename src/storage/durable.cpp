#include "storage/durable.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#if defined(_WIN32)
#error "durable.cpp requires a POSIX platform"
#endif

#include <fcntl.h>
#include <unistd.h>

namespace hds::durable {

namespace {

std::atomic<int> g_mode{static_cast<int>(FaultMode::kNone)};
std::atomic<std::uint64_t> g_trigger{0};
std::atomic<std::uint64_t> g_counter{0};
std::once_flag g_env_once;

void arm_from_environment() {
  const char* step = std::getenv("HDS_CRASH_STEP");
  if (step == nullptr || *step == '\0') return;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(step, &end, 10);
  if (end == nullptr || *end != '\0' || n == 0) return;
  FaultMode mode = FaultMode::kAbort;
  if (const char* m = std::getenv("HDS_CRASH_MODE")) {
    const std::string_view v(m);
    if (v == "throw") {
      mode = FaultMode::kThrow;
    } else if (v == "fail") {
      mode = FaultMode::kFail;
    }
  }
  CrashInjector::arm(n, mode);
}

[[noreturn]] void throw_errno(const std::string& what, int err) {
  throw WriteError(what + ": " + std::strerror(err));
}

}  // namespace

void CrashInjector::arm(std::uint64_t step, FaultMode mode) noexcept {
  g_counter.store(0, std::memory_order_relaxed);
  g_trigger.store(step, std::memory_order_relaxed);
  g_mode.store(static_cast<int>(mode), std::memory_order_release);
}

void CrashInjector::disarm() noexcept {
  g_mode.store(static_cast<int>(FaultMode::kNone),
               std::memory_order_release);
}

bool CrashInjector::armed() noexcept {
  return g_mode.load(std::memory_order_acquire) !=
         static_cast<int>(FaultMode::kNone);
}

std::uint64_t CrashInjector::steps() noexcept {
  return g_counter.load(std::memory_order_relaxed);
}

void CrashInjector::crash_point(const char* site) {
  std::call_once(g_env_once, arm_from_environment);
  const auto mode =
      static_cast<FaultMode>(g_mode.load(std::memory_order_acquire));
  if (mode == FaultMode::kNone) return;
  const std::uint64_t n =
      g_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t trigger = g_trigger.load(std::memory_order_relaxed);
  switch (mode) {
    case FaultMode::kNone: return;
    case FaultMode::kThrow:
      if (n == trigger) {
        throw InjectedCrash(std::string("injected crash at ") + site);
      }
      return;
    case FaultMode::kAbort:
      if (n == trigger) std::_Exit(86);  // no cleanup — a real crash
      return;
    case FaultMode::kFail:
      if (n >= trigger) {
        throw WriteError(std::string("injected write failure at ") + site);
      }
      return;
  }
}

// --- AtomicFileWriter ---

void AtomicFileWriter::site(const char* name) {
  try {
    CrashInjector::crash_point(name);
  } catch (const InjectedCrash&) {
    crashed_ = true;  // simulate a dead process: leave the temp file behind
    throw;
  }
}

AtomicFileWriter::AtomicFileWriter(std::filesystem::path path)
    : path_(std::move(path)), tmp_(path_) {
  tmp_ += ".tmp";
  site("create");
  fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw_errno("AtomicFileWriter: cannot create " + tmp_.string(), errno);
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_ && !crashed_) abort();
  if (fd_ >= 0) ::close(fd_);
}

void AtomicFileWriter::write(const void* data, std::size_t size) {
  site("write");
  const auto* p = static_cast<const char*>(data);
  while (size > 0) {
    const ::ssize_t n = ::write(fd_, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("AtomicFileWriter: write to " + tmp_.string(), errno);
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

void AtomicFileWriter::commit() {
  site("fsync");
  if (::fsync(fd_) != 0) {
    throw_errno("AtomicFileWriter: fsync " + tmp_.string(), errno);
  }
  site("rename");
  if (::close(fd_) != 0) {
    fd_ = -1;
    throw_errno("AtomicFileWriter: close " + tmp_.string(), errno);
  }
  fd_ = -1;
  std::error_code ec;
  std::filesystem::rename(tmp_, path_, ec);
  if (ec) {
    throw WriteError("AtomicFileWriter: rename " + tmp_.string() + " -> " +
                     path_.string() + ": " + ec.message());
  }
  committed_ = true;  // the target is in place; debris no longer possible
  site("dirsync");
  fsync_directory(path_.parent_path());
}

void AtomicFileWriter::abort() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_) {
    std::error_code ec;
    std::filesystem::remove(tmp_, ec);
  }
  committed_ = true;
}

// --- Helpers ---

void atomic_write_file(const std::filesystem::path& path,
                       std::span<const std::uint8_t> bytes) {
  AtomicFileWriter out(path);
  out.write(bytes);
  out.commit();
}

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view text) {
  AtomicFileWriter out(path);
  out.write(text);
  out.commit();
}

void atomic_rename(const std::filesystem::path& from,
                   const std::filesystem::path& to) {
  CrashInjector::crash_point("aside-rename");
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    throw WriteError("atomic_rename: " + from.string() + " -> " +
                     to.string() + ": " + ec.message());
  }
  CrashInjector::crash_point("aside-dirsync");
  fsync_directory(to.parent_path());
}

void fsync_directory(const std::filesystem::path& dir) {
  const std::filesystem::path target = dir.empty() ? "." : dir;
  const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    throw_errno("fsync_directory: open " + target.string(), errno);
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    throw_errno("fsync_directory: fsync " + target.string(), err);
  }
}

}  // namespace hds::durable
