// BlockCache — sharded LRU of deserialized containers under a byte budget.
//
// One cache per FileContainerStore, shared by everything that reads through
// it: the restore policies, the ReadAheadFetcher's prefetch thread, and
// end-of-version compaction/eviction — so a container deserialized for one
// consumer is served from memory to the next instead of being re-slurped.
//
// Policy:
//   * populate on READ only, never on write. Backup writes containers it
//     will not read again soon, and a write-through cache would mask
//     on-disk corruption from every later read — the failure-injection
//     tests (and real repair workflows) depend on reads seeing the disk.
//   * `complete` entries hold the whole container and satisfy any lookup;
//     partial entries (from read_chunks) satisfy only lookups whose
//     requested fingerprints they contain, and never replace a complete
//     entry.
//   * entries larger than a shard's budget are not cached.
//
// Accounting note: a cache hit still counts as a container read at the
// store level (§5.3 speed-factor semantics are logical); only
// bytes_read_physical sees the difference.
//
// Thread-safety: all methods are safe to call concurrently; shards are
// independently locked, keyed by container ID.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "storage/container.h"

namespace hds {

class BlockCache {
 public:
  // budget_bytes == 0 disables the cache (every lookup misses).
  BlockCache(std::size_t budget_bytes, std::size_t shards);

  struct Hit {
    std::shared_ptr<const Container> container;
    // data_size() of the full on-disk container — what the logical
    // bytes_read accounting charges even when `container` is partial.
    std::uint64_t full_data_size = 0;
  };

  // Lookup for a full-container read: only complete entries qualify.
  [[nodiscard]] std::optional<Hit> find_full(ContainerId id);

  // Lookup for a partial read: a complete entry always qualifies; a partial
  // entry qualifies when it holds every requested fingerprint.
  [[nodiscard]] std::optional<Hit> find_chunks(
      ContainerId id, std::span<const Fingerprint> fps);

  void insert(ContainerId id, std::shared_ptr<const Container> container,
              std::uint64_t full_data_size, bool complete);

  // Drops the entry for `id` (container rewritten or erased).
  void invalidate(ContainerId id);
  void clear();

  // Replaces budget and shard layout, dropping all entries. Setup-only: NOT
  // safe concurrently with lookups (the shard vector is rebuilt).
  void reconfigure(std::size_t budget_bytes, std::size_t shards);

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  // Current resident charge across all shards.
  [[nodiscard]] std::uint64_t bytes() const;
  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }

 private:
  struct Entry {
    ContainerId id = 0;
    std::shared_ptr<const Container> container;
    std::uint64_t full_data_size = 0;
    bool complete = false;
    std::size_t charge = 0;
  };
  struct Shard {
    mutable Mutex mu{lockrank::kBlockCacheShard};
    std::list<Entry> lru HDS_GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<ContainerId, std::list<Entry>::iterator> index
        HDS_GUARDED_BY(mu);
    std::size_t bytes HDS_GUARDED_BY(mu) = 0;
  };

  [[nodiscard]] Shard& shard_for(ContainerId id) noexcept {
    return shards_[static_cast<std::size_t>(static_cast<std::uint32_t>(id)) %
                   shards_.size()];
  }
  [[nodiscard]] std::size_t shard_budget() const noexcept {
    return budget_ / shards_.size();
  }
  static std::size_t charge_of(const Container& container) noexcept;
  void evict_over_budget(Shard& shard) HDS_REQUIRES(shard.mu);

  std::size_t budget_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace hds
