#include "service/wire.h"

#include <sys/socket.h>

#include <cerrno>

#include "common/byte_io.h"

namespace hds::service {

namespace {

// recv exactly `size` bytes; false on EOF, error, or timeout.
bool recv_all(int fd, std::uint8_t* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, out + got, size - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer gone, reset, or SO_RCVTIMEO expired
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer gone or SO_SNDTIMEO expired (stalled reader)
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool valid_tenant_name(std::string_view name) noexcept {
  if (name.empty() || name.size() > kMaxTenantName) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::vector<std::uint8_t> encode_request(const Request& req) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(req.op));
  w.u8(static_cast<std::uint8_t>(req.tenant.size()));
  w.raw({reinterpret_cast<const std::uint8_t*>(req.tenant.data()),
         req.tenant.size()});
  w.blob({reinterpret_cast<const std::uint8_t*>(req.label.data()),
          req.label.size()});
  w.u32(req.version);
  w.raw(req.data);
  return w.take();
}

std::optional<Request> decode_request(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  Request req;
  std::uint8_t op = 0, tenant_len = 0;
  if (!r.u8(op) || op > static_cast<std::uint8_t>(Op::kFsck)) {
    return std::nullopt;
  }
  req.op = static_cast<Op>(op);
  if (!r.u8(tenant_len)) return std::nullopt;
  req.tenant.resize(tenant_len);
  if (!r.raw({reinterpret_cast<std::uint8_t*>(req.tenant.data()),
              req.tenant.size()})) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> label;
  if (!r.blob(label)) return std::nullopt;
  req.label.assign(label.begin(), label.end());
  if (!r.u32(req.version)) return std::nullopt;
  // Whatever trails the fixed fields is the operation payload. The reader
  // validated every prefix field, so this offset is in bounds.
  const std::size_t prefix = 1 + 1 + req.tenant.size() + 4 + label.size() + 4;
  req.data.assign(payload.begin() + static_cast<std::ptrdiff_t>(prefix),
                  payload.end());
  return req;
}

std::vector<std::uint8_t> encode_response(const Response& resp) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(resp.status));
  w.blob({reinterpret_cast<const std::uint8_t*>(resp.message.data()),
          resp.message.size()});
  w.raw(resp.data);
  return w.take();
}

std::optional<Response> decode_response(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  Response resp;
  std::uint8_t status = 0;
  if (!r.u8(status) ||
      status > static_cast<std::uint8_t>(Status::kQuotaExceeded)) {
    return std::nullopt;
  }
  resp.status = static_cast<Status>(status);
  std::vector<std::uint8_t> message;
  if (!r.blob(message)) return std::nullopt;
  resp.message.assign(message.begin(), message.end());
  const std::size_t prefix = 1 + 4 + message.size();
  resp.data.assign(payload.begin() + static_cast<std::ptrdiff_t>(prefix),
                   payload.end());
  return resp;
}

bool write_frame(int fd, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  std::uint8_t header[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  return send_all(fd, header, sizeof header) &&
         send_all(fd, payload.data(), payload.size());
}

std::optional<std::vector<std::uint8_t>> read_frame(int fd,
                                                    std::uint32_t max_bytes) {
  std::uint8_t header[4];
  if (!recv_all(fd, header, sizeof header)) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | header[i];
  if (len > max_bytes) return std::nullopt;
  std::vector<std::uint8_t> payload(len);
  if (len > 0 && !recv_all(fd, payload.data(), payload.size())) {
    return std::nullopt;
  }
  return payload;
}

}  // namespace hds::service
