#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hds::service {

ServeClient::~ServeClient() { close(); }

bool ServeClient::connect(std::uint16_t port, int timeout_s) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  if (timeout_s > 0) {
    timeval tv{};
    tv.tv_sec = timeout_s;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close();
    return false;
  }
  return true;
}

std::optional<Response> ServeClient::call(const Request& req) {
  if (fd_ < 0) return std::nullopt;
  if (!write_frame(fd_, encode_request(req))) return std::nullopt;
  const auto frame = read_frame(fd_);
  if (!frame.has_value()) return std::nullopt;
  return decode_response(*frame);
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace hds::service
