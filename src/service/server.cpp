#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <exception>

#include "chunking/chunk_stream.h"
#include "chunking/chunker.h"
#include "obs/log.h"
#include "storage/durable.h"
#include "verify/fsck.h"

namespace hds::service {

namespace {
constexpr const char* kCatalogFile = "catalog.hds";
}  // namespace

ServeServer::ServeServer(ServeConfig config) : config_(std::move(config)) {
  if (config_.max_sessions == 0) config_.max_sessions = 1;
  if (config_.pending_sessions == 0) config_.pending_sessions = 1;
  if (config_.session_timeout_s <= 0) config_.session_timeout_s = 30;
}

ServeServer::~ServeServer() { stop(); }

bool ServeServer::start(std::string* error) {
  const auto fail = [&](std::string reason) {
    if (error != nullptr) *error = std::move(reason);
    return false;
  };
  if (running()) return true;

  // A single-tenant repository keeps state.hds at its root; serving on top
  // of one would wire its containers into a foreign namespace. Refuse —
  // serve repositories are their own layout.
  std::error_code ec;
  if (std::filesystem::exists(config_.repo / "state.hds", ec)) {
    return fail("refusing to serve a single-tenant repository (state.hds "
                "at the root): " +
                config_.repo.string());
  }
  std::filesystem::create_directories(config_.repo / "archival", ec);
  if (ec) {
    return fail("cannot create " + (config_.repo / "archival").string() +
                ": " + ec.message());
  }

  try {
    store_ = std::make_shared<FileContainerStore>(
        config_.repo / "archival", /*index_existing=*/true,
        config_.tenant_config.io_tuning);
  } catch (const std::exception& e) {
    return fail(std::string("cannot open shared store: ") + e.what());
  }
  store_->attach_metrics(metrics_, "store");
  tenants_ = std::make_unique<TenantRegistry>(config_.repo, store_,
                                              config_.tenant_config);
  std::size_t broken = 0;
  const std::size_t opened = tenants_->load_existing(&broken);
  if (broken > 0) {
    metrics_.counter("serve_tenants_unrecoverable").inc(broken);
  }
  tenants_->reconcile_store(
      dynamic_cast<FileContainerStore*>(store_.get()));
  metrics_.gauge("serve_tenants").set(static_cast<double>(opened));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail("cannot bind 127.0.0.1:" + std::to_string(config_.port));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  queue_ =
      std::make_unique<parallel::BoundedQueue<int>>(config_.pending_sessions);
  queue_->attach_depth_gauge(&metrics_.gauge("serve_pending_sessions"));

  running_.store(true, std::memory_order_release);
  workers_.reserve(config_.max_sessions);
  for (std::size_t i = 0; i < config_.max_sessions; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (obs::log_enabled(obs::LogLevel::kInfo)) {
    obs::log_info("serve_started", {{"port", port_},
                                    {"tenants", opened},
                                    {"max_sessions", config_.max_sessions}});
  }
  return true;
}

void ServeServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;  // only after the join: the accept loop reads this field
  // Release the workers: wake queue waiters, abort in-flight sessions at
  // their next socket op (the owning worker closes the fd).
  queue_->close();
  {
    MutexLock lock(session_mu_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Drain connections that were queued but never picked up.
  while (const auto fd = queue_->try_pop()) ::close(*fd);
}

void ServeServer::accept_loop() {
  while (running()) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    timeval tv{};
    tv.tv_sec = config_.session_timeout_s;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    if (queue_->try_push(fd)) {
      metrics_.counter("serve_sessions_accepted").inc();
      continue;
    }
    // Backpressure: every worker busy and the queue full. Tell the client
    // explicitly instead of letting it wait on an unbounded backlog.
    metrics_.counter("serve_sessions_rejected").inc();
    Response busy;
    busy.status = Status::kBusy;
    busy.message = "server busy: all session slots taken, retry later";
    (void)write_frame(fd, encode_response(busy));
    // Drain whatever the client already sent before closing: data arriving
    // after close() would trigger an RST that flushes the busy frame out of
    // the client's receive buffer before it can read it. Bounded by a short
    // receive timeout so a hostile peer cannot stall the accept loop.
    ::shutdown(fd, SHUT_WR);
    timeval drain_tv{};
    drain_tv.tv_usec = 250 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &drain_tv, sizeof drain_tv);
    char sink[1024];
    while (::recv(fd, sink, sizeof sink, 0) > 0) {
    }
    ::close(fd);
  }
}

void ServeServer::worker_loop() {
  while (auto fd = queue_->pop()) {
    {
      MutexLock lock(session_mu_);
      active_fds_.insert(*fd);
      metrics_.gauge("serve_active_sessions")
          .set(static_cast<double>(active_fds_.size()));
    }
    session_loop(*fd);
    {
      MutexLock lock(session_mu_);
      active_fds_.erase(*fd);
      metrics_.gauge("serve_active_sessions")
          .set(static_cast<double>(active_fds_.size()));
    }
    ::close(*fd);
  }
}

void ServeServer::session_loop(int fd) {
  // Tenants this connection has touched — each counts one session.
  std::unordered_set<std::string> seen;
  while (running()) {
    const auto frame = read_frame(fd, config_.max_frame_bytes);
    if (!frame.has_value()) break;  // peer done, stalled, or oversized
    Response resp;
    if (const auto req = decode_request(*frame)) {
      metrics_.counter("serve_requests").inc();
      try {
        resp = handle(*req, seen);
      } catch (const std::exception& e) {
        resp.status = Status::kError;
        resp.message = std::string("operation failed: ") + e.what();
      }
    } else {
      resp.status = Status::kError;
      resp.message = "malformed request frame";
    }
    if (resp.status != Status::kOk) {
      metrics_.counter("serve_request_errors").inc();
    }
    if (!write_frame(fd, encode_response(resp))) break;
  }
}

Response ServeServer::handle(const Request& req,
                             std::unordered_set<std::string>& seen) {
  Response resp;
  if (req.op == Op::kPing) {
    resp.message = "pong";
    return resp;
  }
  if (!valid_tenant_name(req.tenant)) {
    resp.status = Status::kError;
    resp.message = "invalid tenant name (want [a-z0-9_-]{1,32}): '" +
                   req.tenant + "'";
    return resp;
  }
  const auto tenant = tenants_->open_tenant(req.tenant);
  if (tenant == nullptr) {
    resp.status = Status::kError;
    resp.message = "cannot open tenant namespace '" + req.tenant + "'";
    return resp;
  }
  if (seen.insert(req.tenant).second) {
    tenant_counter(req.tenant, "sessions").inc();
  }
  switch (req.op) {
    case Op::kBackup:  return do_backup(*tenant, req);
    case Op::kRestore: return do_restore(*tenant, req);
    case Op::kList:    return do_list(*tenant);
    case Op::kStats:   return do_stats(*tenant);
    case Op::kFsck:    return do_fsck(*tenant);
    case Op::kPing:    break;  // handled above
  }
  resp.status = Status::kError;
  resp.message = "unknown operation";
  return resp;
}

Response ServeServer::do_backup(Tenant& tenant, const Request& req) {
  Response resp;
  MutexLock op(tenant.op_mu);
  if (config_.tenant_quota_bytes > 0) {
    const std::uint64_t retained = tenant.retained_bytes();
    if (retained + req.data.size() > config_.tenant_quota_bytes) {
      tenant_counter(tenant.name, "quota_rejections").inc();
      resp.status = Status::kQuotaExceeded;
      resp.message = "quota exceeded: retained " + std::to_string(retained) +
                     " + incoming " + std::to_string(req.data.size()) +
                     " > " + std::to_string(config_.tenant_quota_bytes);
      return resp;
    }
  }
  const auto chunker = make_chunker(ChunkerKind::kTttd);
  const VersionStream stream = chunk_bytes(*chunker, req.data);
  const BackupReport report = tenant.sys->backup(stream);
  std::vector<CatalogEntry> files;
  files.push_back({req.label.empty() ? std::string("data") : req.label, 0,
                   req.data.size()});
  tenant.catalog.add_version(report.version, std::move(files));
  // Commit order: catalog first, then the state commit that makes the
  // version durable — a crash in between leaves a catalog entry recovery
  // trims, never a committed version without its catalog.
  durable::atomic_write_file(tenant.dir / kCatalogFile,
                             tenant.catalog.serialize());
  tenant.sys->save(tenant.dir);
  tenant_counter(tenant.name, "backups").inc();
  tenant_counter(tenant.name, "logical_bytes").inc(report.logical_bytes);
  tenant_counter(tenant.name, "chunks").inc(report.logical_chunks);
  resp.message = "version=" + std::to_string(report.version) +
                 " logical_bytes=" + std::to_string(report.logical_bytes) +
                 " stored_bytes=" + std::to_string(report.stored_bytes) +
                 " chunks=" + std::to_string(report.logical_chunks);
  return resp;
}

Response ServeServer::do_restore(Tenant& tenant, const Request& req) {
  Response resp;
  MutexLock op(tenant.op_mu);
  const VersionId latest = tenant.sys->latest_version();
  const VersionId version = req.version == 0 ? latest : req.version;
  if (latest < 1 || version < tenant.sys->oldest_version() ||
      version > latest) {
    resp.status = Status::kError;
    resp.message = "no such version: " + std::to_string(version);
    return resp;
  }
  const RestoreReport report = tenant.sys->restore(
      version, [&resp](const ChunkLoc&, std::span<const std::uint8_t> bytes) {
        resp.data.insert(resp.data.end(), bytes.begin(), bytes.end());
      });
  if (report.stats.failed_chunks > 0) {
    resp.status = Status::kError;
    resp.message = std::to_string(report.stats.failed_chunks) +
                   " chunk(s) failed to restore";
    return resp;
  }
  tenant_counter(tenant.name, "restores").inc();
  tenant_counter(tenant.name, "restored_bytes")
      .inc(report.stats.restored_bytes);
  resp.message = "version=" + std::to_string(version) +
                 " bytes=" + std::to_string(report.stats.restored_bytes) +
                 " container_reads=" +
                 std::to_string(report.stats.container_reads);
  return resp;
}

Response ServeServer::do_list(Tenant& tenant) {
  Response resp;
  MutexLock op(tenant.op_mu);
  std::string text;
  for (const VersionId v : tenant.sys->recipes().versions()) {
    const Recipe* recipe = tenant.sys->recipes().get(v);
    if (recipe == nullptr) continue;
    text += "version=" + std::to_string(v) +
            " logical_bytes=" + std::to_string(recipe->logical_bytes()) +
            " chunks=" + std::to_string(recipe->chunk_count());
    if (const auto* files = tenant.catalog.files(v);
        files != nullptr && !files->empty()) {
      text += " label=" + files->front().path;
    }
    text += "\n";
  }
  resp.message = std::to_string(tenant.sys->recipes().size()) + " version(s)";
  resp.data.assign(text.begin(), text.end());
  return resp;
}

Response ServeServer::do_stats(Tenant& tenant) {
  Response resp;
  MutexLock op(tenant.op_mu);
  tenant.sys->refresh_gauges();
  const std::string text = tenant.sys->metrics().to_prometheus();
  resp.message = "tenant=" + tenant.name;
  resp.data.assign(text.begin(), text.end());
  return resp;
}

Response ServeServer::do_fsck(Tenant& tenant) {
  Response resp;
  MutexLock op(tenant.op_mu);
  const verify::FsckReport report = verify::run_fsck(*tenant.sys);
  const std::string text = report.to_text();
  resp.data.assign(text.begin(), text.end());
  if (report.clean()) {
    resp.message = "clean";
  } else {
    resp.status = Status::kError;
    resp.message = std::to_string(report.total_violations()) +
                   " violation(s)";
  }
  return resp;
}

obs::Counter& ServeServer::tenant_counter(std::string_view tenant,
                                          const char* what) {
  return metrics_.counter("tenant_" + std::string(tenant) + "_" + what);
}

void ServeServer::refresh_metrics() {
  if (tenants_ == nullptr) return;
  const auto all = tenants_->snapshot();
  metrics_.gauge("serve_tenants").set(static_cast<double>(all.size()));
  for (const auto& tenant : all) {
    MutexLock op(tenant->op_mu);
    metrics_
        .gauge("tenant_" + tenant->name + "_versions")
        .set(static_cast<double>(tenant->sys->recipes().size()));
    metrics_
        .gauge("tenant_" + tenant->name + "_retained_bytes")
        .set(static_cast<double>(tenant->retained_bytes()));
  }
}

}  // namespace hds::service
