// ServeClient — a minimal blocking client for the serve wire protocol,
// used by `hds_tool client` and the serve-mode tests. One connection, one
// request in flight at a time.
#pragma once

#include <cstdint>
#include <optional>

#include "service/wire.h"

namespace hds::service {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connects to 127.0.0.1:port with `timeout_s` per socket direction.
  [[nodiscard]] bool connect(std::uint16_t port, int timeout_s = 30);

  // Sends one request and waits for its response. nullopt on any transport
  // failure (the connection is then unusable — close() and reconnect).
  [[nodiscard]] std::optional<Response> call(const Request& req);

  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace hds::service
