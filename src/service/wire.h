// Serve-mode wire protocol (DESIGN.md §15): length-prefixed binary frames
// over a loopback TCP socket.
//
// Every message is one frame: a little-endian u32 payload length followed
// by that many payload bytes. Frames above kMaxFrameBytes are rejected
// before any allocation, so a garbage length prefix cannot balloon memory.
// Payloads are ByteWriter/ByteReader encodings (common/byte_io.h):
//
//   Request  = u8 op | u8 tenant_len | tenant bytes | blob label
//            | u32 version | raw data...
//   Response = u8 status | blob message | raw data...
//
// `data` is whatever trails the fixed fields: the backup payload on
// Op::kBackup requests, the restored bytes / metrics text / fsck report on
// responses. Tenant names are the namespace key and double as metric-name
// fragments, so they are restricted to [a-z0-9_-], at most kMaxTenantName
// characters.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hds::service {

// Hard ceiling on one frame (request or response). Large backups should be
// split into multiple versions by the client, not one giant frame.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;
inline constexpr std::size_t kMaxTenantName = 32;

enum class Op : std::uint8_t {
  kPing = 0,
  kBackup = 1,
  kRestore = 2,
  kList = 3,
  kStats = 4,
  kFsck = 5,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,          // malformed request, unknown version, failed op
  kBusy = 2,           // admission control: every session slot taken
  kQuotaExceeded = 3,  // tenant quota would be exceeded; nothing ingested
};

struct Request {
  Op op = Op::kPing;
  std::string tenant;
  std::string label;          // backup label (shows up in `list`)
  std::uint32_t version = 0;  // restore target; 0 = latest
  std::vector<std::uint8_t> data;
};

struct Response {
  Status status = Status::kOk;
  std::string message;
  std::vector<std::uint8_t> data;
};

// [a-z0-9_-]{1,kMaxTenantName} — safe as a directory name and a metric
// name fragment.
[[nodiscard]] bool valid_tenant_name(std::string_view name) noexcept;

[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& req);
[[nodiscard]] std::optional<Request> decode_request(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_response(const Response& resp);
[[nodiscard]] std::optional<Response> decode_response(
    std::span<const std::uint8_t> payload);

// Blocking frame I/O on a connected socket. Both retry EINTR; a timeout
// (EAGAIN/EWOULDBLOCK from SO_RCVTIMEO/SO_SNDTIMEO), a peer hang-up, or a
// length prefix above `max_bytes` fails the call — the caller drops the
// connection. read_frame returns nullopt on any failure; an empty frame
// (length 0) is valid and returns an empty vector.
[[nodiscard]] bool write_frame(int fd, std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<std::vector<std::uint8_t>> read_frame(
    int fd, std::uint32_t max_bytes = kMaxFrameBytes);

}  // namespace hds::service
