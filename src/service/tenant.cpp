#include "service/tenant.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <unordered_set>

#include "obs/log.h"
#include "service/wire.h"
#include "storage/durable.h"

namespace hds::service {

namespace {

constexpr const char* kCatalogFile = "catalog.hds";

std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

// Loads the tenant's catalog and drops versions the store no longer
// retains (crash recovery may have rolled the state back past them).
FileCatalog load_catalog(const std::filesystem::path& dir,
                         const HiDeStore& sys) {
  FileCatalog catalog;
  if (const auto bytes = read_file_bytes(dir / kCatalogFile)) {
    if (auto parsed = FileCatalog::deserialize(*bytes)) {
      catalog = std::move(*parsed);
    }
  }
  for (const VersionId v : catalog.versions()) {
    if (v > sys.latest_version() || v < sys.oldest_version()) {
      catalog.erase_version(v);
    }
  }
  return catalog;
}

}  // namespace

std::uint64_t Tenant::retained_bytes() const {
  std::uint64_t total = 0;
  if (sys == nullptr) return 0;
  for (const VersionId v : sys->recipes().versions()) {
    if (const Recipe* recipe = sys->recipes().get(v)) {
      total += recipe->logical_bytes();
    }
  }
  return total;
}

TenantRegistry::TenantRegistry(std::filesystem::path repo,
                               std::shared_ptr<ContainerStore> store,
                               const HiDeStoreConfig& base)
    : tenants_dir_(std::move(repo) / "tenants"),
      store_(std::move(store)),
      base_(base) {
  std::error_code ec;
  std::filesystem::create_directories(tenants_dir_, ec);
}

std::size_t TenantRegistry::load_existing(std::size_t* failed) {
  std::size_t opened = 0, broken = 0;
  std::error_code ec;
  std::vector<std::filesystem::path> dirs;
  for (const auto& entry :
       std::filesystem::directory_iterator(tenants_dir_, ec)) {
    if (entry.is_directory()) dirs.push_back(entry.path());
  }
  std::sort(dirs.begin(), dirs.end());
  for (const auto& dir : dirs) {
    const std::string name = dir.filename().string();
    if (!valid_tenant_name(name)) continue;
    auto tenant = std::make_shared<Tenant>();
    tenant->name = name;
    tenant->dir = dir;
    {
      MutexLock op(tenant->op_mu);
      tenant->sys = HiDeStore::open_shared(dir, store_);
      if (tenant->sys == nullptr) {
        // Unrecoverable state: leave the directory for forensics but do
        // not serve the name — a fresh namespace here would shadow it.
        ++broken;
        obs::log_warn("tenant_open_failed", {{"tenant", name}});
        continue;
      }
      tenant->catalog = load_catalog(dir, *tenant->sys);
    }
    MutexLock lock(mu_);
    tenants_.emplace(name, std::move(tenant));
    ++opened;
  }
  if (failed != nullptr) *failed = broken;
  return opened;
}

void TenantRegistry::reconcile_store(FileContainerStore* fstore) {
  if (fstore == nullptr) return;
  std::unordered_set<ContainerId> tagged;
  {
    MutexLock lock(mu_);
    for (const auto& [name, tenant] : tenants_) {
      (void)name;
      MutexLock op(tenant->op_mu);
      for (const auto& [cid, version] : tenant->sys->container_tags()) {
        (void)version;
        tagged.insert(cid);
      }
    }
  }
  auto on_disk = fstore->ids();
  std::sort(on_disk.begin(), on_disk.end());
  const auto quarantine = tenants_dir_.parent_path() / "quarantine";
  std::error_code ec;
  for (const ContainerId id : on_disk) {
    if (tagged.contains(id)) continue;
    // Sealed by a backup whose state commit never landed: an orphan no
    // tenant can reach. Keep it recoverable, off the books.
    std::filesystem::create_directories(quarantine, ec);
    const auto src = fstore->container_path(id);
    std::filesystem::rename(src, quarantine / src.filename(), ec);
    if (ec) std::filesystem::remove(src, ec);
    fstore->forget(id);
    obs::log_warn("orphan_container_quarantined",
                  {{"container", static_cast<std::uint64_t>(id)}});
  }
}

std::shared_ptr<Tenant> TenantRegistry::open_tenant(const std::string& name) {
  if (!valid_tenant_name(name)) return nullptr;
  MutexLock lock(mu_);
  if (const auto it = tenants_.find(name); it != tenants_.end()) {
    return it->second;
  }
  auto tenant = std::make_shared<Tenant>();
  tenant->name = name;
  tenant->dir = tenants_dir_ / name;
  std::error_code ec;
  std::filesystem::create_directories(tenant->dir, ec);
  if (ec) return nullptr;
  {
    MutexLock op(tenant->op_mu);
    HiDeStoreConfig config = base_;
    config.storage_dir = tenant->dir;
    tenant->sys = std::make_unique<HiDeStore>(config, store_);
    try {
      // Persist the empty namespace immediately so a restart (or a crash
      // before the first backup commits) still knows the tenant exists.
      tenant->sys->save(tenant->dir);
    } catch (const durable::WriteError&) {
      return nullptr;
    }
  }
  tenants_.emplace(name, tenant);
  return tenant;
}

std::shared_ptr<Tenant> TenantRegistry::find(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Tenant>> TenantRegistry::snapshot() const {
  MutexLock lock(mu_);
  std::vector<std::shared_ptr<Tenant>> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    (void)name;
    out.push_back(tenant);
  }
  return out;
}

}  // namespace hds::service
