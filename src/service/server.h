// ServeServer — the multi-tenant front end behind `hds_tool serve`
// (DESIGN.md §15).
//
// One long-running process owns a serve repository:
//
//   <repo>/archival/        shared FileContainerStore (all tenants)
//   <repo>/tenants/<name>/  per-tenant state.hds + MANIFEST + catalog.hds
//   <repo>/quarantine/      startup orphan sweep output
//
// Clients connect to a loopback TCP port and exchange length-prefixed
// request/response frames (wire.h). Each connection is a session: it may
// issue any number of requests (backup/restore/list/stats/fsck/ping)
// against any tenants, one at a time, and is served by one worker thread
// end to end.
//
// Admission control and backpressure: `max_sessions` workers serve
// sessions; accepted connections queue in a BoundedQueue of depth
// `pending_sessions` (its depth is exported as the serve_pending_sessions
// gauge). When the queue is full the connection is answered immediately
// with Status::kBusy and closed — the listener never wedges behind slow
// sessions, and clients get an explicit retry signal instead of an unbound
// wait. Per-tenant quotas (`tenant_quota_bytes` of retained logical data)
// reject oversized backups with Status::kQuotaExceeded before any chunk is
// ingested.
//
// Concurrency model: one operation per tenant at a time (Tenant::op_mu);
// operations on different tenants run concurrently, meeting only in the
// shared container store's thread-safe surface. Lock ranks: registry (4) →
// session set (5) → tenant (6) → everything HiDeStore takes internally.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "core/hidestore.h"
#include "obs/metrics.h"
#include "parallel/mpmc_queue.h"
#include "service/tenant.h"
#include "service/wire.h"

namespace hds::service {

struct ServeConfig {
  std::filesystem::path repo;
  std::uint16_t port = 0;           // 0 = ephemeral (see ServeServer::port())
  std::size_t max_sessions = 4;     // concurrent sessions (worker threads)
  std::size_t pending_sessions = 8; // admission queue depth before kBusy
  // Per-tenant retained-logical-bytes ceiling; 0 = unlimited. Checked
  // before ingest, so a rejected backup changes nothing.
  std::uint64_t tenant_quota_bytes = 0;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  // Per-direction socket timeout; a client that stalls longer mid-frame is
  // dropped (its session slot is what the timeout protects).
  int session_timeout_s = 30;
  // Base per-tenant HiDeStore configuration. storage_dir is ignored (each
  // tenant gets its own directory); io_tuning applies to the shared store.
  HiDeStoreConfig tenant_config;
};

class ServeServer {
 public:
  explicit ServeServer(ServeConfig config);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Opens (or initializes) the serve repository, recovers every tenant,
  // sweeps shared-store orphans, binds the loopback listener and spawns
  // the worker pool. False with a reason in `error` when the repository is
  // unusable (e.g. it is a single-tenant repo) or the port is taken.
  bool start(std::string* error = nullptr);

  // Stops accepting, aborts in-flight sessions at the next socket
  // operation, joins every thread. Tenant state is already durable — every
  // backup commits (state + catalog) before its response is sent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  // Bound port (resolves ephemeral requests after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Service-wide registry: shared-store mirrors (store_*), admission
  // gauges/counters (serve_*) and per-tenant counters (tenant_<name>_*).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  // Recomputes per-tenant gauges (versions, retained bytes) — call before
  // exporting the registry.
  void refresh_metrics();

  [[nodiscard]] TenantRegistry* tenants() noexcept { return tenants_.get(); }

 private:
  void accept_loop();
  void worker_loop();
  void session_loop(int fd);
  [[nodiscard]] Response handle(const Request& req,
                                std::unordered_set<std::string>& seen);

  Response do_backup(Tenant& tenant, const Request& req);
  Response do_restore(Tenant& tenant, const Request& req);
  Response do_list(Tenant& tenant);
  Response do_stats(Tenant& tenant);
  Response do_fsck(Tenant& tenant);

  obs::Counter& tenant_counter(std::string_view tenant, const char* what);

  ServeConfig config_;
  obs::MetricsRegistry metrics_;
  std::shared_ptr<ContainerStore> store_;
  std::unique_ptr<TenantRegistry> tenants_;
  std::unique_ptr<parallel::BoundedQueue<int>> queue_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  // Sessions currently inside session_loop(); stop() shutdown()s them so
  // workers blocked in recv() return promptly instead of riding out the
  // socket timeout. The owning worker still does the close().
  mutable Mutex session_mu_{lockrank::kServiceSessions};
  std::unordered_set<int> active_fds_ HDS_GUARDED_BY(session_mu_);
};

}  // namespace hds::service
