// Per-tenant namespaces over one shared archival store (DESIGN.md §15).
//
// A tenant is a complete HiDeStore minus the container store: its own
// double-hash fingerprint cache, active pool, recipe chain, deletion tags,
// and file catalog, persisted under <repo>/tenants/<name>/ with the usual
// state.hds + MANIFEST commit protocol. All tenants share one
// FileContainerStore under <repo>/archival — the store's thread-safe
// surface (reserve_id/put/read/erase) is the only cross-tenant contact
// point, so two tenants' backups overlap without a shared lock.
//
// Isolation: a tenant's §4.5 deletion tags double as its ownership set.
// Its recipes only ever name containers it wrote (dedup state is private,
// so chunks are never deduplicated across tenants), and deletion erases
// only tagged containers — tenants cannot observe or reclaim each other's
// data. At startup, reconcile_store() quarantines containers no tenant
// tags (debris of a commit no tenant completed), mirroring what
// HiDeStore::open() does for a single-tenant repository.
//
// Locking: registry lookups take mu_ (rank kServiceRegistry); whole
// backup/restore/list operations run under the tenant's op_mu (rank
// kServiceTenant) — per-tenant ops serialize, cross-tenant ops overlap.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backup/catalog.h"
#include "common/thread_annotations.h"
#include "core/hidestore.h"
#include "storage/container_store.h"

namespace hds::service {

struct Tenant {
  std::string name;
  std::filesystem::path dir;
  // One backup/restore/list/fsck runs under op_mu end to end: HiDeStore is
  // not internally synchronized, and serializing per tenant (not globally)
  // is exactly the concurrency the shared store supports.
  Mutex op_mu{lockrank::kServiceTenant};
  std::unique_ptr<HiDeStore> sys HDS_GUARDED_BY(op_mu);
  FileCatalog catalog HDS_GUARDED_BY(op_mu);

  // Quota basis: logical bytes across *retained* versions (recomputed from
  // recipes, so it survives reload and shrinks when versions are deleted).
  [[nodiscard]] std::uint64_t retained_bytes() const HDS_REQUIRES(op_mu);
};

class TenantRegistry {
 public:
  // `repo` is the serve root; tenant state lives under repo/tenants/<name>.
  // `store` is the shared archival store; `base` supplies per-tenant config
  // (container size, cache window, io tuning — storage_dir is overridden
  // with the tenant directory).
  TenantRegistry(std::filesystem::path repo,
                 std::shared_ptr<ContainerStore> store,
                 const HiDeStoreConfig& base);

  // Opens every tenant directory found under repo/tenants (crash recovery
  // included). Returns the number opened; directories whose state cannot be
  // recovered are skipped (left on disk for forensics) and counted in
  // `failed` when given.
  std::size_t load_existing(std::size_t* failed = nullptr);

  // Startup orphan sweep: quarantines shared-store containers that no
  // loaded tenant tags. Call after load_existing(), before serving — at
  // runtime an untagged container may be a backup in flight.
  void reconcile_store(FileContainerStore* fstore);

  // Returns the named tenant, creating (and persisting) a fresh namespace
  // on first use. nullptr when the name is invalid or creation failed.
  std::shared_ptr<Tenant> open_tenant(const std::string& name);

  // Existing tenant or nullptr — never creates.
  [[nodiscard]] std::shared_ptr<Tenant> find(const std::string& name) const;

  // Stable snapshot of every tenant, name-ordered.
  [[nodiscard]] std::vector<std::shared_ptr<Tenant>> snapshot() const;

  [[nodiscard]] const std::filesystem::path& tenants_dir() const noexcept {
    return tenants_dir_;
  }

 private:
  std::filesystem::path tenants_dir_;
  std::shared_ptr<ContainerStore> store_;
  HiDeStoreConfig base_;
  mutable Mutex mu_{lockrank::kServiceRegistry};
  std::map<std::string, std::shared_ptr<Tenant>, std::less<>> tenants_
      HDS_GUARDED_BY(mu_);
};

}  // namespace hds::service
