// ThreadPool — a fixed-size worker pool over a BoundedQueue of tasks.
//
// The task queue is bounded (default 2 tasks per worker), so submit() is a
// backpressure point: a producer that outruns the workers blocks instead of
// queueing unbounded closures. wait_idle() is the stage barrier used by the
// ingest pipeline between its scan and fingerprint phases.
//
// Tasks must not throw: a worker that sees an exception escape a task calls
// std::terminate (there is no caller to rethrow to). Wrap fallible work and
// carry errors through the task's own result channel.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "parallel/mpmc_queue.h"

namespace hds::parallel {

// Worker count for "use all cores" requests: HDS_THREADS if set, otherwise
// std::thread::hardware_concurrency(), never 0.
[[nodiscard]] std::size_t default_thread_count();

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads, std::size_t queue_capacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task`; blocks while the queue is full (backpressure). Safe
  // from multiple producer threads.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished and the queue is empty.
  // The pool stays usable afterwards.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  // Queue-depth gauge for the obs layer (see BoundedQueue).
  void attach_depth_gauge(obs::Gauge* gauge) {
    queue_.attach_depth_gauge(gauge);
  }

  // Queue-wait spans for the obs layer (see BoundedQueue::attach_tracer).
  void attach_tracer(obs::Tracer* tracer, std::string_view name) {
    queue_.attach_tracer(tracer, name);
  }

 private:
  void worker_loop();

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;

  // Never held together with queue_.mu_: submit releases it before push,
  // workers take it only after pop returns.
  Mutex mu_{lockrank::kPoolIdle};
  CondVar idle_;
  // Submitted but not yet finished.
  std::size_t pending_ HDS_GUARDED_BY(mu_) = 0;
};

}  // namespace hds::parallel
