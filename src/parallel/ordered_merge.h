// OrderedMerge — reassembles out-of-order worker results into sequence order.
//
// Producers stamp each result with its sequence number (0,1,2,...); the
// single consumer pops results strictly in that order, blocking until the
// next expected number arrives. A bounded reorder window applies
// backpressure: a producer whose result is too far ahead of the consumer
// blocks in put(), so one slow early task cannot make the buffer grow
// without limit.
//
// Used by the parallel ingest pipeline to rebuild the VersionStream in
// recipe order whatever order the fingerprint workers finish in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "common/thread_annotations.h"

namespace hds::parallel {

template <typename T>
class OrderedMerge {
 public:
  // `window` bounds how many sequence numbers may sit buffered ahead of the
  // consumer (0 = unbounded).
  explicit OrderedMerge(std::size_t window = 0) : window_(window) {}

  OrderedMerge(const OrderedMerge&) = delete;
  OrderedMerge& operator=(const OrderedMerge&) = delete;

  // Hands result `seq` to the merge. Blocks while seq is more than `window`
  // ahead of the next expected number. Returns false if the merge was
  // closed (result dropped). Each seq must be put at most once.
  bool put(std::uint64_t seq, T value) {
    MutexLock lock(mu_);
    while (!(closed_ || window_ == 0 || seq < next_ + window_)) {
      space_.wait(mu_);
    }
    if (closed_) return false;
    ready_.emplace(seq, std::move(value));
    if (seq == next_) available_.notify_one();
    return true;
  }

  // Returns result `next` in sequence order, blocking until it arrives;
  // nullopt once closed and the next expected result is not buffered.
  std::optional<T> next() {
    MutexLock lock(mu_);
    while (!(closed_ || ready_.contains(next_))) available_.wait(mu_);
    const auto it = ready_.find(next_);
    if (it == ready_.end()) return std::nullopt;
    T value = std::move(it->second);
    ready_.erase(it);
    ++next_;
    space_.notify_all();
    return value;
  }

  // Releases all waiters; pending puts fail, buffered results ahead of a
  // gap become unreachable. Idempotent.
  void close() {
    MutexLock lock(mu_);
    closed_ = true;
    space_.notify_all();
    available_.notify_all();
  }

  [[nodiscard]] std::uint64_t next_seq() const {
    MutexLock lock(mu_);
    return next_;
  }

 private:
  const std::size_t window_;
  mutable Mutex mu_{lockrank::kOrderedMerge};
  CondVar space_;
  CondVar available_;
  std::map<std::uint64_t, T> ready_ HDS_GUARDED_BY(mu_);
  std::uint64_t next_ HDS_GUARDED_BY(mu_) = 0;
  bool closed_ HDS_GUARDED_BY(mu_) = false;
};

}  // namespace hds::parallel
